// Experiments C3/C4 (paper §6.2–6.4): high-availability cost spectrum.
//
// C4 — upstream backup vs process pairs on the same workload:
//   runtime messages/bytes (upstream backup ≪ process pairs) vs recovery
//   work (upstream backup replays more).
// C3 — K virtual machines interpolate between the two extremes: runtime
//   messages rise with K while recovery work falls as 1/K.
#include "bench/bench_util.h"
#include "ha/process_pair.h"
#include "ha/upstream_backup.h"
#include "ha/vm_tradeoff.h"

namespace aurora {
namespace bench {
namespace {

// Three-server chain under steady traffic; crash s2 at t=1.5s; run to 4s.
void BM_UpstreamBackupVsProcessPair(benchmark::State& state) {
  const bool use_process_pair = state.range(0) != 0;
  for (auto _ : state) {
    Cluster cluster(4);  // s1, s2, s3 + dedicated process-pair backup
    GlobalQuery q;
    AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
    AURORA_CHECK(q.AddBox("f", FilterSpec(Predicate::True())).ok());
    AURORA_CHECK(
        q.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                               {"B", Expr::FieldRef("B")}}))
            .ok());
    AURORA_CHECK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})).ok());
    AURORA_CHECK(q.AddOutput("out").ok());
    AURORA_CHECK(q.ConnectInputToBox("in", "f").ok());
    AURORA_CHECK(q.ConnectBoxes("f", 0, "m", 0).ok());
    AURORA_CHECK(q.ConnectBoxes("m", 0, "t", 0).ok());
    AURORA_CHECK(q.ConnectBoxToOutput("t", 0, "out").ok());
    auto deployed =
        DeployQuery(cluster.system.get(), q, {{"f", 0}, {"m", 1}, {"t", 2}});
    AURORA_CHECK(deployed.ok());
    uint64_t delivered = 0;
    AURORA_CHECK(
        cluster.system
            ->CollectOutput(2, "out",
                            [&](const Tuple&, SimTime) { ++delivered; })
            .ok());

    uint64_t baseline_bytes = 0;
    const int kTuples = 3000;
    InjectAtRate(&cluster, 0, "in", kTuples, 2000.0, /*mod=*/1'000'000);

    if (use_process_pair) {
      // Mirror server s1 (the node the upstream-backup run also burdens).
      ProcessPairModel pp(cluster.system.get(), 1, 3);
      pp.Start();
      cluster.sim.RunUntil(SimTime::Seconds(4));
      state.counters["protocol_messages"] =
          static_cast<double>(pp.checkpoint_messages());
      state.counters["protocol_bytes"] =
          static_cast<double>(pp.checkpoint_bytes());
      state.counters["recovery_work_tuples"] =
          static_cast<double>(pp.RecoveryWorkTuples());
      state.counters["delivered"] = static_cast<double>(delivered);
      (void)baseline_bytes;
    } else {
      HaOptions opts;
      HaManager ha(cluster.system.get(), opts);
      AURORA_CHECK(ha.Protect(&*deployed, &q).ok());
      cluster.sim.ScheduleAt(SimTime::Seconds(1.5),
                             [&]() { ha.CrashNode(1); });
      cluster.sim.RunUntil(SimTime::Seconds(4));
      state.counters["protocol_messages"] = static_cast<double>(
          ha.checkpoint_messages() + ha.heartbeat_messages());
      state.counters["protocol_bytes"] =
          static_cast<double>(ha.checkpoint_messages() * 52 +
                              ha.heartbeat_messages() * 49);
      state.counters["recovery_work_tuples"] =
          static_cast<double>(ha.replayed_tuples());
      state.counters["failures_recovered"] =
          static_cast<double>(ha.recoveries());
      state.counters["delivered"] = static_cast<double>(delivered);
    }
  }
}
BENCHMARK(BM_UpstreamBackupVsProcessPair)
    ->ArgName("process_pair")
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The §6.4 spectrum: K virtual machines over an 8-box chain.
void BM_VirtualMachineSweep(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto points = ComputeVmTradeoff(/*n_boxes=*/8, /*tuples_in_flight=*/500,
                                    /*box_cost_us=*/20.0);
    const VmTradeoffPoint& p = points[static_cast<size_t>(k - 1)];
    state.counters["K"] = p.k;
    state.counters["runtime_msgs_per_tuple"] = p.runtime_messages_per_tuple;
    state.counters["recovery_box_activations"] = p.recovery_box_activations;
    state.counters["recovery_time_ms"] = p.recovery_time_ms;
  }
}
BENCHMARK(BM_VirtualMachineSweep)
    ->ArgName("K")
    ->DenseRange(1, 8)
    ->Iterations(1);

// Truncation method comparison (§6.2): flow messages vs seq-array polling.
void BM_TruncationMethod(benchmark::State& state) {
  const auto method = static_cast<TruncationMethod>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(3);
    GlobalQuery q;
    AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
    AURORA_CHECK(q.AddBox("f", FilterSpec(Predicate::True())).ok());
    AURORA_CHECK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})).ok());
    AURORA_CHECK(q.AddOutput("out").ok());
    AURORA_CHECK(q.ConnectInputToBox("in", "f").ok());
    AURORA_CHECK(q.ConnectBoxes("f", 0, "t", 0).ok());
    AURORA_CHECK(q.ConnectBoxToOutput("t", 0, "out").ok());
    auto deployed = DeployQuery(cluster.system.get(), q, {{"f", 0}, {"t", 1}});
    AURORA_CHECK(deployed.ok());
    HaOptions opts;
    opts.method = method;
    HaManager ha(cluster.system.get(), opts);
    AURORA_CHECK(ha.Protect(&*deployed, &q).ok());
    InjectAtRate(&cluster, 0, "in", 2000, 2000.0, /*mod=*/1'000'000);
    cluster.sim.RunUntil(SimTime::Seconds(2));
    state.counters["checkpoint_messages"] =
        static_cast<double>(ha.checkpoint_messages());
    state.counters["truncated_tuples"] =
        static_cast<double>(ha.truncated_tuples());
    state.counters["retained_tail"] =
        static_cast<double>(ha.TotalRetainedTuples());
  }
}
BENCHMARK(BM_TruncationMethod)
    ->ArgName("method")  // 0 = flow messages, 1 = seq arrays
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
