// Experiments F5/F7 (paper Figs. 5 and 7, §5.1): box splitting for
// parallelism. An expensive Filter saturates one machine; splitting it
// across 1..4 machines with hash-partition routing predicates divides the
// load. Reported shape: delivered throughput scales with machines until
// the input rate is met, and per-machine utilization drops.
#include "bench/bench_util.h"
#include "distributed/box_splitter.h"

namespace aurora {
namespace bench {
namespace {

void BM_SplitScaling(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const int kTuples = 3000;
  const double kRate = 4000.0;  // tuples/sec
  for (auto _ : state) {
    Cluster cluster(4);
    GlobalQuery q;
    AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
    OperatorSpec heavy = FilterSpec(Predicate::True());
    heavy.SetParam("cost_us", Value(900.0));  // ~0.9ms per tuple: 1 machine
                                              // sustains ~1.1k tuples/s
    AURORA_CHECK(q.AddBox("work", heavy).ok());
    AURORA_CHECK(q.AddOutput("out").ok());
    AURORA_CHECK(q.ConnectInputToBox("in", "work").ok());
    AURORA_CHECK(q.ConnectBoxToOutput("work", 0, "out").ok());
    auto deployed = DeployQuery(cluster.system.get(), q, {{"work", 0}});
    AURORA_CHECK(deployed.ok());
    uint64_t delivered = 0;
    AURORA_CHECK(
        cluster.system
            ->CollectOutput(0, "out",
                            [&](const Tuple&, SimTime) { ++delivered; })
            .ok());
    // Split the worker (machines-1) times, hash-partitioning A so the load
    // divides evenly; each split peels half of the remaining partition off
    // ("half of the available streams", §5.2).
    BoxSplitter splitter(cluster.system.get());
    std::string victim = "work";
    for (int m = 1; m < machines; ++m) {
      SplitRequest req;
      req.box_name = victim;
      // Chain of two-way splits that ends with an even M-way partition:
      // round m keeps hash%M == m-1 at the current machine and passes the
      // residual population onward.
      req.partition = Predicate::HashPartition(
          "A", static_cast<uint32_t>(machines), static_cast<uint32_t>(m - 1));
      req.dst_node = m;
      auto result = splitter.Split(&*deployed, req);
      AURORA_CHECK(result.ok()) << result.status().ToString();
      victim = result->copy_name;  // split the residual copy next round
    }
    InjectAtRate(&cluster, 0, "in", kTuples, kRate, /*mod=*/1000);
    double horizon_s = kTuples / kRate + 0.5;
    cluster.sim.RunUntil(SimTime::Seconds(horizon_s));

    state.counters["machines"] = machines;
    state.counters["delivered"] = static_cast<double>(delivered);
    state.counters["throughput_tps"] =
        static_cast<double>(delivered) / horizon_s;
    // How far behind the single bottleneck machine is.
    state.counters["backlog_node0"] = static_cast<double>(
        cluster.system->node(0).engine().TotalQueuedTuples());
  }
}
BENCHMARK(BM_SplitScaling)
    ->ArgName("machines")
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Fig. 7: remapping after a split — the parallel branches land on separate
// machines and both carry load.
void BM_SplitRemapBalance(benchmark::State& state) {
  for (auto _ : state) {
    Cluster cluster(2);
    GlobalQuery q;
    AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
    OperatorSpec heavy = FilterSpec(Predicate::True());
    heavy.SetParam("cost_us", Value(400.0));
    AURORA_CHECK(q.AddBox("b", heavy).ok());
    AURORA_CHECK(q.AddOutput("out").ok());
    AURORA_CHECK(q.ConnectInputToBox("in", "b").ok());
    AURORA_CHECK(q.ConnectBoxToOutput("b", 0, "out").ok());
    auto deployed = DeployQuery(cluster.system.get(), q, {{"b", 0}});
    AURORA_CHECK(deployed.ok());
    BoxSplitter splitter(cluster.system.get());
    SplitRequest req;
    req.box_name = "b";
    req.partition = Predicate::HashPartition("A", 2, 0);
    req.dst_node = 1;
    AURORA_CHECK(splitter.Split(&*deployed, req).ok());
    InjectAtRate(&cluster, 0, "in", 2000, 3000.0, /*mod=*/1000);
    cluster.sim.RunUntil(SimTime::Seconds(1.5));
    auto tuples_in = [&](const std::string& name) -> double {
      const auto& placed = deployed->boxes.at(name);
      auto op = cluster.system->node(placed.node).engine().BoxOp(placed.box);
      return op.ok() ? static_cast<double>((*op)->tuples_in()) : 0.0;
    };
    state.counters["machine1_tuples"] = tuples_in("b");
    state.counters["machine2_tuples"] = tuples_in("b/copy");
  }
}
BENCHMARK(BM_SplitRemapBalance)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
