// Microbenchmark: the wire format every cross-node message pays
// (the "more plumbing for distribution and serialization" substrate).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tuple/serde.h"

namespace aurora {
namespace bench {
namespace {

std::vector<Tuple> MakeBatch(size_t n) {
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> batch;
  for (size_t i = 0; i < n; ++i) {
    Tuple t = MakeTuple(schema, {Value(static_cast<int64_t>(i)),
                                 Value(static_cast<int64_t>(i % 17))});
    t.set_seq(i + 1);
    t.set_timestamp(SimTime::Micros(static_cast<int64_t>(i)));
    batch.push_back(std::move(t));
  }
  return batch;
}

void BM_SerializeBatch(benchmark::State& state) {
  auto batch = MakeBatch(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::vector<uint8_t> buf = SerializeTuples(batch);
    bytes = buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_DeserializeBatch(benchmark::State& state) {
  auto batch = MakeBatch(static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> buf = SerializeTuples(batch);
  SchemaPtr schema = SchemaAB();
  for (auto _ : state) {
    auto tuples = DeserializeTuples(buf, schema);
    AURORA_CHECK(tuples.ok());
    benchmark::DoNotOptimize(tuples->data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(buf.size()));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeserializeBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_PredicateEval(benchmark::State& state) {
  Predicate p = Predicate::And(
      Predicate::Compare("B", CompareOp::kGe, Value(3)),
      Predicate::Or(Predicate::Compare("A", CompareOp::kLt, Value(1000)),
                    Predicate::HashPartition("A", 4, 1)));
  auto batch = MakeBatch(1024);
  for (auto _ : state) {
    int matched = 0;
    for (const auto& t : batch) {
      matched += p.Eval(t) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PredicateEval);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
