// Durable tiered storage under load (paper §2.3 storage manager + §6.3
// recovery from disk): a two-node chain whose upstream node runs on a
// tiered store — arc queues spill real bytes under a tight memory budget,
// HA output logs are mirrored to the store, and a mid-run crash/restart
// recovers from the durable tiers instead of losing them.
//
// Claims measured:
//   - a budget-constrained run completes with spill/readback balanced
//     (unspill never exceeds spill) and the same delivery as the workload
//     allows — storage slows the run, it does not change results;
//   - crash recovery replays the halog: replayed tuples show up downstream
//     as suppressed duplicates, and fresh tuples keep flowing;
//   - the whole subsystem is deterministic: two runs with the same --seed
//     produce byte-identical storage (the MemStorageFs content digest is
//     exported into the obs artifact, which CI diffs across runs).
#include "bench/bench_util.h"
#include "fault/injector.h"
#include "storage/storage_fs.h"
#include "storage/tiered_store.h"

namespace aurora {
namespace bench {
namespace {

struct RunResult {
  double delivered = 0.0;
  double spill_tuples = 0.0;
  double unspill_tuples = 0.0;
  double halog_appends = 0.0;
  double halog_replayed = 0.0;
  double aof_appended_bytes = 0.0;
  double compactions = 0.0;
  double dup_dropped = 0.0;
};

// f@0 -> m@1 with durable storage under node 0. `budget_bytes` throttles
// node 0's queue memory (0 = unbounded, no spilling); with `crash` the
// injector kills node 0 mid-run and restarts it 300ms later, which runs
// the durable recovery path.
RunResult RunOnce(size_t budget_bytes, bool crash, uint64_t seed) {
  RunResult r;
  Cluster cluster(2);
  GlobalQuery q;
  AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
  AURORA_CHECK(q.AddBox("f", FilterSpec(Predicate::True())).ok());
  AURORA_CHECK(q.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                      {"B", Expr::FieldRef("B")}}))
                   .ok());
  AURORA_CHECK(q.AddOutput("out").ok());
  AURORA_CHECK(q.ConnectInputToBox("in", "f").ok());
  AURORA_CHECK(q.ConnectBoxes("f", 0, "m", 0).ok());
  AURORA_CHECK(q.ConnectBoxToOutput("m", 0, "out").ok());
  auto deployed = DeployQuery(cluster.system.get(), q, {{"f", 0}, {"m", 1}});
  AURORA_CHECK(deployed.ok());

  uint64_t delivered = 0;
  AURORA_CHECK(cluster.system
                   ->CollectOutput(1, "out",
                                   [&](const Tuple&, SimTime) { ++delivered; })
                   .ok());

  cluster.system->node(0).RetainOutputLogs(true);
  cluster.system->node(1).RetainOutputLogs(true);

  MemStorageFs fs;
  TieredStoreOptions sopts;
  sopts.mem_budget_bytes = 32 * 1024;
  sopts.aof_segment_bytes = 16 * 1024;
  sopts.sync_every_append = true;  // zero durability lag across the crash
  TieredStore store(&fs, sopts);
  AURORA_CHECK(store.Open().ok());
  cluster.system->node(0).AttachDurableStorage(&store);
  cluster.system->node(0).engine().storage_manager().set_budget(budget_bytes);

  // Arrivals outpace node 0's (slowed) drain rate so queues accumulate
  // against the budget instead of draining tuple-by-tuple.
  cluster.net->SetNodeSpeed(0, 0.05);
  const int kTuples = 3000;
  InjectAtRate(&cluster, 0, "in", kTuples, 1e6, /*mod=*/1'000'000);

  Injector* injector = nullptr;
  FaultPlan plan;
  InjectorOptions iopts;
  iopts.seed = seed;
  std::unique_ptr<Injector> injector_owned;
  if (crash) {
    plan.CrashAt(SimTime::Millis(700), 0).RestartAt(SimTime::Millis(1000), 0);
    injector_owned =
        std::make_unique<Injector>(cluster.system.get(), plan, iopts);
    injector = injector_owned.get();
    AURORA_CHECK(injector->Arm().ok());
  }

  cluster.sim.RunUntil(SimTime::Seconds(4));

  MetricsRegistry& reg = MetricsRegistry::Global();
  r.delivered = static_cast<double>(delivered);
  r.spill_tuples =
      static_cast<double>(reg.CounterValue("engine.storage.spill.tuples"));
  r.unspill_tuples =
      static_cast<double>(reg.CounterValue("engine.storage.unspill.tuples"));
  r.halog_appends =
      static_cast<double>(reg.CounterValue("storage.halog.appends"));
  r.halog_replayed =
      static_cast<double>(reg.CounterValue("storage.halog.replayed"));
  r.aof_appended_bytes =
      static_cast<double>(reg.CounterValue("storage.aof.appended_bytes"));
  r.compactions = static_cast<double>(reg.CounterValue("storage.compactions"));
  r.dup_dropped =
      static_cast<double>(cluster.system->node(1).duplicate_tuples_dropped());

  // Export the storage content digest into the obs artifact, split into
  // four 16-bit chunks so every chunk survives JSON float formatting
  // exactly: the CI determinism check diffs the dumped JSON between two
  // same-seed runs, so byte-identical storage is asserted offline, not
  // just in-process.
  uint64_t digest = fs.ContentDigest();
  for (int i = 0; i < 4; ++i) {
    reg.GetGauge("storage.bench.digest" + std::to_string(i))
        ->Set(static_cast<double>((digest >> (16 * i)) & 0xffff));
  }
  return r;
}

void BM_DurableStorage(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  const bool crash = state.range(1) != 0;
  const int samples = GlobalIters() > 0 ? GlobalIters() : 1;
  for (auto _ : state) {
    RunResult r;
    for (int s = 0; s < samples; ++s) {
      const uint64_t seed = GlobalSeed() + static_cast<uint64_t>(s);
      ResetObservability();
      r = RunOnce(budget, crash, seed);
      DumpMetricsSnapshot("storage_b" + std::to_string(state.range(0)) +
                          (crash ? "_crash" : "_clean") + "_seed" +
                          std::to_string(seed));
    }
    state.counters["delivered"] = r.delivered;
    state.counters["spill_tuples"] = r.spill_tuples;
    state.counters["unspill_tuples"] = r.unspill_tuples;
    state.counters["halog_appends"] = r.halog_appends;
    state.counters["halog_replayed"] = r.halog_replayed;
    state.counters["aof_appended_bytes"] = r.aof_appended_bytes;
    state.counters["compactions"] = r.compactions;
    state.counters["dup_dropped"] = r.dup_dropped;
  }
}
BENCHMARK(BM_DurableStorage)
    ->ArgNames({"budget_bytes", "crash"})
    // Spill pressure sweep, no faults: unbounded vs tight budgets.
    ->Args({0, 0})
    ->Args({8192, 0})
    ->Args({2048, 0})
    // Crash/restart on top of the tight budget: recovery from the store.
    ->Args({2048, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
