// The single-node per-tuple hot path (paper §2.3: a node must push tuples
// through box trains "as fast as the hardware allows"). Sweeps tuple width
// x string-vs-numeric payload x input fan-out over a filter -> map -> tumble
// chain replicated per fan-out branch, so every arc hop, ConnectionPoint
// record, expression/predicate evaluation, and group-by probe is on the
// measured path. Writes BENCH_hotpath.json with tuples/sec and ns/tuple per
// configuration — the artifact EXPERIMENTS.md before/after tables come from.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engine/aurora_engine.h"

namespace aurora {
namespace bench {
namespace {

struct HotPathRow {
  std::string name;
  int width = 0;
  bool strings = false;
  int fanout = 0;
  int batch = 1;
  int64_t tuples = 0;
  double seconds = 0;
  TupleThroughput throughput;
};

std::vector<HotPathRow>& Rows() {
  static std::vector<HotPathRow> rows;
  return rows;
}

/// Rows from the batch_size sweep, dumped separately so the original
/// BENCH_hotpath.json stays byte-comparable across commits.
std::vector<HotPathRow>& BatchedRows() {
  static std::vector<HotPathRow> rows;
  return rows;
}

/// Field 0 is the group key, field 1 the aggregated value; with a string
/// payload every other remaining field carries an owned string so deep
/// copies show up in the measurement.
SchemaPtr MakeWideSchema(int width, bool strings) {
  std::vector<Field> fields;
  fields.push_back(Field{"k", ValueType::kInt64});
  fields.push_back(Field{"v", ValueType::kInt64});
  for (int i = 2; i < width; ++i) {
    ValueType type = (strings && i % 2 == 0) ? ValueType::kString
                                             : ValueType::kInt64;
    fields.push_back(Field{"f" + std::to_string(i), type});
  }
  return Schema::Make(fields);
}

/// A small deterministic pool of input tuples; the bench pushes copies, so
/// the measured cost is the engine's per-tuple handling, not tuple building.
std::vector<Tuple> MakeTuplePool(const SchemaPtr& schema, int width,
                                 bool strings, uint64_t seed) {
  std::vector<Tuple> pool;
  uint64_t x = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int i = 0; i < 64; ++i) {
    std::vector<Value> values;
    values.push_back(Value(static_cast<int64_t>(i % 8)));
    values.push_back(Value(static_cast<int64_t>(i % 100)));
    for (int f = 2; f < width; ++f) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      if (strings && f % 2 == 0) {
        values.push_back(Value("payload-" + std::to_string(x % 100000) +
                               "-abcdefghijklmnopqrstuvwxyz"));
      } else {
        values.push_back(Value(static_cast<int64_t>(x % 1000)));
      }
    }
    pool.push_back(MakeTuple(schema, std::move(values)));
  }
  return pool;
}

/// input --(fan-out F)--> F x [filter(v >= 5) -> map(all fields, v+1) ->
/// tumble(cnt by k, every 16)] -> one output per branch.
EngineOptions BatchedEngineOptions(int batch) {
  EngineOptions opts;
  opts.batch_size = batch;
  return opts;
}

struct FanOutEngine {
  AuroraEngine engine;
  PortId in;
  uint64_t delivered = 0;

  FanOutEngine(const SchemaPtr& schema, int width, int fanout, int batch = 1)
      : engine(BatchedEngineOptions(batch)) {
    in = *engine.AddInput("in", schema);
    std::vector<std::pair<std::string, Expr>> projections;
    projections.emplace_back("k", Expr::FieldRef("k"));
    projections.emplace_back(
        "v", Expr::Arith(ArithOp::kAdd, Expr::FieldRef("v"),
                         Expr::Constant(Value(static_cast<int64_t>(1)))));
    for (int f = 2; f < width; ++f) {
      std::string name = "f" + std::to_string(f);
      projections.emplace_back(name, Expr::FieldRef(name));
    }
    for (int b = 0; b < fanout; ++b) {
      BoxId filter = *engine.AddBox(FilterSpec(
          Predicate::Compare("v", CompareOp::kGe,
                             Value(static_cast<int64_t>(5)))));
      BoxId map = *engine.AddBox(MapSpec(projections));
      OperatorSpec tumble = TumbleSpec("cnt", "v", {"k"});
      tumble.SetParam("emit", Value(std::string("every_n")));
      tumble.SetParam("n", Value(static_cast<int64_t>(16)));
      BoxId agg = *engine.AddBox(tumble);
      PortId out = *engine.AddOutput("out" + std::to_string(b));
      AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                                  Endpoint::BoxPort(filter, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(filter, 0),
                                  Endpoint::BoxPort(map, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(map, 0),
                                  Endpoint::BoxPort(agg, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(agg, 0),
                                  Endpoint::OutputPort(out)).ok());
      engine.SetOutputCallback(out,
                               [this](const Tuple&, SimTime) { ++delivered; });
    }
    AURORA_CHECK(engine.InitializeBoxes().ok());
  }
};

void RunHotPath(benchmark::State& state, int width, bool strings,
                int fanout, int batch = 1, bool batched_sweep = false) {
  SchemaPtr schema = MakeWideSchema(width, strings);
  std::vector<Tuple> pool =
      MakeTuplePool(schema, width, strings, GlobalSeed());
  const int tuples_per_iter = GlobalIters() == 1 ? 1'000 : 8'000;

  int64_t total_tuples = 0;
  double total_seconds = 0;
  uint64_t delivered = 0;
  for (auto _ : state) {
    ResetObservability();
    FanOutEngine fan(schema, width, fanout, batch);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < tuples_per_iter; ++i) {
      Tuple t = pool[static_cast<size_t>(i) % pool.size()];
      t.set_seq(static_cast<SeqNo>(i));
      benchmark::DoNotOptimize(
          fan.engine.PushInput(fan.in, std::move(t), SimTime()));
    }
    AURORA_CHECK(fan.engine.RunUntilQuiescent(SimTime()).ok());
    total_seconds += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    total_tuples += tuples_per_iter;
    delivered = fan.delivered;
  }

  HotPathRow row;
  row.width = width;
  row.strings = strings;
  row.fanout = fanout;
  row.batch = batch;
  row.name = "w" + std::to_string(width) + (strings ? "_str" : "_num") +
             "_fan" + std::to_string(fanout);
  if (batched_sweep) row.name += "_b" + std::to_string(batch);
  row.tuples = total_tuples;
  row.seconds = total_seconds;
  row.throughput = ReportTupleThroughput(state, total_tuples, total_seconds);
  (batched_sweep ? BatchedRows() : Rows()).push_back(row);

  // Untimed attribution pass with bounded tracing: the obs dump carries
  // latency.attr.* stage histograms for aurora_inspect without the trace
  // branch tax showing up in the measured numbers above. The 4096-span ring
  // is far smaller than the span volume, so this also exercises eviction
  // (attribution stays exact; see obs/trace.h).
  ResetObservability();
  Tracer& tracer = Tracer::Global();
  const bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);
  tracer.set_capacity(4096);
  {
    FanOutEngine fan(schema, width, fanout, batch);
    for (int i = 0; i < tuples_per_iter; ++i) {
      Tuple t = pool[static_cast<size_t>(i) % pool.size()];
      t.set_seq(static_cast<SeqNo>(i));
      (void)fan.engine.PushInput(fan.in, std::move(t), SimTime());
    }
    AURORA_CHECK(fan.engine.RunUntilQuiescent(SimTime()).ok());
  }
  tracer.set_enabled(was_enabled);

  state.counters["delivered"] = static_cast<double>(delivered);
  DumpMetricsSnapshot("hotpath_" + row.name);
}

void BM_HotPath(benchmark::State& state) {
  RunHotPath(state, static_cast<int>(state.range(0)),
             state.range(1) != 0, static_cast<int>(state.range(2)));
}
BENCHMARK(BM_HotPath)
    ->ArgNames({"width", "str", "fanout"})
    ->Args({4, 0, 1})
    ->Args({4, 0, 4})
    ->Args({4, 0, 16})
    ->Args({4, 1, 1})
    ->Args({4, 1, 4})
    ->Args({4, 1, 16})
    ->Args({16, 0, 1})
    ->Args({16, 0, 4})
    ->Args({16, 0, 16})
    ->Args({16, 1, 1})
    ->Args({16, 1, 4})
    ->Args({16, 1, 16});

// The batch_size axis: the same chain with the engine's ProcessBatch path
// at 1 (scalar baseline), 8, and 64 tuples per activation. Narrow numeric
// configs are where batching pays most (vectorized predicate/expr
// evaluation plus chunked arc enqueues); the string configs measure the
// StrColumn + identity-projection path, which keeps wide string schemas on
// the batched path instead of falling back to scalar evaluation.
void BM_HotPathBatched(benchmark::State& state) {
  RunHotPath(state, static_cast<int>(state.range(0)), state.range(1) != 0,
             static_cast<int>(state.range(2)),
             static_cast<int>(state.range(3)), /*batched_sweep=*/true);
}
BENCHMARK(BM_HotPathBatched)
    ->ArgNames({"width", "str", "fanout", "batch"})
    ->Args({4, 0, 1, 1})
    ->Args({4, 0, 1, 8})
    ->Args({4, 0, 1, 64})
    ->Args({4, 0, 4, 1})
    ->Args({4, 0, 4, 8})
    ->Args({4, 0, 4, 64})
    ->Args({16, 0, 1, 1})
    ->Args({16, 0, 1, 8})
    ->Args({16, 0, 1, 64})
    ->Args({16, 1, 1, 1})
    ->Args({16, 1, 1, 8})
    ->Args({16, 1, 1, 64})
    ->Args({16, 1, 4, 1})
    ->Args({16, 1, 4, 8})
    ->Args({16, 1, 4, 64});

/// Google Benchmark re-enters each bench function for iteration-count
/// estimation; keep only the final (measured) run per configuration.
std::vector<HotPathRow> DedupRows(const std::vector<HotPathRow>& all) {
  std::vector<HotPathRow> rows;
  for (const HotPathRow& r : all) {
    bool replaced = false;
    for (HotPathRow& kept : rows) {
      if (kept.name == r.name) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) rows.push_back(r);
  }
  return rows;
}

void DumpRowsJson(const char* path, const char* bench_name,
                  const std::vector<HotPathRow>& rows, bool with_batch) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"" << bench_name << "\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const HotPathRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"width\": " << r.width
        << ", \"strings\": " << (r.strings ? "true" : "false")
        << ", \"fanout\": " << r.fanout;
    if (with_batch) out << ", \"batch\": " << r.batch;
    out << ", \"tuples\": " << r.tuples
        << ", \"tuples_per_sec\": " << r.throughput.tuples_per_sec
        << ", \"ns_per_tuple\": " << r.throughput.ns_per_tuple << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void DumpHotPathJson() {
  DumpRowsJson("BENCH_hotpath.json", "hot_path", DedupRows(Rows()),
               /*with_batch=*/false);
  DumpRowsJson("BENCH_hotpath_batched.json", "hot_path_batched",
               DedupRows(BatchedRows()), /*with_batch=*/true);
}

}  // namespace
}  // namespace bench
}  // namespace aurora

int main(int argc, char** argv) {
  // CI convenience: `--iters small` / `--iters full` alias 1 / 0.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "small") argv[i] = const_cast<char*>("1");
    if (arg == "full") argv[i] = const_cast<char*>("0");
    if (arg == "--iters=small") argv[i] = const_cast<char*>("--iters=1");
    if (arg == "--iters=full") argv[i] = const_cast<char*>("--iters=0");
  }
  ::aurora::bench::ParseBenchFlags(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::aurora::bench::DumpHotPathJson();
  ::benchmark::Shutdown();
  return 0;
}
