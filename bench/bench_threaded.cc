// Threaded-runtime scaling: the same wide query network (one input fanned
// out to independent filter -> map -> tumble chains) pushed through the
// ThreadedEngine at 1/2/4 workers. Chains are independent components, so
// the LPT partitioner spreads them across workers and throughput should
// scale until the machine runs out of cores (on a single-core container
// every worker count serializes onto one CPU — read the `cores` field of
// BENCH_threaded.json before comparing rows). Writes BENCH_threaded.json
// with tuples/sec, ns/tuple, and the speedup over the 1-worker row.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/threaded_engine.h"

namespace aurora {
namespace bench {
namespace {

struct ThreadedRow {
  std::string name;
  int workers = 0;
  int chains = 0;
  int64_t tuples = 0;
  uint64_t steals = 0;
  uint64_t ring_full = 0;
  TupleThroughput throughput;
};

std::vector<ThreadedRow>& Rows() {
  static std::vector<ThreadedRow> rows;
  return rows;
}

/// input --(fan-out)--> chains x [filter(B >= 3) -> map(+S) ->
/// tumble(sum B by A, every 16)] -> one output per chain.
struct WideEngine {
  ThreadedEngine engine;
  PortId in;
  std::vector<uint64_t> delivered;

  WideEngine(int workers, int chains)
      : engine([&] {
          ThreadedEngineOptions opts;
          opts.workers = workers;
          opts.train_size = 64;
          return opts;
        }()),
        in(-1),
        delivered(static_cast<size_t>(chains), 0) {
    in = *engine.AddInput("in", SchemaAB());
    for (int c = 0; c < chains; ++c) {
      PortId out = *engine.AddOutput("out" + std::to_string(c));
      BoxId f = *engine.AddBox(
          FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(3))));
      BoxId m = *engine.AddBox(
          MapSpec({{"A", Expr::FieldRef("A")},
                   {"B", Expr::FieldRef("B")},
                   {"S", Expr::Arith(ArithOp::kAdd, Expr::FieldRef("A"),
                                     Expr::FieldRef("B"))}}));
      OperatorSpec tumble = TumbleSpec("sum", "B", {"A"});
      tumble.SetParam("emit", Value("every_n"));
      tumble.SetParam("n", Value(int64_t{16}));
      BoxId g = *engine.AddBox(tumble);
      AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                                  Endpoint::BoxPort(f, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f, 0),
                                  Endpoint::BoxPort(m, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(m, 0),
                                  Endpoint::BoxPort(g, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(g, 0),
                                  Endpoint::OutputPort(out)).ok());
      engine.SetOutputCallback(out, [this, c](const Tuple&, SimTime) {
        delivered[static_cast<size_t>(c)]++;
      });
    }
    AURORA_CHECK(engine.InitializeBoxes().ok());
  }
};

void BM_ThreadedWide(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int chains = static_cast<int>(state.range(1));
  const int64_t tuples = GlobalIters() == 1 ? 20000 : 200000;
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(
        MakeTuple(schema, {Value(int64_t{i % 8}), Value(int64_t{i % 10})}));
  }
  double seconds = 0;
  uint64_t steals = 0, ring_full = 0;
  for (auto _ : state) {
    ResetObservability();
    WideEngine wide(workers, chains);
    AURORA_CHECK(wide.engine.Start().ok());
    auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < tuples; ++i) {
      Tuple t = pool[static_cast<size_t>(i % 64)];
      t.set_timestamp(SimTime::Micros(i + 1));
      AURORA_CHECK(wide.engine.PushInput(wide.in, std::move(t),
                                         SimTime()).ok());
    }
    wide.engine.WaitQuiescent();
    seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    steals = wide.engine.steals();
    ring_full = wide.engine.ring_full_events();
    AURORA_CHECK(wide.engine.Stop().ok());
  }
  int64_t total = tuples * static_cast<int64_t>(state.iterations());
  TupleThroughput t = ReportTupleThroughput(state, total, seconds);
  state.counters["steals"] = static_cast<double>(steals);
  ThreadedRow row;
  row.name = "wide/w" + std::to_string(workers) + "/c" +
             std::to_string(chains);
  row.workers = workers;
  row.chains = chains;
  row.tuples = total;
  row.steals = steals;
  row.ring_full = ring_full;
  row.throughput = t;
  Rows().push_back(row);
}

BENCHMARK(BM_ThreadedWide)
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void DumpThreadedJson() {
  double base = 0;
  for (const ThreadedRow& r : Rows()) {
    if (r.workers == 1) base = r.throughput.tuples_per_sec;
  }
  std::ofstream out("BENCH_threaded.json");
  out << "{\n  \"bench\": \"threaded\",\n  \"cores\": "
      << std::thread::hardware_concurrency() << ",\n  \"rows\": [\n";
  const std::vector<ThreadedRow>& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThreadedRow& r = rows[i];
    double speedup =
        base > 0 ? r.throughput.tuples_per_sec / base : 0;
    out << "    {\"name\": \"" << r.name << "\", \"workers\": " << r.workers
        << ", \"chains\": " << r.chains << ", \"tuples\": " << r.tuples
        << ", \"tuples_per_sec\": " << r.throughput.tuples_per_sec
        << ", \"ns_per_tuple\": " << r.throughput.ns_per_tuple
        << ", \"steals\": " << r.steals << ", \"ring_full\": " << r.ring_full
        << ", \"speedup_vs_1w\": " << speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace bench
}  // namespace aurora

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--iters=small") argv[i] = const_cast<char*>("--iters=1");
    if (arg == "--iters=full") argv[i] = const_cast<char*>("--iters=0");
  }
  ::aurora::bench::ParseBenchFlags(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::aurora::bench::DumpThreadedJson();
  ::benchmark::Shutdown();
  return 0;
}
