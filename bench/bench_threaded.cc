// Threaded-runtime scaling: the same wide query network (one input fanned
// out to independent filter -> map -> tumble chains) pushed through the
// ThreadedEngine at 1/2/4 workers. Chains are independent components, so
// the LPT partitioner spreads them across workers and throughput should
// scale until the machine runs out of cores (on a single-core container
// every worker count serializes onto one CPU — read the `cores` field of
// BENCH_threaded.json before comparing rows). Writes BENCH_threaded.json
// with tuples/sec, ns/tuple, and the speedup over the 1-worker row.
//
// The batched-emission sweep (BM_ThreadedBatched) runs the same network
// across workers x batch_size x train_size (the activation/emission chunk):
// batch_size > 1 routes single-input boxes through ProcessBatch with
// chunked downstream emission (ring multi-push), train_size bounds how many
// tuples one activation consumes before re-queuing. Writes
// BENCH_threaded_batched.json with the speedup of each batched row over the
// scalar (batch=1) row at the same workers/chunk point.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/threaded_engine.h"

namespace aurora {
namespace bench {
namespace {

struct ThreadedRow {
  std::string name;
  int workers = 0;
  int chains = 0;
  int64_t tuples = 0;
  uint64_t steals = 0;
  uint64_t ring_full = 0;
  TupleThroughput throughput;
};

std::vector<ThreadedRow>& Rows() {
  static std::vector<ThreadedRow> rows;
  return rows;
}

/// input --(fan-out)--> chains x [filter(B >= 3) -> map(+S) ->
/// tumble(sum B by A, every 16)] -> one output per chain.
struct WideEngine {
  ThreadedEngine engine;
  PortId in;
  std::vector<uint64_t> delivered;

  WideEngine(int workers, int chains, int batch_size = 1, int train_size = 64)
      : engine([&] {
          ThreadedEngineOptions opts;
          opts.workers = workers;
          opts.train_size = train_size;
          opts.batch_size = batch_size;
          return opts;
        }()),
        in(-1),
        delivered(static_cast<size_t>(chains), 0) {
    in = *engine.AddInput("in", SchemaAB());
    for (int c = 0; c < chains; ++c) {
      PortId out = *engine.AddOutput("out" + std::to_string(c));
      BoxId f = *engine.AddBox(
          FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(3))));
      BoxId m = *engine.AddBox(
          MapSpec({{"A", Expr::FieldRef("A")},
                   {"B", Expr::FieldRef("B")},
                   {"S", Expr::Arith(ArithOp::kAdd, Expr::FieldRef("A"),
                                     Expr::FieldRef("B"))}}));
      OperatorSpec tumble = TumbleSpec("sum", "B", {"A"});
      tumble.SetParam("emit", Value("every_n"));
      tumble.SetParam("n", Value(int64_t{16}));
      BoxId g = *engine.AddBox(tumble);
      AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                                  Endpoint::BoxPort(f, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f, 0),
                                  Endpoint::BoxPort(m, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(m, 0),
                                  Endpoint::BoxPort(g, 0)).ok());
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(g, 0),
                                  Endpoint::OutputPort(out)).ok());
      engine.SetOutputCallback(out, [this, c](const Tuple&, SimTime) {
        delivered[static_cast<size_t>(c)]++;
      });
    }
    AURORA_CHECK(engine.InitializeBoxes().ok());
  }
};

void BM_ThreadedWide(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int chains = static_cast<int>(state.range(1));
  const int64_t tuples = GlobalIters() == 1 ? 20000 : 200000;
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(
        MakeTuple(schema, {Value(int64_t{i % 8}), Value(int64_t{i % 10})}));
  }
  double seconds = 0;
  uint64_t steals = 0, ring_full = 0;
  for (auto _ : state) {
    ResetObservability();
    WideEngine wide(workers, chains);
    AURORA_CHECK(wide.engine.Start().ok());
    auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < tuples; ++i) {
      Tuple t = pool[static_cast<size_t>(i % 64)];
      t.set_timestamp(SimTime::Micros(i + 1));
      AURORA_CHECK(wide.engine.PushInput(wide.in, std::move(t),
                                         SimTime()).ok());
    }
    wide.engine.WaitQuiescent();
    seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    steals = wide.engine.steals();
    ring_full = wide.engine.ring_full_events();
    AURORA_CHECK(wide.engine.Stop().ok());
  }
  int64_t total = tuples * static_cast<int64_t>(state.iterations());
  TupleThroughput t = ReportTupleThroughput(state, total, seconds);
  state.counters["steals"] = static_cast<double>(steals);
  ThreadedRow row;
  row.name = "wide/w" + std::to_string(workers) + "/c" +
             std::to_string(chains);
  row.workers = workers;
  row.chains = chains;
  row.tuples = total;
  row.steals = steals;
  row.ring_full = ring_full;
  row.throughput = t;
  Rows().push_back(row);
}

BENCHMARK(BM_ThreadedWide)
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

struct ThreadedBatchedRow {
  std::string name;
  int workers = 0;
  int batch = 0;
  int chunk = 0;  // ThreadedEngineOptions::train_size
  int64_t tuples = 0;
  uint64_t steals = 0;
  uint64_t ring_full = 0;
  TupleThroughput throughput;
};

std::vector<ThreadedBatchedRow>& BatchedRows() {
  static std::vector<ThreadedBatchedRow> rows;
  return rows;
}

// workers x batch x chunk over the same 8-chain wide network. Also dumps an
// obs_threaded_<name>.json metrics snapshot per config so aurora_inspect
// --check can reconcile the engine.threaded.batch.* chunk accounting against
// per-engine tuple totals offline.
void BM_ThreadedBatched(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  const int chunk = static_cast<int>(state.range(2));
  const int chains = 8;
  const int64_t tuples = GlobalIters() == 1 ? 20000 : 200000;
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(
        MakeTuple(schema, {Value(int64_t{i % 8}), Value(int64_t{i % 10})}));
  }
  std::string name = "batched/w" + std::to_string(workers) + "/b" +
                     std::to_string(batch) + "/c" + std::to_string(chunk);
  double seconds = 0;
  uint64_t steals = 0, ring_full = 0;
  for (auto _ : state) {
    ResetObservability();
    WideEngine wide(workers, chains, batch, chunk);
    AURORA_CHECK(wide.engine.Start().ok());
    auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < tuples; ++i) {
      Tuple t = pool[static_cast<size_t>(i % 64)];
      t.set_timestamp(SimTime::Micros(i + 1));
      AURORA_CHECK(wide.engine.PushInput(wide.in, std::move(t),
                                         SimTime()).ok());
    }
    wide.engine.WaitQuiescent();
    seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    steals = wide.engine.steals();
    ring_full = wide.engine.ring_full_events();
    AURORA_CHECK(wide.engine.Stop().ok());
    DumpMetricsSnapshot("threaded_" + name);
  }
  int64_t total = tuples * static_cast<int64_t>(state.iterations());
  TupleThroughput t = ReportTupleThroughput(state, total, seconds);
  state.counters["steals"] = static_cast<double>(steals);
  ThreadedBatchedRow row;
  row.name = name;
  row.workers = workers;
  row.batch = batch;
  row.chunk = chunk;
  row.tuples = total;
  row.steals = steals;
  row.ring_full = ring_full;
  row.throughput = t;
  BatchedRows().push_back(row);
}

BENCHMARK(BM_ThreadedBatched)
    ->ArgNames({"workers", "batch", "chunk"})
    ->Args({1, 1, 64})
    ->Args({1, 8, 64})
    ->Args({1, 64, 64})
    ->Args({4, 1, 64})
    ->Args({4, 8, 64})
    ->Args({4, 64, 64})
    ->Args({4, 1, 16})
    ->Args({4, 64, 16})
    ->Args({4, 1, 256})
    ->Args({4, 64, 256})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void DumpThreadedBatchedJson() {
  // Scalar baseline per (workers, chunk) point, so each batched row reports
  // the speedup attributable to batching alone.
  const std::vector<ThreadedBatchedRow>& rows = BatchedRows();
  auto scalar_base = [&rows](int workers, int chunk) {
    for (const ThreadedBatchedRow& r : rows) {
      if (r.batch == 1 && r.workers == workers && r.chunk == chunk) {
        return r.throughput.tuples_per_sec;
      }
    }
    return 0.0;
  };
  std::ofstream out("BENCH_threaded_batched.json");
  out << "{\n  \"bench\": \"threaded_batched\",\n  \"cores\": "
      << std::thread::hardware_concurrency() << ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThreadedBatchedRow& r = rows[i];
    double base = scalar_base(r.workers, r.chunk);
    double speedup = base > 0 ? r.throughput.tuples_per_sec / base : 0;
    out << "    {\"name\": \"" << r.name << "\", \"workers\": " << r.workers
        << ", \"batch\": " << r.batch << ", \"chunk\": " << r.chunk
        << ", \"tuples\": " << r.tuples
        << ", \"tuples_per_sec\": " << r.throughput.tuples_per_sec
        << ", \"ns_per_tuple\": " << r.throughput.ns_per_tuple
        << ", \"steals\": " << r.steals << ", \"ring_full\": " << r.ring_full
        << ", \"speedup_vs_scalar\": " << speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void DumpThreadedJson() {
  double base = 0;
  for (const ThreadedRow& r : Rows()) {
    if (r.workers == 1) base = r.throughput.tuples_per_sec;
  }
  std::ofstream out("BENCH_threaded.json");
  out << "{\n  \"bench\": \"threaded\",\n  \"cores\": "
      << std::thread::hardware_concurrency() << ",\n  \"rows\": [\n";
  const std::vector<ThreadedRow>& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThreadedRow& r = rows[i];
    double speedup =
        base > 0 ? r.throughput.tuples_per_sec / base : 0;
    out << "    {\"name\": \"" << r.name << "\", \"workers\": " << r.workers
        << ", \"chains\": " << r.chains << ", \"tuples\": " << r.tuples
        << ", \"tuples_per_sec\": " << r.throughput.tuples_per_sec
        << ", \"ns_per_tuple\": " << r.throughput.ns_per_tuple
        << ", \"steals\": " << r.steals << ", \"ring_full\": " << r.ring_full
        << ", \"speedup_vs_1w\": " << speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace bench
}  // namespace aurora

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--iters=small") argv[i] = const_cast<char*>("--iters=1");
    if (arg == "--iters=full") argv[i] = const_cast<char*>("--iters=0");
  }
  ::aurora::bench::ParseBenchFlags(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::aurora::bench::DumpThreadedJson();
  ::aurora::bench::DumpThreadedBatchedJson();
  ::benchmark::Shutdown();
  return 0;
}
