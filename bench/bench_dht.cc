// Experiment C2 (paper §4.1): the DHT-backed inter-participant catalog
// "efficiently locates nodes for any key-value binding, and scales with
// the number of nodes and the number of objects".
//
// Reported shapes: Chord lookup hops grow as O(log N); virtual nodes
// flatten the per-node storage distribution; lookup cost per entry is
// independent of the number of stored objects.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "dht/dht_catalog.h"

namespace aurora {
namespace bench {
namespace {

void BM_LookupHopsVsNodes(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConsistentHashRing ring(1);
  for (int i = 0; i < n; ++i) {
    AURORA_CHECK(ring.AddNode(i, "node" + std::to_string(i)).ok());
  }
  Rng rng(7);
  double total_hops = 0;
  int lookups = 0;
  for (auto _ : state) {
    std::string key = "participant/stream" + std::to_string(rng.Next() % 100000);
    NodeId from = static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
    auto result = ring.Lookup(from, key);
    AURORA_CHECK(result.ok());
    benchmark::DoNotOptimize(result->owner);
    total_hops += result->hops;
    ++lookups;
  }
  state.counters["nodes"] = n;
  state.counters["avg_hops"] = total_hops / lookups;
  state.counters["log2_nodes"] = std::log2(static_cast<double>(n));
}
BENCHMARK(BM_LookupHopsVsNodes)
    ->ArgName("nodes")
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);

void BM_StorageEvennessVsVnodes(benchmark::State& state) {
  const int vnodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DhtCatalog catalog(vnodes, 1);
    const int n = 16;
    for (int i = 0; i < n; ++i) {
      AURORA_CHECK(catalog.AddNode(i, "node" + std::to_string(i)).ok());
    }
    for (int k = 0; k < 2000; ++k) {
      AURORA_CHECK(catalog
                       .Put(QualifiedName{"p", "entity" + std::to_string(k)},
                            DhtEntry{"stream", {}, {}})
                       .ok());
    }
    double mean = 2000.0 / n;
    double var = 0, max_load = 0;
    for (int i = 0; i < n; ++i) {
      double load = static_cast<double>(catalog.StoredOn(i));
      var += (load - mean) * (load - mean);
      max_load = std::max(max_load, load);
    }
    state.counters["vnodes"] = vnodes;
    state.counters["stddev_over_mean"] = std::sqrt(var / n) / mean;
    state.counters["max_over_mean"] = max_load / mean;
  }
}
BENCHMARK(BM_StorageEvennessVsVnodes)
    ->ArgName("vnodes")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_GetThroughputVsEntries(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  DhtCatalog catalog(8, 2);
  for (int i = 0; i < 32; ++i) {
    AURORA_CHECK(catalog.AddNode(i, "node" + std::to_string(i)).ok());
  }
  for (int k = 0; k < entries; ++k) {
    AURORA_CHECK(catalog
                     .Put(QualifiedName{"p", "e" + std::to_string(k)},
                          DhtEntry{"stream", {1, 2, 3}, {0}})
                     .ok());
  }
  Rng rng(11);
  for (auto _ : state) {
    int k = static_cast<int>(rng.Uniform(static_cast<uint64_t>(entries)));
    auto got = catalog.Get(static_cast<NodeId>(rng.Uniform(32)),
                           QualifiedName{"p", "e" + std::to_string(k)});
    AURORA_CHECK(got.ok());
    benchmark::DoNotOptimize(got->entry.kind);
  }
  state.counters["entries"] = entries;
}
BENCHMARK(BM_GetThroughputVsEntries)
    ->ArgName("entries")
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

}  // namespace
}  // namespace bench
}  // namespace aurora

BENCHMARK_MAIN();
