// Experiment C7 (paper §3.2, §7.2): the agoric economy "anneals to a state
// where the economy is stable" and movement contracts implement
// inter-participant load balancing.
//
// Four participants, all query load initially concentrated at one. With
// movement contracts + oracles, boxes migrate to underloaded participants,
// the utilization spread collapses, hosts profit from processing fees, and
// currency is conserved. Without them the skew persists.
#include "bench/bench_util.h"
#include "medusa/medusa_system.h"

namespace aurora {
namespace bench {
namespace {

void BM_EconomyAnneals(benchmark::State& state) {
  const bool movement_contracts = state.range(0) != 0;
  for (auto _ : state) {
    Cluster cluster(4);
    MedusaSystem medusa(cluster.system.get(), MedusaOptions{});
    std::vector<Participant*> participants;
    for (int p = 0; p < 4; ++p) {
      auto added = medusa.AddParticipant("p" + std::to_string(p),
                                         {static_cast<NodeId>(p)}, 1000.0,
                                         /*cost_per_cpu_us=*/0.0001);
      AURORA_CHECK(added.ok());
      participants.push_back(*added);
    }

    GlobalQuery q;
    std::map<std::string, NodeId> placement;
    const int kQueries = 6;
    for (int c = 0; c < kQueries; ++c) {
      std::string idx = std::to_string(c);
      AURORA_CHECK(q.AddInput("in" + idx, SchemaAB()).ok());
      OperatorSpec heavy = FilterSpec(Predicate::True());
      heavy.SetParam("cost_us", Value(400.0));
      AURORA_CHECK(q.AddBox("f" + idx, heavy).ok());
      AURORA_CHECK(q.AddOutput("out" + idx).ok());
      AURORA_CHECK(q.ConnectInputToBox("in" + idx, "f" + idx).ok());
      AURORA_CHECK(q.ConnectBoxToOutput("f" + idx, 0, "out" + idx).ok());
      placement["f" + idx] = 0;  // participant p0 owns all the load
    }
    auto deployed = DeployQuery(cluster.system.get(), q, placement);
    AURORA_CHECK(deployed.ok());
    if (movement_contracts) {
      // p0 pre-agrees movement contracts with each peer for each query.
      for (int c = 0; c < kQueries; ++c) {
        NodeId peer = static_cast<NodeId>(1 + c % 3);
        AURORA_CHECK(
            medusa
                .EstablishMovementContract(
                    "p0", 0, "p" + std::to_string(peer), peer,
                    "f" + std::to_string(c), &*deployed,
                    /*price_a=*/0.1, /*price_b=*/0.1)
                .ok());
      }
    }
    medusa.Start();

    for (int c = 0; c < kQueries; ++c) {
      InjectAtRate(&cluster, 0, "in" + std::to_string(c), 3000, 1000.0,
                   /*mod=*/1000);
    }
    cluster.sim.RunUntil(SimTime::Seconds(4));

    double max_util = 0, min_util = 1, balance_sum = 0;
    double min_profit = 1e18;
    for (int p = 0; p < 4; ++p) {
      double u = cluster.system->node(p).utilization();
      max_util = std::max(max_util, u);
      min_util = std::min(min_util, u);
      balance_sum += participants[p]->balance();
      if (p > 0) min_profit = std::min(min_profit, participants[p]->profit());
    }
    state.counters["switches"] = medusa.total_switches();
    state.counters["util_spread"] = max_util - min_util;
    state.counters["owner_p0_profit"] = participants[0]->profit();
    state.counters["min_host_profit"] = min_profit;
    state.counters["currency_conserved"] =
        (std::abs(balance_sum - 4000.0) < 1e-6) ? 1.0 : 0.0;
    state.counters["money_moved"] = medusa.total_transferred();
  }
}
BENCHMARK(BM_EconomyAnneals)
    ->ArgName("movement_contracts")
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
