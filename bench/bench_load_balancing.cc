// Experiments F7/C6 (paper §5): dynamic load balancing with the
// decentralized load-share daemon.
//
// Four chains of expensive boxes all start on node 0 of a 4-node cluster;
// a bursty workload overloads it. With the daemon off the load stays
// skewed; with it on, boxes slide to idle peers and the utilization
// spread (max-min) collapses while delivered throughput rises.
#include "bench/bench_util.h"
#include "distributed/load_daemon.h"

namespace aurora {
namespace bench {
namespace {

void BM_DaemonBalancesSkew(benchmark::State& state) {
  const bool daemon_on = state.range(0) != 0;
  const auto action = static_cast<RepartitionAction>(state.range(1));
  for (auto _ : state) {
    ResetObservability();
    MetricsSnapshot before = CaptureSnapshot();
    Cluster cluster(4);
    GlobalQuery q;
    std::map<std::string, NodeId> placement;
    const int kChains = 6;
    for (int c = 0; c < kChains; ++c) {
      std::string idx = std::to_string(c);
      AURORA_CHECK(q.AddInput("in" + idx, SchemaAB()).ok());
      OperatorSpec heavy = FilterSpec(Predicate::True());
      heavy.SetParam("cost_us", Value(400.0));
      AURORA_CHECK(q.AddBox("f" + idx, heavy).ok());
      AURORA_CHECK(q.AddOutput("out" + idx).ok());
      AURORA_CHECK(q.ConnectInputToBox("in" + idx, "f" + idx).ok());
      AURORA_CHECK(q.ConnectBoxToOutput("f" + idx, 0, "out" + idx).ok());
      placement["f" + idx] = 0;  // everything on one node
    }
    auto deployed = DeployQuery(cluster.system.get(), q, placement);
    AURORA_CHECK(deployed.ok());
    uint64_t delivered = 0;
    for (int c = 0; c < kChains; ++c) {
      // Outputs may move with their box after a slide; count at any node.
      for (int nd = 0; nd < 4; ++nd) {
        (void)cluster.system->CollectOutput(
            nd, "out" + std::to_string(c),
            [&](const Tuple&, SimTime) { ++delivered; });
      }
    }
    LoadDaemonOptions opts;
    opts.action = action;
    opts.split_field = "A";
    LoadShareDaemon daemon(cluster.system.get(), &*deployed, opts);
    if (daemon_on) daemon.Start();

    // ~6 chains * 1000/s * 400us = 2.4x one node's capacity.
    for (int c = 0; c < kChains; ++c) {
      InjectAtRate(&cluster, 0, "in" + std::to_string(c), 3000, 1000.0,
                   /*mod=*/1000);
    }
    cluster.sim.RunUntil(SimTime::Seconds(4));

    double max_util = 0, min_util = 1;
    for (int nd = 0; nd < 4; ++nd) {
      double u = cluster.system->node(nd).utilization();
      max_util = std::max(max_util, u);
      min_util = std::min(min_util, u);
    }
    state.counters["delivered"] = static_cast<double>(delivered);
    state.counters["slides"] = static_cast<double>(daemon.slides());
    state.counters["splits"] = static_cast<double>(daemon.splits());
    state.counters["util_spread"] = max_util - min_util;
    state.counters["backlog_node0"] = static_cast<double>(
        cluster.system->node(0).engine().TotalQueuedTuples());
    state.counters["lb_rounds"] = CounterDeltaSince(before, "lb.rounds");
    state.counters["held_reinjected"] =
        CounterDeltaSince(before, "lb.held_reinjected");
    DumpMetricsSnapshot("load_balancing_d" + std::to_string(state.range(0)) +
                        "_a" + std::to_string(state.range(1)));
  }
}
BENCHMARK(BM_DaemonBalancesSkew)
    ->ArgNames({"daemon", "action"})  // action: 0=slide, 1=split, 2=either
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
