#ifndef AURORA_BENCH_BENCH_UTIL_H_
#define AURORA_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "distributed/deployment.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/snapshot_diff.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace aurora {
namespace bench {

/// Schema (A:int64, B:int64) shared by the benchmark workloads.
inline SchemaPtr SchemaAB() {
  return Schema::Make({Field{"A", ValueType::kInt64},
                       Field{"B", ValueType::kInt64}});
}

/// A simulated Aurora* cluster with `n` identical nodes in a full mesh.
struct Cluster {
  Simulation sim;
  std::unique_ptr<OverlayNetwork> net;
  std::unique_ptr<AuroraStarSystem> system;

  explicit Cluster(int n, LinkOptions link = LinkOptions{},
                   StarOptions star = StarOptions{}) {
    net = std::make_unique<OverlayNetwork>(&sim);
    system = std::make_unique<AuroraStarSystem>(&sim, net.get(), star);
    for (int i = 0; i < n; ++i) {
      auto id = system->AddNode(NodeOptions{"n" + std::to_string(i), 1.0, {}});
      AURORA_CHECK(id.ok());
    }
    net->FullMesh(link);
  }
};

/// Stamps and injects `count` tuples (A=i, B=i%`mod`) at a fixed rate.
inline void InjectAtRate(Cluster* cluster, NodeId node,
                         const std::string& input, int count,
                         double rate_per_sec, int mod = 10) {
  SchemaPtr schema = SchemaAB();
  for (int i = 0; i < count; ++i) {
    SimTime when =
        SimTime::Micros(static_cast<int64_t>(i * 1e6 / rate_per_sec));
    cluster->sim.ScheduleAt(when, [cluster, node, input, schema, i, mod]() {
      Tuple t = MakeTuple(schema, {Value(i), Value(i % mod)});
      (void)cluster->system->node(node).Inject(input, t);
    });
  }
}

/// Zeroes the metrics registry and trace buffer and re-arms the flight
/// recorder's once-per-event latches. Call at the start of each benchmark
/// iteration so a run's snapshot covers that run only (cached metric
/// pointers stay valid — Reset keeps registrations).
inline void ResetObservability() {
  MetricsRegistry::Global().Reset();
  Tracer::Global().Clear();
  FlightRecorder::Global().Rearm();
}

/// Registry snapshot for delta reporting (see obs/snapshot_diff.h) — the
/// same struct `aurora_inspect --diff` uses, so a bench's reported delta and
/// an offline diff of its obs dumps agree by construction.
inline MetricsSnapshot CaptureSnapshot() {
  return MetricsSnapshot::FromRegistry(MetricsRegistry::Global());
}

/// Counter movement between a captured snapshot and the live registry.
/// Replaces ad hoc FindCounter(...)->value() subtraction in the benches.
inline double CounterDeltaSince(const MetricsSnapshot& before,
                                const std::string& name) {
  return SnapshotDiff::Between(before, CaptureSnapshot()).CounterDelta(name);
}

/// Writes the registry's JSON snapshot to `obs_<label>.json` in the working
/// directory — the per-run artifact EXPERIMENTS.md numbers come from.
/// Filename-hostile characters in the label (benchmark names contain
/// '/' and ':') are mapped to '_'.
inline void DumpMetricsSnapshot(const std::string& label) {
  std::string file = label;
  for (char& c : file) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '.') {
      c = '_';
    }
  }
  std::ofstream out("obs_" + file + ".json");
  out << MetricsRegistry::Global().SnapshotJson() << "\n";
}

/// Normalized per-tuple throughput for the perf trajectory (BENCH_*.json,
/// EXPERIMENTS.md): tuples/sec and ns/tuple over a wall-clock interval the
/// bench measured itself.
struct TupleThroughput {
  double tuples_per_sec = 0;
  double ns_per_tuple = 0;
};

inline TupleThroughput MeasureTupleThroughput(int64_t tuples, double seconds) {
  TupleThroughput t;
  if (tuples > 0 && seconds > 0) {
    t.tuples_per_sec = static_cast<double>(tuples) / seconds;
    t.ns_per_tuple = seconds * 1e9 / static_cast<double>(tuples);
  }
  return t;
}

/// Attaches tuples/sec and ns/tuple counters to a benchmark's report and
/// returns them so the bench can also dump the numbers to a JSON artifact.
inline TupleThroughput ReportTupleThroughput(benchmark::State& state,
                                             int64_t tuples, double seconds) {
  TupleThroughput t = MeasureTupleThroughput(tuples, seconds);
  state.counters["tuples_per_sec"] = t.tuples_per_sec;
  state.counters["ns_per_tuple"] = t.ns_per_tuple;
  state.SetItemsProcessed(tuples);
  return t;
}

/// Process-wide seed from the `--seed=N` flag (default 1). Benches thread
/// it into StreamGenerator workloads and the fault injector, so one
/// invocation is reproducible end to end: two runs with the same seed emit
/// identical obs_*.json artifacts.
inline uint64_t& GlobalSeed() {
  static uint64_t seed = 1;
  return seed;
}

/// Iteration override from `--iters=N` (0 = each bench's default). The CI
/// chaos smoke passes `--iters 1` to bound sweep cost.
inline int& GlobalIters() {
  static int iters = 0;
  return iters;
}

/// Strips `--seed[=]N` and `--iters[=]N` from argv before Google Benchmark
/// parses the rest (it rejects flags it does not know).
inline void ParseBenchFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    auto take_value = [&](const std::string& name, std::string* value) {
      if (arg.rfind("--" + name + "=", 0) == 0) {
        *value = arg.substr(name.size() + 3);
        return true;
      }
      if (arg == "--" + name && i + 1 < *argc) {
        *value = argv[++i];
        return true;
      }
      return false;
    };
    std::string value;
    if (take_value("seed", &value)) {
      GlobalSeed() = std::strtoull(value.c_str(), nullptr, 10);
    } else if (take_value("iters", &value)) {
      GlobalIters() = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace bench
}  // namespace aurora

/// Drop-in replacement for BENCHMARK_MAIN() that understands --seed/--iters.
#define AURORA_BENCH_MAIN()                                             \
  int main(int argc, char** argv) {                                     \
    ::aurora::bench::ParseBenchFlags(&argc, argv);                      \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }

#endif  // AURORA_BENCH_BENCH_UTIL_H_
