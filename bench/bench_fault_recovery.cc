// Experiment C5 (paper §6.2–6.4): end-to-end crash recovery under the
// deterministic fault injector.
//
// Sweeps crash time (how much retained log a crash strands) × HA failure
// timeout × HA mode on a three-server chain with a chaos-perturbed ingest
// link. Claims measured:
//   - MTTD tracks failure_timeout within one heartbeat interval;
//   - upstream-backup recovery work scales with the retained log size,
//     while the process-pair baseline redoes only in-process tuples;
//   - the whole run is bit-reproducible: two invocations with the same
//     --seed emit identical obs_fault_recovery_*.json artifacts.
#include "bench/bench_util.h"
#include "fault/injector.h"
#include "ha/process_pair.h"
#include "ha/upstream_backup.h"

namespace aurora {
namespace bench {
namespace {

struct RunResult {
  double mttd_ms = 0.0;
  double mttr_ms = 0.0;
  double recovery_work_tuples = 0.0;
  double protocol_messages = 0.0;
  double retained_at_crash = 0.0;
  double tuples_lost = 0.0;
  double delivered = 0.0;
  double chaos_dropped = 0.0;
  double dup_dropped = 0.0;
};

// One chain run: f@0 -> m@1 -> t@2 (+ node 3 as process-pair backup), with
// the injector crashing node 1 at `crash_at` and restarting it 1s later.
RunResult RunOnce(bool process_pair, SimDuration failure_timeout,
                  SimTime crash_at, uint64_t seed) {
  RunResult r;
  Cluster cluster(4);
  GlobalQuery q;
  AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
  AURORA_CHECK(q.AddBox("f", FilterSpec(Predicate::True())).ok());
  AURORA_CHECK(q.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                      {"B", Expr::FieldRef("B")}}))
                   .ok());
  AURORA_CHECK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})).ok());
  AURORA_CHECK(q.AddOutput("out").ok());
  AURORA_CHECK(q.ConnectInputToBox("in", "f").ok());
  AURORA_CHECK(q.ConnectBoxes("f", 0, "m", 0).ok());
  AURORA_CHECK(q.ConnectBoxes("m", 0, "t", 0).ok());
  AURORA_CHECK(q.ConnectBoxToOutput("t", 0, "out").ok());
  auto deployed =
      DeployQuery(cluster.system.get(), q, {{"f", 0}, {"m", 1}, {"t", 2}});
  AURORA_CHECK(deployed.ok());
  uint64_t delivered = 0;
  AURORA_CHECK(cluster.system
                   ->CollectOutput(2, "out",
                                   [&](const Tuple&, SimTime) { ++delivered; })
                   .ok());

  const int kTuples = 4000;
  InjectAtRate(&cluster, 0, "in", kTuples, 2000.0, /*mod=*/1'000'000);

  // Mild chaos on the ingest link plus the crash/restart cycle. The plan is
  // shared text, not code, so tests and EXPERIMENTS.md can quote it.
  FaultPlan plan;
  plan.PerturbLinkAt(SimTime::Millis(0), 0, 1, /*drop_p=*/0.01,
                     /*dup_p=*/0.01, /*reorder_p=*/0.02);
  plan.CrashAt(crash_at, 1);
  plan.RestartAt(crash_at + SimDuration::Seconds(1), 1);

  HaOptions opts;
  opts.failure_timeout = failure_timeout;
  // The process-pair comparison measures the pair's own failover; keep the
  // upstream-backup machinery from re-routing the query underneath it.
  opts.auto_recover = !process_pair;
  HaManager ha(cluster.system.get(), opts);
  AURORA_CHECK(ha.Protect(&*deployed, &q).ok());

  std::unique_ptr<ProcessPairModel> pp;
  if (process_pair) {
    pp = std::make_unique<ProcessPairModel>(cluster.system.get(), 1, 3);
    pp->Start();
  }

  // Snapshot the stranded log just before the crash fires (events at equal
  // times run in scheduling order; InjectorOptions arms after this).
  size_t retained_at_crash = 0;
  size_t in_process_at_crash = 0;
  cluster.sim.ScheduleAt(crash_at, [&]() {
    retained_at_crash = ha.TotalRetainedTuples();
    in_process_at_crash =
        cluster.system->node(1).engine().TotalQueuedTuples();
  });

  InjectorOptions iopts;
  iopts.seed = seed;
  iopts.ha = process_pair ? nullptr : &ha;
  Injector injector(cluster.system.get(), plan, iopts);
  AURORA_CHECK(injector.Arm().ok());

  cluster.sim.RunUntil(SimTime::Seconds(4));

  r.retained_at_crash = static_cast<double>(retained_at_crash);
  r.tuples_lost = static_cast<double>(injector.tuples_lost());
  r.delivered = static_cast<double>(delivered);
  r.chaos_dropped = static_cast<double>(cluster.net->ChaosDropped());
  r.dup_dropped = 0.0;
  for (int n = 0; n < 4; ++n) {
    r.dup_dropped += static_cast<double>(
        cluster.system->node(n).duplicate_tuples_dropped());
  }
  if (process_pair) {
    // The pair fails over instantly at detection; redone work is only what
    // was in process at the primary when it died.
    r.mttd_ms = failure_timeout.seconds() * 1e3;
    r.mttr_ms = r.mttd_ms;
    r.recovery_work_tuples = static_cast<double>(in_process_at_crash);
    r.protocol_messages = static_cast<double>(pp->checkpoint_messages());
  } else {
    r.mttd_ms = injector.mttd_ms().empty() ? 0.0 : injector.mttd_ms().front();
    r.mttr_ms = injector.mttr_ms().empty() ? 0.0 : injector.mttr_ms().front();
    r.recovery_work_tuples = static_cast<double>(ha.replayed_tuples());
    r.protocol_messages =
        static_cast<double>(ha.checkpoint_messages() + ha.heartbeat_messages());
  }
  return r;
}

void BM_FaultRecovery(benchmark::State& state) {
  const bool process_pair = state.range(0) != 0;
  const SimDuration timeout = SimDuration::Millis(state.range(1));
  const SimTime crash_at = SimTime::Millis(state.range(2));
  // --iters N samples N consecutive seeds starting at --seed; counters
  // report the last sample (each sample dumps its own obs artifact).
  const int samples = GlobalIters() > 0 ? GlobalIters() : 1;
  for (auto _ : state) {
    RunResult r;
    for (int s = 0; s < samples; ++s) {
      const uint64_t seed = GlobalSeed() + static_cast<uint64_t>(s);
      ResetObservability();
      r = RunOnce(process_pair, timeout, crash_at, seed);
      DumpMetricsSnapshot(
          "fault_recovery_" + std::string(process_pair ? "pp" : "ub") +
          "_to" + std::to_string(state.range(1)) + "ms_crash" +
          std::to_string(state.range(2)) + "ms_seed" + std::to_string(seed));
    }
    state.counters["mttd_ms"] = r.mttd_ms;
    state.counters["mttr_ms"] = r.mttr_ms;
    state.counters["recovery_work_tuples"] = r.recovery_work_tuples;
    state.counters["retained_at_crash"] = r.retained_at_crash;
    state.counters["protocol_messages"] = r.protocol_messages;
    state.counters["tuples_lost"] = r.tuples_lost;
    state.counters["delivered"] = r.delivered;
    state.counters["chaos_dropped"] = r.chaos_dropped;
    state.counters["dup_dropped"] = r.dup_dropped;
  }
}
BENCHMARK(BM_FaultRecovery)
    ->ArgNames({"process_pair", "timeout_ms", "crash_ms"})
    // Failure-timeout sweep (MTTD tracks it) at a fixed mid-run crash.
    ->Args({0, 100, 1500})
    ->Args({0, 250, 1500})
    ->Args({0, 500, 1500})
    ->Args({1, 100, 1500})
    ->Args({1, 250, 1500})
    ->Args({1, 500, 1500})
    // Crash-time sweep (recovery work tracks the stranded log) at the
    // default timeout.
    ->Args({0, 250, 500})
    ->Args({0, 250, 2500})
    ->Args({1, 250, 500})
    ->Args({1, 250, 2500})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
