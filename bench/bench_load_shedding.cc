// Experiment C5 (paper §2.3, §7.1): QoS-driven load shedding.
//
// Two streams share one CPU: a loss-tolerant "monitor" stream and a strict
// "alarm" stream. Sweeping the offered load past capacity, we report the
// aggregate QoS utility under three policies. Expected shape:
//   none < random < QoS-aware   once the system saturates,
// because QoS-aware shedding drops where the loss-utility slope is flat
// and keeps queues (hence latency) bounded.
#include "bench/bench_util.h"
#include "engine/aurora_engine.h"

namespace aurora {
namespace bench {
namespace {

double RunSheddingExperiment(SheddingPolicy policy, double offered_multiple) {
  // One node; capacity 1e6 us/s. Each tuple costs ~50us downstream.
  LoadShedder::Options shed;
  shed.policy = policy;
  shed.capacity_us_per_sec = 1e6;
  shed.target_utilization = 0.9;
  shed.recompute_interval = SimDuration::Millis(50);
  EngineOptions opts;
  opts.shedder = shed;
  StarOptions star;
  star.engine = opts;
  Cluster cluster(1, LinkOptions{}, star);
  AuroraEngine& engine = cluster.system->node(0).engine();

  SchemaPtr schema = SchemaAB();
  PortId in_monitor = *engine.AddInput("monitor", schema);
  PortId in_alarm = *engine.AddInput("alarm", schema);
  PortId out_monitor = *engine.AddOutput("out_monitor");
  PortId out_alarm = *engine.AddOutput("out_alarm");
  OperatorSpec work = FilterSpec(Predicate::True());
  work.SetParam("cost_us", Value(50.0));
  BoxId f1 = *engine.AddBox(work);
  BoxId f2 = *engine.AddBox(work);
  AURORA_CHECK(engine.Connect(Endpoint::InputPort(in_monitor),
                              Endpoint::BoxPort(f1, 0)).ok());
  AURORA_CHECK(engine.Connect(Endpoint::InputPort(in_alarm),
                              Endpoint::BoxPort(f2, 0)).ok());
  AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f1, 0),
                              Endpoint::OutputPort(out_monitor)).ok());
  AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f2, 0),
                              Endpoint::OutputPort(out_alarm)).ok());
  AURORA_CHECK(engine.InitializeBoxes().ok());
  // Monitor tolerates loss; alarm does not. Both want low latency.
  QoSSpec monitor_spec;
  monitor_spec.latency = *UtilityGraph::Make({{100.0, 1.0}, {800.0, 0.0}});
  monitor_spec.loss = *UtilityGraph::Make({{0.0, 0.7}, {1.0, 1.0}});
  QoSSpec alarm_spec;
  alarm_spec.latency = *UtilityGraph::Make({{100.0, 1.0}, {800.0, 0.0}});
  alarm_spec.loss = *UtilityGraph::Make({{0.0, 0.0}, {1.0, 1.0}});
  AURORA_CHECK(engine.SetOutputQoS(out_monitor, monitor_spec).ok());
  AURORA_CHECK(engine.SetOutputQoS(out_alarm, alarm_spec).ok());
  engine.RebuildShedderModel();

  // Offered load: each input gets offered_multiple/2 of capacity.
  double per_input_rate = offered_multiple / 2.0 * (1e6 / 50.0);
  const double kDuration = 4.0;
  int per_input = static_cast<int>(per_input_rate * kDuration);
  InjectAtRate(&cluster, 0, "monitor", per_input, per_input_rate);
  InjectAtRate(&cluster, 0, "alarm", per_input, per_input_rate);
  cluster.sim.RunUntil(SimTime::Seconds(kDuration + 0.2));
  return engine.qos_monitor().AggregateUtility();
}

void BM_SheddingPolicy(benchmark::State& state) {
  const auto policy = static_cast<SheddingPolicy>(state.range(0));
  const double offered = static_cast<double>(state.range(1)) / 100.0;
  for (auto _ : state) {
    double utility = RunSheddingExperiment(policy, offered);
    state.counters["offered_x_capacity"] = offered;
    state.counters["aggregate_utility"] = utility;
  }
}
BENCHMARK(BM_SheddingPolicy)
    ->ArgNames({"policy", "offered_pct"})  // 0=none, 1=random, 2=QoS-aware
    ->Args({0, 50})
    ->Args({1, 50})
    ->Args({2, 50})
    ->Args({0, 150})
    ->Args({1, 150})
    ->Args({2, 150})
    ->Args({0, 300})
    ->Args({1, 300})
    ->Args({2, 300})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
