// Experiment C8 (paper §4.4): remote definition for content customization.
//
// "A receiving participant interested only in knowing when a specific
// stock passes above a certain threshold would normally have to receive
// the complete stream... With remote definition, it can instead remotely
// define the filter, and receive directly the customized content."
//
// Reported shape: boundary-crossing bytes shrink by roughly the filter's
// selectivity when the filter is remotely defined at the producer.
#include "bench/bench_util.h"
#include "medusa/medusa_system.h"

namespace aurora {
namespace bench {
namespace {

void BM_RemoteDefinition(benchmark::State& state) {
  const bool remote_define = state.range(0) != 0;
  const int match_pct = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Cluster cluster(2);
    MedusaSystem medusa(cluster.system.get(), MedusaOptions{});
    auto seller = medusa.AddParticipant("quotes-inc", {0}, 1000, 0.0001);
    auto buyer = medusa.AddParticipant("trader", {1}, 1000, 0.0001);
    AURORA_CHECK(seller.ok() && buyer.ok());
    (*seller)->AuthorizeRemoteDefiner("trader");
    (*seller)->OfferOperatorKind("filter");

    GlobalQuery q;
    AURORA_CHECK(q.AddInput("quotes", SchemaAB()).ok());
    AURORA_CHECK(q.AddBox("produce", FilterSpec(Predicate::True())).ok());
    // The buyer-side threshold filter, applied after the boundary.
    AURORA_CHECK(
        q.AddBox("threshold", FilterSpec(Predicate::Compare(
                                  "B", CompareOp::kLt,
                                  Value(static_cast<int64_t>(match_pct)))))
            .ok());
    AURORA_CHECK(q.AddOutput("alerts").ok());
    AURORA_CHECK(q.ConnectInputToBox("quotes", "produce").ok());
    AURORA_CHECK(q.ConnectBoxes("produce", 0, "threshold", 0).ok());
    AURORA_CHECK(q.ConnectBoxToOutput("threshold", 0, "alerts").ok());
    auto deployed =
        DeployQuery(cluster.system.get(), q, {{"produce", 0}, {"threshold", 1}});
    AURORA_CHECK(deployed.ok());
    uint64_t alerts = 0;
    AURORA_CHECK(cluster.system
                     ->CollectOutput(1, "alerts",
                                     [&](const Tuple&, SimTime) { ++alerts; })
                     .ok());

    if (remote_define) {
      std::string output_name;
      for (const auto& [name, binding] : cluster.system->node(0).bindings()) {
        output_name = name;
      }
      AURORA_CHECK(
          medusa
              .RemoteDefine("trader", "quotes-inc", 0, output_name,
                            FilterSpec(Predicate::Compare(
                                "B", CompareOp::kLt,
                                Value(static_cast<int64_t>(match_pct)))))
              .ok());
    }
    const int kTuples = 2000;
    InjectAtRate(&cluster, 0, "quotes", kTuples, 5000.0, /*mod=*/100);
    cluster.sim.RunUntil(SimTime::Seconds(2));

    state.counters["match_pct"] = match_pct;
    state.counters["alerts"] = static_cast<double>(alerts);
    state.counters["boundary_bytes"] =
        static_cast<double>(cluster.net->LinkBytesSent(0, 1));
    state.counters["bytes_per_quote"] =
        static_cast<double>(cluster.net->LinkBytesSent(0, 1)) / kTuples;
  }
}
BENCHMARK(BM_RemoteDefinition)
    ->ArgNames({"remote_def", "match_pct"})
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({0, 50})
    ->Args({1, 50})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
