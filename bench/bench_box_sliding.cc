// Experiment F4 (paper Fig. 4, §5.1): upstream box sliding.
//
// A source sub-network on machine 0 feeds a Filter running on machine 1
// across the link. Sliding the Filter upstream (onto machine 0) means only
// the *selected* tuples cross the link. The paper's claim: "shifting a box
// upstream is often useful if the box has a low selectivity and the
// bandwidth of the connection is limited". The bench sweeps selectivity and
// reports bytes crossing the link per input tuple, unslid vs slid.
// Expected shape: slid bytes/tuple ≈ selectivity × unslid bytes/tuple.
#include "bench/bench_util.h"
#include "distributed/box_slider.h"

namespace aurora {
namespace bench {
namespace {

void BM_UpstreamSlide(benchmark::State& state) {
  const int selectivity_pct = static_cast<int>(state.range(0));
  const bool slide = state.range(1) != 0;
  const int kTuples = 2000;
  for (auto _ : state) {
    Cluster cluster(2);
    GlobalQuery q;
    AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
    // "src" pins the data source's side of the link on machine 0.
    AURORA_CHECK(q.AddBox("src", FilterSpec(Predicate::True())).ok());
    AURORA_CHECK(
        q.AddBox("f", FilterSpec(Predicate::Compare(
                          "B", CompareOp::kLt,
                          Value(static_cast<int64_t>(selectivity_pct)))))
            .ok());
    AURORA_CHECK(q.AddOutput("out").ok());
    AURORA_CHECK(q.ConnectInputToBox("in", "src").ok());
    AURORA_CHECK(q.ConnectBoxes("src", 0, "f", 0).ok());
    AURORA_CHECK(q.ConnectBoxToOutput("f", 0, "out").ok());
    auto deployed =
        DeployQuery(cluster.system.get(), q, {{"src", 0}, {"f", 1}});
    AURORA_CHECK(deployed.ok());

    uint64_t delivered = 0;
    AURORA_CHECK(
        cluster.system
            ->CollectOutput(1, "out",
                            [&](const Tuple&, SimTime) { ++delivered; })
            .ok());
    if (slide) {
      BoxSlider slider(cluster.system.get());
      auto result =
          slider.Slide(&*deployed, "f", 0, SlideMode::kRemoteDefinition);
      AURORA_CHECK(result.ok()) << result.status().ToString();
    }
    InjectAtRate(&cluster, 0, "in", kTuples, 10'000.0, /*mod=*/100);
    cluster.sim.RunUntil(SimTime::Seconds(2));

    state.counters["selectivity_pct"] = selectivity_pct;
    state.counters["delivered"] = static_cast<double>(delivered);
    state.counters["link_bytes_0to1"] =
        static_cast<double>(cluster.net->LinkBytesSent(0, 1));
    state.counters["bytes_per_input_tuple"] =
        static_cast<double>(cluster.net->LinkBytesSent(0, 1)) / kTuples;
  }
}
BENCHMARK(BM_UpstreamSlide)
    ->ArgNames({"sel_pct", "slid"})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({25, 0})
    ->Args({25, 1})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({90, 0})
    ->Args({90, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
