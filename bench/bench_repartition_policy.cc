// Experiment C6 (paper §5.2 "Choosing What to Offload"): a neighbour "may
// not be able to handle the additional bandwidth of the new arcs" even
// when it has spare cycles.
//
// Node 0 is overloaded; the only idle peer sits behind a thin link. A
// bandwidth-aware daemon declines the move (backlog persists but the link
// stays healthy); a naive daemon slides the box anyway and floods the
// link, so end-to-end delivery *drops* despite the extra CPU.
#include "bench/bench_util.h"
#include "distributed/load_daemon.h"

namespace aurora {
namespace bench {
namespace {

void BM_BandwidthAwareOffload(benchmark::State& state) {
  const bool bandwidth_aware = state.range(0) != 0;
  for (auto _ : state) {
    Simulation sim;
    OverlayNetwork net(&sim);
    AuroraStarSystem system(&sim, &net, StarOptions{});
    NodeId busy = *system.AddNode(NodeOptions{"busy", 1.0, {}});
    NodeId idle = *system.AddNode(NodeOptions{"idle", 1.0, {}});
    LinkOptions thin;
    thin.bandwidth_bytes_per_sec = 20'000;  // ~300 tuples/s of capacity
    thin.latency = SimDuration::Millis(5);
    AURORA_CHECK(net.AddLink(busy, idle, thin).ok());

    GlobalQuery q;
    AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
    AURORA_CHECK(q.AddBox("src", FilterSpec(Predicate::True())).ok());
    OperatorSpec heavy = FilterSpec(Predicate::True());
    heavy.SetParam("cost_us", Value(600.0));
    AURORA_CHECK(q.AddBox("work", heavy).ok());
    AURORA_CHECK(q.AddOutput("out").ok());
    AURORA_CHECK(q.ConnectInputToBox("in", "src").ok());
    AURORA_CHECK(q.ConnectBoxes("src", 0, "work", 0).ok());
    AURORA_CHECK(q.ConnectBoxToOutput("work", 0, "out").ok());
    auto deployed = DeployQuery(&system, q, {{"src", busy}, {"work", busy}});
    AURORA_CHECK(deployed.ok());
    uint64_t delivered = 0;
    for (NodeId nd : {busy, idle}) {
      (void)system.CollectOutput(nd, "out",
                                 [&](const Tuple&, SimTime) { ++delivered; });
    }
    LoadDaemonOptions opts;
    opts.action = RepartitionAction::kSlideOnly;
    opts.bandwidth_aware = bandwidth_aware;
    LoadShareDaemon daemon(&system, &*deployed, opts);
    daemon.Start();

    // 2000 tuples/s * 600us = 1.2x CPU overload, but ~120 KB/s of traffic
    // vs the 20 KB/s link.
    SchemaPtr schema = SchemaAB();
    for (int i = 0; i < 6000; ++i) {
      sim.ScheduleAt(SimTime::Micros(i * 500), [&system, busy, schema, i]() {
        (void)system.node(busy).Inject(
            "in", MakeTuple(schema, {Value(i), Value(i % 10)}));
      });
    }
    sim.RunUntil(SimTime::Seconds(5));

    state.counters["slides"] = static_cast<double>(daemon.slides());
    state.counters["delivered"] = static_cast<double>(delivered);
    state.counters["link_bytes"] =
        static_cast<double>(net.LinkBytesSent(busy, idle));
    state.counters["stuck_in_transit"] = 6000.0 - static_cast<double>(
        delivered +
        system.node(busy).engine().TotalQueuedTuples() +
        system.node(idle).engine().TotalQueuedTuples());
  }
}
BENCHMARK(BM_BandwidthAwareOffload)
    ->ArgName("bw_aware")
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
