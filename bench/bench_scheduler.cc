// Experiment F3 (paper §2.3, Fig. 3): the run-time's train scheduling.
// Ablation of scheduler discipline, train size, and train depth on a
// filter -> map -> tumble chain, measuring processed tuples per simulated
// CPU-second and wall time per tuple.
#include <benchmark/benchmark.h>

#include "engine/aurora_engine.h"
#include "bench/bench_util.h"

namespace aurora {
namespace bench {
namespace {

struct ChainEngine {
  AuroraEngine engine;
  PortId in, out;
  uint64_t delivered = 0;

  explicit ChainEngine(EngineOptions opts) : engine(opts) {
    in = *engine.AddInput("in", SchemaAB());
    out = *engine.AddOutput("out");
    BoxId f = *engine.AddBox(
        FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(1))));
    BoxId m = *engine.AddBox(MapSpec(
        {{"A", Expr::FieldRef("A")}, {"B", Expr::FieldRef("B")}}));
    BoxId t = *engine.AddBox(TumbleSpec("cnt", "B", {"A"}));
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                                Endpoint::BoxPort(f, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f, 0),
                                Endpoint::BoxPort(m, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(m, 0),
                                Endpoint::BoxPort(t, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(t, 0),
                                Endpoint::OutputPort(out)).ok());
    AURORA_CHECK(engine.InitializeBoxes().ok());
    engine.SetOutputCallback(out,
                             [this](const Tuple&, SimTime) { ++delivered; });
  }
};

void RunWorkload(benchmark::State& state, EngineOptions opts,
                 const std::string& label) {
  SchemaPtr schema = SchemaAB();
  const int kTuples = 20'000;
  uint64_t delivered = 0;
  double cpu_us = 0;
  uint64_t activations = 0;
  MetricsSnapshot before;
  for (auto _ : state) {
    ResetObservability();
    before = CaptureSnapshot();
    ChainEngine chain(opts);
    for (int i = 0; i < kTuples; ++i) {
      Tuple t = MakeTuple(schema, {Value(i), Value(1 + i % 7)});
      benchmark::DoNotOptimize(
          chain.engine.PushInput(chain.in, std::move(t), SimTime()));
    }
    AURORA_CHECK(chain.engine.RunUntilQuiescent(SimTime()).ok());
    delivered = chain.delivered;
    cpu_us = chain.engine.total_cpu_micros();
    activations = chain.engine.total_activations();
  }
  state.counters["delivered"] = static_cast<double>(delivered);
  state.counters["sim_cpu_us"] = cpu_us;
  state.counters["box_activations"] = static_cast<double>(activations);
  state.counters["tuples_per_activation"] =
      3.0 * kTuples / static_cast<double>(activations);
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (const LatencyHistogram* h = reg.FindHistogram("engine.box_exec_us")) {
    state.counters["box_exec_us_p50"] = h->Quantile(0.5);
    state.counters["box_exec_us_p99"] = h->Quantile(0.99);
  }
  state.counters["sched_decisions"] =
      CounterDeltaSince(before, "engine.sched.decisions");
  DumpMetricsSnapshot("scheduler_" + label);
  state.SetItemsProcessed(state.iterations() * kTuples);
}

void BM_TrainSize(benchmark::State& state) {
  EngineOptions opts;
  opts.scheduler = SchedulerPolicy::kLongestQueue;
  opts.train_size = static_cast<int>(state.range(0));
  RunWorkload(state, opts, "train" + std::to_string(state.range(0)));
}
BENCHMARK(BM_TrainSize)->ArgName("train")->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_TupleAtATimeBaseline(benchmark::State& state) {
  EngineOptions opts;
  opts.scheduler = SchedulerPolicy::kTupleAtATime;
  RunWorkload(state, opts, "tuple_at_a_time");
}
BENCHMARK(BM_TupleAtATimeBaseline);

void BM_TrainDepth(benchmark::State& state) {
  EngineOptions opts;
  opts.train_size = 64;
  opts.train_depth = static_cast<int>(state.range(0));
  RunWorkload(state, opts, "depth" + std::to_string(state.range(0)));
}
BENCHMARK(BM_TrainDepth)->ArgName("depth")->Arg(1)->Arg(2)->Arg(4);

void BM_Policy(benchmark::State& state) {
  EngineOptions opts;
  opts.scheduler = static_cast<SchedulerPolicy>(state.range(0));
  opts.train_size = 64;
  RunWorkload(state, opts, "policy" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Policy)
    ->ArgName("policy")  // 0=RR, 1=longest queue, 2=min output distance
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
