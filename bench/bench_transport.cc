// Experiment C1 (paper §4.3): transport multiplexing.
//
// Claim 1: "independent TCP connections do not share bandwidth well" —
// the multiplexed connection's weighted scheduler tracks prescribed
// weights; per-stream connections give everyone an equal share.
// Claim 2: "as the number of message streams grows, the overhead of
// running several TCP connections becomes prohibitive."
#include "bench/bench_util.h"
#include "net/transport.h"

namespace aurora {
namespace bench {
namespace {

// Weighted-share fidelity: three backlogged streams with weights 1:2:4.
// Reports each stream's achieved share and the RMS error vs the weights.
void BM_WeightedShareFidelity(benchmark::State& state) {
  const auto mode = static_cast<TransportMode>(state.range(0));
  for (auto _ : state) {
    ResetObservability();
    MetricsSnapshot before = CaptureSnapshot();
    Cluster cluster(2, [] {
      LinkOptions link;
      link.bandwidth_bytes_per_sec = 100'000;
      return link;
    }());
    TransportOptions opts;
    opts.mode = mode;
    Transport tx(&cluster.sim, cluster.net.get(), 0, 1, opts);
    const std::vector<std::pair<std::string, double>> streams = {
        {"w1", 1.0}, {"w2", 2.0}, {"w4", 4.0}};
    for (const auto& [name, w] : streams) {
      AURORA_CHECK(tx.RegisterStream(name, w).ok());
    }
    for (int i = 0; i < 500; ++i) {
      for (const auto& [name, w] : streams) {
        Message m;
        m.kind = "t";
        m.payload.resize(160);
        (void)tx.Send(name, std::move(m));
      }
    }
    cluster.sim.RunUntil(SimTime::Seconds(0.5));
    double total = 0;
    for (const auto& [name, w] : streams) {
      total += static_cast<double>(tx.delivered_bytes(name));
    }
    double rms = 0;
    for (const auto& [name, w] : streams) {
      double share = static_cast<double>(tx.delivered_bytes(name)) / total;
      double want = w / 7.0;
      state.counters["share_" + name] = share;
      rms += (share - want) * (share - want);
    }
    state.counters["rms_error_vs_weights"] = std::sqrt(rms / 3.0);
    // Registry-derived numbers for the run (snapshot-diff against the
    // post-reset baseline, the same helper aurora_inspect --diff uses),
    // and the snapshot artifact.
    state.counters["link_bytes"] =
        CounterDeltaSince(before, "net.link.0->1.bytes");
    MetricsRegistry& reg = MetricsRegistry::Global();
    if (const LatencyHistogram* h =
            reg.FindHistogram("net.transport.queue_delay_us")) {
      state.counters["queue_delay_us_p50"] = h->Quantile(0.5);
      state.counters["queue_delay_us_p99"] = h->Quantile(0.99);
    }
    DumpMetricsSnapshot("transport_share_mode" +
                        std::to_string(state.range(0)));
  }
}
BENCHMARK(BM_WeightedShareFidelity)
    ->ArgName("mode")  // 0 = per-stream connections, 1 = multiplexed
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Overhead growth with the number of streams.
void BM_OverheadVsStreams(benchmark::State& state) {
  const auto mode = static_cast<TransportMode>(state.range(0));
  const int n_streams = static_cast<int>(state.range(1));
  for (auto _ : state) {
    ResetObservability();
    Cluster cluster(2);
    TransportOptions opts;
    opts.mode = mode;
    Transport tx(&cluster.sim, cluster.net.get(), 0, 1, opts);
    for (int s = 0; s < n_streams; ++s) {
      AURORA_CHECK(tx.RegisterStream("s" + std::to_string(s), 1.0).ok());
    }
    const int kPerStream = 100;
    for (int i = 0; i < kPerStream; ++i) {
      for (int s = 0; s < n_streams; ++s) {
        Message m;
        m.kind = "t";
        m.payload.resize(120);
        (void)tx.Send("s" + std::to_string(s), std::move(m));
      }
    }
    cluster.sim.RunUntil(SimTime::Seconds(5));
    state.counters["streams"] = n_streams;
    state.counters["overhead_bytes"] =
        static_cast<double>(tx.overhead_bytes());
    state.counters["overhead_per_message"] =
        static_cast<double>(tx.overhead_bytes()) / (n_streams * kPerStream);
    DumpMetricsSnapshot("transport_overhead_mode" +
                        std::to_string(state.range(0)) + "_s" +
                        std::to_string(n_streams));
  }
}
BENCHMARK(BM_OverheadVsStreams)
    ->ArgNames({"mode", "streams"})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Tuple trains (PR 3): coalescing up to train_size tuples into one framed
// wire message pays the per-message header once. Claim (§4.3, "message
// batching"): grouping tuples into trains cuts message count and per-tuple
// overhead; the sweep quantifies the win at train sizes 1 / 8 / 32.
void BM_TupleTrainSweep(benchmark::State& state) {
  const size_t train = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ResetObservability();
    Cluster cluster(2, [] {
      LinkOptions link;
      link.bandwidth_bytes_per_sec = 1'000'000;
      return link;
    }());
    TransportOptions opts;
    opts.mode = TransportMode::kMultiplexed;
    opts.train_size = train;
    Transport tx(&cluster.sim, cluster.net.get(), 0, 1, opts);
    AURORA_CHECK(tx.RegisterStream("s", 1.0).ok());
    const int kTuples = 2000;
    for (int i = 0; i < kTuples; ++i) {
      Message m;
      m.kind = "tuples";
      m.tuple_count = 1;
      m.payload.resize(100);
      (void)tx.Send("s", std::move(m));
    }
    cluster.sim.RunUntil(SimTime::Seconds(30));
    state.counters["train_size"] = static_cast<double>(train);
    state.counters["frames_sent"] = static_cast<double>(tx.frames_sent());
    state.counters["overhead_bytes"] =
        static_cast<double>(tx.overhead_bytes());
    state.counters["overhead_per_tuple"] =
        static_cast<double>(tx.overhead_bytes()) / kTuples;
    state.counters["wire_bytes"] = static_cast<double>(tx.total_wire_bytes());
    DumpMetricsSnapshot("transport_train_t" + std::to_string(train));
  }
}
BENCHMARK(BM_TupleTrainSweep)
    ->ArgName("train_size")
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Credit-based flow control (PR 3): an overloaded receiver must push back
// to the sources instead of accumulating unbounded state. With the window
// off (0) the slow node's input backlog grows without limit; with it on,
// the sender's transport queue and the receiver's backlog both stay within
// the credit budget and Inject() is refused once the path is full.
void BM_CreditFlowSweep(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ResetObservability();
    MetricsSnapshot before = CaptureSnapshot();
    StarOptions star;
    star.transport.credit_window_bytes = window;
    star.transport.train_size = 8;
    Cluster cluster(2, LinkOptions{}, star);
    AuroraEngine& ae = cluster.system->node(0).engine();
    PortId in = *ae.AddInput("in", SchemaAB());
    PortId xout = *ae.AddOutput("xout");
    AURORA_CHECK(ae.Connect(Endpoint::InputPort(in),
                            Endpoint::OutputPort(xout)).ok());
    AURORA_CHECK(ae.InitializeBoxes().ok());
    AuroraEngine& be = cluster.system->node(1).engine();
    PortId bin = *be.AddInput("xin", SchemaAB());
    PortId bout = *be.AddOutput("final");
    OperatorSpec work = FilterSpec(Predicate::True());
    work.SetParam("cost_us", Value(2000.0));  // ~500/s capacity vs 2000/s offered
    BoxId f = *be.AddBox(work);
    AURORA_CHECK(be.Connect(Endpoint::InputPort(bin),
                            Endpoint::BoxPort(f, 0)).ok());
    AURORA_CHECK(be.Connect(Endpoint::BoxPort(f, 0),
                            Endpoint::OutputPort(bout)).ok());
    AURORA_CHECK(be.InitializeBoxes().ok());
    uint64_t delivered = 0;
    AURORA_CHECK(cluster.system->CollectOutput(
        1, "final", [&](const Tuple&, SimTime) { ++delivered; }).ok());
    AURORA_CHECK(cluster.system->ConnectRemote(0, "xout", 1, "xin").ok());
    InjectAtRate(&cluster, 0, "in", 8000, 2000.0);
    cluster.sim.RunUntil(SimTime::Seconds(8));
    const Transport* tx = cluster.system->node(0).PeerTransport(1);
    state.counters["credit_window"] = static_cast<double>(window);
    state.counters["sender_peak_queued_payload"] =
        tx ? static_cast<double>(tx->peak_queued_payload_bytes()) : 0.0;
    state.counters["credit_stalls"] =
        tx ? static_cast<double>(tx->credit_stalls()) : 0.0;
    state.counters["receiver_backlog_bytes"] =
        static_cast<double>(be.InputBacklogBytes(bin));
    state.counters["delivered"] = static_cast<double>(delivered);
    state.counters["blocked_at_source"] =
        CounterDeltaSince(before, "engine.tuples_blocked_upstream");
    DumpMetricsSnapshot("transport_flow_w" + std::to_string(window));
  }
}
BENCHMARK(BM_CreditFlowSweep)
    ->ArgName("window")
    ->Arg(0)
    ->Arg(4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aurora

AURORA_BENCH_MAIN()
