#include "workload/generator.h"

#include "common/logging.h"

namespace aurora {

namespace {

class ConstantArrivals : public ArrivalProcess {
 public:
  explicit ConstantArrivals(double rate) : gap_(SimDuration::Seconds(1.0 / rate)) {}
  SimDuration NextInterarrival(Rng*) override { return gap_; }

 private:
  SimDuration gap_;
};

class PoissonArrivals : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate) : mean_s_(1.0 / rate) {}
  SimDuration NextInterarrival(Rng* rng) override {
    return SimDuration::Seconds(rng->Exponential(mean_s_));
  }

 private:
  double mean_s_;
};

class BurstyArrivals : public ArrivalProcess {
 public:
  BurstyArrivals(double base_rate, double burst_factor, SimDuration period)
      : base_rate_(base_rate), burst_factor_(burst_factor), period_(period) {}
  SimDuration NextInterarrival(Rng* rng) override {
    double rate = in_burst_ ? base_rate_ * burst_factor_ : base_rate_;
    SimDuration gap = SimDuration::Seconds(rng->Exponential(1.0 / rate));
    phase_elapsed_ += gap;
    if (phase_elapsed_ >= period_) {
      in_burst_ = !in_burst_;
      phase_elapsed_ = SimDuration();
    }
    return gap;
  }

 private:
  double base_rate_;
  double burst_factor_;
  SimDuration period_;
  SimDuration phase_elapsed_{};
  bool in_burst_ = false;
};

class UniformIntGen : public FieldGen {
 public:
  UniformIntGen(int64_t lo, int64_t hi) : lo_(lo), hi_(hi) {}
  Value Next(Rng* rng) override { return Value(rng->UniformInt(lo_, hi_)); }

 private:
  int64_t lo_, hi_;
};

class ZipfIntGen : public FieldGen {
 public:
  ZipfIntGen(uint64_t n, double skew) : zipf_(n, skew) {}
  Value Next(Rng* rng) override {
    return Value(static_cast<int64_t>(zipf_.Sample(rng)));
  }

 private:
  ZipfGenerator zipf_;
};

class NormalDoubleGen : public FieldGen {
 public:
  NormalDoubleGen(double mean, double stddev) : mean_(mean), stddev_(stddev) {}
  Value Next(Rng* rng) override { return Value(rng->Normal(mean_, stddev_)); }

 private:
  double mean_, stddev_;
};

class SequentialGen : public FieldGen {
 public:
  Value Next(Rng*) override { return Value(static_cast<int64_t>(next_++)); }

 private:
  int64_t next_ = 0;
};

class ChoiceGen : public FieldGen {
 public:
  explicit ChoiceGen(std::vector<std::string> options)
      : options_(std::move(options)) {}
  Value Next(Rng* rng) override {
    return Value(options_[rng->Uniform(options_.size())]);
  }

 private:
  std::vector<std::string> options_;
};

}  // namespace

std::unique_ptr<ArrivalProcess> ArrivalProcess::Constant(double rate) {
  return std::make_unique<ConstantArrivals>(rate);
}
std::unique_ptr<ArrivalProcess> ArrivalProcess::Poisson(double rate) {
  return std::make_unique<PoissonArrivals>(rate);
}
std::unique_ptr<ArrivalProcess> ArrivalProcess::Bursty(double base_rate,
                                                       double burst_factor,
                                                       SimDuration period) {
  return std::make_unique<BurstyArrivals>(base_rate, burst_factor, period);
}

std::unique_ptr<FieldGen> FieldGen::UniformInt(int64_t lo, int64_t hi) {
  return std::make_unique<UniformIntGen>(lo, hi);
}
std::unique_ptr<FieldGen> FieldGen::ZipfInt(uint64_t n, double skew) {
  return std::make_unique<ZipfIntGen>(n, skew);
}
std::unique_ptr<FieldGen> FieldGen::NormalDouble(double mean, double stddev) {
  return std::make_unique<NormalDoubleGen>(mean, stddev);
}
std::unique_ptr<FieldGen> FieldGen::Sequential() {
  return std::make_unique<SequentialGen>();
}
std::unique_ptr<FieldGen> FieldGen::Choice(std::vector<std::string> options) {
  return std::make_unique<ChoiceGen>(std::move(options));
}

StreamGenerator::StreamGenerator(SchemaPtr schema,
                                 std::vector<std::unique_ptr<FieldGen>> gens,
                                 std::unique_ptr<ArrivalProcess> arrivals,
                                 uint64_t seed)
    : schema_(std::move(schema)),
      gens_(std::move(gens)),
      arrivals_(std::move(arrivals)),
      rng_(seed) {
  AURORA_CHECK(schema_->num_fields() == gens_.size())
      << "one FieldGen per schema field required";
}

Tuple StreamGenerator::Next(SimTime now) {
  std::vector<Value> values;
  values.reserve(gens_.size());
  for (auto& g : gens_) values.push_back(g->Next(&rng_));
  Tuple t(schema_, std::move(values));
  t.set_timestamp(now);
  return t;
}

SimDuration StreamGenerator::NextGap() {
  return arrivals_->NextInterarrival(&rng_);
}

}  // namespace aurora
