#ifndef AURORA_WORKLOAD_GENERATOR_H_
#define AURORA_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "tuple/tuple.h"

namespace aurora {

/// \brief Tuple arrival process: when does the next tuple arrive?
///
/// The paper's motivating workloads are push-based with "time varying,
/// unpredictable input rates" (§5); the bursty process reproduces the load
/// spikes that drive load management experiments.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual SimDuration NextInterarrival(Rng* rng) = 0;

  static std::unique_ptr<ArrivalProcess> Constant(double rate_per_sec);
  static std::unique_ptr<ArrivalProcess> Poisson(double rate_per_sec);
  /// Alternates between a base Poisson rate and `burst_factor` times that
  /// rate, dwelling `period` in each phase.
  static std::unique_ptr<ArrivalProcess> Bursty(double base_rate_per_sec,
                                                double burst_factor,
                                                SimDuration period);
};

/// Per-field value generators for synthetic streams.
class FieldGen {
 public:
  virtual ~FieldGen() = default;
  virtual Value Next(Rng* rng) = 0;

  static std::unique_ptr<FieldGen> UniformInt(int64_t lo, int64_t hi);
  /// Zipf-skewed integers over [0, n) — models skewed groupby keys, the
  /// condition under which content-based split predicates misbalance load.
  static std::unique_ptr<FieldGen> ZipfInt(uint64_t n, double skew);
  static std::unique_ptr<FieldGen> NormalDouble(double mean, double stddev);
  static std::unique_ptr<FieldGen> Sequential();
  static std::unique_ptr<FieldGen> Choice(std::vector<std::string> options);
};

/// \brief Synthetic stream source: a schema, one FieldGen per field, and an
/// arrival process.
class StreamGenerator {
 public:
  StreamGenerator(SchemaPtr schema, std::vector<std::unique_ptr<FieldGen>> gens,
                  std::unique_ptr<ArrivalProcess> arrivals, uint64_t seed);

  const SchemaPtr& schema() const { return schema_; }

  /// Produces the next tuple; `now` is stamped as its source timestamp and
  /// the return also advances the generator's internal next-arrival clock.
  Tuple Next(SimTime now);
  /// Interarrival gap before the next tuple.
  SimDuration NextGap();

 private:
  SchemaPtr schema_;
  std::vector<std::unique_ptr<FieldGen>> gens_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  Rng rng_;
};

}  // namespace aurora

#endif  // AURORA_WORKLOAD_GENERATOR_H_
