#ifndef AURORA_NET_MESSAGE_H_
#define AURORA_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/catalog.h"  // NodeId

namespace aurora {

/// Fixed per-message framing cost charged on every link (transport headers,
/// roughly an IP+TCP header's worth).
inline constexpr size_t kMessageHeaderBytes = 40;

/// \brief A unit of communication on the overlay network.
///
/// `kind` identifies the protocol ("tuples", "flow", "heartbeat",
/// "contract", "remote_define", ...); `stream` names the message stream for
/// data traffic; `payload` is an opaque serialized body. Link bandwidth is
/// charged for WireSize() bytes.
struct Message {
  std::string kind;
  std::string stream;
  std::vector<uint8_t> payload;
  NodeId src = -1;
  NodeId dst = -1;
  /// Number of original messages coalesced into this frame (tuple trains);
  /// 0 or 1 = a plain single message. Train sub-messages are length-framed
  /// inside `payload`, so their cost is already part of WireSize().
  uint32_t train_count = 0;
  /// Tuples carried (data messages; feeds the train-size histograms).
  uint32_t tuple_count = 0;
  /// Credit flow control: cumulative payload bytes sent on this message's
  /// stream *including* this message (data), the sender's cumulative sent
  /// bytes (probes), or the granted cumulative limit (grants). Lives in the
  /// fixed header, so it adds no WireSize() beyond kMessageHeaderBytes.
  uint64_t flow_offset = 0;
  /// Link padding charged to the wire but carrying no data (per-stream-mode
  /// interference overhead). Accounted in WireSize() so the sender does not
  /// have to materialize a padded copy of `payload`; decoders never see it.
  size_t pad_bytes = 0;

  size_t WireSize() const {
    return kMessageHeaderBytes + kind.size() + stream.size() + payload.size() +
           pad_bytes;
  }
};

}  // namespace aurora

#endif  // AURORA_NET_MESSAGE_H_
