#ifndef AURORA_NET_MESSAGE_H_
#define AURORA_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/catalog.h"  // NodeId

namespace aurora {

/// Fixed per-message framing cost charged on every link (transport headers,
/// roughly an IP+TCP header's worth).
inline constexpr size_t kMessageHeaderBytes = 40;

/// \brief A unit of communication on the overlay network.
///
/// `kind` identifies the protocol ("tuples", "flow", "heartbeat",
/// "contract", "remote_define", ...); `stream` names the message stream for
/// data traffic; `payload` is an opaque serialized body. Link bandwidth is
/// charged for WireSize() bytes.
struct Message {
  std::string kind;
  std::string stream;
  std::vector<uint8_t> payload;
  NodeId src = -1;
  NodeId dst = -1;

  size_t WireSize() const {
    return kMessageHeaderBytes + kind.size() + stream.size() + payload.size();
  }
};

}  // namespace aurora

#endif  // AURORA_NET_MESSAGE_H_
