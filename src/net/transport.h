#ifndef AURORA_NET_TRANSPORT_H_
#define AURORA_NET_TRANSPORT_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/overlay_network.h"
#include "obs/metrics.h"

namespace aurora {

/// Transport strategies compared in bench_transport (experiment C1, §4.3).
enum class TransportMode {
  /// One connection per message stream. Models the paper's rejected
  /// baseline: per-connection overhead, and bandwidth shared per-connection
  /// (equally) rather than by prescribed weights, with cross-connection
  /// interference [11].
  kPerStreamConnections,
  /// All streams multiplexed onto one connection; a weighted scheduler
  /// decides which stream uses the connection at any time (the paper's
  /// design).
  kMultiplexed,
};

struct TransportOptions {
  TransportMode mode = TransportMode::kMultiplexed;
  /// One-time bytes charged when a per-stream connection is opened
  /// (handshake). Multiplexed mode pays it once for the shared connection.
  size_t connection_setup_bytes = 200;
  /// Extra fractional bytes per message per *additional* concurrent
  /// connection, modeling the adverse interaction of independent TCP
  /// connections in the network ([11] in the paper).
  double cross_connection_interference = 0.01;
  /// Per-stream tag added to each multiplexed message.
  size_t mux_tag_bytes = 4;
};

/// \brief Message transport between one ordered node pair (paper §4.3).
///
/// Both modes serialize messages over the same simulated link; they differ
/// in scheduling and overhead. The multiplexed mode implements start-time
/// weighted fair queuing over per-stream queues, giving each stream its
/// prescribed share of the bottleneck; per-stream mode services connections
/// round-robin (equal shares regardless of weights) and pays interference
/// and setup overheads.
class Transport {
 public:
  using DeliveryHandler =
      std::function<void(const std::string& stream, const Message&)>;

  Transport(Simulation* sim, OverlayNetwork* net, NodeId src, NodeId dst,
            TransportOptions opts);

  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }

  /// Declares a message stream with its bandwidth weight (from QoS or
  /// contract specifications, per the paper).
  Status RegisterStream(const std::string& name, double weight);
  bool HasStream(const std::string& name) const {
    return streams_.count(name) > 0;
  }

  /// Queues a message on the stream. Delivery order within a stream is
  /// FIFO.
  Status Send(const std::string& stream, Message msg);

  /// Handler invoked (in the simulation, at the receiving node's time) for
  /// every delivered message.
  void SetDeliveryHandler(DeliveryHandler handler) {
    handler_ = std::move(handler);
  }

  // ---- Statistics -------------------------------------------------------

  uint64_t delivered_count(const std::string& stream) const;
  uint64_t delivered_bytes(const std::string& stream) const;
  /// All bytes charged to the wire on behalf of this transport, including
  /// headers, tags, setup, and interference.
  uint64_t total_wire_bytes() const { return total_wire_bytes_; }
  /// Wire bytes minus payload bytes: the overhead the mode costs.
  uint64_t overhead_bytes() const { return total_wire_bytes_ - payload_bytes_; }
  size_t queued_messages() const;
  size_t queued_bytes() const;

 private:
  struct StreamState {
    double weight = 1.0;
    std::deque<Message> queue;
    std::deque<int64_t> enqueue_us;  // parallel to queue; feeds queue_delay_us
    double last_finish_tag = 0.0;
    uint64_t delivered = 0;
    uint64_t delivered_bytes = 0;
    size_t queued_bytes = 0;
  };

  /// If the connection is idle and work is queued, dispatches the next
  /// message per the mode's discipline.
  void MaybeDispatch();
  void DispatchMessage(const std::string& stream, size_t extra_bytes);

  Simulation* sim_;
  OverlayNetwork* net_;
  NodeId src_;
  NodeId dst_;
  TransportOptions opts_;
  std::map<std::string, StreamState> streams_;
  std::vector<std::string> rr_order_;  // per-stream mode round-robin
  size_t rr_next_ = 0;
  bool in_flight_ = false;
  double virtual_time_ = 0.0;
  DeliveryHandler handler_;
  uint64_t total_wire_bytes_ = 0;
  uint64_t payload_bytes_ = 0;
  // Registry mirrors: per-pair byte/message counters plus the process-wide
  // sender-side queueing-delay histogram.
  Counter* m_wire_bytes_;
  Counter* m_payload_bytes_;
  Counter* m_msgs_;
  LatencyHistogram* m_queue_delay_us_;
};

}  // namespace aurora

#endif  // AURORA_NET_TRANSPORT_H_
