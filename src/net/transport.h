#ifndef AURORA_NET_TRANSPORT_H_
#define AURORA_NET_TRANSPORT_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/overlay_network.h"
#include "obs/metrics.h"

namespace aurora {

class Tuple;

/// Transport strategies compared in bench_transport (experiment C1, §4.3).
enum class TransportMode {
  /// One connection per message stream. Models the paper's rejected
  /// baseline: per-connection overhead, and bandwidth shared per-connection
  /// (equally) rather than by prescribed weights, with cross-connection
  /// interference [11].
  kPerStreamConnections,
  /// All streams multiplexed onto one connection; a weighted scheduler
  /// decides which stream uses the connection at any time (the paper's
  /// design).
  kMultiplexed,
};

struct TransportOptions {
  TransportMode mode = TransportMode::kMultiplexed;
  /// One-time bytes charged when a per-stream connection is opened
  /// (handshake). Multiplexed mode pays it once for the shared connection.
  size_t connection_setup_bytes = 200;
  /// Extra fractional bytes per message per *additional* concurrent
  /// connection, modeling the adverse interaction of independent TCP
  /// connections in the network ([11] in the paper).
  double cross_connection_interference = 0.01;
  /// Per-stream tag added to each multiplexed message.
  size_t mux_tag_bytes = 4;

  // ---- Tuple trains ------------------------------------------------------
  /// Max queued messages coalesced into one wire frame per dispatch; 1
  /// disables batching (legacy one-message-per-frame behavior). When a
  /// message carries a tuple_count, the budget counts tuples instead of
  /// messages, so trains target `train_size` *tuples* per frame.
  size_t train_size = 1;
  /// A partially filled train departs once its oldest message has waited
  /// this long (bounds the batching latency cost).
  SimDuration train_max_delay = SimDuration::Millis(2);

  // ---- Credit-based flow control ----------------------------------------
  /// Receiver-granted credit window per stream, in payload bytes; 0
  /// disables flow control. A stream may have at most this many payload
  /// bytes beyond the receiver's last grant outstanding.
  size_t credit_window_bytes = 0;
  /// While a stream is credit-stalled (or the path to the peer is down),
  /// the transport re-checks and sends a credit probe at this interval.
  SimDuration flow_retry_interval = SimDuration::Millis(50);
  /// Per-stream sequence-number duplicate suppression at the receiving
  /// StreamNode (PR 2). Exists so correctness harnesses (simcheck) can turn
  /// the mechanism off and demonstrate the duplicate-delivery violations it
  /// prevents; production configurations leave it on.
  bool stream_dedup = true;
};

/// \brief Message transport between one ordered node pair (paper §4.3).
///
/// Both modes serialize messages over the same simulated link; they differ
/// in scheduling and overhead. The multiplexed mode implements start-time
/// weighted fair queuing over per-stream queues, giving each stream its
/// prescribed share of the bottleneck; per-stream mode services connections
/// round-robin (equal shares regardless of weights) and pays interference
/// and setup overheads.
///
/// With `train_size > 1` the dispatcher coalesces consecutive same-stream
/// messages into one length-framed wire message (a *tuple train*), paying
/// the per-message header once; frames are unpacked at the receiver and the
/// delivery handler still sees one callback per original message, so FIFO
/// order and per-message sequence numbers are preserved.
///
/// With `credit_window_bytes > 0` each stream also carries credit-based
/// back-pressure: the receiver grants a cumulative byte limit (see
/// docs/FLOW_CONTROL.md) and the dispatcher refuses to put a message on the
/// wire past it. Grants are cumulative maxima, so chaos duplication cannot
/// double-spend credit and a lost grant is healed by the next one (or by a
/// credit probe carrying the sender's cumulative sent offset).
class Transport {
 public:
  using DeliveryHandler =
      std::function<void(const std::string& stream, const Message&)>;
  /// Invoked at the *receiving* node when a credit probe arrives; the
  /// argument is the sender's cumulative sent offset for the stream.
  using FlowProbeHandler =
      std::function<void(const std::string& stream, uint64_t sent_offset)>;

  Transport(Simulation* sim, OverlayNetwork* net, NodeId src, NodeId dst,
            TransportOptions opts);

  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }

  /// Declares a message stream with its bandwidth weight (from QoS or
  /// contract specifications, per the paper).
  Status RegisterStream(const std::string& name, double weight);
  bool HasStream(const std::string& name) const {
    return streams_.count(name) > 0;
  }

  /// Queues a message on the stream. Delivery order within a stream is
  /// FIFO.
  Status Send(const std::string& stream, Message msg);

  /// Tuple-span Send: serializes `n` tuples into one "tuples" data message
  /// (tuple_count = n) and queues it with a single flow/queue update, so a
  /// chunked batch emission becomes one train sub-message directly instead
  /// of n per-message bookkeeping passes. Byte-equivalent to building the
  /// message by hand and calling Send(stream, msg).
  Status Send(const std::string& stream, const Tuple* tuples, size_t n);

  /// Handler invoked (in the simulation, at the receiving node's time) for
  /// every delivered message. Trains are unpacked first: one call per
  /// original message.
  void SetDeliveryHandler(DeliveryHandler handler) {
    handler_ = std::move(handler);
  }
  void SetFlowProbeHandler(FlowProbeHandler handler) {
    probe_handler_ = std::move(handler);
  }

  // ---- Flow control -----------------------------------------------------

  /// Raises the stream's cumulative credit limit (receiver grant). Grants
  /// are monotone: a stale or duplicated grant is a no-op.
  void GrantCredit(const std::string& stream, uint64_t limit);
  /// True when the stream has consumed its whole credit window: everything
  /// enqueued so far reaches the granted limit, so the producer should stop
  /// handing the transport more data. Always false with flow control off.
  bool StreamBlocked(const std::string& stream) const;
  uint64_t credit_limit(const std::string& stream) const;
  /// Cumulative payload bytes dispatched onto the wire for the stream.
  uint64_t sent_offset(const std::string& stream) const;

  // ---- Statistics -------------------------------------------------------

  uint64_t delivered_count(const std::string& stream) const;
  uint64_t delivered_bytes(const std::string& stream) const;
  /// All bytes charged to the wire on behalf of this transport, including
  /// headers, tags, setup, interference, and flow-control probes.
  uint64_t total_wire_bytes() const { return total_wire_bytes_; }
  /// Wire bytes minus payload bytes: the overhead the mode costs.
  uint64_t overhead_bytes() const { return total_wire_bytes_ - payload_bytes_; }
  /// Wire frames dispatched (a train counts once).
  uint64_t frames_sent() const { return frames_sent_; }
  size_t queued_messages() const;
  size_t queued_bytes() const;
  size_t queued_bytes(const std::string& stream) const;
  /// High-water mark of queued_bytes() (wire sizes, headers included).
  size_t peak_queued_bytes() const { return peak_queued_bytes_; }
  /// Payload bytes currently queued, and their high-water mark — the
  /// quantity the credit window bounds (credit offsets count payload only).
  size_t queued_payload_bytes() const;
  size_t peak_queued_payload_bytes() const { return peak_queued_payload_; }
  uint64_t credit_stalls() const { return credit_stalls_; }

 private:
  struct StreamState {
    double weight = 1.0;
    std::deque<Message> queue;
    std::deque<int64_t> enqueue_us;  // parallel to queue; feeds queue_delay_us
    double last_finish_tag = 0.0;
    uint64_t delivered = 0;
    uint64_t delivered_bytes = 0;
    size_t queued_bytes = 0;
    size_t queued_payload = 0;
    // Flow control (cumulative payload-byte offsets; see FLOW_CONTROL.md).
    uint64_t enqueued_offset = 0;  // bytes ever handed to Send()
    uint64_t sent_offset = 0;      // bytes ever put on the wire
    uint64_t credit_limit = 0;     // receiver's cumulative grant
    bool stalled = false;          // head is past the credit limit
    int64_t stall_start_us = -1;   // when the current stall began (-1 = none)
    SimTime next_probe_at{};       // earliest next credit probe
  };

  bool flow_enabled() const { return opts_.credit_window_bytes > 0; }
  /// True when the stream's head message is larger than the whole credit
  /// window (it can never fit under any grant) and everything queued before
  /// it has been credited — the one case where dispatch may overdraw the
  /// window rather than deadlock the stream.
  bool OversizedHead(const StreamState& st) const;
  /// Head-of-line messages of `st` that fit the train budget and credit
  /// limit right now (>= 1 unless credit-stalled).
  size_t TrainLength(const StreamState& st) const;
  /// Wire size of a frame carrying the first `k` queued messages.
  size_t TrainWireSize(const StreamState& st, size_t k) const;
  /// True when the stream should dispatch now; a stream with data that must
  /// wait (filling a train) reports its deadline through `wake`.
  bool ReadyToDispatch(const std::string& name, StreamState& st,
                       SimTime* wake);
  /// If the connection is idle and work is queued, dispatches the next
  /// frame per the mode's discipline.
  void MaybeDispatch();
  void DispatchTrain(const std::string& stream, size_t k, size_t extra_bytes);
  void DeliverFrame(const std::string& stream, const Message& frame);
  /// Schedules a MaybeDispatch retry at `when` (train flush deadlines and
  /// credit/partition retries), keeping only the earliest pending wake.
  void ArmWake(SimTime when);
  void SendCreditProbe(const std::string& stream, StreamState& st);
  /// Closes the stream's current credit stall, recording the window as a
  /// trace-0 kCreditWait system span (site "credit:<stream>") so the flight
  /// recorder shows when the sender was credit-blocked.
  void NoteUnstalled(const std::string& stream, StreamState& st);

  Simulation* sim_;
  OverlayNetwork* net_;
  NodeId src_;
  NodeId dst_;
  TransportOptions opts_;
  std::map<std::string, StreamState> streams_;
  std::vector<std::string> rr_order_;  // per-stream mode round-robin
  size_t rr_next_ = 0;
  bool in_flight_ = false;
  double virtual_time_ = 0.0;
  DeliveryHandler handler_;
  FlowProbeHandler probe_handler_;
  uint64_t total_wire_bytes_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t frames_sent_ = 0;
  uint64_t credit_stalls_ = 0;
  size_t peak_queued_bytes_ = 0;
  size_t peak_queued_payload_ = 0;
  bool wake_armed_ = false;
  SimTime wake_at_{};
  /// Encode scratch for the tuple-span Send (cleared per call, capacity
  /// kept warm).
  std::vector<uint8_t> encode_scratch_;
  // Registry mirrors: per-pair byte/message counters plus the process-wide
  // sender-side queueing-delay histogram and net.flow.* instruments.
  Counter* m_wire_bytes_;
  Counter* m_payload_bytes_;
  Counter* m_msgs_;
  LatencyHistogram* m_queue_delay_us_;
  Counter* m_flow_stalls_;
  Counter* m_flow_probes_;
  LatencyHistogram* m_train_msgs_;
  LatencyHistogram* m_train_tuples_;
};

}  // namespace aurora

#endif  // AURORA_NET_TRANSPORT_H_
