#include "net/overlay_network.h"

#include <algorithm>
#include <deque>

namespace aurora {

NodeId OverlayNetwork::AddNode(NodeOptions opts) {
  nodes_.push_back(NodeRt{std::move(opts), true});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<NodeId> OverlayNetwork::FindNode(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].opts.name == name) return static_cast<NodeId>(i);
  }
  return Status::NotFound("no node named '" + name + "'");
}

void OverlayNetwork::InstallLink(NodeId a, NodeId b, const LinkOptions& opts) {
  LinkRt& link = links_[{a, b}];
  link = LinkRt{opts, {}, 0, nullptr, nullptr};
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string base =
      "net.link." + std::to_string(a) + "->" + std::to_string(b) + ".";
  link.bytes_counter = reg.GetCounter(base + "bytes");
  link.msgs_counter = reg.GetCounter(base + "msgs");
}

Status OverlayNetwork::AddLink(NodeId a, NodeId b, LinkOptions opts) {
  if (a < 0 || b < 0 || a >= static_cast<int>(nodes_.size()) ||
      b >= static_cast<int>(nodes_.size()) || a == b) {
    return Status::InvalidArgument("bad link endpoints");
  }
  InstallLink(a, b, opts);
  InstallLink(b, a, opts);
  RecomputeRoutes();
  return Status::OK();
}

void OverlayNetwork::FullMesh(LinkOptions opts) {
  for (NodeId a = 0; a < static_cast<NodeId>(nodes_.size()); ++a) {
    for (NodeId b = a + 1; b < static_cast<NodeId>(nodes_.size()); ++b) {
      InstallLink(a, b, opts);
      InstallLink(b, a, opts);
    }
  }
  RecomputeRoutes();
}

bool OverlayNetwork::HasLink(NodeId a, NodeId b) const {
  return links_.count({a, b}) > 0;
}

Result<LinkOptions> OverlayNetwork::GetLinkOptions(NodeId a, NodeId b) const {
  auto it = links_.find({a, b});
  if (it == links_.end()) return Status::NotFound("no such link");
  return it->second.opts;
}

bool OverlayNetwork::NodeSupports(NodeId id, const std::string& kind) const {
  const auto& supported = nodes_[id].opts.supported_kinds;
  if (supported.empty()) return true;
  return std::find(supported.begin(), supported.end(), kind) != supported.end();
}

void OverlayNetwork::RecomputeRoutes() {
  // BFS from every node over the directed link graph (hop-count routes).
  next_hop_.clear();
  const int n = static_cast<int>(nodes_.size());
  for (NodeId src = 0; src < n; ++src) {
    std::vector<int> parent(n, -1);
    std::vector<bool> seen(n, false);
    std::deque<NodeId> frontier{src};
    seen[src] = true;
    while (!frontier.empty()) {
      NodeId at = frontier.front();
      frontier.pop_front();
      for (const auto& [key, link] : links_) {
        if (key.first != at) continue;
        NodeId next = key.second;
        if (seen[next]) continue;
        seen[next] = true;
        parent[next] = at;
        frontier.push_back(next);
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src || !seen[dst]) continue;
      // Walk back from dst to find src's neighbor on the path.
      NodeId hop = dst;
      while (parent[hop] != src) hop = parent[hop];
      next_hop_[{src, dst}] = hop;
    }
  }
}

void OverlayNetwork::TransmitHop(NodeId from, NodeId to, size_t bytes,
                                 std::function<void()> arrive) {
  auto it = links_.find({from, to});
  AURORA_CHECK(it != links_.end());
  LinkRt& link = it->second;
  SimTime start = std::max(sim_->Now(), link.busy_until);
  SimDuration tx = SimDuration::Micros(static_cast<int64_t>(
      static_cast<double>(bytes) / link.opts.bandwidth_bytes_per_sec * 1e6));
  link.busy_until = start + tx;
  link.bytes_sent += bytes;
  total_bytes_ += bytes;
  link.bytes_counter->Add(bytes);
  link.msgs_counter->Add();
  sim_->ScheduleAt(link.busy_until + link.opts.latency, std::move(arrive));
}

Status OverlayNetwork::Send(NodeId from, NodeId to, Message msg,
                            DeliveryFn on_deliver) {
  if (from < 0 || to < 0 || from >= static_cast<int>(nodes_.size()) ||
      to >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("bad node id");
  }
  if (from == to) {
    // Local delivery: no link cost, next event slot.
    sim_->Schedule(SimDuration::Micros(1),
                   [this, msg = std::move(msg), on_deliver]() {
                     messages_delivered_++;
                     m_delivered_->Add();
                     if (on_deliver) on_deliver(msg);
                   });
    return Status::OK();
  }
  msg.src = from;
  msg.dst = to;
  Forward(from, to, std::move(msg), std::move(on_deliver));
  return Status::OK();
}

void OverlayNetwork::Forward(NodeId at, NodeId to, Message msg,
                             DeliveryFn on_deliver) {
  if (!nodes_[at].up) {
    messages_dropped_++;
    m_dropped_->Add();
    return;
  }
  auto hop_it = next_hop_.find({at, to});
  if (hop_it == next_hop_.end()) {
    messages_dropped_++;
    m_dropped_->Add();
    return;
  }
  NodeId hop = hop_it->second;
  size_t bytes = msg.WireSize();
  TransmitHop(at, hop, bytes,
              [this, hop, to, msg = std::move(msg), on_deliver]() mutable {
                if (!nodes_[hop].up) {
                  messages_dropped_++;
                  m_dropped_->Add();
                  return;
                }
                if (hop == to) {
                  messages_delivered_++;
                  m_delivered_->Add();
                  if (on_deliver) on_deliver(msg);
                } else {
                  Forward(hop, to, std::move(msg), std::move(on_deliver));
                }
              });
}

SimTime OverlayNetwork::LinkBusyUntil(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  if (it == links_.end()) return SimTime::Max();
  return it->second.busy_until;
}

uint64_t OverlayNetwork::LinkBytesSent(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? 0 : it->second.bytes_sent;
}

}  // namespace aurora
