#include "net/overlay_network.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace aurora {

NodeId OverlayNetwork::AddNode(NodeOptions opts) {
  nodes_.push_back(NodeRt{std::move(opts), true});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<NodeId> OverlayNetwork::FindNode(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].opts.name == name) return static_cast<NodeId>(i);
  }
  return Status::NotFound("no node named '" + name + "'");
}

void OverlayNetwork::InstallLink(NodeId a, NodeId b, const LinkOptions& opts) {
  LinkRt& link = links_[{a, b}];
  link = LinkRt{};
  link.opts = opts;
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string base =
      "net.link." + std::to_string(a) + "->" + std::to_string(b) + ".";
  link.bytes_counter = reg.GetCounter(base + "bytes");
  link.msgs_counter = reg.GetCounter(base + "msgs");
}

Status OverlayNetwork::AddLink(NodeId a, NodeId b, LinkOptions opts) {
  if (a < 0 || b < 0 || a >= static_cast<int>(nodes_.size()) ||
      b >= static_cast<int>(nodes_.size()) || a == b) {
    return Status::InvalidArgument("bad link endpoints");
  }
  InstallLink(a, b, opts);
  InstallLink(b, a, opts);
  RecomputeRoutes();
  return Status::OK();
}

void OverlayNetwork::FullMesh(LinkOptions opts) {
  for (NodeId a = 0; a < static_cast<NodeId>(nodes_.size()); ++a) {
    for (NodeId b = a + 1; b < static_cast<NodeId>(nodes_.size()); ++b) {
      InstallLink(a, b, opts);
      InstallLink(b, a, opts);
    }
  }
  RecomputeRoutes();
}

bool OverlayNetwork::HasLink(NodeId a, NodeId b) const {
  return links_.count({a, b}) > 0;
}

Result<LinkOptions> OverlayNetwork::GetLinkOptions(NodeId a, NodeId b) const {
  auto it = links_.find({a, b});
  if (it == links_.end()) return Status::NotFound("no such link");
  return it->second.opts;
}

Status OverlayNetwork::SetLinkUp(NodeId a, NodeId b, bool up) {
  auto it = links_.find({a, b});
  if (it == links_.end()) return Status::NotFound("no such link");
  if (it->second.up != up) {
    it->second.up = up;
    RecomputeRoutes();
  }
  return Status::OK();
}

bool OverlayNetwork::IsLinkUp(NodeId a, NodeId b) const {
  auto it = links_.find({a, b});
  return it != links_.end() && it->second.up;
}

Status OverlayNetwork::SetLinkPerturbation(NodeId a, NodeId b,
                                           LinkPerturbation pert) {
  auto it = links_.find({a, b});
  if (it == links_.end()) return Status::NotFound("no such link");
  it->second.pert = pert;
  return Status::OK();
}

Result<LinkPerturbation> OverlayNetwork::GetLinkPerturbation(NodeId a,
                                                             NodeId b) const {
  auto it = links_.find({a, b});
  if (it == links_.end()) return Status::NotFound("no such link");
  return it->second.pert;
}

bool OverlayNetwork::NodeSupports(NodeId id, const std::string& kind) const {
  const auto& supported = nodes_[id].opts.supported_kinds;
  if (supported.empty()) return true;
  return std::find(supported.begin(), supported.end(), kind) != supported.end();
}

void OverlayNetwork::RecomputeRoutes() {
  // BFS from every node over the directed link graph (hop-count routes).
  next_hop_.clear();
  const int n = static_cast<int>(nodes_.size());
  for (NodeId src = 0; src < n; ++src) {
    std::vector<int> parent(n, -1);
    std::vector<bool> seen(n, false);
    std::deque<NodeId> frontier{src};
    seen[src] = true;
    while (!frontier.empty()) {
      NodeId at = frontier.front();
      frontier.pop_front();
      for (const auto& [key, link] : links_) {
        if (key.first != at || !link.up) continue;  // partitioned: no route
        NodeId next = key.second;
        if (seen[next]) continue;
        seen[next] = true;
        parent[next] = at;
        frontier.push_back(next);
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src || !seen[dst]) continue;
      // Walk back from dst to find src's neighbor on the path.
      NodeId hop = dst;
      while (parent[hop] != src) hop = parent[hop];
      next_hop_[{src, dst}] = hop;
    }
  }
}

bool OverlayNetwork::PathUp(NodeId from, NodeId to) const {
  const int n = static_cast<int>(nodes_.size());
  if (from < 0 || to < 0 || from >= n || to >= n) return false;
  if (!nodes_[from].up || !nodes_[to].up) return false;
  // Walk the next-hop chain; routes already avoid downed *links*, so only
  // downed intermediate nodes remain to be checked.
  NodeId at = from;
  while (at != to) {
    auto it = next_hop_.find({at, to});
    if (it == next_hop_.end()) return false;
    at = it->second;
    if (!nodes_[at].up) return false;
  }
  return true;
}

void OverlayNetwork::TransmitHop(NodeId from, NodeId to, size_t bytes,
                                 SimDuration extra_delay,
                                 std::function<void()> arrive) {
  auto it = links_.find({from, to});
  AURORA_CHECK(it != links_.end());
  LinkRt& link = it->second;
  SimTime start = std::max(sim_->Now(), link.busy_until);
  SimDuration tx = SimDuration::Micros(static_cast<int64_t>(
      static_cast<double>(bytes) / link.opts.bandwidth_bytes_per_sec * 1e6));
  link.busy_until = start + tx;
  link.bytes_sent += bytes;
  total_bytes_ += bytes;
  link.bytes_counter->Add(bytes);
  link.msgs_counter->Add();
  sim_->ScheduleAt(link.busy_until + link.opts.latency + extra_delay,
                   std::move(arrive));
}

Status OverlayNetwork::Send(NodeId from, NodeId to, Message msg,
                            DeliveryFn on_deliver) {
  if (from < 0 || to < 0 || from >= static_cast<int>(nodes_.size()) ||
      to >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("bad node id");
  }
  if (from == to) {
    // Local delivery: no link cost, next event slot.
    sim_->Schedule(SimDuration::Micros(1),
                   [this, msg = std::move(msg), on_deliver]() {
                     messages_delivered_++;
                     m_delivered_->Add();
                     if (on_deliver) on_deliver(msg);
                   });
    return Status::OK();
  }
  msg.src = from;
  msg.dst = to;
  Forward(from, to, std::move(msg), std::move(on_deliver));
  return Status::OK();
}

void OverlayNetwork::DropForDownNode(NodeId at, const Message& msg) {
  messages_dropped_++;
  messages_dropped_down_++;
  m_dropped_->Add();
  m_dropped_down_->Add();
  AURORA_LOG(Debug) << "dropping '" << msg.kind << "' message " << msg.src
                    << "->" << msg.dst << ": node " << at << " is down";
}

void OverlayNetwork::Forward(NodeId at, NodeId to, Message msg,
                             DeliveryFn on_deliver) {
  if (!nodes_[at].up) {
    DropForDownNode(at, msg);
    return;
  }
  auto hop_it = next_hop_.find({at, to});
  if (hop_it == next_hop_.end()) {
    messages_dropped_++;
    messages_dropped_unroutable_++;
    m_dropped_->Add();
    m_dropped_unroutable_->Add();
    AURORA_LOG(Debug) << "dropping '" << msg.kind << "' message " << msg.src
                      << "->" << msg.dst << ": no route from " << at;
    return;
  }
  NodeId hop = hop_it->second;

  // Per-link chaos (fault injection): drop, duplicate, or delay the message
  // on this hop. Rng draws happen in simulation-event order, so a fixed
  // seed replays identically.
  const LinkPerturbation& pert = links_.find({at, hop})->second.pert;
  int copies = 1;
  SimDuration extra_delay{};
  if (pert.Active()) {
    if (pert.drop_p > 0.0 && chaos_rng_.OneIn(pert.drop_p)) {
      messages_dropped_++;
      chaos_dropped_++;
      m_dropped_->Add();
      m_chaos_dropped_->Add();
      return;
    }
    if (pert.dup_p > 0.0 && chaos_rng_.OneIn(pert.dup_p)) {
      copies = 2;
      chaos_duplicated_++;
      m_chaos_duplicated_->Add();
    }
    if (pert.reorder_p > 0.0 && chaos_rng_.OneIn(pert.reorder_p)) {
      extra_delay = pert.reorder_delay;
      chaos_reordered_++;
      m_chaos_reordered_->Add();
    }
  }

  size_t bytes = msg.WireSize();
  auto make_arrival = [this, hop, to, on_deliver](Message m) {
    return [this, hop, to, m = std::move(m), on_deliver]() mutable {
      if (!nodes_[hop].up) {
        DropForDownNode(hop, m);
        return;
      }
      if (hop == to) {
        messages_delivered_++;
        m_delivered_->Add();
        if (on_deliver) on_deliver(m);
      } else {
        Forward(hop, to, std::move(m), std::move(on_deliver));
      }
    };
  };
  for (int c = 0; c < copies; ++c) {
    Message m = (c + 1 < copies) ? msg : std::move(msg);
    TransmitHop(at, hop, bytes, extra_delay, make_arrival(std::move(m)));
  }
}

SimTime OverlayNetwork::LinkBusyUntil(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  if (it == links_.end()) return SimTime::Max();
  return it->second.busy_until;
}

uint64_t OverlayNetwork::LinkBytesSent(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? 0 : it->second.bytes_sent;
}

}  // namespace aurora
