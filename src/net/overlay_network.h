#ifndef AURORA_NET_OVERLAY_NETWORK_H_
#define AURORA_NET_OVERLAY_NETWORK_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "sim/simulation.h"

namespace aurora {

/// Properties of one directed overlay link.
struct LinkOptions {
  /// Serialization rate. 10 MB/s default (fast LAN-ish for a 2003 paper).
  double bandwidth_bytes_per_sec = 10e6;
  /// One-way propagation delay.
  SimDuration latency = SimDuration::Millis(5);
};

/// Seeded chaos applied per directed link (fault-injection hooks; see
/// src/fault). Draws come from the network's perturbation Rng in
/// simulation-event order, so a fixed seed replays bit-identically.
struct LinkPerturbation {
  /// Probability a message entering the link is silently dropped.
  double drop_p = 0.0;
  /// Probability the message is transmitted twice (both copies charged).
  double dup_p = 0.0;
  /// Probability the message's delivery is delayed by `reorder_delay`, so
  /// later traffic on the link overtakes it.
  double reorder_p = 0.0;
  SimDuration reorder_delay = SimDuration::Millis(20);

  bool Active() const { return drop_p > 0.0 || dup_p > 0.0 || reorder_p > 0.0; }
};

struct NodeOptions {
  std::string name;
  /// Relative CPU speed multiplier (1.0 = reference machine). Weak sensor
  /// proxies get < 1 (paper §5.1: "some of the nodes can be very weak").
  double speed = 1.0;
  /// Operator kinds this node can execute; empty = everything. A sensor
  /// node might support only {"filter"} (§5.1's slide-a-Filter-to-a-sensor
  /// discussion).
  std::vector<std::string> supported_kinds;
};

/// \brief The simulated overlay network (paper §4): nodes, links with
/// bandwidth and latency, and multi-hop message routing.
///
/// Messages are charged for serialization time (FIFO per link) plus
/// propagation latency per hop, and are dropped when a node on the path is
/// down — failures surface exactly as silence, which is what the HA layer's
/// heartbeat protocol (§6.3) detects.
class OverlayNetwork {
 public:
  explicit OverlayNetwork(Simulation* sim) : sim_(sim) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    m_delivered_ = reg.GetCounter("net.delivered");
    m_dropped_ = reg.GetCounter("net.dropped");
    m_dropped_down_ = reg.GetCounter("net.link.dropped_down");
    m_dropped_unroutable_ = reg.GetCounter("net.link.dropped_unroutable");
    m_chaos_dropped_ = reg.GetCounter("net.chaos.dropped");
    m_chaos_duplicated_ = reg.GetCounter("net.chaos.duplicated");
    m_chaos_reordered_ = reg.GetCounter("net.chaos.reordered");
  }

  NodeId AddNode(NodeOptions opts);
  size_t num_nodes() const { return nodes_.size(); }
  const NodeOptions& node(NodeId id) const { return nodes_[id].opts; }
  Result<NodeId> FindNode(const std::string& name) const;

  /// Adds a bidirectional link (two directed links with the same options).
  Status AddLink(NodeId a, NodeId b, LinkOptions opts);
  /// Convenience: full mesh over all current nodes.
  void FullMesh(LinkOptions opts);
  bool HasLink(NodeId a, NodeId b) const;
  /// Options of the directed link, or NotFound.
  Result<LinkOptions> GetLinkOptions(NodeId a, NodeId b) const;

  /// True if the node can run an operator of this kind (§5.1 capability
  /// check before sliding a box).
  bool NodeSupports(NodeId id, const std::string& kind) const;

  /// Marks a node down (crash) or back up. Down nodes neither receive nor
  /// forward messages.
  void SetNodeUp(NodeId id, bool up) { nodes_[id].up = up; }
  bool IsNodeUp(NodeId id) const { return nodes_[id].up; }

  /// Changes a node's relative CPU speed at run time (fault injection's
  /// CPU-slowdown events; StreamNode reads the live value every step).
  void SetNodeSpeed(NodeId id, double speed) { nodes_[id].opts.speed = speed; }

  // ---- Fault-injection hooks (src/fault) --------------------------------

  /// Takes one *direction* of a link down (partition) or back up (heal) and
  /// recomputes routes. Traffic that then finds no route is dropped and
  /// counted under `net.link.dropped_unroutable`. NotFound without a link.
  Status SetLinkUp(NodeId a, NodeId b, bool up);
  bool IsLinkUp(NodeId a, NodeId b) const;

  /// Installs seeded drop/duplicate/reorder behaviour on the directed link.
  /// Overwrites any previous perturbation; a default-constructed value
  /// clears it. NotFound without a link.
  Status SetLinkPerturbation(NodeId a, NodeId b, LinkPerturbation pert);
  Result<LinkPerturbation> GetLinkPerturbation(NodeId a, NodeId b) const;

  /// Reseeds the perturbation Rng. Chaos runs call this once up front so
  /// two runs with the same seed and schedule are bit-identical.
  void SeedPerturbations(uint64_t seed) { chaos_rng_ = Rng(seed); }

  using DeliveryFn = std::function<void(const Message&)>;

  /// Sends a message from `from` toward `to` along shortest-hop routes,
  /// charging each hop's bandwidth and latency. `on_deliver` runs at the
  /// destination at delivery time; the message is silently dropped when a
  /// node on the path is down or no route exists.
  Status Send(NodeId from, NodeId to, Message msg, DeliveryFn on_deliver);

  /// Time at which the direct link from->to would finish serializing a
  /// message sent now (link FIFO backlog); SimTime::Max() without a link.
  SimTime LinkBusyUntil(NodeId from, NodeId to) const;

  /// True when a message sent now from->to would reach its destination:
  /// both endpoints up, a route exists, and every node along it is up.
  /// Flow-controlled transports poll this to *pause* instead of letting a
  /// partition drop their in-flight data.
  bool PathUp(NodeId from, NodeId to) const;

  // ---- Statistics -------------------------------------------------------

  /// Total payload+header bytes ever serialized onto the directed link.
  uint64_t LinkBytesSent(NodeId from, NodeId to) const;
  uint64_t TotalBytesSent() const { return total_bytes_; }
  uint64_t MessagesDelivered() const { return messages_delivered_; }
  uint64_t MessagesDropped() const { return messages_dropped_; }
  /// Drops caused by a down node on the path (sender, forwarder, or final
  /// hop) — the loss chaos runs assert against.
  uint64_t MessagesDroppedDown() const { return messages_dropped_down_; }
  /// Drops caused by a missing route (partitions, no link).
  uint64_t MessagesDroppedUnroutable() const {
    return messages_dropped_unroutable_;
  }
  uint64_t ChaosDropped() const { return chaos_dropped_; }
  uint64_t ChaosDuplicated() const { return chaos_duplicated_; }
  uint64_t ChaosReordered() const { return chaos_reordered_; }

 private:
  struct LinkRt {
    LinkOptions opts;
    SimTime busy_until{};
    uint64_t bytes_sent = 0;
    /// False while this direction is partitioned away.
    bool up = true;
    LinkPerturbation pert;
    // Registry mirrors, `net.link.<a>-><b>.bytes/.msgs`.
    Counter* bytes_counter = nullptr;
    Counter* msgs_counter = nullptr;
  };
  struct NodeRt {
    NodeOptions opts;
    bool up = true;
  };

  /// Creates the directed link and registers its counters.
  void InstallLink(NodeId a, NodeId b, const LinkOptions& opts);
  void RecomputeRoutes();
  /// Transmits over one directed link; schedules `arrive` at the far end
  /// `extra_delay` after the normal arrival time (reorder perturbation).
  void TransmitHop(NodeId from, NodeId to, size_t bytes,
                   SimDuration extra_delay, std::function<void()> arrive);
  void Forward(NodeId at, NodeId to, Message msg, DeliveryFn on_deliver);
  /// Bumps the shared + down-specific drop counters and debug-logs.
  void DropForDownNode(NodeId at, const Message& msg);

  Simulation* sim_;
  std::vector<NodeRt> nodes_;
  std::map<std::pair<NodeId, NodeId>, LinkRt> links_;
  /// next_hop_[{a,b}] = neighbor of a on a shortest path to b.
  std::map<std::pair<NodeId, NodeId>, NodeId> next_hop_;
  uint64_t total_bytes_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_dropped_down_ = 0;
  uint64_t messages_dropped_unroutable_ = 0;
  uint64_t chaos_dropped_ = 0;
  uint64_t chaos_duplicated_ = 0;
  uint64_t chaos_reordered_ = 0;
  /// Drives every probabilistic perturbation; reseed via SeedPerturbations.
  Rng chaos_rng_{0x9e3779b97f4a7c15ull};
  Counter* m_delivered_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Counter* m_dropped_down_ = nullptr;
  Counter* m_dropped_unroutable_ = nullptr;
  Counter* m_chaos_dropped_ = nullptr;
  Counter* m_chaos_duplicated_ = nullptr;
  Counter* m_chaos_reordered_ = nullptr;
};

}  // namespace aurora

#endif  // AURORA_NET_OVERLAY_NETWORK_H_
