#ifndef AURORA_NET_OVERLAY_NETWORK_H_
#define AURORA_NET_OVERLAY_NETWORK_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "sim/simulation.h"

namespace aurora {

/// Properties of one directed overlay link.
struct LinkOptions {
  /// Serialization rate. 10 MB/s default (fast LAN-ish for a 2003 paper).
  double bandwidth_bytes_per_sec = 10e6;
  /// One-way propagation delay.
  SimDuration latency = SimDuration::Millis(5);
};

struct NodeOptions {
  std::string name;
  /// Relative CPU speed multiplier (1.0 = reference machine). Weak sensor
  /// proxies get < 1 (paper §5.1: "some of the nodes can be very weak").
  double speed = 1.0;
  /// Operator kinds this node can execute; empty = everything. A sensor
  /// node might support only {"filter"} (§5.1's slide-a-Filter-to-a-sensor
  /// discussion).
  std::vector<std::string> supported_kinds;
};

/// \brief The simulated overlay network (paper §4): nodes, links with
/// bandwidth and latency, and multi-hop message routing.
///
/// Messages are charged for serialization time (FIFO per link) plus
/// propagation latency per hop, and are dropped when a node on the path is
/// down — failures surface exactly as silence, which is what the HA layer's
/// heartbeat protocol (§6.3) detects.
class OverlayNetwork {
 public:
  explicit OverlayNetwork(Simulation* sim) : sim_(sim) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    m_delivered_ = reg.GetCounter("net.delivered");
    m_dropped_ = reg.GetCounter("net.dropped");
  }

  NodeId AddNode(NodeOptions opts);
  size_t num_nodes() const { return nodes_.size(); }
  const NodeOptions& node(NodeId id) const { return nodes_[id].opts; }
  Result<NodeId> FindNode(const std::string& name) const;

  /// Adds a bidirectional link (two directed links with the same options).
  Status AddLink(NodeId a, NodeId b, LinkOptions opts);
  /// Convenience: full mesh over all current nodes.
  void FullMesh(LinkOptions opts);
  bool HasLink(NodeId a, NodeId b) const;
  /// Options of the directed link, or NotFound.
  Result<LinkOptions> GetLinkOptions(NodeId a, NodeId b) const;

  /// True if the node can run an operator of this kind (§5.1 capability
  /// check before sliding a box).
  bool NodeSupports(NodeId id, const std::string& kind) const;

  /// Marks a node down (crash) or back up. Down nodes neither receive nor
  /// forward messages.
  void SetNodeUp(NodeId id, bool up) { nodes_[id].up = up; }
  bool IsNodeUp(NodeId id) const { return nodes_[id].up; }

  using DeliveryFn = std::function<void(const Message&)>;

  /// Sends a message from `from` toward `to` along shortest-hop routes,
  /// charging each hop's bandwidth and latency. `on_deliver` runs at the
  /// destination at delivery time; the message is silently dropped when a
  /// node on the path is down or no route exists.
  Status Send(NodeId from, NodeId to, Message msg, DeliveryFn on_deliver);

  /// Time at which the direct link from->to would finish serializing a
  /// message sent now (link FIFO backlog); SimTime::Max() without a link.
  SimTime LinkBusyUntil(NodeId from, NodeId to) const;

  // ---- Statistics -------------------------------------------------------

  /// Total payload+header bytes ever serialized onto the directed link.
  uint64_t LinkBytesSent(NodeId from, NodeId to) const;
  uint64_t TotalBytesSent() const { return total_bytes_; }
  uint64_t MessagesDelivered() const { return messages_delivered_; }
  uint64_t MessagesDropped() const { return messages_dropped_; }

 private:
  struct LinkRt {
    LinkOptions opts;
    SimTime busy_until{};
    uint64_t bytes_sent = 0;
    // Registry mirrors, `net.link.<a>-><b>.bytes/.msgs`.
    Counter* bytes_counter = nullptr;
    Counter* msgs_counter = nullptr;
  };
  struct NodeRt {
    NodeOptions opts;
    bool up = true;
  };

  /// Creates the directed link and registers its counters.
  void InstallLink(NodeId a, NodeId b, const LinkOptions& opts);
  void RecomputeRoutes();
  /// Transmits over one directed link; schedules `arrive` at the far end.
  void TransmitHop(NodeId from, NodeId to, size_t bytes,
                   std::function<void()> arrive);
  void Forward(NodeId at, NodeId to, Message msg, DeliveryFn on_deliver);

  Simulation* sim_;
  std::vector<NodeRt> nodes_;
  std::map<std::pair<NodeId, NodeId>, LinkRt> links_;
  /// next_hop_[{a,b}] = neighbor of a on a shortest path to b.
  std::map<std::pair<NodeId, NodeId>, NodeId> next_hop_;
  uint64_t total_bytes_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  Counter* m_delivered_ = nullptr;
  Counter* m_dropped_ = nullptr;
};

}  // namespace aurora

#endif  // AURORA_NET_OVERLAY_NETWORK_H_
