#include "net/transport.h"

#include "common/logging.h"

namespace aurora {

Transport::Transport(Simulation* sim, OverlayNetwork* net, NodeId src,
                     NodeId dst, TransportOptions opts)
    : sim_(sim), net_(net), src_(src), dst_(dst), opts_(opts) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string base = "net.transport." + std::to_string(src) + "->" +
                           std::to_string(dst) + ".";
  m_wire_bytes_ = reg.GetCounter(base + "wire_bytes");
  m_payload_bytes_ = reg.GetCounter(base + "payload_bytes");
  m_msgs_ = reg.GetCounter(base + "msgs");
  m_queue_delay_us_ = reg.GetHistogram("net.transport.queue_delay_us");
  if (opts_.mode == TransportMode::kMultiplexed) {
    // One shared connection: pay setup once up front.
    total_wire_bytes_ += opts_.connection_setup_bytes;
    m_wire_bytes_->Add(opts_.connection_setup_bytes);
  }
}

Status Transport::RegisterStream(const std::string& name, double weight) {
  if (weight <= 0.0) {
    return Status::InvalidArgument("stream weight must be positive");
  }
  if (streams_.count(name)) {
    return Status::AlreadyExists("stream '" + name + "' already registered");
  }
  streams_[name].weight = weight;
  rr_order_.push_back(name);
  if (opts_.mode == TransportMode::kPerStreamConnections) {
    // Each stream opens its own connection: handshake bytes on the wire.
    total_wire_bytes_ += opts_.connection_setup_bytes;
    m_wire_bytes_->Add(opts_.connection_setup_bytes);
  }
  return Status::OK();
}

Status Transport::Send(const std::string& stream, Message msg) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("stream '" + stream + "' not registered");
  }
  msg.stream = stream;
  it->second.queued_bytes += msg.WireSize();
  it->second.queue.push_back(std::move(msg));
  it->second.enqueue_us.push_back(sim_->Now().micros());
  MaybeDispatch();
  return Status::OK();
}

void Transport::MaybeDispatch() {
  if (in_flight_) return;
  switch (opts_.mode) {
    case TransportMode::kMultiplexed: {
      // Start-time fair queuing (SFQ): serve the stream whose head-of-line
      // message has the smallest virtual *start* tag; the virtual time is
      // the start tag of the message in service. Backlogged streams then
      // share the connection in proportion to their weights.
      const std::string* best = nullptr;
      double best_start = 0.0;
      for (auto& [name, st] : streams_) {
        if (st.queue.empty()) continue;
        double start = std::max(virtual_time_, st.last_finish_tag);
        if (best == nullptr || start < best_start) {
          best = &name;
          best_start = start;
        }
      }
      if (best == nullptr) return;
      StreamState& st = streams_[*best];
      st.last_finish_tag =
          best_start +
          static_cast<double>(st.queue.front().WireSize()) / st.weight;
      virtual_time_ = best_start;
      DispatchMessage(*best, opts_.mux_tag_bytes);
      return;
    }
    case TransportMode::kPerStreamConnections: {
      // Round-robin over connections with queued data: each connection gets
      // an equal turn at the bottleneck, regardless of weight.
      size_t active = 0;
      for (const auto& [name, st] : streams_) {
        if (!st.queue.empty()) ++active;
      }
      if (active == 0) return;
      for (size_t scan = 0; scan < rr_order_.size(); ++scan) {
        const std::string& name = rr_order_[rr_next_ % rr_order_.size()];
        rr_next_++;
        StreamState& st = streams_[name];
        if (st.queue.empty()) continue;
        // Interference: extra bytes proportional to other live connections.
        size_t extra = static_cast<size_t>(
            static_cast<double>(st.queue.front().WireSize()) *
            opts_.cross_connection_interference *
            static_cast<double>(active - 1));
        DispatchMessage(name, extra);
        return;
      }
      return;
    }
  }
}

void Transport::DispatchMessage(const std::string& stream, size_t extra_bytes) {
  StreamState& st = streams_[stream];
  AURORA_CHECK(!st.queue.empty());
  Message msg = std::move(st.queue.front());
  st.queue.pop_front();
  int64_t enq_us = st.enqueue_us.front();
  st.enqueue_us.pop_front();
  m_queue_delay_us_->Record(
      static_cast<double>(sim_->Now().micros() - enq_us));
  size_t wire = msg.WireSize();
  st.queued_bytes -= wire;
  // Pad the message so the link charges the mode's overhead too.
  size_t padded = wire + extra_bytes;
  Message padded_msg = msg;
  padded_msg.payload.resize(padded_msg.payload.size() + extra_bytes);
  total_wire_bytes_ += padded;
  payload_bytes_ += msg.payload.size();
  m_wire_bytes_->Add(padded);
  m_payload_bytes_->Add(msg.payload.size());
  m_msgs_->Add();
  in_flight_ = true;
  Status st_send = net_->Send(
      src_, dst_, std::move(padded_msg),
      [this, stream, msg = std::move(msg)](const Message&) {
        StreamState& s = streams_[stream];
        s.delivered++;
        s.delivered_bytes += msg.payload.size();
        if (handler_) handler_(stream, msg);
      });
  if (!st_send.ok()) {
    AURORA_LOG(Warn) << "transport send failed: " << st_send.ToString();
  }
  // The connection frees when the link finishes serializing this message
  // (not when it is delivered — propagation is pipelined).
  SimTime free_at = net_->LinkBusyUntil(src_, dst_);
  if (free_at == SimTime::Max()) {
    // No direct link (multi-hop path): approximate with next event slot.
    free_at = sim_->Now() + SimDuration::Micros(1);
  }
  sim_->ScheduleAt(std::max(free_at, sim_->Now()), [this]() {
    in_flight_ = false;
    MaybeDispatch();
  });
}

uint64_t Transport::delivered_count(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.delivered;
}

uint64_t Transport::delivered_bytes(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.delivered_bytes;
}

size_t Transport::queued_messages() const {
  size_t n = 0;
  for (const auto& [name, st] : streams_) n += st.queue.size();
  return n;
}

size_t Transport::queued_bytes() const {
  size_t n = 0;
  for (const auto& [name, st] : streams_) n += st.queued_bytes;
  return n;
}

}  // namespace aurora
