#include "net/transport.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"
#include "tuple/serde.h"

namespace aurora {

namespace {

/// Little-endian framing helpers for train sub-messages. Each sub-message
/// is encoded as [u64 flow_offset][u32 length][payload bytes]; the frame's
/// train_count says how many to read back, so trailing link padding (mode
/// overhead bytes) is ignored by the decoder.
constexpr size_t kTrainSubHeaderBytes = 12;

void AppendU32(std::vector<uint8_t>* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) buf->push_back((v >> (8 * i)) & 0xff);
}

void AppendU64(std::vector<uint8_t>* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) buf->push_back((v >> (8 * i)) & 0xff);
}

bool ReadU32(const std::vector<uint8_t>& buf, size_t* pos, uint32_t* v) {
  if (*pos + 4 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[*pos + i]) << (8 * i);
  *pos += 4;
  return true;
}

bool ReadU64(const std::vector<uint8_t>& buf, size_t* pos, uint64_t* v) {
  if (*pos + 8 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[*pos + i]) << (8 * i);
  *pos += 8;
  return true;
}

/// Train budget units of one message: its tuple count when known, else 1.
size_t BudgetUnits(const Message& m) {
  return m.tuple_count > 0 ? m.tuple_count : 1;
}

}  // namespace

Transport::Transport(Simulation* sim, OverlayNetwork* net, NodeId src,
                     NodeId dst, TransportOptions opts)
    : sim_(sim), net_(net), src_(src), dst_(dst), opts_(opts) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string base = "net.transport." + std::to_string(src) + "->" +
                           std::to_string(dst) + ".";
  m_wire_bytes_ = reg.GetCounter(base + "wire_bytes");
  m_payload_bytes_ = reg.GetCounter(base + "payload_bytes");
  m_msgs_ = reg.GetCounter(base + "msgs");
  m_queue_delay_us_ = reg.GetHistogram("net.transport.queue_delay_us");
  m_flow_stalls_ = reg.GetCounter("net.flow.stalls");
  m_flow_probes_ = reg.GetCounter("net.flow.probes");
  m_train_msgs_ = reg.GetHistogram("net.flow.train_msgs");
  m_train_tuples_ = reg.GetHistogram("net.flow.train_tuples");
  if (opts_.mode == TransportMode::kMultiplexed) {
    // One shared connection: pay setup once up front.
    total_wire_bytes_ += opts_.connection_setup_bytes;
    m_wire_bytes_->Add(opts_.connection_setup_bytes);
  }
}

Status Transport::RegisterStream(const std::string& name, double weight) {
  if (weight <= 0.0) {
    return Status::InvalidArgument("stream weight must be positive");
  }
  if (streams_.count(name)) {
    return Status::AlreadyExists("stream '" + name + "' already registered");
  }
  StreamState& st = streams_[name];
  st.weight = weight;
  // Implicit initial grant: both sides start from one full window, so the
  // first data can flow before any credit message has crossed the wire.
  st.credit_limit = opts_.credit_window_bytes;
  rr_order_.push_back(name);
  if (opts_.mode == TransportMode::kPerStreamConnections) {
    // Each stream opens its own connection: handshake bytes on the wire.
    total_wire_bytes_ += opts_.connection_setup_bytes;
    m_wire_bytes_->Add(opts_.connection_setup_bytes);
  }
  return Status::OK();
}

Status Transport::Send(const std::string& stream, Message msg) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("stream '" + stream + "' not registered");
  }
  StreamState& st = it->second;
  msg.stream = stream;
  if (flow_enabled()) {
    st.enqueued_offset += msg.payload.size();
    msg.flow_offset = st.enqueued_offset;
  }
  st.queued_bytes += msg.WireSize();
  st.queued_payload += msg.payload.size();
  st.queue.push_back(std::move(msg));
  st.enqueue_us.push_back(sim_->Now().micros());
  peak_queued_bytes_ = std::max(peak_queued_bytes_, queued_bytes());
  peak_queued_payload_ = std::max(peak_queued_payload_, queued_payload_bytes());
  MaybeDispatch();
  return Status::OK();
}

Status Transport::Send(const std::string& stream, const Tuple* tuples,
                       size_t n) {
  Message msg;
  msg.kind = "tuples";
  msg.tuple_count = static_cast<uint32_t>(n);
  SerializeTuplesInto(tuples, n, &encode_scratch_);
  msg.payload = encode_scratch_;  // exact-size copy; scratch keeps capacity
  return Send(stream, std::move(msg));
}

void Transport::GrantCredit(const std::string& stream, uint64_t limit) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return;
  StreamState& st = it->second;
  if (limit <= st.credit_limit) return;  // stale or duplicated grant
  st.credit_limit = limit;
  if (st.stalled &&
      (st.queue.empty() || st.queue.front().flow_offset <= st.credit_limit)) {
    NoteUnstalled(stream, st);
  }
  MaybeDispatch();
}

void Transport::NoteUnstalled(const std::string& stream, StreamState& st) {
  st.stalled = false;
  if (st.stall_start_us < 0) return;
  int64_t start_us = st.stall_start_us;
  st.stall_start_us = -1;
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    tracer.Record({0, SpanKind::kCreditWait, static_cast<int>(src_),
                   "credit:" + stream, start_us, sim_->Now().micros()});
  }
}

bool Transport::StreamBlocked(const std::string& stream) const {
  if (!flow_enabled()) return false;
  auto it = streams_.find(stream);
  if (it == streams_.end()) return false;
  return it->second.enqueued_offset >= it->second.credit_limit;
}

uint64_t Transport::credit_limit(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.credit_limit;
}

uint64_t Transport::sent_offset(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.sent_offset;
}

bool Transport::OversizedHead(const StreamState& st) const {
  if (!flow_enabled() || st.queue.empty()) return false;
  const Message& m = st.queue.front();
  return m.payload.size() > opts_.credit_window_bytes &&
         m.flow_offset - m.payload.size() < st.credit_limit;
}

size_t Transport::TrainLength(const StreamState& st) const {
  const size_t budget = std::max<size_t>(1, opts_.train_size);
  size_t k = 0;
  size_t units = 0;
  for (const Message& m : st.queue) {
    if (flow_enabled() && m.flow_offset > st.credit_limit) {
      // A message bigger than the whole window can never satisfy the limit;
      // once all data before it is credited, it departs alone instead of
      // deadlocking the stream (the receiver's backlog-based grants absorb
      // the one-message overdraft).
      if (k == 0 && OversizedHead(st)) return 1;
      break;
    }
    if (k > 0 && m.kind != st.queue.front().kind) break;
    size_t u = BudgetUnits(m);
    if (k > 0 && units + u > budget) break;
    units += u;
    ++k;
    if (units >= budget) break;
  }
  return k;
}

size_t Transport::TrainWireSize(const StreamState& st, size_t k) const {
  AURORA_CHECK(k >= 1 && k <= st.queue.size());
  if (k == 1) return st.queue.front().WireSize();
  const Message& head = st.queue.front();
  size_t wire = kMessageHeaderBytes + head.kind.size() + head.stream.size();
  for (size_t i = 0; i < k; ++i) {
    wire += kTrainSubHeaderBytes + st.queue[i].payload.size();
  }
  return wire;
}

bool Transport::ReadyToDispatch(const std::string& name, StreamState& st,
                                SimTime* wake) {
  if (st.queue.empty()) return false;
  if (flow_enabled()) {
    if (!net_->PathUp(src_, dst_)) {
      // Partitioned or peer down: hold the queue (a send would be dropped
      // on the floor) and retry on a deterministic cadence.
      *wake = std::min(*wake, sim_->Now() + opts_.flow_retry_interval);
      return false;
    }
    if (st.queue.front().flow_offset > st.credit_limit &&
        !OversizedHead(st)) {
      if (!st.stalled) {
        st.stalled = true;
        st.stall_start_us = sim_->Now().micros();
        credit_stalls_++;
        m_flow_stalls_->Add();
      }
      // Probe so a lost grant (or data lost past the receiver's watermark)
      // cannot deadlock the stream.
      if (sim_->Now() >= st.next_probe_at) {
        SendCreditProbe(name, st);
        st.next_probe_at = sim_->Now() + opts_.flow_retry_interval;
      }
      *wake = std::min(*wake, st.next_probe_at);
      return false;
    }
    if (st.stalled) NoteUnstalled(name, st);
  }
  if (opts_.train_size <= 1) return true;
  // Train gating: depart when a full train is ready or the oldest message
  // has waited out the batching delay.
  size_t k = TrainLength(st);
  size_t units = 0;
  for (size_t i = 0; i < k; ++i) units += BudgetUnits(st.queue[i]);
  if (units >= opts_.train_size) return true;
  SimTime deadline =
      SimTime::Micros(st.enqueue_us.front()) + opts_.train_max_delay;
  if (sim_->Now() >= deadline) return true;
  *wake = std::min(*wake, deadline);
  return false;
}

void Transport::ArmWake(SimTime when) {
  if (when == SimTime::Max()) return;
  when = std::max(when, sim_->Now() + SimDuration::Micros(1));
  if (wake_armed_ && wake_at_ <= when) return;
  wake_armed_ = true;
  wake_at_ = when;
  sim_->ScheduleAt(when, [this, when]() {
    if (wake_at_ == when) wake_armed_ = false;
    MaybeDispatch();
  });
}

void Transport::SendCreditProbe(const std::string& stream, StreamState& st) {
  Message probe;
  probe.kind = "flow_probe";
  probe.stream = stream;
  probe.flow_offset = st.sent_offset;
  size_t wire = probe.WireSize();
  total_wire_bytes_ += wire;
  m_wire_bytes_->Add(wire);
  m_flow_probes_->Add();
  Status sent = net_->Send(src_, dst_, std::move(probe),
                           [this, stream](const Message& m) {
                             if (probe_handler_) probe_handler_(stream, m.flow_offset);
                           });
  if (!sent.ok()) {
    AURORA_LOG(Warn) << "credit probe send failed: " << sent.ToString();
  }
}

void Transport::MaybeDispatch() {
  if (in_flight_) return;
  SimTime wake = SimTime::Max();
  switch (opts_.mode) {
    case TransportMode::kMultiplexed: {
      // Start-time fair queuing (SFQ): serve the stream whose head-of-line
      // message has the smallest virtual *start* tag; the virtual time is
      // the start tag of the message in service. Backlogged streams then
      // share the connection in proportion to their weights.
      const std::string* best = nullptr;
      double best_start = 0.0;
      for (auto& [name, st] : streams_) {
        if (!ReadyToDispatch(name, st, &wake)) continue;
        double start = std::max(virtual_time_, st.last_finish_tag);
        if (best == nullptr || start < best_start) {
          best = &name;
          best_start = start;
        }
      }
      if (best == nullptr) {
        ArmWake(wake);
        return;
      }
      StreamState& st = streams_[*best];
      size_t k = TrainLength(st);
      st.last_finish_tag =
          best_start + static_cast<double>(TrainWireSize(st, k)) / st.weight;
      virtual_time_ = best_start;
      DispatchTrain(*best, k, opts_.mux_tag_bytes);
      return;
    }
    case TransportMode::kPerStreamConnections: {
      // Round-robin over connections with queued data: each connection gets
      // an equal turn at the bottleneck, regardless of weight.
      size_t active = 0;
      for (const auto& [name, st] : streams_) {
        if (!st.queue.empty()) ++active;
      }
      if (active == 0) return;
      for (size_t scan = 0; scan < rr_order_.size(); ++scan) {
        const std::string& name = rr_order_[rr_next_ % rr_order_.size()];
        rr_next_++;
        StreamState& st = streams_[name];
        if (!ReadyToDispatch(name, st, &wake)) continue;
        size_t k = TrainLength(st);
        // Interference: extra bytes proportional to other live connections.
        size_t extra = static_cast<size_t>(
            static_cast<double>(TrainWireSize(st, k)) *
            opts_.cross_connection_interference *
            static_cast<double>(active - 1));
        DispatchTrain(name, k, extra);
        return;
      }
      ArmWake(wake);
      return;
    }
  }
}

void Transport::DispatchTrain(const std::string& stream, size_t k,
                              size_t extra_bytes) {
  StreamState& st = streams_[stream];
  AURORA_CHECK(!st.queue.empty() && k >= 1 && k <= st.queue.size());
  std::vector<Message> subs;
  subs.reserve(k);
  size_t sub_payload = 0;
  size_t sub_wire = 0;
  uint32_t tuples = 0;
  for (size_t i = 0; i < k; ++i) {
    Message m = std::move(st.queue.front());
    st.queue.pop_front();
    int64_t enq_us = st.enqueue_us.front();
    st.enqueue_us.pop_front();
    m_queue_delay_us_->Record(
        static_cast<double>(sim_->Now().micros() - enq_us));
    sub_payload += m.payload.size();
    sub_wire += m.WireSize();
    tuples += BudgetUnits(m);
    subs.push_back(std::move(m));
  }
  st.queued_bytes -= sub_wire;
  st.queued_payload -= sub_payload;

  Message frame;
  if (k == 1) {
    frame = subs.front();
  } else {
    // One framed train: the fixed header, kind, and stream are paid once;
    // each coalesced message costs only the 12-byte sub-header.
    frame.kind = subs.front().kind;
    frame.stream = stream;
    frame.train_count = static_cast<uint32_t>(k);
    frame.payload.reserve(sub_payload + k * kTrainSubHeaderBytes);
    for (const Message& m : subs) {
      AppendU64(&frame.payload, m.flow_offset);
      AppendU32(&frame.payload, static_cast<uint32_t>(m.payload.size()));
      frame.payload.insert(frame.payload.end(), m.payload.begin(),
                           m.payload.end());
    }
  }
  frame.tuple_count = tuples;
  frame.flow_offset = subs.back().flow_offset;
  if (flow_enabled()) st.sent_offset = subs.back().flow_offset;

  // The mode's overhead rides as accounted padding (Message::pad_bytes), so
  // no padded copy of the payload is ever materialized.
  frame.pad_bytes = extra_bytes;
  size_t padded = frame.WireSize();
  total_wire_bytes_ += padded;
  payload_bytes_ += sub_payload;
  frames_sent_++;
  m_wire_bytes_->Add(padded);
  m_payload_bytes_->Add(sub_payload);
  m_msgs_->Add();
  m_train_msgs_->Record(static_cast<double>(k));
  m_train_tuples_->Record(static_cast<double>(tuples));
  in_flight_ = true;
  Status st_send = net_->Send(
      src_, dst_, std::move(frame),
      [this, stream](const Message& delivered) {
        DeliverFrame(stream, delivered);
      });
  if (!st_send.ok()) {
    AURORA_LOG(Warn) << "transport send failed: " << st_send.ToString();
  }
  // The connection frees when the link finishes serializing this message
  // (not when it is delivered — propagation is pipelined).
  SimTime free_at = net_->LinkBusyUntil(src_, dst_);
  if (free_at == SimTime::Max()) {
    // No direct link (multi-hop path): approximate with next event slot.
    free_at = sim_->Now() + SimDuration::Micros(1);
  }
  sim_->ScheduleAt(std::max(free_at, sim_->Now()), [this]() {
    in_flight_ = false;
    MaybeDispatch();
  });
}

void Transport::DeliverFrame(const std::string& stream, const Message& frame) {
  StreamState& st = streams_[stream];
  if (frame.train_count <= 1) {
    st.delivered++;
    st.delivered_bytes += frame.payload.size();
    if (handler_) handler_(stream, frame);
    return;
  }
  // Unpack the train: one delivery per original message, in order.
  size_t pos = 0;
  for (uint32_t i = 0; i < frame.train_count; ++i) {
    Message sub;
    uint32_t len = 0;
    if (!ReadU64(frame.payload, &pos, &sub.flow_offset) ||
        !ReadU32(frame.payload, &pos, &len) ||
        pos + len > frame.payload.size()) {
      AURORA_LOG(Error) << "transport: corrupt train frame on stream '"
                        << stream << "'";
      return;
    }
    sub.kind = frame.kind;
    sub.stream = stream;
    sub.src = frame.src;
    sub.dst = frame.dst;
    sub.payload.assign(frame.payload.begin() + pos,
                       frame.payload.begin() + pos + len);
    pos += len;
    st.delivered++;
    st.delivered_bytes += len;
    if (handler_) handler_(stream, sub);
  }
}

uint64_t Transport::delivered_count(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.delivered;
}

uint64_t Transport::delivered_bytes(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.delivered_bytes;
}

size_t Transport::queued_messages() const {
  size_t n = 0;
  for (const auto& [name, st] : streams_) n += st.queue.size();
  return n;
}

size_t Transport::queued_bytes() const {
  size_t n = 0;
  for (const auto& [name, st] : streams_) n += st.queued_bytes;
  return n;
}

size_t Transport::queued_bytes(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.queued_bytes;
}

size_t Transport::queued_payload_bytes() const {
  size_t n = 0;
  for (const auto& [name, st] : streams_) n += st.queued_payload;
  return n;
}

}  // namespace aurora
