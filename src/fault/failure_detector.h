#ifndef AURORA_FAULT_FAILURE_DETECTOR_H_
#define AURORA_FAULT_FAILURE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"

namespace aurora {

struct FailureDetectorOptions {
  /// Silence longer than this makes a watched endpoint suspect (§6.3: "if a
  /// server has not heard from its downstream neighbor in a while, then it
  /// assumes that neighbor has failed").
  SimDuration timeout = SimDuration::Millis(250);
  /// Consecutive silent CheckSilence rounds (past the timeout) required
  /// before a suspicion is raised. 1 = declare on the first silent check;
  /// higher values trade detection latency for robustness to one-off
  /// heartbeat loss on a perturbed link.
  int suspicion_threshold = 1;
};

/// \brief Timeout-based heartbeat failure detector (paper §6.3).
///
/// One implementation shared by the HA layer (upstream backup watches its
/// downstream neighbours) and the Medusa layer (buyers watch the seller
/// nodes of availability-guaranteed contracts), instead of each keeping
/// private silence timers. The detector is passive: callers feed it
/// Arm/RecordHeartbeat/CheckSilence events on their own schedule, so it
/// runs entirely inside the deterministic simulation.
///
/// Endpoints are opaque ints — NodeIds for HA, any caller-chosen id space
/// elsewhere. Suspicion is tracked per *watched* endpoint (deduped across
/// watchers): one live heartbeat from any watcher refutes it.
class HeartbeatFailureDetector {
 public:
  using EndpointId = int;

  /// A (watcher, watched) pair that newly crossed the suspicion threshold.
  struct Suspicion {
    EndpointId watcher = -1;
    EndpointId watched = -1;
    /// Last time the watcher heard the watched endpoint (arm time if never).
    SimTime last_heard{};
  };

  explicit HeartbeatFailureDetector(FailureDetectorOptions opts = {})
      : opts_(opts) {}

  const FailureDetectorOptions& options() const { return opts_; }

  /// Starts watching `watched` from `watcher`, granting a full timeout's
  /// grace from `now`. No-op when the pair is already armed.
  void Arm(EndpointId watcher, EndpointId watched, SimTime now);
  /// Stops watching the pair (clean shutdown of a binding). Pending silence
  /// state is discarded so the pair can never raise a spurious suspicion.
  void Disarm(EndpointId watcher, EndpointId watched);
  /// Drops every pair watching `watched` plus its suspicion entry — called
  /// when the endpoint is decommissioned or taken over by recovery.
  void ForgetWatched(EndpointId watched);
  /// Drops every pair where `watcher` does the watching — called when the
  /// watcher itself goes down, so a dead watcher's stale silence can't
  /// convict its live neighbours.
  void ForgetWatcher(EndpointId watcher);
  /// Drops all state (detector shutdown).
  void Clear();

  bool IsArmed(EndpointId watcher, EndpointId watched) const {
    return pairs_.count({watcher, watched}) > 0;
  }
  size_t armed_pairs() const { return pairs_.size(); }

  /// A heartbeat from `watched` reached `watcher` at `now`. Arms the pair
  /// if new, resets its silence, and retracts any standing suspicion of
  /// `watched` (a live heartbeat refutes failure).
  void RecordHeartbeat(EndpointId watcher, EndpointId watched, SimTime now);

  /// Evaluates every armed pair at `now`; returns the pairs that newly
  /// became suspect this round, at most one per watched endpoint. Already-
  /// suspected endpoints are not re-reported.
  std::vector<Suspicion> CheckSilence(SimTime now);

  bool IsSuspected(EndpointId watched) const {
    return suspected_.count(watched) > 0;
  }
  /// Retracts a suspicion (e.g. after recovery re-admits the endpoint).
  void ClearSuspicion(EndpointId watched) { suspected_.erase(watched); }

  /// When the watcher last heard the watched endpoint; NotFound while the
  /// pair is not armed.
  Result<SimTime> LastHeard(EndpointId watcher, EndpointId watched) const;

  /// Total suspicions ever raised (monotonic; spurious ones included).
  uint64_t suspicions_raised() const { return suspicions_raised_; }

 private:
  struct PairState {
    SimTime last_heard{};
    int silent_checks = 0;
  };

  FailureDetectorOptions opts_;
  std::map<std::pair<EndpointId, EndpointId>, PairState> pairs_;
  std::set<EndpointId> suspected_;
  uint64_t suspicions_raised_ = 0;
};

}  // namespace aurora

#endif  // AURORA_FAULT_FAILURE_DETECTOR_H_
