#ifndef AURORA_FAULT_FAULT_PLAN_H_
#define AURORA_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"

namespace aurora {

/// What one scheduled fault event does to the running system.
enum class FaultEventKind {
  kCrash,        ///< node goes down; its volatile sender state is wiped
  kRestart,      ///< node re-joins the overlay (HA recovery has moved on)
  kPartition,    ///< both directions of a link go down; routes recompute
  kHeal,         ///< the partitioned link comes back; routes recompute
  kPerturbLink,  ///< set drop/duplicate/reorder probabilities on a link
  kSlowNode,     ///< multiply the node's CPU speed by a factor
};

const char* FaultEventKindName(FaultEventKind kind);

/// One timed entry of a FaultPlan. Field use depends on `kind`:
/// crash/restart/slow use `node`; partition/heal/perturb use `a`/`b`
/// (applied to both directions of the link).
struct FaultEvent {
  SimTime at{};
  FaultEventKind kind = FaultEventKind::kCrash;
  int node = -1;
  int a = -1;
  int b = -1;
  /// kPerturbLink probabilities, all in [0, 1].
  double drop_p = 0.0;
  double dup_p = 0.0;
  double reorder_p = 0.0;
  /// Extra delay a reordered message suffers (later traffic overtakes it).
  SimDuration reorder_delay = SimDuration::Millis(20);
  /// kSlowNode: new relative CPU speed multiplier (0.5 = half speed).
  double speed_factor = 1.0;
};

/// \brief Declarative chaos schedule: a list of timed fault events that
/// benches and tests share, parseable from a small line-based text spec.
///
/// Spec format — one event per line, `#` comments and blank lines ignored;
/// times accept `us`, `ms`, or `s` suffixes:
///
///   at 500ms crash 2
///   at 900ms restart 2
///   at 1s   partition 0 1
///   at 2s   heal 0 1
///   at 0ms  perturb 0 1 drop=0.05 dup=0.02 reorder=0.1 reorder_delay=20ms
///   at 1s   slow 1 0.5
///
/// Events sort by time (stable: spec order breaks ties), so a plan applied
/// to the deterministic simulation always replays identically.
class FaultPlan {
 public:
  /// Parses the text spec; returns InvalidArgument with the offending line
  /// on malformed input.
  static Result<FaultPlan> Parse(const std::string& spec);

  /// Builds a plan from an explicit event list (time-sorted on entry). The
  /// scenario shrinker uses this to re-assemble plans with events removed.
  static FaultPlan FromEvents(std::vector<FaultEvent> events);

  // ---- Programmatic builder (same events the parser produces) ------------

  FaultPlan& CrashAt(SimTime at, int node);
  FaultPlan& RestartAt(SimTime at, int node);
  FaultPlan& PartitionAt(SimTime at, int a, int b);
  FaultPlan& HealAt(SimTime at, int a, int b);
  FaultPlan& PerturbLinkAt(SimTime at, int a, int b, double drop_p,
                           double dup_p = 0.0, double reorder_p = 0.0,
                           SimDuration reorder_delay = SimDuration::Millis(20));
  FaultPlan& SlowNodeAt(SimTime at, int node, double speed_factor);
  FaultPlan& Add(FaultEvent event);

  /// Events in time order (stable on insertion order at equal times).
  const std::vector<FaultEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Round-trips the plan back to the text spec format (Parse(ToSpec())
  /// yields an equivalent plan).
  std::string ToSpec() const;

  /// True when the plan can destroy accepted tuples: any crash (volatile
  /// buffers wiped), or a perturbation with a nonzero drop or reorder
  /// probability (reordered data lands below the receiver's dedup watermark
  /// and is suppressed). Duplication alone is lossless — dedup absorbs it.
  bool Lossy() const;

  /// True when every injected condition is lifted again by a later event:
  /// crashes are restarted, partitions healed, perturbations cleared (a
  /// perturb with all-zero probabilities), slowdowns restored to factor 1.
  /// Only plans that end healthy can be drained to quiescence and checked
  /// for end-state conservation invariants.
  bool EndsHealthy() const;

 private:
  void SortByTime();

  std::vector<FaultEvent> events_;
};

}  // namespace aurora

#endif  // AURORA_FAULT_FAULT_PLAN_H_
