#include "fault/injector.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace aurora {

Injector::Injector(AuroraStarSystem* system, FaultPlan plan,
                   InjectorOptions opts)
    : system_(system), plan_(std::move(plan)), opts_(opts) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_crashes_ = reg.GetCounter("fault.crashes");
  m_restarts_ = reg.GetCounter("fault.restarts");
  m_partitions_ = reg.GetCounter("fault.partitions");
  m_heals_ = reg.GetCounter("fault.heals");
  m_perturbations_ = reg.GetCounter("fault.perturbations");
  m_slowdowns_ = reg.GetCounter("fault.slowdowns");
  m_tuples_lost_ = reg.GetCounter("fault.tuples_lost");
  m_mttd_ms_ = reg.GetHistogram("fault.mttd_ms");
  m_mttr_ms_ = reg.GetHistogram("fault.mttr_ms");
}

Status Injector::Arm() {
  if (armed_) return Status::FailedPrecondition("already armed");
  armed_ = true;
  system_->net()->SeedPerturbations(opts_.seed);
  if (opts_.ha != nullptr) {
    opts_.ha->SetFailureObserver(
        [this](NodeId failed, NodeId /*watcher*/, SimTime detected_at) {
          auto it = crash_time_.find(failed);
          if (it == crash_time_.end()) return;  // not one of ours
          double ms = (detected_at - it->second).seconds() * 1e3;
          mttd_ms_.push_back(ms);
          m_mttd_ms_->Record(ms);
        });
    opts_.ha->SetRecoveryObserver(
        [this](NodeId failed, NodeId /*backup*/, SimTime recovered_at) {
          auto it = crash_time_.find(failed);
          if (it == crash_time_.end()) return;
          double ms = (recovered_at - it->second).seconds() * 1e3;
          mttr_ms_.push_back(ms);
          m_mttr_ms_->Record(ms);
        });
  }
  Simulation* sim = system_->sim();
  for (const FaultEvent& ev : plan_.events()) {
    if (ev.at < sim->Now()) {
      return Status::InvalidArgument("fault event scheduled in the past");
    }
    sim->ScheduleAt(ev.at, [this, ev]() { Apply(ev); });
  }
  return Status::OK();
}

void Injector::RecordFaultSpan(const FaultEvent& ev) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  int node = ev.node >= 0 ? ev.node : ev.a;
  std::string site = std::string("inject:") + FaultEventKindName(ev.kind);
  if (ev.node >= 0) {
    site += ":" + std::to_string(ev.node);
  } else {
    site += ":" + std::to_string(ev.a) + "-" + std::to_string(ev.b);
  }
  SimTime now = system_->sim()->Now();
  tracer.Record({0, SpanKind::kFault, node, site, now.micros(), now.micros()});
}

void Injector::Apply(const FaultEvent& ev) {
  OverlayNetwork* net = system_->net();
  switch (ev.kind) {
    case FaultEventKind::kCrash: {
      size_t lost = system_->node(ev.node).Crash();
      tuples_lost_ += lost;
      if (lost > 0) m_tuples_lost_->Add(lost);
      crash_time_[ev.node] = system_->sim()->Now();
      crashes_++;
      m_crashes_->Add();
      break;
    }
    case FaultEventKind::kRestart: {
      StreamNode& node = system_->node(ev.node);
      node.SetUp(true);
      if (node.has_durable_storage()) {
        Status st = node.RecoverDurableState();
        if (!st.ok()) {
          AURORA_LOG(Error) << "fault restart " << ev.node
                            << ": durable recovery failed: " << st.ToString();
        }
      }
      restarts_++;
      m_restarts_->Add();
      break;
    }
    case FaultEventKind::kPartition:
    case FaultEventKind::kHeal: {
      bool up = ev.kind == FaultEventKind::kHeal;
      Status st1 = net->SetLinkUp(ev.a, ev.b, up);
      Status st2 = net->SetLinkUp(ev.b, ev.a, up);
      if (!st1.ok() || !st2.ok()) {
        AURORA_LOG(Error) << "fault " << FaultEventKindName(ev.kind) << " "
                          << ev.a << "<->" << ev.b << ": "
                          << (st1.ok() ? st2 : st1).ToString();
        return;
      }
      if (up) {
        heals_++;
        m_heals_->Add();
      } else {
        partitions_++;
        m_partitions_->Add();
      }
      break;
    }
    case FaultEventKind::kPerturbLink: {
      LinkPerturbation pert;
      pert.drop_p = ev.drop_p;
      pert.dup_p = ev.dup_p;
      pert.reorder_p = ev.reorder_p;
      pert.reorder_delay = ev.reorder_delay;
      Status st1 = net->SetLinkPerturbation(ev.a, ev.b, pert);
      Status st2 = net->SetLinkPerturbation(ev.b, ev.a, pert);
      if (!st1.ok() || !st2.ok()) {
        AURORA_LOG(Error) << "fault perturb " << ev.a << "<->" << ev.b << ": "
                          << (st1.ok() ? st2 : st1).ToString();
        return;
      }
      perturbations_++;
      m_perturbations_->Add();
      break;
    }
    case FaultEventKind::kSlowNode:
      net->SetNodeSpeed(ev.node, net->node(ev.node).speed * ev.speed_factor);
      slowdowns_++;
      m_slowdowns_->Add();
      break;
  }
  RecordFaultSpan(ev);
}

}  // namespace aurora
