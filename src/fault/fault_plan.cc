#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace aurora {

namespace {

/// "500ms" / "2s" / "250us" -> SimTime; false on malformed input.
bool ParseTime(const std::string& token, SimTime* out) {
  size_t unit_at = token.find_first_not_of("0123456789.-");
  if (unit_at == std::string::npos || unit_at == 0) return false;
  double value = 0.0;
  try {
    value = std::stod(token.substr(0, unit_at));
  } catch (...) {
    return false;
  }
  if (value < 0.0) return false;
  std::string unit = token.substr(unit_at);
  if (unit == "us") {
    *out = SimTime::Micros(static_cast<int64_t>(value));
  } else if (unit == "ms") {
    *out = SimTime::Micros(static_cast<int64_t>(value * 1e3));
  } else if (unit == "s") {
    *out = SimTime::Micros(static_cast<int64_t>(value * 1e6));
  } else {
    return false;
  }
  return true;
}

bool ParseProbability(const std::string& token, double* out) {
  try {
    *out = std::stod(token);
  } catch (...) {
    return false;
  }
  return *out >= 0.0 && *out <= 1.0;
}

std::string FormatTime(SimTime t) {
  int64_t us = t.micros();
  char buf[32];
  if (us % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(us / 1000000));
  } else if (us % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace

const char* FaultEventKindName(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kCrash:
      return "crash";
    case FaultEventKind::kRestart:
      return "restart";
    case FaultEventKind::kPartition:
      return "partition";
    case FaultEventKind::kHeal:
      return "heal";
    case FaultEventKind::kPerturbLink:
      return "perturb";
    case FaultEventKind::kSlowNode:
      return "slow";
  }
  return "?";
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream lines(spec);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    line_no++;
    // Strip comments, then tokenize.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream tokens(line);
    std::vector<std::string> tok;
    std::string t;
    while (tokens >> t) tok.push_back(t);
    if (tok.empty()) continue;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("fault plan line " +
                                     std::to_string(line_no) + ": " + why);
    };
    if (tok.size() < 3 || tok[0] != "at") {
      return fail("expected 'at <time> <event> ...'");
    }
    FaultEvent ev;
    if (!ParseTime(tok[1], &ev.at)) return fail("bad time '" + tok[1] + "'");
    const std::string& kind = tok[2];
    auto node_arg = [&](size_t i, int* out) {
      try {
        *out = std::stoi(tok.at(i));
      } catch (...) {
        return false;
      }
      return *out >= 0;
    };
    if (kind == "crash" || kind == "restart") {
      if (tok.size() != 4 || !node_arg(3, &ev.node)) {
        return fail("expected '" + kind + " <node>'");
      }
      ev.kind = kind == "crash" ? FaultEventKind::kCrash
                                : FaultEventKind::kRestart;
    } else if (kind == "partition" || kind == "heal") {
      if (tok.size() != 5 || !node_arg(3, &ev.a) || !node_arg(4, &ev.b)) {
        return fail("expected '" + kind + " <a> <b>'");
      }
      ev.kind = kind == "partition" ? FaultEventKind::kPartition
                                    : FaultEventKind::kHeal;
    } else if (kind == "perturb") {
      if (tok.size() < 5 || !node_arg(3, &ev.a) || !node_arg(4, &ev.b)) {
        return fail("expected 'perturb <a> <b> [drop=p] [dup=p] [reorder=p]'");
      }
      ev.kind = FaultEventKind::kPerturbLink;
      for (size_t i = 5; i < tok.size(); ++i) {
        size_t eq = tok[i].find('=');
        if (eq == std::string::npos) return fail("bad option '" + tok[i] + "'");
        std::string key = tok[i].substr(0, eq);
        std::string val = tok[i].substr(eq + 1);
        bool ok = true;
        if (key == "drop") {
          ok = ParseProbability(val, &ev.drop_p);
        } else if (key == "dup") {
          ok = ParseProbability(val, &ev.dup_p);
        } else if (key == "reorder") {
          ok = ParseProbability(val, &ev.reorder_p);
        } else if (key == "reorder_delay") {
          ok = ParseTime(val, &ev.reorder_delay);
        } else {
          return fail("unknown perturb option '" + key + "'");
        }
        if (!ok) return fail("bad value '" + val + "' for '" + key + "'");
      }
    } else if (kind == "slow") {
      if (tok.size() != 5 || !node_arg(3, &ev.node)) {
        return fail("expected 'slow <node> <factor>'");
      }
      try {
        ev.speed_factor = std::stod(tok[4]);
      } catch (...) {
        return fail("bad speed factor '" + tok[4] + "'");
      }
      if (ev.speed_factor <= 0.0) return fail("speed factor must be > 0");
      ev.kind = FaultEventKind::kSlowNode;
    } else {
      return fail("unknown event '" + kind + "'");
    }
    plan.events_.push_back(ev);
  }
  plan.SortByTime();
  return plan;
}

FaultPlan FaultPlan::FromEvents(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.events_ = std::move(events);
  plan.SortByTime();
  return plan;
}

bool FaultPlan::Lossy() const {
  for (const FaultEvent& ev : events_) {
    if (ev.kind == FaultEventKind::kCrash) return true;
    if (ev.kind == FaultEventKind::kPerturbLink &&
        (ev.drop_p > 0.0 || ev.reorder_p > 0.0)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::EndsHealthy() const {
  std::set<int> down;
  std::set<std::pair<int, int>> cut;
  std::set<std::pair<int, int>> perturbed;
  std::map<int, double> speed;  // cumulative multiplier (slow is ×factor)
  auto link = [](int a, int b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (const FaultEvent& ev : events_) {
    switch (ev.kind) {
      case FaultEventKind::kCrash:
        down.insert(ev.node);
        break;
      case FaultEventKind::kRestart:
        down.erase(ev.node);
        break;
      case FaultEventKind::kPartition:
        cut.insert(link(ev.a, ev.b));
        break;
      case FaultEventKind::kHeal:
        cut.erase(link(ev.a, ev.b));
        break;
      case FaultEventKind::kPerturbLink:
        if (ev.drop_p > 0.0 || ev.dup_p > 0.0 || ev.reorder_p > 0.0) {
          perturbed.insert(link(ev.a, ev.b));
        } else {
          perturbed.erase(link(ev.a, ev.b));
        }
        break;
      case FaultEventKind::kSlowNode:
        speed.emplace(ev.node, 1.0).first->second *= ev.speed_factor;
        break;
    }
  }
  for (const auto& [node, factor] : speed) {
    if (std::abs(factor - 1.0) > 1e-9) return false;
  }
  return down.empty() && cut.empty() && perturbed.empty();
}

FaultPlan& FaultPlan::CrashAt(SimTime at, int node) {
  return Add({at, FaultEventKind::kCrash, node});
}

FaultPlan& FaultPlan::RestartAt(SimTime at, int node) {
  return Add({at, FaultEventKind::kRestart, node});
}

FaultPlan& FaultPlan::PartitionAt(SimTime at, int a, int b) {
  FaultEvent ev{at, FaultEventKind::kPartition};
  ev.a = a;
  ev.b = b;
  return Add(ev);
}

FaultPlan& FaultPlan::HealAt(SimTime at, int a, int b) {
  FaultEvent ev{at, FaultEventKind::kHeal};
  ev.a = a;
  ev.b = b;
  return Add(ev);
}

FaultPlan& FaultPlan::PerturbLinkAt(SimTime at, int a, int b, double drop_p,
                                    double dup_p, double reorder_p,
                                    SimDuration reorder_delay) {
  FaultEvent ev{at, FaultEventKind::kPerturbLink};
  ev.a = a;
  ev.b = b;
  ev.drop_p = drop_p;
  ev.dup_p = dup_p;
  ev.reorder_p = reorder_p;
  ev.reorder_delay = reorder_delay;
  return Add(ev);
}

FaultPlan& FaultPlan::SlowNodeAt(SimTime at, int node, double speed_factor) {
  FaultEvent ev{at, FaultEventKind::kSlowNode, node};
  ev.speed_factor = speed_factor;
  return Add(ev);
}

FaultPlan& FaultPlan::Add(FaultEvent event) {
  events_.push_back(event);
  SortByTime();
  return *this;
}

void FaultPlan::SortByTime() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
}

std::string FaultPlan::ToSpec() const {
  std::ostringstream os;
  for (const FaultEvent& ev : events_) {
    os << "at " << FormatTime(ev.at) << " " << FaultEventKindName(ev.kind);
    switch (ev.kind) {
      case FaultEventKind::kCrash:
      case FaultEventKind::kRestart:
        os << " " << ev.node;
        break;
      case FaultEventKind::kPartition:
      case FaultEventKind::kHeal:
        os << " " << ev.a << " " << ev.b;
        break;
      case FaultEventKind::kPerturbLink:
        os << " " << ev.a << " " << ev.b << " drop=" << ev.drop_p
           << " dup=" << ev.dup_p << " reorder=" << ev.reorder_p
           << " reorder_delay=" << FormatTime(ev.reorder_delay);
        break;
      case FaultEventKind::kSlowNode:
        os << " " << ev.node << " " << ev.speed_factor;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace aurora
