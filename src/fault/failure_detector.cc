#include "fault/failure_detector.h"

namespace aurora {

void HeartbeatFailureDetector::Arm(EndpointId watcher, EndpointId watched,
                                   SimTime now) {
  auto key = std::make_pair(watcher, watched);
  if (pairs_.count(key)) return;
  pairs_[key] = PairState{now, 0};
}

void HeartbeatFailureDetector::Disarm(EndpointId watcher, EndpointId watched) {
  pairs_.erase({watcher, watched});
}

void HeartbeatFailureDetector::ForgetWatched(EndpointId watched) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    if (it->first.second == watched) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
  suspected_.erase(watched);
}

void HeartbeatFailureDetector::ForgetWatcher(EndpointId watcher) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    if (it->first.first == watcher) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
}

void HeartbeatFailureDetector::Clear() {
  pairs_.clear();
  suspected_.clear();
}

void HeartbeatFailureDetector::RecordHeartbeat(EndpointId watcher,
                                               EndpointId watched,
                                               SimTime now) {
  PairState& state = pairs_[{watcher, watched}];
  state.last_heard = now;
  state.silent_checks = 0;
  suspected_.erase(watched);
}

std::vector<HeartbeatFailureDetector::Suspicion>
HeartbeatFailureDetector::CheckSilence(SimTime now) {
  std::vector<Suspicion> fresh;
  std::set<EndpointId> reported_this_round;
  for (auto& [key, state] : pairs_) {
    const auto& [watcher, watched] = key;
    if (now - state.last_heard <= opts_.timeout) {
      state.silent_checks = 0;
      continue;
    }
    state.silent_checks++;
    if (state.silent_checks < opts_.suspicion_threshold) continue;
    if (suspected_.count(watched) || reported_this_round.count(watched)) {
      continue;
    }
    reported_this_round.insert(watched);
    fresh.push_back(Suspicion{watcher, watched, state.last_heard});
  }
  for (const Suspicion& s : fresh) {
    suspected_.insert(s.watched);
    suspicions_raised_++;
  }
  return fresh;
}

Result<SimTime> HeartbeatFailureDetector::LastHeard(EndpointId watcher,
                                                    EndpointId watched) const {
  auto it = pairs_.find({watcher, watched});
  if (it == pairs_.end()) return Status::NotFound("pair is not armed");
  return it->second.last_heard;
}

}  // namespace aurora
