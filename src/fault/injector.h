#ifndef AURORA_FAULT_INJECTOR_H_
#define AURORA_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "fault/fault_plan.h"
#include "ha/upstream_backup.h"
#include "obs/metrics.h"

namespace aurora {

struct InjectorOptions {
  /// Seeds the overlay's chaos RNG before any event applies, so two runs of
  /// the same plan + seed replay bit-for-bit.
  uint64_t seed = 1;
  /// When set, the injector wires MTTD/MTTR instrumentation through the
  /// manager's failure/recovery observers (crash time is only known here).
  HaManager* ha = nullptr;
};

/// \brief Applies a FaultPlan to a running Aurora* system.
///
/// Arm() schedules every plan event on the deterministic simulation:
/// crashes call StreamNode::Crash (down + volatile-state wipe), restarts
/// re-join the overlay, partitions/heals flip both directions of a link
/// (routes recompute), perturbations install seeded per-link drop/dup/
/// reorder probabilities, and slowdowns scale a node's CPU multiplier.
/// Each applied event is counted, mirrored into the metrics registry
/// (fault.* counters, fault.mttd_ms / fault.mttr_ms histograms), and — when
/// tracing is on — recorded as a SpanKind::kFault system span.
class Injector {
 public:
  Injector(AuroraStarSystem* system, FaultPlan plan, InjectorOptions opts = {});

  /// Seeds the chaos RNG and schedules all plan events. Call once, before
  /// running the simulation past the plan's first event time.
  Status Arm();

  const FaultPlan& plan() const { return plan_; }

  // ---- Statistics --------------------------------------------------------

  int crashes() const { return crashes_; }
  int restarts() const { return restarts_; }
  int partitions() const { return partitions_; }
  int heals() const { return heals_; }
  int perturbations() const { return perturbations_; }
  int slowdowns() const { return slowdowns_; }
  int events_applied() const {
    return crashes_ + restarts_ + partitions_ + heals_ + perturbations_ +
           slowdowns_;
  }
  /// Tuples wiped from crashed nodes' volatile buffers, summed.
  uint64_t tuples_lost() const { return tuples_lost_; }
  /// Detection latencies (crash -> HA detection) observed so far, in ms.
  const std::vector<double>& mttd_ms() const { return mttd_ms_; }
  /// Recovery latencies (crash -> HA recovery complete), in ms.
  const std::vector<double>& mttr_ms() const { return mttr_ms_; }

 private:
  void Apply(const FaultEvent& ev);
  void RecordFaultSpan(const FaultEvent& ev);

  AuroraStarSystem* system_;
  FaultPlan plan_;
  InjectorOptions opts_;
  bool armed_ = false;
  /// When each node last crashed (MTTD/MTTR baselines).
  std::map<NodeId, SimTime> crash_time_;
  int crashes_ = 0;
  int restarts_ = 0;
  int partitions_ = 0;
  int heals_ = 0;
  int perturbations_ = 0;
  int slowdowns_ = 0;
  uint64_t tuples_lost_ = 0;
  std::vector<double> mttd_ms_;
  std::vector<double> mttr_ms_;
  Counter* m_crashes_;
  Counter* m_restarts_;
  Counter* m_partitions_;
  Counter* m_heals_;
  Counter* m_perturbations_;
  Counter* m_slowdowns_;
  Counter* m_tuples_lost_;
  LatencyHistogram* m_mttd_ms_;
  LatencyHistogram* m_mttr_ms_;
};

}  // namespace aurora

#endif  // AURORA_FAULT_INJECTOR_H_
