#include "check/runner.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "fault/injector.h"
#include "obs/metrics.h"

namespace aurora {

namespace {

std::string CanonicalRow(const Tuple& t) {
  std::string row;
  for (size_t i = 0; i < t.num_values(); ++i) {
    if (i > 0) row += "|";
    row += t.value(i).ToString();
  }
  return row;
}

/// FNV-1a over all rows; keeps Summary() short yet content-sensitive.
uint64_t HashRows(const std::vector<std::string>& rows) {
  uint64_t h = 1469598103934665603ull;
  for (const std::string& row : rows) {
    for (char c : row) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= '\n';
    h *= 1099511628211ull;
  }
  return h;
}

/// Is `sub` a subsequence of `full` (order-preserving containment)?
bool IsSubsequence(const std::vector<std::string>& sub,
                   const std::vector<std::string>& full) {
  size_t j = 0;
  for (const std::string& row : full) {
    if (j < sub.size() && sub[j] == row) ++j;
  }
  return j == sub.size();
}

void DiffOutputs(const ScenarioSpec& spec, RunReport* report) {
  if (spec.Lossy() && spec.Stateful()) {
    // Losing input to a windowed/ordering operator shifts every later
    // window; the outputs legitimately diverge. Documented nondeterminism.
    report->diff_skipped = true;
    return;
  }
  for (const auto& [name, oracle_rows] : report->oracle_outputs) {
    const std::vector<std::string>& got = report->outputs[name];
    if (!spec.Lossy()) {
      if (got == oracle_rows) continue;
      size_t at = 0;
      while (at < got.size() && at < oracle_rows.size() &&
             got[at] == oracle_rows[at]) {
        ++at;
      }
      std::ostringstream detail;
      detail << "output '" << name << "': distributed " << got.size()
             << " rows vs oracle " << oracle_rows.size()
             << ", first divergence at row " << at;
      if (at < got.size()) detail << " (got '" << got[at] << "')";
      if (at < oracle_rows.size()) {
        detail << " (oracle '" << oracle_rows[at] << "')";
      }
      report->violations.push_back(
          Violation{SimTime{}, "oracle_diff", detail.str()});
    } else if (!IsSubsequence(got, oracle_rows)) {
      report->violations.push_back(Violation{
          SimTime{}, "oracle_diff",
          "output '" + name + "': distributed rows are not an in-order "
          "subset of the oracle's under a lossy fault plan"});
    }
  }
}

}  // namespace

std::string RunReport::Summary() const {
  std::ostringstream os;
  os << "injected=" << injected << " accepted=" << accepted
     << " rejected=" << rejected << " delivered=" << delivered
     << " duplicates=" << duplicates << " drained=" << (drained ? "yes" : "no")
     << (diff_skipped ? " diff=skipped" : "") << "\n";
  for (const auto& [name, rows] : outputs) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(HashRows(rows)));
    os << "output " << name << " rows=" << rows.size() << " hash=" << hex
       << "\n";
  }
  for (const auto& [name, rows] : oracle_outputs) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(HashRows(rows)));
    os << "oracle " << name << " rows=" << rows.size() << " hash=" << hex
       << "\n";
  }
  os << "violations=" << violations.size() << "\n";
  for (const Violation& v : violations) {
    os << "violation " << v.invariant << " at " << v.at.micros()
       << "us: " << v.detail << "\n";
  }
  return os.str();
}

RunReport RunScenario(const ScenarioSpec& spec, const RunOptions& opts) {
  RunReport report;
  if (Status st = spec.Validate(); !st.ok()) {
    report.violations.push_back(
        Violation{SimTime{}, "spec", st.ToString()});
    return report;
  }

  // Scenario runs must not inherit counter values from earlier runs in the
  // same process: obs reconciliation compares absolute totals.
  MetricsRegistry::Global().Reset();

  Simulation sim;
  OverlayNetwork net(&sim);
  StarOptions sopts;
  sopts.transport.credit_window_bytes = spec.flow_window;
  sopts.transport.train_size = spec.train;
  sopts.transport.stream_dedup = spec.dedup;
  sopts.engine.batch_size = opts.batch_size;
  AuroraStarSystem system(&sim, &net, sopts);
  for (int i = 0; i < spec.nodes; ++i) {
    NodeOptions nopts;
    nopts.name = "n" + std::to_string(i);
    auto added = system.AddNode(nopts);
    if (!added.ok()) {
      report.violations.push_back(
          Violation{SimTime{}, "deploy", added.status().ToString()});
      return report;
    }
  }
  net.FullMesh(LinkOptions{});

  auto query = spec.BuildQuery();
  if (!query.ok()) {
    report.violations.push_back(
        Violation{SimTime{}, "deploy", query.status().ToString()});
    return report;
  }
  auto deployed = DeployQuery(&system, *query, spec.Placement());
  if (!deployed.ok()) {
    report.violations.push_back(
        Violation{SimTime{}, "deploy", deployed.status().ToString()});
    return report;
  }
  for (const auto& [name, where] : deployed->outputs) {
    std::string out_name = name;
    Status st = system.CollectOutput(
        where.first, where.second,
        [&report, out_name](const Tuple& t, SimTime) {
          report.outputs[out_name].push_back(CanonicalRow(t));
        });
    if (!st.ok()) {
      report.violations.push_back(
          Violation{SimTime{}, "deploy", st.ToString()});
      return report;
    }
  }

  InvariantMonitor monitor(&sim, &net, &system, spec);
  monitor.Install();

  Injector injector(&system, spec.faults, InjectorOptions{spec.seed, nullptr});
  if (Status st = injector.Arm(); !st.ok()) {
    report.violations.push_back(Violation{SimTime{}, "deploy", st.ToString()});
    return report;
  }

  std::vector<Tuple> trace = spec.GenerateTrace();
  std::vector<char> accepted(trace.size(), 0);
  NodeId home = deployed->inputs.at("src").first;
  for (size_t i = 0; i < trace.size(); ++i) {
    sim.ScheduleAt(trace[i].timestamp(), [&, i] {
      ++report.injected;
      Status st = system.node(home).Inject("src", trace[i]);
      if (st.ok()) {
        accepted[i] = 1;
        ++report.accepted;
      } else {
        ++report.rejected;
      }
    });
  }

  SimTime end = spec.TraceEnd();
  for (const FaultEvent& ev : spec.faults.events()) {
    if (ev.at > end) end = ev.at;
  }
  end = end + SimDuration::Millis(500);
  sim.RunUntil(end);

  if (spec.faults.EndsHealthy()) {
    int stable = 0;
    report.drained = sim.RunUntilIdle(
        end + opts.drain_timeout, opts.drain_slice, [&] {
          if (!monitor.Quiescent() ||
              (system.num_nodes() > 1 && !monitor.Converged())) {
            stable = 0;
            return false;
          }
          return ++stable >= 2;
        });
  } else {
    // Plans that never recover (hand-written or mid-shrink) get a
    // best-effort settle; end-state conservation is not checked.
    sim.RunFor(SimDuration::Seconds(5));
    report.drained = false;
  }

  monitor.Finalize(report.drained);
  report.violations.insert(report.violations.end(),
                           monitor.violations().begin(),
                           monitor.violations().end());
  report.delivered = monitor.delivered_tuples();
  report.duplicates = monitor.duplicate_tuples();

  if (opts.oracle_diff) {
    // The oracle is always scalar: with batch_size > 1 on the federation
    // side this diff doubles as the batched-vs-scalar equivalence gate.
    EngineOptions oracle_opts = sopts.engine;
    oracle_opts.batch_size = 1;
    AuroraEngine oracle(oracle_opts);
    Status st = DeployQueryLocal(&oracle, *query);
    if (!st.ok()) {
      report.violations.push_back(
          Violation{SimTime{}, "deploy", "oracle: " + st.ToString()});
      return report;
    }
    for (const auto& [name, where] : deployed->outputs) {
      auto port = oracle.FindOutput(name);
      if (!port.ok()) {
        report.violations.push_back(Violation{
            SimTime{}, "deploy", "oracle: " + port.status().ToString()});
        return report;
      }
      std::string out_name = name;
      oracle.SetOutputCallback(*port, [&report, out_name](const Tuple& t,
                                                          SimTime) {
        report.oracle_outputs[out_name].push_back(CanonicalRow(t));
      });
      // Ensure both maps list every output even when it emitted nothing.
      report.outputs[name];
      report.oracle_outputs[name];
    }
    SimTime now{};
    for (size_t i = 0; i < trace.size(); ++i) {
      if (!accepted[i]) continue;
      now = trace[i].timestamp();
      Status push = oracle.PushInputByName("src", trace[i], now);
      if (!push.ok()) {
        report.violations.push_back(Violation{
            SimTime{}, "deploy", "oracle push: " + push.ToString()});
        return report;
      }
    }
    if (Status run = oracle.RunUntilQuiescent(now); !run.ok()) {
      report.violations.push_back(
          Violation{SimTime{}, "deploy", "oracle run: " + run.ToString()});
      return report;
    }
    DiffOutputs(spec, &report);
  }
  return report;
}

}  // namespace aurora
