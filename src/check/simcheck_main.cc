// simcheck: deterministic simulation model checker for the distributed
// stream processor. Generates seeded random scenarios (query topology,
// workload trace, fault schedule), runs each one over the simulated
// Aurora* federation with standing invariants attached, diffs the outputs
// against a single-node oracle engine, and on failure shrinks the scenario
// to a minimal replayable spec file.
//
//   simcheck --runs 200                 # scan seeds 1..200
//   simcheck --seed 7 --runs 1          # one specific seed
//   simcheck --disable-dedup --runs 100 # prove it catches real bugs
//   simcheck --replay fail.spec         # re-run a (shrunk) spec file
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "check/runner.h"
#include "check/scenario.h"
#include "check/shrinker.h"
#include "check/threaded_check.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: simcheck [--seed N] [--runs N] [--shrink 0|1]\n"
               "                [--replay <spec-file>] [--disable-dedup]\n"
               "                [--digest] [--out <dir>] [--threaded N]\n"
               "                [--batch N]\n"
               "  --threaded N  run each scenario on the N-worker threaded\n"
               "                engine and diff against the oracle instead\n"
               "                of the simulated federation\n"
               "  --batch N     engine batch_size (ProcessBatch path) for\n"
               "                the federation nodes / threaded engine; the\n"
               "                oracle always runs scalar, so this gates\n"
               "                batched output against the scalar path\n");
}

int Replay(const std::string& path, bool disable_dedup, int batch) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "simcheck: cannot read '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto spec = aurora::ScenarioSpec::Parse(text.str());
  if (!spec.ok()) {
    std::fprintf(stderr, "simcheck: %s\n", spec.status().ToString().c_str());
    return 2;
  }
  if (disable_dedup) spec->dedup = false;
  aurora::RunOptions opts;
  opts.batch_size = batch;
  aurora::RunReport report = aurora::RunScenario(*spec, opts);
  std::fputs(report.Summary().c_str(), stdout);
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int runs = 200;
  bool shrink = true;
  bool disable_dedup = false;
  bool digest = false;
  int threaded = 0;
  int batch = 1;
  std::string replay_path;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--runs") {
      runs = std::atoi(next());
    } else if (arg == "--shrink") {
      shrink = std::atoi(next()) != 0;
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--disable-dedup") {
      disable_dedup = true;
    } else if (arg == "--digest") {
      digest = true;
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--threaded") {
      threaded = std::atoi(next());
    } else if (arg == "--batch") {
      batch = std::atoi(next());
      if (batch < 1) batch = 1;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "simcheck: unknown argument '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (!replay_path.empty()) return Replay(replay_path, disable_dedup, batch);

  if (threaded > 0) {
    // Threaded-runtime gate: no network, no faults — the scenario supplies
    // the query topology and trace, the diff checks the worker runtime.
    for (int r = 0; r < runs; ++r) {
      uint64_t s = seed + static_cast<uint64_t>(r);
      aurora::ScenarioSpec spec = aurora::GenerateScenario(s);
      aurora::ThreadedCheckReport report =
          aurora::RunThreadedScenario(spec, threaded, batch);
      if (digest) {
        std::fprintf(stdout, "seed %llu\n",
                     static_cast<unsigned long long>(s));
        std::fputs(report.Summary().c_str(), stdout);
      }
      if (!report.ok()) {
        std::fprintf(stdout, "simcheck: seed %llu FAILED (threaded)\n",
                     static_cast<unsigned long long>(s));
        std::fputs(report.Summary().c_str(), stdout);
        return 1;
      }
    }
    std::fprintf(stdout,
                 "simcheck: %d threaded runs clean (%d workers, seeds "
                 "%llu..%llu)\n",
                 runs, threaded, static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(
                     seed + static_cast<uint64_t>(runs) - 1));
    return 0;
  }

  aurora::RunOptions ropts;
  ropts.batch_size = batch;
  for (int r = 0; r < runs; ++r) {
    uint64_t s = seed + static_cast<uint64_t>(r);
    aurora::ScenarioSpec spec = aurora::GenerateScenario(s);
    if (disable_dedup) spec.dedup = false;
    aurora::RunReport report = aurora::RunScenario(spec, ropts);
    if (digest) {
      // Per-seed output rows+hashes on stdout: two invocations of the same
      // seed range must emit byte-identical digests regardless of tracing
      // or flight-recorder settings (the CI obs-smoke step diffs them).
      std::fprintf(stdout, "seed %llu\n", static_cast<unsigned long long>(s));
      std::fputs(report.Summary().c_str(), stdout);
    }
    if (report.ok()) {
      if ((r + 1) % 50 == 0) {
        std::fprintf(stderr, "simcheck: %d/%d runs clean\n", r + 1, runs);
      }
      continue;
    }
    std::fprintf(stdout, "simcheck: seed %llu FAILED\n",
                 static_cast<unsigned long long>(s));
    std::fputs(report.Summary().c_str(), stdout);

    aurora::ScenarioSpec min_spec = spec;
    if (shrink) {
      const std::string kind = report.violations.front().invariant;
      std::fprintf(stderr, "simcheck: shrinking on '%s'...\n", kind.c_str());
      min_spec = aurora::ShrinkScenario(
          spec, [&kind, disable_dedup, &ropts](const aurora::ScenarioSpec& cand) {
            aurora::ScenarioSpec c = cand;
            if (disable_dedup) c.dedup = false;
            aurora::RunReport rr = aurora::RunScenario(c, ropts);
            for (const aurora::Violation& v : rr.violations) {
              if (v.invariant == kind) return true;
            }
            return false;
          });
      if (disable_dedup) min_spec.dedup = false;
    }
    std::string path = out_dir + "/simcheck_fail_" + std::to_string(s) +
                       ".spec";
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    std::ofstream out(path);
    out << min_spec.ToSpec();
    out.close();
    if (out) {
      std::fprintf(stdout, "simcheck: minimized spec written to %s\n",
                   path.c_str());
    } else {
      std::fprintf(stderr, "simcheck: failed to write %s\n", path.c_str());
    }
    std::fprintf(stdout, "simcheck: minimized to %zu fault events, %d "
                         "tuples, %zu chain(s)\n",
                 min_spec.faults.size(), min_spec.trace_n,
                 min_spec.chains.size());
    return 1;
  }
  std::fprintf(stdout, "simcheck: %d runs clean (seeds %llu..%llu)\n", runs,
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(seed +
                                               static_cast<uint64_t>(runs) -
                                               1));
  return 0;
}
