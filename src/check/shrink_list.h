#ifndef AURORA_CHECK_SHRINK_LIST_H_
#define AURORA_CHECK_SHRINK_LIST_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace aurora {

/// \brief Generic list minimizer (delta-debugging style) for property
/// tests: given a failing input sequence, removes chunks of decreasing
/// size while `still_fails(candidate)` holds, converging on a small —
/// typically 1-element — still-failing input.
///
/// Header-only and dependency-free so randomized operator tests can shrink
/// counterexample traces without linking the full scenario runner.
template <typename T, typename Pred>
std::vector<T> ShrinkList(std::vector<T> items, const Pred& still_fails,
                          int max_attempts = 500) {
  if (items.empty()) return items;
  int attempts = 0;
  size_t chunk = (items.size() + 1) / 2;
  while (true) {
    bool shrunk = false;
    size_t start = 0;
    while (start < items.size()) {
      if (attempts >= max_attempts) return items;
      size_t end = std::min(items.size(), start + chunk);
      std::vector<T> candidate;
      candidate.reserve(items.size() - (end - start));
      candidate.insert(candidate.end(), items.begin(),
                       items.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       items.begin() + static_cast<std::ptrdiff_t>(end),
                       items.end());
      ++attempts;
      if (!candidate.empty() && still_fails(candidate)) {
        items = std::move(candidate);
        shrunk = true;  // retry the same position at this chunk size
      } else {
        start = end;
      }
    }
    if (chunk == 1) {
      if (!shrunk) break;  // fixpoint at the finest granularity
    } else {
      chunk = (chunk + 1) / 2;
    }
  }
  return items;
}

}  // namespace aurora

#endif  // AURORA_CHECK_SHRINK_LIST_H_
