#ifndef AURORA_CHECK_SHRINKER_H_
#define AURORA_CHECK_SHRINKER_H_

#include <functional>

#include "check/scenario.h"

namespace aurora {

/// Re-runs a candidate scenario and reports whether it still exhibits the
/// failure being minimized (callers usually match the original violation's
/// `invariant` kind).
using StillFails = std::function<bool(const ScenarioSpec&)>;

/// \brief Greedily minimizes a failing scenario while `still_fails` holds.
///
/// Candidate reductions, applied to a fixpoint (bounded by `max_attempts`
/// invocations of `still_fails`, each of which re-runs the simulation):
///  - drop individual fault events (latest first),
///  - halve the trace length,
///  - drop whole chains when more than one exists,
///  - pop trailing boxes off multi-box chains.
///
/// The result is a valid spec that still fails; replaying it via
/// `simcheck --replay` reproduces the violation bit-identically.
ScenarioSpec ShrinkScenario(ScenarioSpec spec, const StillFails& still_fails,
                            int max_attempts = 200);

}  // namespace aurora

#endif  // AURORA_CHECK_SHRINKER_H_
