#include "check/invariants.h"

#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace aurora {

namespace {

constexpr int kMaxReportsPerInvariant = 20;
const SimDuration kCheckInterval = SimDuration::Millis(25);
const SimDuration kHeartbeatInterval = SimDuration::Millis(50);

}  // namespace

InvariantMonitor::InvariantMonitor(Simulation* sim, OverlayNetwork* net,
                                   AuroraStarSystem* system,
                                   const ScenarioSpec& spec)
    : sim_(sim), net_(net), system_(system), spec_(spec) {}

void InvariantMonitor::Install() {
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    system_->node(static_cast<NodeId>(i))
        .SetDeliveryProbe([this](NodeId node, const std::string& stream,
                                 const Tuple& t, bool duplicate) {
          OnDelivery(node, stream, t, duplicate);
        });
  }
  check_timer_ = sim_->SchedulePeriodicCancelable(kCheckInterval, [this] {
    PeriodicCheck();
    return true;
  });
  if (system_->num_nodes() > 1) {
    hb_timer_ = sim_->SchedulePeriodicCancelable(kHeartbeatInterval, [this] {
      HeartbeatTick();
      return true;
    });
  }
}

void InvariantMonitor::Report(const std::string& invariant,
                              const std::string& detail) {
  int& count = reported_[invariant];
  if (count >= kMaxReportsPerInvariant) return;
  ++count;
  violations_.push_back(Violation{sim_->Now(), invariant, detail});
  FlightRecorder::Global().Trigger("invariant", invariant + ": " + detail,
                                   sim_->Now().micros());
}

void InvariantMonitor::OnDelivery(NodeId node, const std::string& stream,
                                  const Tuple& t, bool duplicate) {
  StreamView& view = streams_[{node, stream}];
  std::ostringstream where;
  where << "node " << node << " stream '" << stream << "' seq " << t.seq();
  if (duplicate) {
    // The receiver suppressed it; exactly-once still holds downstream.
    ++view.duplicates;
    ++duplicates_;
    return;
  }
  if (view.seen.count(t.seq()) > 0) {
    Report("duplicate_delivery",
           where.str() + " delivered twice (dedup missed it)");
  } else if (t.seq() < view.last) {
    Report("fifo_reorder", where.str() + " arrived after seq " +
                               std::to_string(view.last));
  }
  view.seen.insert(t.seq());
  if (t.seq() > view.last) view.last = t.seq();
  ++view.delivered;
  ++delivered_;
}

size_t InvariantMonitor::QueueAllowance(size_t streams) const {
  // Per stream: a full credit window of unsent backlog, one flush chunk
  // (window/4) in excess while the window closes, and slack for a tuple
  // batch straddling the chunk boundary.
  return streams * static_cast<size_t>(spec_.flow_window +
                                       spec_.flow_window / 4 + 512);
}

void InvariantMonitor::PeriodicCheck() {
  if (spec_.flow_window == 0) return;
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    StreamNode& node = system_->node(static_cast<NodeId>(i));
    // Streams per peer, from the sender's bindings.
    std::map<NodeId, size_t> streams_to;
    for (const auto& [name, binding] : node.bindings()) {
      if (binding.dst != nullptr) ++streams_to[binding.dst->id()];
    }
    for (const auto& [name, binding] : node.bindings()) {
      if (binding.dst == nullptr) continue;
      const Transport* tx = node.PeerTransport(binding.dst->id());
      if (tx == nullptr) continue;
      size_t allowance = QueueAllowance(streams_to[binding.dst->id()]);
      if (tx->queued_payload_bytes() > allowance) {
        Report("queue_bound",
               "node " + std::to_string(i) + " -> " +
                   std::to_string(binding.dst->id()) + " queued payload " +
                   std::to_string(tx->queued_payload_bytes()) +
                   " bytes exceeds credit allowance " +
                   std::to_string(allowance));
      }
      uint64_t sent = tx->sent_offset(binding.stream);
      uint64_t limit = tx->credit_limit(binding.stream);
      // Allowance past the grant covers only the documented oversized-head
      // exception (a single message larger than the whole window).
      if (sent > limit + spec_.flow_window + 1024) {
        Report("credit_overdraft",
               "stream '" + binding.stream + "' sent " + std::to_string(sent) +
                   " bytes against credit limit " + std::to_string(limit));
      }
      auto key = std::make_pair(
          std::make_pair(static_cast<NodeId>(i), binding.dst->id()),
          binding.stream);
      auto [it, inserted] = credit_seen_.emplace(key, limit);
      if (!inserted) {
        if (limit < it->second) {
          Report("credit_shrink",
                 "stream '" + binding.stream + "' credit limit shrank from " +
                     std::to_string(it->second) + " to " +
                     std::to_string(limit));
        }
        it->second = limit;
      }
    }
  }
}

void InvariantMonitor::HeartbeatTick() {
  SimTime now = sim_->Now();
  size_t n = system_->num_nodes();
  for (size_t w = 0; w < n; ++w) {
    NodeId watcher = static_cast<NodeId>(w);
    if (!system_->node(watcher).up()) {
      // A dead watcher's stale silence must not convict live peers; it
      // re-arms (with fresh grace) after restart.
      detector_.ForgetWatcher(watcher);
      continue;
    }
    for (size_t d = 0; d < n; ++d) {
      if (d == w) continue;
      detector_.Arm(watcher, static_cast<NodeId>(d), now);
    }
  }
  for (size_t s = 0; s < n; ++s) {
    NodeId sender = static_cast<NodeId>(s);
    if (!system_->node(sender).up()) continue;
    for (size_t r = 0; r < n; ++r) {
      if (r == s) continue;
      NodeId receiver = static_cast<NodeId>(r);
      Message hb;
      hb.kind = "hb";
      net_->Send(sender, receiver, std::move(hb),
                 [this, receiver, sender](const Message&) {
                   if (!system_->node(receiver).up()) return;
                   detector_.RecordHeartbeat(receiver, sender, sim_->Now());
                 });
    }
  }
  detector_.CheckSilence(now);
}

bool InvariantMonitor::Quiescent() const {
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    const StreamNode& node =
        const_cast<AuroraStarSystem*>(system_)->node(static_cast<NodeId>(i));
    if (!node.up()) return false;
    if (node.engine().HasWork()) return false;
    if (node.flow_blocked()) return false;
    for (const auto& [name, binding] : node.bindings()) {
      if (!binding.pending.empty()) return false;
    }
    for (size_t j = 0; j < system_->num_nodes(); ++j) {
      const Transport* tx = node.PeerTransport(static_cast<NodeId>(j));
      if (tx != nullptr && tx->queued_messages() > 0) return false;
    }
  }
  return true;
}

bool InvariantMonitor::Converged() const {
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    bool down = !const_cast<AuroraStarSystem*>(system_)->node(id).up();
    if (detector_.IsSuspected(id) != down) return false;
  }
  return true;
}

void InvariantMonitor::Finalize(bool drained) {
  bool healthy = spec_.faults.EndsHealthy();
  if (healthy && !drained) {
    Report("drain",
           "fault plan ends healthy but the system did not quiesce");
  }
  if (!drained) return;

  // Tuple conservation per remote binding: everything the sender handed to
  // the transport arrived (exactly once), unless the plan is allowed to
  // lose data, in which case arrivals can only be fewer.
  bool lossy = spec_.Lossy();
  uint64_t sent_total = 0;
  uint64_t dup_dropped_total = 0;
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    StreamNode& node = system_->node(static_cast<NodeId>(i));
    dup_dropped_total += node.duplicate_tuples_dropped();
    for (const auto& [name, binding] : node.bindings()) {
      sent_total += binding.tuples_sent;
      if (binding.dst == nullptr) continue;
      auto it = streams_.find({binding.dst->id(), binding.stream});
      uint64_t arrived = it == streams_.end() ? 0 : it->second.delivered;
      std::string where = "stream '" + binding.stream + "' (node " +
                          std::to_string(i) + " -> " +
                          std::to_string(binding.dst->id()) + ")";
      if (!lossy && arrived != binding.tuples_sent) {
        Report("conservation",
               where + " sent " + std::to_string(binding.tuples_sent) +
                   " tuples but " + std::to_string(arrived) + " arrived");
      } else if (lossy && arrived > binding.tuples_sent) {
        Report("conservation",
               where + " delivered " + std::to_string(arrived) +
                   " tuples, more than the " +
                   std::to_string(binding.tuples_sent) + " sent");
      }
      const Transport* tx = node.PeerTransport(binding.dst->id());
      if (spec_.flow_window > 0 && tx != nullptr) {
        std::map<NodeId, size_t> streams_to;
        for (const auto& [n2, b2] : node.bindings()) {
          if (b2.dst != nullptr) ++streams_to[b2.dst->id()];
        }
        size_t allowance = QueueAllowance(streams_to[binding.dst->id()]);
        if (tx->peak_queued_payload_bytes() > allowance) {
          Report("queue_bound",
                 where + " peak queued payload " +
                     std::to_string(tx->peak_queued_payload_bytes()) +
                     " bytes exceeded credit allowance " +
                     std::to_string(allowance));
        }
      }
    }
  }

  // Reconcile ground truth against the obs metrics registry: the counters
  // dashboards read must agree with what actually happened.
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t obs_sent = reg.CounterValue("node.tuples_sent");
  if (obs_sent != sent_total) {
    Report("obs_reconcile",
           "registry node.tuples_sent=" + std::to_string(obs_sent) +
               " but bindings sent " + std::to_string(sent_total));
  }
  uint64_t obs_dups = reg.CounterValue("node.stream.dup_dropped");
  if (obs_dups != dup_dropped_total) {
    Report("obs_reconcile",
           "registry node.stream.dup_dropped=" + std::to_string(obs_dups) +
               " but nodes dropped " + std::to_string(dup_dropped_total));
  }
  if (dup_dropped_total != duplicates_) {
    Report("obs_reconcile",
           "delivery probes saw " + std::to_string(duplicates_) +
               " suppressed duplicates but nodes counted " +
               std::to_string(dup_dropped_total));
  }

  // Storage reconcile: a tuple can only be read back from spill after it
  // was spilled, so the unspill counter may never run ahead of the spill
  // counter no matter how crashes interleave with budget enforcement.
  uint64_t spilled = reg.CounterValue("engine.storage.spill.tuples");
  uint64_t unspilled = reg.CounterValue("engine.storage.unspill.tuples");
  if (unspilled > spilled) {
    Report("storage_reconcile",
           "registry engine.storage.unspill.tuples=" +
               std::to_string(unspilled) + " exceeds spill.tuples=" +
               std::to_string(spilled));
  }

  if (healthy && system_->num_nodes() > 1 && !Converged()) {
    Report("detector_divergence",
           "failure detector suspicions do not match node up/down state "
           "after all faults healed");
  }
}

}  // namespace aurora
