#ifndef AURORA_CHECK_THREADED_CHECK_H_
#define AURORA_CHECK_THREADED_CHECK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/scenario.h"

namespace aurora {

/// Result of one threaded-vs-oracle run. Scenario chains are linear
/// (single-input boxes), so the ThreadedEngine determinism contract
/// guarantees byte-identical per-output row sequences — the diff is always
/// exact, never a lossy subsequence check.
struct ThreadedCheckReport {
  int workers = 0;
  uint64_t injected = 0;
  uint64_t activations = 0;
  uint64_t steals = 0;
  uint64_t ring_full_events = 0;
  std::vector<std::string> violations;
  /// Output name -> canonical rows ('|'-joined field values, in emission
  /// order) from the threaded run and the single-threaded oracle.
  std::map<std::string, std::vector<std::string>> outputs;
  std::map<std::string, std::vector<std::string>> oracle_outputs;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Deploys the scenario's query onto a ThreadedEngine with `workers`
/// threads, pushes the full generated trace from the calling thread,
/// drains, then replays the same trace through a single-threaded
/// AuroraEngine oracle and diffs every output port exactly.
///
/// The scenario's transport knobs (flow_window, dedup) and fault plan do
/// not apply — there is no network here. What this gate checks is the
/// threaded runtime itself: per-arc FIFO, exactly-once consumption, and
/// quiescence, across worker counts.
///
/// `batch_size` > 1 runs the threaded engine's ProcessBatch path
/// (ThreadedEngineOptions::batch_size); the oracle always runs scalar, so
/// this additionally gates batched+threaded against scalar+single-threaded.
ThreadedCheckReport RunThreadedScenario(const ScenarioSpec& spec,
                                        int workers, int batch_size = 1);

}  // namespace aurora

#endif  // AURORA_CHECK_THREADED_CHECK_H_
