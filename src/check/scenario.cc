#include "check/scenario.h"

#include <algorithm>
#include <sstream>

#include "common/rng.h"
#include "ops/expr.h"
#include "ops/op_spec.h"
#include "ops/predicate.h"

namespace aurora {

namespace {

/// How many of p1/p2 a box template uses (also gates spec formatting).
int TemplateArity(const std::string& tpl) {
  if (tpl == "map_sum") return 0;
  if (tpl == "filter_hash" || tpl == "xsection_sum") return 2;
  return 1;
}

bool KnownTemplate(const std::string& tpl) {
  return tpl == "filter_ge" || tpl == "filter_hash" || tpl == "map_sum" ||
         tpl == "tumble_cnt" || tpl == "tumble_sum" || tpl == "slide_max" ||
         tpl == "xsection_sum" || tpl == "wsort_buf";
}

bool StatefulTemplate(const std::string& tpl) {
  return tpl == "tumble_cnt" || tpl == "tumble_sum" || tpl == "slide_max" ||
         tpl == "xsection_sum" || tpl == "wsort_buf";
}

Result<OperatorSpec> TemplateSpec(const ScenarioBox& box) {
  if (box.tpl == "filter_ge") {
    return FilterSpec(
        Predicate::Compare("B", CompareOp::kGe, Value(box.p1)));
  }
  if (box.tpl == "filter_hash") {
    return FilterSpec(Predicate::HashPartition(
        "A", static_cast<uint32_t>(box.p1), static_cast<uint32_t>(box.p2)));
  }
  if (box.tpl == "map_sum") {
    return MapSpec({{"A", Expr::FieldRef("A")},
                    {"B", Expr::FieldRef("B")},
                    {"S", Expr::Arith(ArithOp::kAdd, Expr::FieldRef("A"),
                                      Expr::FieldRef("B"))}});
  }
  if (box.tpl == "tumble_cnt" || box.tpl == "tumble_sum") {
    OperatorSpec spec =
        TumbleSpec(box.tpl == "tumble_cnt" ? "cnt" : "sum", "B", {"A"});
    spec.SetParam("emit", Value("every_n"));
    spec.SetParam("n", Value(box.p1));
    return spec;
  }
  if (box.tpl == "slide_max") {
    return SlideSpec("max", "B", box.p1, {"A"});
  }
  if (box.tpl == "xsection_sum") {
    return XSectionSpec("sum", "B", box.p1, box.p2, {"A"});
  }
  if (box.tpl == "wsort_buf") {
    return WSortSpec({"A"}, /*timeout_us=*/0, /*max_buffer=*/box.p1);
  }
  return Status::InvalidArgument("unknown box template '" + box.tpl + "'");
}

}  // namespace

SchemaPtr ScenarioSchema() {
  static SchemaPtr schema = std::make_shared<Schema>(std::vector<Field>{
      {"A", ValueType::kInt64}, {"B", ValueType::kInt64}});
  return schema;
}

Result<ScenarioSpec> ScenarioSpec::Parse(const std::string& text) {
  ScenarioSpec spec;
  spec.chains.clear();
  std::istringstream lines(text);
  std::string line;
  std::string fault_lines;
  int line_no = 0;
  bool saw_trace = false;
  while (std::getline(lines, line)) {
    line_no++;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream tokens(line);
    std::vector<std::string> tok;
    std::string t;
    while (tokens >> t) tok.push_back(t);
    if (tok.empty()) continue;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_no) + ": " + why);
    };
    auto int_arg = [&](size_t i, int64_t* out) {
      try {
        *out = std::stoll(tok.at(i));
      } catch (...) {
        return false;
      }
      return true;
    };
    const std::string& key = tok[0];
    int64_t v = 0;
    if (key == "seed") {
      if (tok.size() != 2 || !int_arg(1, &v) || v < 0) {
        return fail("expected 'seed <n>'");
      }
      spec.seed = static_cast<uint64_t>(v);
    } else if (key == "nodes") {
      if (tok.size() != 2 || !int_arg(1, &v)) return fail("expected 'nodes <n>'");
      spec.nodes = static_cast<int>(v);
    } else if (key == "flow_window") {
      if (tok.size() != 2 || !int_arg(1, &v) || v < 0) {
        return fail("expected 'flow_window <bytes>'");
      }
      spec.flow_window = static_cast<uint64_t>(v);
    } else if (key == "train") {
      if (tok.size() != 2 || !int_arg(1, &v)) return fail("expected 'train <n>'");
      spec.train = static_cast<int>(v);
    } else if (key == "dedup") {
      if (tok.size() != 2 || (tok[1] != "on" && tok[1] != "off")) {
        return fail("expected 'dedup on|off'");
      }
      spec.dedup = tok[1] == "on";
    } else if (key == "trace") {
      int64_t n = 0, k = 0, gap = 0;
      if (tok.size() != 4 || !int_arg(1, &n) || !int_arg(2, &k) ||
          !int_arg(3, &gap)) {
        return fail("expected 'trace <n_tuples> <n_keys> <gap_us>'");
      }
      spec.trace_n = static_cast<int>(n);
      spec.keys = static_cast<int>(k);
      spec.gap_us = gap;
      saw_trace = true;
    } else if (key == "box") {
      int64_t chain = 0, node = 0;
      if (tok.size() < 4 || !int_arg(1, &chain) || !int_arg(2, &node)) {
        return fail("expected 'box <chain> <node> <template> [p1 [p2]]'");
      }
      ScenarioBox box;
      box.node = static_cast<int>(node);
      box.tpl = tok[3];
      if (!KnownTemplate(box.tpl)) {
        return fail("unknown box template '" + box.tpl + "'");
      }
      int arity = TemplateArity(box.tpl);
      if (static_cast<int>(tok.size()) != 4 + arity) {
        return fail("template '" + box.tpl + "' takes " +
                    std::to_string(arity) + " parameter(s)");
      }
      if (arity >= 1 && !int_arg(4, &box.p1)) return fail("bad p1");
      if (arity >= 2 && !int_arg(5, &box.p2)) return fail("bad p2");
      // Chains must be introduced in order: index == size() opens a new one.
      if (chain < 0 || chain > static_cast<int64_t>(spec.chains.size())) {
        return fail("chain index " + std::to_string(chain) +
                    " out of order (chains must be contiguous from 0)");
      }
      if (chain == static_cast<int64_t>(spec.chains.size())) {
        spec.chains.emplace_back();
      }
      spec.chains[static_cast<size_t>(chain)].push_back(box);
    } else if (key == "fault") {
      std::string rest;
      for (size_t i = 1; i < tok.size(); ++i) {
        if (i > 1) rest += " ";
        rest += tok[i];
      }
      fault_lines += rest + "\n";
    } else {
      return fail("unknown directive '" + key + "'");
    }
  }
  if (!saw_trace) {
    return Status::InvalidArgument("scenario: missing 'trace' line");
  }
  if (!fault_lines.empty()) {
    AURORA_ASSIGN_OR_RETURN(spec.faults, FaultPlan::Parse(fault_lines));
  }
  AURORA_RETURN_NOT_OK(spec.Validate());
  return spec;
}

std::string ScenarioSpec::ToSpec() const {
  std::ostringstream os;
  os << "seed " << seed << "\n";
  os << "nodes " << nodes << "\n";
  os << "flow_window " << flow_window << "\n";
  os << "train " << train << "\n";
  os << "dedup " << (dedup ? "on" : "off") << "\n";
  os << "trace " << trace_n << " " << keys << " " << gap_us << "\n";
  for (size_t ci = 0; ci < chains.size(); ++ci) {
    for (const ScenarioBox& box : chains[ci]) {
      os << "box " << ci << " " << box.node << " " << box.tpl;
      int arity = TemplateArity(box.tpl);
      if (arity >= 1) os << " " << box.p1;
      if (arity >= 2) os << " " << box.p2;
      os << "\n";
    }
  }
  std::istringstream fault_spec(faults.ToSpec());
  std::string line;
  while (std::getline(fault_spec, line)) {
    os << "fault " << line << "\n";
  }
  return os.str();
}

Status ScenarioSpec::Validate() const {
  if (nodes < 1 || nodes > 16) {
    return Status::InvalidArgument("nodes must be in [1, 16]");
  }
  if (trace_n < 1) return Status::InvalidArgument("trace_n must be >= 1");
  if (keys < 1) return Status::InvalidArgument("keys must be >= 1");
  if (gap_us < 1) return Status::InvalidArgument("gap_us must be >= 1");
  if (train < 0) return Status::InvalidArgument("train must be >= 0");
  if (chains.empty()) return Status::InvalidArgument("at least one chain");
  for (const auto& chain : chains) {
    if (chain.empty()) return Status::InvalidArgument("empty chain");
    for (const ScenarioBox& box : chain) {
      if (!KnownTemplate(box.tpl)) {
        return Status::InvalidArgument("unknown box template '" + box.tpl +
                                       "'");
      }
      if (box.node < 0 || box.node >= nodes) {
        return Status::InvalidArgument("box node " + std::to_string(box.node) +
                                       " out of range");
      }
      if (box.tpl == "filter_hash" &&
          (box.p1 < 1 || box.p2 < 0 || box.p2 >= box.p1)) {
        return Status::InvalidArgument("filter_hash needs modulus >= 1 and "
                                       "remainder in [0, modulus)");
      }
      if ((box.tpl == "tumble_cnt" || box.tpl == "tumble_sum") && box.p1 < 1) {
        return Status::InvalidArgument("tumble every_n needs n >= 1");
      }
      if (box.tpl == "slide_max" && box.p1 < 1) {
        return Status::InvalidArgument("slide needs window >= 1");
      }
      if (box.tpl == "xsection_sum" &&
          (box.p1 < 1 || box.p2 < 1 || box.p2 > box.p1)) {
        return Status::InvalidArgument(
            "xsection needs window >= 1 and 0 < advance <= window");
      }
      if (box.tpl == "wsort_buf" && box.p1 < 1) {
        return Status::InvalidArgument("wsort_buf needs max_buffer >= 1");
      }
    }
  }
  for (const FaultEvent& ev : faults.events()) {
    int hi = nodes - 1;
    if (ev.kind == FaultEventKind::kCrash ||
        ev.kind == FaultEventKind::kRestart ||
        ev.kind == FaultEventKind::kSlowNode) {
      if (ev.node < 0 || ev.node > hi) {
        return Status::InvalidArgument("fault event node out of range");
      }
    } else {
      if (ev.a < 0 || ev.a > hi || ev.b < 0 || ev.b > hi || ev.a == ev.b) {
        return Status::InvalidArgument("fault event link out of range");
      }
    }
  }
  return Status::OK();
}

Result<GlobalQuery> ScenarioSpec::BuildQuery() const {
  GlobalQuery q;
  AURORA_RETURN_NOT_OK(q.AddInput("src", ScenarioSchema()));
  for (size_t ci = 0; ci < chains.size(); ++ci) {
    std::string prev;
    for (size_t j = 0; j < chains[ci].size(); ++j) {
      std::string name = "c" + std::to_string(ci) + "b" + std::to_string(j);
      AURORA_ASSIGN_OR_RETURN(OperatorSpec spec, TemplateSpec(chains[ci][j]));
      AURORA_RETURN_NOT_OK(q.AddBox(name, std::move(spec)));
      if (j == 0) {
        AURORA_RETURN_NOT_OK(q.ConnectInputToBox("src", name));
      } else {
        AURORA_RETURN_NOT_OK(q.ConnectBoxes(prev, 0, name, 0));
      }
      prev = name;
    }
    std::string out = "out" + std::to_string(ci);
    AURORA_RETURN_NOT_OK(q.AddOutput(out));
    AURORA_RETURN_NOT_OK(q.ConnectBoxToOutput(prev, 0, out));
  }
  return q;
}

std::map<std::string, NodeId> ScenarioSpec::Placement() const {
  std::map<std::string, NodeId> placement;
  for (size_t ci = 0; ci < chains.size(); ++ci) {
    for (size_t j = 0; j < chains[ci].size(); ++j) {
      placement["c" + std::to_string(ci) + "b" + std::to_string(j)] =
          chains[ci][j].node;
    }
  }
  return placement;
}

std::vector<Tuple> ScenarioSpec::GenerateTrace() const {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x5eedf00dull);
  std::vector<Tuple> trace;
  trace.reserve(static_cast<size_t>(trace_n));
  SchemaPtr schema = ScenarioSchema();
  for (int i = 0; i < trace_n; ++i) {
    Tuple t(schema, {Value(static_cast<int64_t>(
                         rng.Uniform(static_cast<uint64_t>(keys)))),
                     Value(rng.UniformInt(0, 100))});
    t.set_timestamp(SimTime::Micros((i + 1) * gap_us));
    trace.push_back(std::move(t));
  }
  return trace;
}

bool ScenarioSpec::Stateful() const {
  for (const auto& chain : chains) {
    for (const ScenarioBox& box : chain) {
      if (StatefulTemplate(box.tpl)) return true;
    }
  }
  return false;
}

bool ScenarioSpec::Lossy() const {
  if (faults.Lossy()) return true;
  // A partition is loss-free only when the sender is guaranteed to pause:
  // flow control on AND no alternate route. With three or more nodes the
  // overlay reroutes around the cut link, so sends continue — and at heal
  // time frames still in flight on the long path arrive after newer frames
  // on the restored direct link, which the receiver's watermark dedup
  // drops as duplicates (reorder turned into documented loss).
  if (flow_window == 0 || nodes > 2) {
    for (const FaultEvent& ev : faults.events()) {
      if (ev.kind == FaultEventKind::kPartition) return true;
    }
  }
  return false;
}

std::vector<std::pair<int, int>> ScenarioSpec::CrossEdges() const {
  std::vector<std::pair<int, int>> edges;
  if (chains.empty()) return edges;
  auto add = [&](int a, int b) {
    if (a == b) return;
    std::pair<int, int> e{a, b};
    if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
      edges.push_back(e);
    }
  };
  // The global input is homed at the first chain's first box; other chains
  // reach it over an input relay from that node.
  int home = chains[0][0].node;
  for (const auto& chain : chains) {
    add(home, chain[0].node);
    for (size_t j = 0; j + 1 < chain.size(); ++j) {
      add(chain[j].node, chain[j + 1].node);
    }
  }
  return edges;
}

ScenarioSpec GenerateScenario(uint64_t seed) {
  Rng rng(seed ^ 0x51c2c4e1u);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.nodes = 2 + static_cast<int>(rng.Uniform(2));
  spec.flow_window = rng.OneIn(0.5) ? 2048 : 0;
  const int kTrains[] = {1, 4, 8};
  spec.train = kTrains[rng.Uniform(3)];
  spec.dedup = true;
  spec.trace_n = 100 + static_cast<int>(rng.Uniform(150));
  spec.keys = 4 + static_cast<int>(rng.Uniform(8));
  spec.gap_us = 200 + static_cast<int64_t>(rng.Uniform(600));

  auto random_box = [&](bool allow_stateful) {
    ScenarioBox box;
    box.node = static_cast<int>(rng.Uniform(static_cast<uint64_t>(spec.nodes)));
    int pick = static_cast<int>(rng.Uniform(allow_stateful ? 8 : 3));
    switch (pick) {
      case 0:
        box.tpl = "filter_ge";
        box.p1 = rng.UniformInt(10, 60);
        break;
      case 1:
        box.tpl = "filter_hash";
        box.p1 = rng.UniformInt(2, 4);
        box.p2 = rng.UniformInt(0, box.p1 - 1);
        break;
      case 2:
        box.tpl = "map_sum";
        break;
      case 3:
        box.tpl = "tumble_cnt";
        box.p1 = rng.UniformInt(2, 5);
        break;
      case 4:
        box.tpl = "tumble_sum";
        box.p1 = rng.UniformInt(2, 5);
        break;
      case 5:
        box.tpl = "slide_max";
        box.p1 = rng.UniformInt(2, 5);
        break;
      case 6:
        box.tpl = "xsection_sum";
        box.p1 = rng.UniformInt(2, 6);
        box.p2 = rng.UniformInt(1, box.p1);
        break;
      default:
        box.tpl = "wsort_buf";
        box.p1 = rng.UniformInt(4, 16);
        break;
    }
    return box;
  };

  size_t n_chains = rng.OneIn(0.7) ? 1 : 2;
  for (size_t ci = 0; ci < n_chains; ++ci) {
    size_t n_boxes = 1 + rng.Uniform(3);
    std::vector<ScenarioBox> chain;
    for (size_t j = 0; j < n_boxes; ++j) {
      // Keep stateful boxes terminal: their outputs are aggregates whose
      // downstream interpretation would need fresh field names anyway.
      bool last = j + 1 == n_boxes;
      chain.push_back(random_box(last && rng.OneIn(0.5)));
    }
    spec.chains.push_back(std::move(chain));
  }

  // Fault schedule. Families are mutually exclusive per scenario so that
  // every generated run has a crisp expected outcome:
  //  - crash/restart wipes receiver dedup watermarks, so it never mixes
  //    with duplication or reorder chaos (their interaction re-delivers
  //    old tuples by design — documented nondeterminism, not a bug);
  //  - lossy kinds only apply to stateless pipelines, where the oracle
  //    diff degrades to a subsequence check;
  //  - every injected condition is paired with its recovery, so the plan
  //    ends healthy and the run drains to a checkable end state.
  bool stateful = spec.Stateful();
  std::vector<std::pair<int, int>> edges = spec.CrossEdges();
  int64_t end_us = spec.TraceEnd().micros();
  size_t slots = rng.Uniform(4);  // 0..3 fault pairs
  enum Family { kNone, kCrashFamily, kChaosFamily };
  Family family = kNone;
  FaultPlan plan;
  for (size_t s = 0; s < slots; ++s) {
    int64_t t0 = end_us / 10 + static_cast<int64_t>(
                                   rng.Uniform(static_cast<uint64_t>(end_us / 2)));
    int64_t span = end_us * 85 / 100 - t0;
    if (span < 1000) span = 1000;
    int64_t t1 = t0 + 1000 + static_cast<int64_t>(
                                 rng.Uniform(static_cast<uint64_t>(span)));
    SimTime at0 = SimTime::Micros(t0);
    SimTime at1 = SimTime::Micros(t1);
    int kind = static_cast<int>(rng.Uniform(4));
    if (kind == 0) {  // slow node + restore (exactly invertible factors)
      int node = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(spec.nodes)));
      bool quarter = rng.OneIn(0.5);
      plan.SlowNodeAt(at0, node, quarter ? 0.25 : 0.5);
      plan.SlowNodeAt(at1, node, quarter ? 4.0 : 2.0);
    } else if (kind == 1) {  // partition + heal
      // Loss-free only with flow control and no reroute path (2 nodes);
      // everywhere else a partition is lossy (see Lossy()), and lossy
      // faults never ride on stateful pipelines — a dropped tuple would
      // change aggregate values in ways the oracle diff cannot bound.
      if (stateful && (spec.flow_window == 0 || spec.nodes > 2)) continue;
      if (edges.empty()) continue;
      auto [a, b] = edges[rng.Uniform(edges.size())];
      plan.PartitionAt(at0, a, b);
      plan.HealAt(at1, a, b);
    } else if (kind == 2) {  // crash + restart (lossy)
      if (stateful || family == kChaosFamily) continue;
      // Crashing the input's home node makes the whole trace tail
      // injection-rejected; prefer a non-home node when one hosts boxes.
      int node = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(spec.nodes)));
      plan.CrashAt(at0, node);
      plan.RestartAt(at1, node);
      family = kCrashFamily;
    } else {  // link chaos: duplication (lossless under dedup)
      if (family == kCrashFamily) continue;
      if (edges.empty()) continue;
      auto [a, b] = edges[rng.Uniform(edges.size())];
      double dup_p = static_cast<double>(rng.UniformInt(5, 30)) / 100.0;
      plan.PerturbLinkAt(at0, a, b, /*drop_p=*/0.0, dup_p);
      plan.PerturbLinkAt(at1, a, b, 0.0, 0.0);
      family = kChaosFamily;
    }
  }
  spec.faults = std::move(plan);
  return spec;
}

}  // namespace aurora
