#ifndef AURORA_CHECK_INVARIANTS_H_
#define AURORA_CHECK_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/scenario.h"
#include "distributed/aurora_star.h"
#include "fault/failure_detector.h"

namespace aurora {

/// One observed invariant breach. `invariant` is a stable machine-readable
/// kind (the shrinker preserves it while minimizing); `detail` is for
/// humans.
struct Violation {
  SimTime at{};
  std::string invariant;
  std::string detail;
};

/// \brief Standing correctness conditions checked while a scenario runs.
///
/// Installed on a live AuroraStarSystem before the simulation starts, the
/// monitor watches:
///  - per-stream FIFO and exactly-once delivery (via StreamNode delivery
///    probes; "duplicate_delivery" / "fifo_reorder"),
///  - bounded sender queues and credit conservation under flow control,
///    every check tick ("queue_bound" / "credit_overdraft" /
///    "credit_shrink"),
///  - heartbeat failure-detector convergence: suspected == actually down
///    once the plan's faults have healed ("detector_divergence"),
/// and at the end of a drained healthy run:
///  - tuple conservation per remote binding, reconciled against the obs
///    metrics registry ("conservation" / "obs_reconcile"),
///  - queue high-water marks ("queue_bound"),
///  - drain itself — a healthy plan that cannot quiesce is a bug ("drain").
class InvariantMonitor {
 public:
  InvariantMonitor(Simulation* sim, OverlayNetwork* net,
                   AuroraStarSystem* system, const ScenarioSpec& spec);

  /// Hooks delivery probes and starts the periodic check + heartbeat
  /// timers. Call once, before the simulation runs.
  void Install();

  /// True when every engine, binding buffer, and transport queue is empty
  /// and no node reports flow blockage — the system cannot make further
  /// progress without new input.
  bool Quiescent() const;

  /// True when the failure detector's suspicion set matches ground truth
  /// (every down node suspected, every up node not).
  bool Converged() const;

  /// End-of-run checks. `drained` reports whether the run reached
  /// quiescence; end-state conservation is only meaningful when it did.
  void Finalize(bool drained);

  const std::vector<Violation>& violations() const { return violations_; }
  /// Tuples delivered across all streams (dedup-passed deliveries).
  uint64_t delivered_tuples() const { return delivered_; }
  /// Deliveries suppressed as duplicates across all streams.
  uint64_t duplicate_tuples() const { return duplicates_; }

 private:
  struct StreamView {
    std::set<SeqNo> seen;
    SeqNo last = 0;
    uint64_t delivered = 0;
    uint64_t duplicates = 0;
  };

  void OnDelivery(NodeId node, const std::string& stream, const Tuple& t,
                  bool duplicate);
  void PeriodicCheck();
  void HeartbeatTick();
  void Report(const std::string& invariant, const std::string& detail);
  /// Sender queue-byte allowance toward one peer carrying `streams` arcs.
  size_t QueueAllowance(size_t streams) const;

  Simulation* sim_;
  OverlayNetwork* net_;
  AuroraStarSystem* system_;
  const ScenarioSpec& spec_;
  HeartbeatFailureDetector detector_;
  std::map<std::pair<NodeId, std::string>, StreamView> streams_;
  /// Last observed credit limit per (node, peer, stream): grants must be
  /// cumulative and monotone.
  std::map<std::pair<std::pair<NodeId, NodeId>, std::string>, uint64_t>
      credit_seen_;
  std::vector<Violation> violations_;
  std::map<std::string, int> reported_;  // per-kind cap
  uint64_t delivered_ = 0;
  uint64_t duplicates_ = 0;
  PeriodicTimer check_timer_;
  PeriodicTimer hb_timer_;
};

}  // namespace aurora

#endif  // AURORA_CHECK_INVARIANTS_H_
