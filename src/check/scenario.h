#ifndef AURORA_CHECK_SCENARIO_H_
#define AURORA_CHECK_SCENARIO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "distributed/deployment.h"
#include "fault/fault_plan.h"
#include "tuple/tuple.h"

namespace aurora {

/// One box of a scenario chain, described by a named template plus up to
/// two integer parameters (meaning depends on the template):
///
///   filter_ge    p1 = threshold on B            (stateless)
///   filter_hash  p1 = modulus, p2 = remainder   (stateless)
///   map_sum      adds S = A + B                 (stateless)
///   tumble_cnt   p1 = every_n window count      (stateful)
///   tumble_sum   p1 = every_n window count      (stateful)
///   slide_max    p1 = window size               (stateful)
///   xsection_sum p1 = window, p2 = advance      (stateful)
///   wsort_buf    p1 = max buffered tuples       (stateful)
struct ScenarioBox {
  std::string tpl;
  int node = 0;
  int64_t p1 = 0;
  int64_t p2 = 0;
};

/// \brief One complete model-checking scenario: a seeded random query
/// topology, workload trace, transport configuration, and fault schedule.
///
/// A scenario is a pure value: running it twice produces bit-identical
/// results, which is what makes failing seeds shrinkable and replayable.
/// The text format round-trips exactly (Parse(ToSpec()) == same spec):
///
///   seed 42
///   nodes 3
///   flow_window 2048
///   train 4
///   dedup on
///   trace 180 7 450          # n_tuples n_keys gap_us
///   box 0 1 filter_ge 37     # chain node template [p1 [p2]]
///   box 0 2 tumble_sum 3
///   fault at 20ms perturb 0 1 drop=0 dup=0.2 reorder=0 reorder_delay=20ms
struct ScenarioSpec {
  uint64_t seed = 1;
  int nodes = 2;
  /// Transport credit window in bytes; 0 disables flow control.
  uint64_t flow_window = 0;
  /// Transport train_size (tuples coalesced per frame).
  int train = 1;
  /// Receiver-side duplicate suppression (PR 2 seq watermarks). Turning
  /// this off is how simcheck demonstrates it finds real violations.
  bool dedup = true;
  int trace_n = 100;
  int keys = 8;
  int64_t gap_us = 500;
  /// Linear chains of boxes; chain i reads global input "src" and writes
  /// global output "out<i>".
  std::vector<std::vector<ScenarioBox>> chains;
  FaultPlan faults;

  static Result<ScenarioSpec> Parse(const std::string& text);
  std::string ToSpec() const;
  Status Validate() const;

  /// Builds the GlobalQuery this scenario describes (input "src", boxes
  /// "c<chain>b<i>", outputs "out<chain>").
  Result<GlobalQuery> BuildQuery() const;
  /// Box name -> node placement for DeployQuery.
  std::map<std::string, NodeId> Placement() const;
  /// The deterministic workload: trace_n tuples {A: key, B: value} with
  /// timestamps (i+1)*gap_us, derived from `seed` alone.
  std::vector<Tuple> GenerateTrace() const;
  /// Simulation time of the last trace tuple's injection.
  SimTime TraceEnd() const { return SimTime::Micros(trace_n * gap_us); }

  /// True when any chain contains an order- or history-sensitive box.
  bool Stateful() const;
  /// True when the run may legitimately lose accepted tuples: a lossy
  /// fault plan, or a partition while flow control is off (flow-controlled
  /// transports pause instead of dropping).
  bool Lossy() const;
  /// Directed cross-node (src, dst) pairs traffic actually uses: input
  /// relays from the home node plus consecutive-box hops.
  std::vector<std::pair<int, int>> CrossEdges() const;
};

/// Derives a full random scenario from a seed. Generated scenarios always
/// end healthy (every fault is paired with its recovery) and never combine
/// fault families whose interaction is documented nondeterminism (crashes
/// wipe receiver dedup watermarks, so they are never mixed with duplicate
/// or reorder perturbations).
ScenarioSpec GenerateScenario(uint64_t seed);

/// Shared two-int64-field stream schema {A, B} used by every scenario.
SchemaPtr ScenarioSchema();

}  // namespace aurora

#endif  // AURORA_CHECK_SCENARIO_H_
