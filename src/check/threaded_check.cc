#include "check/threaded_check.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "distributed/deployment.h"
#include "engine/aurora_engine.h"
#include "engine/threaded_engine.h"
#include "obs/metrics.h"

namespace aurora {

namespace {

std::string CanonicalRow(const Tuple& t) {
  std::string row;
  for (size_t i = 0; i < t.num_values(); ++i) {
    if (i > 0) row += "|";
    row += t.value(i).ToString();
  }
  return row;
}

/// FNV-1a over all rows, as runner.cc's RunReport digest — makes the
/// `output` lines content-sensitive, not just count-sensitive.
uint64_t HashRows(const std::vector<std::string>& rows) {
  uint64_t h = 1469598103934665603ull;
  for (const std::string& row : rows) {
    for (char c : row) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= '\n';
    h *= 1099511628211ull;
  }
  return h;
}

/// DeployQueryLocal for the threaded runtime: same progressive wiring (an
/// arc out of a box can only be connected once the box's output schema is
/// known), targeting a ThreadedEngine.
Status DeployQueryThreaded(ThreadedEngine* engine, const GlobalQuery& query) {
  for (const auto& in : query.inputs()) {
    AURORA_RETURN_NOT_OK(engine->AddInput(in.name, in.schema).status());
  }
  std::map<std::string, BoxId> boxes;
  for (const auto& box : query.boxes()) {
    AURORA_ASSIGN_OR_RETURN(BoxId id, engine->AddBox(box.spec));
    boxes[box.name] = id;
  }
  for (const auto& out : query.outputs()) {
    AURORA_RETURN_NOT_OK(engine->AddOutput(out).status());
  }
  std::vector<bool> wired(query.arcs().size(), false);
  size_t remaining = query.arcs().size();
  while (remaining > 0) {
    size_t progressed = 0;
    for (size_t i = 0; i < query.arcs().size(); ++i) {
      if (wired[i]) continue;
      const auto& arc = query.arcs()[i];
      Endpoint src_ep;
      if (arc.from_kind == GlobalQuery::ArcDef::FromKind::kInput) {
        AURORA_ASSIGN_OR_RETURN(PortId port, engine->FindInput(arc.from));
        src_ep = Endpoint::InputPort(port);
      } else {
        BoxId box = boxes.at(arc.from);
        if (!engine->IsBoxInitialized(box)) continue;
        src_ep = Endpoint::BoxPort(box, arc.from_index);
      }
      Endpoint dst_ep;
      if (arc.to_kind == GlobalQuery::ArcDef::ToKind::kOutput) {
        AURORA_ASSIGN_OR_RETURN(PortId port, engine->FindOutput(arc.to));
        dst_ep = Endpoint::OutputPort(port);
      } else {
        dst_ep = Endpoint::BoxPort(boxes.at(arc.to), arc.to_index);
      }
      AURORA_RETURN_NOT_OK(engine->Connect(src_ep, dst_ep).status());
      wired[i] = true;
      ++progressed;
      --remaining;
    }
    AURORA_RETURN_NOT_OK(engine->InitializeBoxes(/*require_all=*/false));
    if (progressed == 0 && remaining > 0) {
      return Status::FailedPrecondition(
          "threaded deployment stuck: query has a cycle or a box input "
          "depends on an unconnected source");
    }
  }
  return engine->InitializeBoxes();
}

}  // namespace

std::string ThreadedCheckReport::Summary() const {
  // The `workers=` line carries scheduling-dependent stats (activations
  // shrink under batching; steals vary run to run) — digest consumers that
  // compare across configurations filter it and diff the content-hashed
  // `output` lines.
  std::ostringstream os;
  os << "workers=" << workers << " injected=" << injected
     << " activations=" << activations << " steals=" << steals
     << " ring_full=" << ring_full_events << "\n";
  for (const auto& [name, rows] : outputs) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(HashRows(rows)));
    os << "output " << name << " rows=" << rows.size() << " hash=" << hex
       << "\n";
  }
  os << "violations=" << violations.size() << "\n";
  for (const std::string& v : violations) {
    os << "violation " << v << "\n";
  }
  return os.str();
}

ThreadedCheckReport RunThreadedScenario(const ScenarioSpec& spec,
                                        int workers, int batch_size) {
  ThreadedCheckReport report;
  report.workers = workers;
  if (Status st = spec.Validate(); !st.ok()) {
    report.violations.push_back("spec: " + st.ToString());
    return report;
  }
  MetricsRegistry::Global().Reset();

  auto query = spec.BuildQuery();
  if (!query.ok()) {
    report.violations.push_back("deploy: " + query.status().ToString());
    return report;
  }

  ThreadedEngineOptions topts;
  topts.workers = workers;
  topts.train_size = spec.train > 0 ? spec.train * 16 : 64;
  topts.batch_size = batch_size;
  ThreadedEngine engine(topts);
  if (Status st = DeployQueryThreaded(&engine, *query); !st.ok()) {
    report.violations.push_back("deploy: " + st.ToString());
    return report;
  }
  for (const std::string& name : query->outputs()) {
    auto port = engine.FindOutput(name);
    if (!port.ok()) {
      report.violations.push_back("deploy: " + port.status().ToString());
      return report;
    }
    std::string out_name = name;
    // Called with the output's mutex held; rows land in emission order.
    engine.SetOutputCallback(*port, [&report, out_name](const Tuple& t,
                                                        SimTime) {
      report.outputs[out_name].push_back(CanonicalRow(t));
    });
    report.outputs[name];
    report.oracle_outputs[name];
  }

  if (Status st = engine.Start(); !st.ok()) {
    report.violations.push_back("start: " + st.ToString());
    return report;
  }
  std::vector<Tuple> trace = spec.GenerateTrace();
  for (const Tuple& t : trace) {
    Status push = engine.PushInputByName("src", t, t.timestamp());
    if (!push.ok()) {
      report.violations.push_back("push: " + push.ToString());
      (void)engine.Stop();
      return report;
    }
    ++report.injected;
  }
  engine.WaitQuiescent();
  report.activations = engine.activations();
  report.steals = engine.steals();
  report.ring_full_events = engine.ring_full_events();
  if (Status st = engine.Stop(); !st.ok()) {
    report.violations.push_back("operator: " + st.ToString());
    return report;
  }

  // Single-threaded oracle over the identical trace.
  AuroraEngine oracle;
  if (Status st = DeployQueryLocal(&oracle, *query); !st.ok()) {
    report.violations.push_back("oracle deploy: " + st.ToString());
    return report;
  }
  for (const std::string& name : query->outputs()) {
    auto port = oracle.FindOutput(name);
    if (!port.ok()) {
      report.violations.push_back("oracle deploy: " +
                                  port.status().ToString());
      return report;
    }
    std::string out_name = name;
    oracle.SetOutputCallback(*port, [&report, out_name](const Tuple& t,
                                                        SimTime) {
      report.oracle_outputs[out_name].push_back(CanonicalRow(t));
    });
  }
  SimTime now{};
  for (const Tuple& t : trace) {
    now = t.timestamp();
    if (Status push = oracle.PushInputByName("src", t, now); !push.ok()) {
      report.violations.push_back("oracle push: " + push.ToString());
      return report;
    }
  }
  if (Status run = oracle.RunUntilQuiescent(now); !run.ok()) {
    report.violations.push_back("oracle run: " + run.ToString());
    return report;
  }

  // Exact diff: scenario chains are linear, so the determinism contract
  // promises byte-identical row sequences per output.
  for (const auto& [name, oracle_rows] : report.oracle_outputs) {
    const std::vector<std::string>& got = report.outputs[name];
    if (got == oracle_rows) continue;
    size_t at = 0;
    while (at < got.size() && at < oracle_rows.size() &&
           got[at] == oracle_rows[at]) {
      ++at;
    }
    std::ostringstream detail;
    detail << "output '" << name << "': threaded " << got.size()
           << " rows vs oracle " << oracle_rows.size()
           << ", first divergence at row " << at;
    if (at < got.size()) detail << " (got '" << got[at] << "')";
    if (at < oracle_rows.size()) {
      detail << " (oracle '" << oracle_rows[at] << "')";
    }
    report.violations.push_back("oracle_diff: " + detail.str());
  }
  return report;
}

}  // namespace aurora
