#ifndef AURORA_CHECK_RUNNER_H_
#define AURORA_CHECK_RUNNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/scenario.h"

namespace aurora {

struct RunOptions {
  /// Run the single-node oracle and diff outputs against it.
  bool oracle_diff = true;
  /// How long past the trace end a healthy run may take to quiesce.
  SimDuration drain_timeout = SimDuration::Seconds(30);
  /// Idle-detection granularity while draining.
  SimDuration drain_slice = SimDuration::Millis(100);
  /// Engine batch_size for every federation node (the ProcessBatch path;
  /// see EngineOptions::batch_size). The oracle always runs scalar
  /// (batch_size 1), so with >1 this diffs the batched path against the
  /// scalar one on top of the distributed-vs-oracle diff.
  int batch_size = 1;
};

/// Everything one scenario execution produced. Deterministic: running the
/// same spec twice yields byte-identical Summary() text.
struct RunReport {
  uint64_t injected = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t delivered = 0;
  uint64_t duplicates = 0;
  bool drained = false;
  /// Oracle diff was skipped (lossy run through stateful operators —
  /// documented nondeterminism, outputs are not comparable).
  bool diff_skipped = false;
  std::vector<Violation> violations;
  /// Output name -> canonical rows ('|'-joined field values, in emission
  /// order) from the distributed run and the oracle.
  std::map<std::string, std::vector<std::string>> outputs;
  std::map<std::string, std::vector<std::string>> oracle_outputs;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Executes the scenario end to end: deploys its query over a simulated
/// Aurora* federation, injects the trace under the fault plan with the
/// invariant monitor attached, drains, then replays the accepted input
/// through a single-node oracle engine and diffs the outputs.
RunReport RunScenario(const ScenarioSpec& spec, const RunOptions& opts = {});

}  // namespace aurora

#endif  // AURORA_CHECK_RUNNER_H_
