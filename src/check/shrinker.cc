#include "check/shrinker.h"

namespace aurora {

namespace {

/// Tries one candidate; adopts it into `spec` when it is valid and still
/// fails. Returns whether it was adopted. Bumps the shared attempt budget.
bool TryAdopt(ScenarioSpec* spec, ScenarioSpec candidate,
              const StillFails& still_fails, int* attempts,
              int max_attempts) {
  if (*attempts >= max_attempts) return false;
  if (!candidate.Validate().ok()) return false;
  ++*attempts;
  if (!still_fails(candidate)) return false;
  *spec = std::move(candidate);
  return true;
}

}  // namespace

ScenarioSpec ShrinkScenario(ScenarioSpec spec, const StillFails& still_fails,
                            int max_attempts) {
  int attempts = 0;
  bool progressed = true;
  while (progressed && attempts < max_attempts) {
    progressed = false;

    // 1. Drop fault events, latest first (recovery events usually depend
    //    on earlier injections, so removing from the tail keeps more
    //    candidates valid).
    for (size_t i = spec.faults.size(); i-- > 0;) {
      ScenarioSpec candidate = spec;
      std::vector<FaultEvent> events = spec.faults.events();
      events.erase(events.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.faults = FaultPlan::FromEvents(std::move(events));
      if (TryAdopt(&spec, std::move(candidate), still_fails, &attempts,
                   max_attempts)) {
        progressed = true;
      }
    }

    // 2. Halve the trace.
    while (spec.trace_n > 10 && attempts < max_attempts) {
      ScenarioSpec candidate = spec;
      candidate.trace_n = spec.trace_n / 2;
      if (!TryAdopt(&spec, std::move(candidate), still_fails, &attempts,
                    max_attempts)) {
        break;
      }
      progressed = true;
    }

    // 3. Drop whole chains.
    for (size_t ci = spec.chains.size(); ci-- > 0 && spec.chains.size() > 1;) {
      ScenarioSpec candidate = spec;
      candidate.chains.erase(candidate.chains.begin() +
                             static_cast<std::ptrdiff_t>(ci));
      if (TryAdopt(&spec, std::move(candidate), still_fails, &attempts,
                   max_attempts)) {
        progressed = true;
      }
    }

    // 4. Pop trailing boxes off multi-box chains.
    for (size_t ci = 0; ci < spec.chains.size(); ++ci) {
      while (spec.chains[ci].size() > 1 && attempts < max_attempts) {
        ScenarioSpec candidate = spec;
        candidate.chains[ci].pop_back();
        if (!TryAdopt(&spec, std::move(candidate), still_fails, &attempts,
                      max_attempts)) {
          break;
        }
        progressed = true;
      }
    }
  }
  return spec;
}

}  // namespace aurora
