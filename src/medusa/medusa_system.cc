#include "medusa/medusa_system.h"

namespace aurora {

Result<Participant*> MedusaSystem::AddParticipant(const std::string& name,
                                                  std::vector<NodeId> nodes,
                                                  double initial_balance,
                                                  double cost_per_cpu_us) {
  if (participants_.count(name)) {
    return Status::AlreadyExists("participant '" + name + "' exists");
  }
  for (NodeId node : nodes) {
    if (node < 0 || node >= static_cast<int>(star_->num_nodes())) {
      return Status::InvalidArgument("bad node id for participant");
    }
    auto owner = ParticipantOfNode(node);
    if (owner.ok()) {
      return Status::AlreadyExists("node " + std::to_string(node) +
                                   " already belongs to " + *owner);
    }
  }
  auto participant = std::make_unique<Participant>(
      name, std::move(nodes), initial_balance, cost_per_cpu_us);
  Participant* raw = participant.get();
  participants_[name] = std::move(participant);
  return raw;
}

Result<Participant*> MedusaSystem::GetParticipant(const std::string& name) {
  auto it = participants_.find(name);
  if (it == participants_.end()) {
    return Status::NotFound("no participant '" + name + "'");
  }
  return it->second.get();
}

Result<std::string> MedusaSystem::ParticipantOfNode(NodeId node) const {
  for (const auto& [name, p] : participants_) {
    if (p->OwnsNode(node)) return name;
  }
  return Status::NotFound("node " + std::to_string(node) +
                          " belongs to no participant");
}

void MedusaSystem::Start() {
  if (started_) return;
  started_ = true;
  star_->sim()->SchedulePeriodic(opts_.settle_interval, [this]() {
    SettleContracts();
    SettleMovementProcessing();
    RunOracles();
    return true;
  });
}

// ---------------------------------------------------------------------------
// Remote definition
// ---------------------------------------------------------------------------

Result<BoxId> MedusaSystem::RemoteDefine(const std::string& definer,
                                         const std::string& owner, NodeId node,
                                         const std::string& output_name,
                                         const OperatorSpec& spec) {
  AURORA_ASSIGN_OR_RETURN(Participant * owner_p, GetParticipant(owner));
  AURORA_RETURN_NOT_OK(GetParticipant(definer).status());
  if (!owner_p->IsAuthorized(definer)) {
    return Status::FailedPrecondition("'" + definer +
                                      "' is not authorized to remotely "
                                      "define operators at '" +
                                      owner + "'");
  }
  if (!owner_p->Offers(spec.kind)) {
    return Status::FailedPrecondition("'" + owner + "' does not offer '" +
                                      spec.kind +
                                      "' in its remote-definition set");
  }
  if (!owner_p->OwnsNode(node)) {
    return Status::InvalidArgument("node does not belong to '" + owner + "'");
  }
  AuroraEngine& engine = star_->node(node).engine();
  AURORA_ASSIGN_OR_RETURN(PortId port, engine.FindOutput(output_name));
  std::vector<ArcId> feeds = engine.ArcsInto(port);
  if (feeds.empty()) {
    return Status::FailedPrecondition("output '" + output_name +
                                      "' has no feeding arc to intercept");
  }
  AURORA_ASSIGN_OR_RETURN(BoxId box, engine.AddBox(spec));
  auto op = engine.BoxOp(box);
  if ((*op)->num_inputs() != 1 || (*op)->num_outputs() < 1) {
    return Status::InvalidArgument(
        "remote definition intercepts require a unary operator");
  }
  if (feeds.size() > 1) {
    return Status::NotImplemented(
        "intercepting a fan-in output port is not supported");
  }
  Endpoint src_ep = engine.ArcFrom(feeds[0]);
  AURORA_RETURN_NOT_OK(engine.DisconnectArc(feeds[0]));
  AURORA_RETURN_NOT_OK(
      engine.Connect(src_ep, Endpoint::BoxPort(box, 0)).status());
  AURORA_RETURN_NOT_OK(
      engine.Connect(Endpoint::BoxPort(box, 0), Endpoint::OutputPort(port))
          .status());
  AURORA_RETURN_NOT_OK(engine.InitializeBoxes(/*require_all=*/false));
  if (!engine.IsBoxInitialized(box)) {
    return Status::Internal("remotely defined box failed to initialize");
  }
  // Record the definition in the owner's per-participant catalog (§4.1).
  (void)owner_p->catalog().DefineOperator(
      definer + "/" + output_name + "/" + spec.kind, spec);
  return box;
}

// ---------------------------------------------------------------------------
// Content contracts
// ---------------------------------------------------------------------------

Result<NodeId> MedusaSystem::FindStreamSource(const std::string& stream) const {
  for (size_t i = 0; i < star_->num_nodes(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    for (const auto& [output, binding] : star_->node(id).bindings()) {
      if (binding.stream == stream) return id;
    }
  }
  return Status::NotFound("no binding carries stream '" + stream + "'");
}

Result<int> MedusaSystem::EstablishContentContract(
    const std::string& seller, const std::string& buyer,
    const std::string& stream, double price_per_message, SimDuration period,
    double availability_guarantee, double upfront_payment) {
  AURORA_ASSIGN_OR_RETURN(Participant * seller_p, GetParticipant(seller));
  AURORA_RETURN_NOT_OK(GetParticipant(buyer).status());
  AURORA_ASSIGN_OR_RETURN(NodeId src_node, FindStreamSource(stream));
  if (!seller_p->OwnsNode(src_node)) {
    return Status::FailedPrecondition("stream does not originate at '" +
                                      seller + "'");
  }
  ContentContract contract;
  contract.id = next_contract_id_++;
  contract.stream = stream;
  contract.seller = seller;
  contract.buyer = buyer;
  contract.price_per_message = price_per_message;
  contract.upfront_payment = upfront_payment;
  contract.established = star_->sim()->Now();
  contract.period = period;
  contract.availability_guarantee = availability_guarantee;
  if (upfront_payment > 0.0) {
    Transfer(buyer, seller, upfront_payment);
    contract.total_paid += upfront_payment;
  }
  // Watermark starts at the current sent count: only future messages bill.
  uint64_t sent = 0;
  for (const auto& [output, binding] : star_->node(src_node).bindings()) {
    if (binding.stream == stream) sent = binding.tuples_sent;
  }
  settled_watermark_[contract.id] = sent;
  content_.push_back(contract);
  return contract.id;
}

Status MedusaSystem::CancelContentContract(int id) {
  for (auto& c : content_) {
    if (c.id == id) {
      c.active = false;
      detector_.ForgetWatcher(c.id);
      return Status::OK();
    }
  }
  return Status::NotFound("no content contract " + std::to_string(id));
}

Result<const ContentContract*> MedusaSystem::GetContentContract(int id) const {
  for (const auto& c : content_) {
    if (c.id == id) return &c;
  }
  return Status::NotFound("no content contract " + std::to_string(id));
}

void MedusaSystem::Transfer(const std::string& from, const std::string& to,
                            double amount) {
  auto from_p = GetParticipant(from);
  auto to_p = GetParticipant(to);
  if (!from_p.ok() || !to_p.ok() || amount <= 0.0) return;
  (*from_p)->Debit(amount);
  (*to_p)->Credit(amount);
  total_transferred_ += amount;
}

void MedusaSystem::SettleContracts() {
  SimTime now = star_->sim()->Now();
  // Liveness pass: every active contract watches its seller node through
  // the shared heartbeat detector (§6.3 reused across layers). An up
  // seller's settle round doubles as its heartbeat; a fully silent round
  // raises the suspicion consumed by the billing pass below.
  for (auto& c : content_) {
    if (!c.active) continue;
    auto src = FindStreamSource(c.stream);
    if (!src.ok()) continue;
    detector_.Arm(c.id, *src, now);
    if (star_->node(*src).up()) detector_.RecordHeartbeat(c.id, *src, now);
  }
  (void)detector_.CheckSilence(now);
  for (auto& c : content_) {
    if (!c.active) continue;
    if (c.period.micros() > 0 && now > c.established + c.period) {
      c.active = false;  // the time period expired
      detector_.ForgetWatcher(c.id);
      continue;
    }
    auto src = FindStreamSource(c.stream);
    if (!src.ok()) continue;
    c.settle_checks++;
    if (detector_.IsSuspected(*src)) {
      c.down_checks++;
      // Availability clause: breach voids the contract.
      if (c.availability_guarantee > 0.0 && c.settle_checks > 4) {
        double uptime = 1.0 - static_cast<double>(c.down_checks) /
                                  static_cast<double>(c.settle_checks);
        if (uptime < c.availability_guarantee) {
          c.active = false;
          detector_.ForgetWatcher(c.id);
        }
      }
      continue;
    }
    uint64_t sent = 0;
    for (const auto& [output, binding] : star_->node(*src).bindings()) {
      if (binding.stream == c.stream) sent = binding.tuples_sent;
    }
    uint64_t& mark = settled_watermark_[c.id];
    if (sent <= mark) continue;
    uint64_t delta = sent - mark;
    mark = sent;
    double payment = static_cast<double>(delta) * c.price_per_message;
    Transfer(c.buyer, c.seller, payment);
    c.messages_settled += delta;
    c.total_paid += payment;
  }
}

Result<int> MedusaSystem::SuggestContract(const std::string& from,
                                          int contract_id,
                                          const std::string& new_seller,
                                          const std::string& new_stream,
                                          bool accept) {
  ContentContract* original = nullptr;
  for (auto& c : content_) {
    if (c.id == contract_id) original = &c;
  }
  if (original == nullptr || !original->active) {
    return Status::NotFound("no active contract " + std::to_string(contract_id));
  }
  if (original->seller != from) {
    return Status::FailedPrecondition(
        "only the current seller can suggest an alternate source");
  }
  SuggestedContract suggestion;
  suggestion.from = from;
  suggestion.buyer = original->buyer;
  suggestion.stream = new_stream;
  suggestion.new_seller = new_seller;
  suggestion.accepted = accept;
  suggestions_.push_back(suggestion);
  if (!accept) return contract_id;  // buyer ignored it; old contract stands
  AURORA_ASSIGN_OR_RETURN(
      int new_id,
      EstablishContentContract(new_seller, original->buyer, new_stream,
                               original->price_per_message, original->period,
                               original->availability_guarantee));
  original->active = false;
  return new_id;
}

// ---------------------------------------------------------------------------
// Movement contracts / oracles
// ---------------------------------------------------------------------------

Result<int> MedusaSystem::EstablishMovementContract(
    const std::string& a, NodeId node_a, const std::string& b, NodeId node_b,
    const std::string& box_name, DeployedQuery* deployed, double price_a,
    double price_b) {
  AURORA_ASSIGN_OR_RETURN(Participant * pa, GetParticipant(a));
  AURORA_ASSIGN_OR_RETURN(Participant * pb, GetParticipant(b));
  if (!pa->OwnsNode(node_a) || !pb->OwnsNode(node_b)) {
    return Status::InvalidArgument("movement contract nodes must belong to "
                                   "the contracting participants");
  }
  auto it = deployed->boxes.find(box_name);
  if (it == deployed->boxes.end()) {
    return Status::NotFound("no deployed box '" + box_name + "'");
  }
  if (it->second.node != node_a && it->second.node != node_b) {
    return Status::FailedPrecondition(
        "box currently runs on neither contract node");
  }
  MovementContract m;
  m.id = next_contract_id_++;
  m.participant_a = a;
  m.participant_b = b;
  m.box_name = box_name;
  m.node_a = node_a;
  m.node_b = node_b;
  m.price_a = price_a;
  m.price_b = price_b;
  m.hosted_at_b = (it->second.node == node_b);
  movement_.push_back(m);
  movement_state_[m.id] = {deployed, 0};
  return m.id;
}

Status MedusaSystem::CancelMovementContract(int id) {
  for (auto& m : movement_) {
    if (m.id == id) {
      m.active = false;
      return Status::OK();
    }
  }
  return Status::NotFound("no movement contract " + std::to_string(id));
}

void MedusaSystem::SettleMovementProcessing() {
  // Convention: participant A owns the query; when the box runs at B, A
  // pays B's per-tuple price for the processing service.
  for (auto& m : movement_) {
    if (!m.active || !m.hosted_at_b) continue;
    auto state = movement_state_.find(m.id);
    if (state == movement_state_.end()) continue;
    DeployedQuery* deployed = state->second.first;
    auto it = deployed->boxes.find(m.box_name);
    if (it == deployed->boxes.end()) continue;
    auto op = star_->node(it->second.node).engine().BoxOp(it->second.box);
    if (!op.ok()) continue;
    uint64_t in_now = (*op)->tuples_in();
    uint64_t& mark = state->second.second;
    if (in_now <= mark) continue;
    uint64_t delta = in_now - mark;
    mark = in_now;
    Transfer(m.participant_a, m.participant_b,
             static_cast<double>(delta) * m.price_b);
  }
}

int MedusaSystem::RunOracles() {
  int switches = 0;
  for (auto& m : movement_) {
    if (!m.active) continue;
    auto state = movement_state_.find(m.id);
    if (state == movement_state_.end()) continue;
    DeployedQuery* deployed = state->second.first;
    NodeId host = m.hosted_at_b ? m.node_b : m.node_a;
    NodeId other = m.hosted_at_b ? m.node_a : m.node_b;
    StreamNode& host_node = star_->node(host);
    StreamNode& other_node = star_->node(other);
    if (!host_node.up() || !other_node.up()) continue;
    // The hosting oracle proposes a hand-off when overloaded; the
    // counterpart accepts when underloaded AND the hosting fee covers its
    // processing cost ("their contracts have to make money").
    if (host_node.utilization() < opts_.oracle_overload) continue;
    if (other_node.utilization() > opts_.oracle_underload) continue;
    const std::string& acceptor =
        m.hosted_at_b ? m.participant_a : m.participant_b;
    double acceptor_price = m.hosted_at_b ? m.price_a : m.price_b;
    auto acceptor_p = GetParticipant(acceptor);
    auto it = deployed->boxes.find(m.box_name);
    if (!acceptor_p.ok() || it == deployed->boxes.end()) continue;
    auto op = star_->node(it->second.node).engine().BoxOp(it->second.box);
    if (!op.ok()) continue;
    double marginal_cost =
        (*op)->cost_micros_per_tuple() * (*acceptor_p)->cost_per_cpu_us();
    // The query owner (A) hosting its own box charges itself nothing.
    bool profitable = (acceptor == m.participant_a) ||
                      acceptor_price > marginal_cost;
    if (!profitable) continue;
    // Cross-domain moves use remote definition, never process migration
    // (§4.4): the box is re-instantiated from its spec at the counterpart,
    // with any open state drained downstream first.
    auto result =
        slider_.Slide(deployed, m.box_name, other, SlideMode::kRemoteDefinition);
    if (!result.ok()) continue;
    m.hosted_at_b = !m.hosted_at_b;
    m.switches++;
    switches++;
    total_switches_++;
    // Reset the processing watermark in the new location's counter space.
    auto new_op = star_->node(other).engine().BoxOp(deployed->boxes.at(m.box_name).box);
    state->second.second = new_op.ok() ? (*new_op)->tuples_in() : 0;
  }
  return switches;
}

}  // namespace aurora
