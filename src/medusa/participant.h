#ifndef AURORA_MEDUSA_PARTICIPANT_H_
#define AURORA_MEDUSA_PARTICIPANT_H_

#include <set>
#include <string>
#include <vector>

#include "engine/catalog.h"

namespace aurora {

/// \brief A Medusa participant (§3.2): "a collection of computing devices
/// administered by a single entity", from sensor proxies to full Aurora
/// server farms.
///
/// Participants are economic actors: they hold a currency balance, pay for
/// streams they receive, charge for streams and processing they provide,
/// and "are assumed to operate as profit-making entities".
class Participant {
 public:
  Participant(std::string name, std::vector<NodeId> nodes,
              double initial_balance, double cost_per_cpu_us)
      : name_(std::move(name)),
        nodes_(std::move(nodes)),
        balance_(initial_balance),
        initial_balance_(initial_balance),
        cost_per_cpu_us_(cost_per_cpu_us) {}

  const std::string& name() const { return name_; }
  const std::vector<NodeId>& nodes() const { return nodes_; }
  bool OwnsNode(NodeId node) const {
    for (NodeId n : nodes_) {
      if (n == node) return true;
    }
    return false;
  }

  double balance() const { return balance_; }
  /// Profit relative to the starting balance.
  double profit() const { return balance_ - initial_balance_; }
  void Credit(double amount) { balance_ += amount; }
  void Debit(double amount) { balance_ -= amount; }

  /// Intrinsic cost of one CPU-microsecond of processing on this
  /// participant's hardware (its marginal cost when selling processing).
  double cost_per_cpu_us() const { return cost_per_cpu_us_; }

  /// Operator kinds this participant offers for remote definition (§4.4:
  /// "a pre-defined set offered by another participant").
  void OfferOperatorKind(const std::string& kind) { offered_kinds_.insert(kind); }
  bool Offers(const std::string& kind) const {
    return offered_kinds_.count(kind) > 0;
  }

  /// Remote-definition authorization (§7.2: "if participants authorize
  /// each other to do remote definitions").
  void AuthorizeRemoteDefiner(const std::string& participant) {
    authorized_definers_.insert(participant);
  }
  bool IsAuthorized(const std::string& participant) const {
    return authorized_definers_.count(participant) > 0;
  }

  /// Per-participant namespace (§4.1): names defined by this participant.
  Catalog& catalog() { return catalog_; }

 private:
  std::string name_;
  std::vector<NodeId> nodes_;
  double balance_;
  double initial_balance_;
  double cost_per_cpu_us_;
  std::set<std::string> offered_kinds_;
  std::set<std::string> authorized_definers_;
  Catalog catalog_;
};

}  // namespace aurora

#endif  // AURORA_MEDUSA_PARTICIPANT_H_
