#ifndef AURORA_MEDUSA_MEDUSA_SYSTEM_H_
#define AURORA_MEDUSA_MEDUSA_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "distributed/box_slider.h"
#include "fault/failure_detector.h"
#include "medusa/contracts.h"
#include "medusa/participant.h"

namespace aurora {

struct MedusaOptions {
  /// How often content contracts are settled (messages metered, money
  /// transferred) and oracles evaluate movement contracts.
  SimDuration settle_interval = SimDuration::Millis(200);
  /// Oracle thresholds: a side proposes moving the box away above
  /// `overload`, and accepts hosting below `underload`.
  double oracle_overload = 0.8;
  double oracle_underload = 0.5;
};

/// \brief Medusa: federated operation across administrative boundaries
/// (paper §3.2, §7.2).
///
/// Layers the agoric economy over an AuroraStarSystem whose nodes are
/// partitioned among participants. Content contracts meter the tuples of
/// boundary-crossing streams and move money from buyer to seller each
/// settlement; movement contracts let the paired oracles migrate a query
/// piece between the two participants when both sides profit; remote
/// definition instantiates operators from a participant's offered set
/// inside its domain (§4.4).
class MedusaSystem {
 public:
  MedusaSystem(AuroraStarSystem* system, MedusaOptions opts)
      : star_(system),
        opts_(opts),
        slider_(system),
        // Buyers watch seller nodes through the shared detector: a settle
        // round doubles as the heartbeat, so silence shorter than a round
        // can never convict and a full silent round always does.
        detector_(FailureDetectorOptions{
            SimDuration::Micros(opts.settle_interval.micros() / 2), 1}) {}

  AuroraStarSystem* star() { return star_; }

  // ---- Participants ------------------------------------------------------

  Result<Participant*> AddParticipant(const std::string& name,
                                      std::vector<NodeId> nodes,
                                      double initial_balance,
                                      double cost_per_cpu_us);
  Result<Participant*> GetParticipant(const std::string& name);
  /// Owner of a node, or NotFound.
  Result<std::string> ParticipantOfNode(NodeId node) const;
  size_t num_participants() const { return participants_.size(); }

  /// Starts the settlement/oracle timers.
  void Start();

  // ---- Remote definition (§4.4) -------------------------------------------

  /// `definer` instantiates an operator inside `owner`'s domain: the spec's
  /// kind must be in the owner's offered set, the definer must be
  /// authorized, and `output_name` names an engine output on `node` whose
  /// feed the new box intercepts (content customization: "remotely define
  /// the filter, and receive directly the customized content").
  Result<BoxId> RemoteDefine(const std::string& definer,
                             const std::string& owner, NodeId node,
                             const std::string& output_name,
                             const OperatorSpec& spec);

  // ---- Content contracts (§7.2) -------------------------------------------

  /// Establishes a per-message contract over the named transport stream
  /// (which must originate on a seller node and terminate on a buyer node).
  Result<int> EstablishContentContract(const std::string& seller,
                                       const std::string& buyer,
                                       const std::string& stream,
                                       double price_per_message,
                                       SimDuration period,
                                       double availability_guarantee = 0.0,
                                       double upfront_payment = 0.0);
  Status CancelContentContract(int id);
  Result<const ContentContract*> GetContentContract(int id) const;

  /// Meters all active content contracts once and transfers payments.
  void SettleContracts();

  /// A leaving participant suggests an alternate seller to a buyer (§7.2).
  /// The buyer (modeled as always accepting, the paper allows refusal via
  /// `accept=false`) establishes a replacement contract and the original is
  /// cancelled.
  Result<int> SuggestContract(const std::string& from, int contract_id,
                              const std::string& new_seller,
                              const std::string& new_stream, bool accept);

  // ---- Movement contracts and oracles (§7.2) -------------------------------

  /// Pre-agrees that `box_name` (currently at a's node) may run at either
  /// participant, with per-tuple prices each side charges for hosting.
  Result<int> EstablishMovementContract(const std::string& a, NodeId node_a,
                                        const std::string& b, NodeId node_b,
                                        const std::string& box_name,
                                        DeployedQuery* deployed,
                                        double price_a, double price_b);
  /// Either side may cancel at any time (§7.2).
  Status CancelMovementContract(int id);

  /// One oracle evaluation pass: for each active movement contract, the
  /// hosting side proposes a hand-off when overloaded, and the counterpart
  /// accepts when underloaded and profitable. Returns switches performed.
  int RunOracles();

  // ---- Statistics ----------------------------------------------------------

  double total_transferred() const { return total_transferred_; }
  int total_switches() const { return total_switches_; }
  const std::vector<ContentContract>& content_contracts() const {
    return content_;
  }
  const std::vector<MovementContract>& movement_contracts() const {
    return movement_;
  }
  const std::vector<SuggestedContract>& suggestions() const {
    return suggestions_;
  }
  /// The availability-clause failure detector (contract id = watcher,
  /// seller NodeId = watched).
  const HeartbeatFailureDetector& detector() const { return detector_; }

 private:
  /// Locates the (node, binding stream) pair for a stream name; returns the
  /// holder node or NotFound.
  Result<NodeId> FindStreamSource(const std::string& stream) const;
  void Transfer(const std::string& from, const std::string& to, double amount);
  /// Hosting participant's per-tuple processing charge for a movement
  /// contract's box, paid by the box's owner side.
  void SettleMovementProcessing();

  AuroraStarSystem* star_;
  MedusaOptions opts_;
  BoxSlider slider_;
  HeartbeatFailureDetector detector_;
  std::map<std::string, std::unique_ptr<Participant>> participants_;
  std::vector<ContentContract> content_;
  std::vector<MovementContract> movement_;
  std::vector<SuggestedContract> suggestions_;
  /// Per content contract: tuples_sent watermark at last settlement.
  std::map<int, uint64_t> settled_watermark_;
  /// Movement contract -> (deployed query handle, tuples_in watermark).
  std::map<int, std::pair<DeployedQuery*, uint64_t>> movement_state_;
  int next_contract_id_ = 1;
  double total_transferred_ = 0.0;
  int total_switches_ = 0;
  bool started_ = false;
};

}  // namespace aurora

#endif  // AURORA_MEDUSA_MEDUSA_SYSTEM_H_
