#ifndef AURORA_MEDUSA_CONTRACTS_H_
#define AURORA_MEDUSA_CONTRACTS_H_

#include <string>

#include "common/sim_time.h"
#include "engine/catalog.h"

namespace aurora {

/// \brief Content contract (§7.2): "For stream_name, For time period, With
/// availability guarantee, Pay payment."
///
/// Covers one message stream crossing a participant boundary; the receiving
/// participant always pays the sender. Payment is per message here
/// (subscription = price 0 with an upfront transfer at establishment).
struct ContentContract {
  int id = -1;
  /// Transport stream name the contract covers.
  std::string stream;
  std::string seller;
  std::string buyer;
  double price_per_message = 0.0;
  /// Amount remitted at establishment (subscription component).
  double upfront_payment = 0.0;
  /// Contract validity window.
  SimTime established{};
  SimDuration period{};
  /// Guaranteed fraction of uptime (0 = no availability clause).
  double availability_guarantee = 0.0;
  bool active = true;
  uint64_t messages_settled = 0;
  double total_paid = 0.0;
  /// Availability accounting: settlements observed / settlements where the
  /// seller's source node was down. Breaching the guarantee voids the
  /// contract.
  uint64_t settle_checks = 0;
  uint64_t down_checks = 0;
};

/// \brief Suggested contract (§7.2): a participant leaving a query path
/// points its downstream buyers at an alternate source for the content.
struct SuggestedContract {
  std::string from;          // the suggesting (leaving) participant
  std::string buyer;         // who receives the suggestion
  std::string stream;        // content in question
  std::string new_seller;    // where to buy it instead
  bool accepted = false;     // "Receiving participants may ignore" it
};

/// \brief Movement contract (§7.2): a pre-agreed set of alternative
/// placements for one query piece crossing a participant boundary, with
/// inactive content contracts for each; the two oracles switch between
/// them at run time to balance load.
struct MovementContract {
  int id = -1;
  std::string participant_a;
  std::string participant_b;
  /// Deployed box the contract lets migrate between the two participants.
  std::string box_name;
  NodeId node_a = -1;
  NodeId node_b = -1;
  /// Per-tuple processing price each side charges when hosting the box.
  double price_a = 0.0;
  double price_b = 0.0;
  bool active = true;
  /// True when the box currently runs at participant B.
  bool hosted_at_b = false;
  int switches = 0;
};

}  // namespace aurora

#endif  // AURORA_MEDUSA_CONTRACTS_H_
