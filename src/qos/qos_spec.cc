#include "qos/qos_spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace aurora {

Result<UtilityGraph> UtilityGraph::Make(std::vector<Point> points) {
  if (points.empty()) {
    return Status::InvalidArgument("utility graph needs at least one point");
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].x <= points[i - 1].x) {
      return Status::InvalidArgument("utility graph x values must increase");
    }
  }
  for (const auto& p : points) {
    if (p.utility < 0.0 || p.utility > 1.0) {
      return Status::InvalidArgument("utility must be within [0, 1]");
    }
  }
  UtilityGraph g;
  g.points_ = std::move(points);
  return g;
}

double UtilityGraph::Eval(double x) const {
  if (points_.empty()) return 1.0;
  if (x <= points_.front().x) return points_.front().utility;
  if (x >= points_.back().x) return points_.back().utility;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), x,
      [](const Point& p, double v) { return p.x < v; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  double frac = (x - lo.x) / (hi.x - lo.x);
  return lo.utility + frac * (hi.utility - lo.utility);
}

UtilityGraph UtilityGraph::ShiftLeft(double dx) const {
  UtilityGraph g;
  g.points_.reserve(points_.size());
  for (const auto& p : points_) {
    g.points_.push_back(Point{p.x - dx, p.utility});
  }
  return g;
}

double UtilityGraph::CriticalX(double threshold) const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  double best = -std::numeric_limits<double>::infinity();
  bool any_below = false;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    const Point& a = points_[i];
    const Point& b = points_[i + 1];
    if (a.utility >= threshold && b.utility < threshold) {
      any_below = true;
      // Crossing point within [a.x, b.x].
      double frac = (a.utility - threshold) / (a.utility - b.utility);
      best = std::max(best, a.x + frac * (b.x - a.x));
    }
  }
  if (!any_below) {
    if (points_.back().utility >= threshold) {
      return std::numeric_limits<double>::infinity();
    }
    return points_.front().x;  // below threshold everywhere past the start
  }
  return best;
}

std::string UtilityGraph::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "(%.3g, %.2f)", points_[i].x,
                  points_[i].utility);
    out += buf;
  }
  out += "]";
  return out;
}

QoSSpec QoSSpec::Default() {
  QoSSpec spec;
  spec.latency = *UtilityGraph::Make({{100.0, 1.0}, {1000.0, 0.0}});
  spec.loss = *UtilityGraph::Make({{0.0, 0.0}, {1.0, 1.0}});
  return spec;
}

double QoSSpec::Utility(double latency_ms, double delivered_fraction) const {
  double u = 1.0;
  if (!latency.empty()) u *= latency.Eval(latency_ms);
  if (!loss.empty()) u *= loss.Eval(delivered_fraction);
  return u;
}

}  // namespace aurora
