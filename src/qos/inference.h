#ifndef AURORA_QOS_INFERENCE_H_
#define AURORA_QOS_INFERENCE_H_

#include <vector>

#include "qos/qos_spec.h"

namespace aurora {

/// \brief QoS inference for internal nodes (paper §7.1, Fig. 9).
///
/// QoS is specified only at application outputs; internal Aurora* nodes
/// need local specifications to make resource decisions. Given the spec on
/// a box's output side and the box's average total processing time T_B
/// (queueing included), the spec on its input side is
///   Q_i(t) = Q_o(t + T_B),
/// i.e. the latency graph shifted left by T_B. Applied box-by-box this
/// pushes output QoS to any arc in the network.
QoSSpec InferThroughBox(const QoSSpec& output_side, double t_b_ms);

/// Inference across a chain of boxes with times `t_b_ms` (output-side
/// first or in any order — shifts compose additively).
QoSSpec InferThroughChain(const QoSSpec& output_spec,
                          const std::vector<double>& t_b_ms);

/// When an arc reaches several outputs, the local spec must satisfy the most
/// stringent downstream requirement: pointwise minimum of the candidate
/// latency graphs (union of breakpoints).
UtilityGraph PointwiseMin(const std::vector<UtilityGraph>& graphs);

/// Combines full specs for a multi-output arc: pointwise-min latency graph,
/// pointwise-min loss graph.
QoSSpec CombineSpecs(const std::vector<QoSSpec>& specs);

}  // namespace aurora

#endif  // AURORA_QOS_INFERENCE_H_
