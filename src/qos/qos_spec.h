#ifndef AURORA_QOS_QOS_SPEC_H_
#define AURORA_QOS_QOS_SPEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"

namespace aurora {

/// \brief Monotone piecewise-linear utility graph, the QoS representation
/// of the Aurora papers (§7.1).
///
/// Defined by (x, utility) control points with utility in [0, 1]; evaluation
/// clamps outside the covered range. x's meaning depends on the graph:
/// latency in milliseconds, delivered fraction, or attribute value.
class UtilityGraph {
 public:
  struct Point {
    double x;
    double utility;
  };

  UtilityGraph() = default;
  static Result<UtilityGraph> Make(std::vector<Point> points);

  /// Utility at x (linear interpolation, clamped at the ends).
  double Eval(double x) const;

  /// Graph g' with g'(x) = this(x + dx) — the §7.1 inference step
  /// Q_i(t) = Q_o(t + T_B) shifts the latency graph left by T_B.
  UtilityGraph ShiftLeft(double dx) const;

  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }

  /// Largest x with utility >= `threshold` (the "deadline" the graph
  /// implies); +inf when utility never drops below it.
  double CriticalX(double threshold) const;

  std::string ToString() const;

 private:
  std::vector<Point> points_;  // sorted by x
};

/// \brief Per-application QoS expectations attached to an output (paper
/// §2.1/§7.1): latency-based, loss-tolerance, and value-based graphs.
struct QoSSpec {
  /// Utility as a function of output latency in milliseconds. Decreasing.
  UtilityGraph latency;
  /// Utility as a function of the fraction of tuples delivered (1 = all).
  /// Increasing; encodes how approximation-tolerant the application is.
  UtilityGraph loss;
  /// Optional: utility of results as a function of an output attribute
  /// value (which tuples matter most when shedding must choose).
  UtilityGraph value;
  /// Attribute the value graph ranges over (empty when unused).
  std::string value_field;

  /// A permissive default: full utility up to 100 ms latency decaying to 0
  /// at 1 s; linear loss utility.
  static QoSSpec Default();

  /// Combined utility for an observed (latency ms, delivered fraction).
  /// Multiplicative composition: both requirements must hold.
  double Utility(double latency_ms, double delivered_fraction) const;
};

}  // namespace aurora

#endif  // AURORA_QOS_QOS_SPEC_H_
