#include "qos/inference.h"

#include <algorithm>
#include <set>

namespace aurora {

QoSSpec InferThroughBox(const QoSSpec& output_side, double t_b_ms) {
  QoSSpec inferred = output_side;
  if (!output_side.latency.empty()) {
    inferred.latency = output_side.latency.ShiftLeft(t_b_ms);
  }
  // Loss and value graphs pass through unchanged: a tuple dropped upstream
  // is a tuple dropped at the output, and box processing does not change
  // which delivered fraction the application perceives.
  return inferred;
}

QoSSpec InferThroughChain(const QoSSpec& output_spec,
                          const std::vector<double>& t_b_ms) {
  double total = 0.0;
  for (double t : t_b_ms) total += t;
  return InferThroughBox(output_spec, total);
}

UtilityGraph PointwiseMin(const std::vector<UtilityGraph>& graphs) {
  std::vector<const UtilityGraph*> live;
  for (const auto& g : graphs) {
    if (!g.empty()) live.push_back(&g);
  }
  if (live.empty()) return UtilityGraph();
  if (live.size() == 1) return *live[0];
  // Union of breakpoints; min is piecewise linear on that refinement
  // (pointwise min of linear pieces may cross between breakpoints — add the
  // crossings too for exactness).
  std::set<double> xs;
  for (const auto* g : live) {
    for (const auto& p : g->points()) xs.insert(p.x);
  }
  // Add pairwise crossings inside each interval.
  std::vector<double> base(xs.begin(), xs.end());
  for (size_t i = 0; i + 1 < base.size(); ++i) {
    double x0 = base[i], x1 = base[i + 1];
    for (size_t a = 0; a < live.size(); ++a) {
      for (size_t b = a + 1; b < live.size(); ++b) {
        double a0 = live[a]->Eval(x0), a1 = live[a]->Eval(x1);
        double b0 = live[b]->Eval(x0), b1 = live[b]->Eval(x1);
        double da = a1 - a0, db = b1 - b0;
        if ((a0 - b0) * (a1 - b1) < 0 && da != db) {
          double frac = (b0 - a0) / (da - db);
          if (frac > 0 && frac < 1) xs.insert(x0 + frac * (x1 - x0));
        }
      }
    }
  }
  std::vector<UtilityGraph::Point> points;
  for (double x : xs) {
    double u = 1.0;
    for (const auto* g : live) u = std::min(u, g->Eval(x));
    points.push_back({x, u});
  }
  auto made = UtilityGraph::Make(std::move(points));
  return made.ok() ? *made : UtilityGraph();
}

QoSSpec CombineSpecs(const std::vector<QoSSpec>& specs) {
  QoSSpec out;
  std::vector<UtilityGraph> lat, loss;
  for (const auto& s : specs) {
    lat.push_back(s.latency);
    loss.push_back(s.loss);
  }
  out.latency = PointwiseMin(lat);
  out.loss = PointwiseMin(loss);
  return out;
}

}  // namespace aurora
