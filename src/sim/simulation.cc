#include "sim/simulation.h"

#include "common/logging.h"

namespace aurora {

void Simulation::ScheduleAt(SimTime when, std::function<void()> fn) {
  AURORA_CHECK(when >= now_) << "event scheduled in the past: " << when.micros()
                             << " < " << now_.micros();
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulation::SchedulePeriodic(SimDuration interval,
                                  std::function<bool()> fn) {
  Schedule(interval, [this, interval, fn = std::move(fn)]() {
    if (fn()) SchedulePeriodic(interval, fn);
  });
}

PeriodicTimer Simulation::SchedulePeriodicCancelable(SimDuration interval,
                                                     std::function<bool()> fn) {
  auto alive = std::make_shared<bool>(true);
  SchedulePeriodic(interval, [alive, fn = std::move(fn)]() {
    if (!*alive) return false;
    return fn();
  });
  return PeriodicTimer(alive);
}

bool Simulation::RunOne() {
  if (queue_.empty()) return false;
  // std::priority_queue::top is const; move out via const_cast, standard
  // practice for heap-of-move-only payloads.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  events_executed_++;
  ev.fn();
  return true;
}

void Simulation::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    RunOne();
  }
  if (now_ < until) now_ = until;
}

void Simulation::RunAll() {
  while (RunOne()) {
  }
}

bool Simulation::RunUntilIdle(SimTime deadline, SimDuration slice,
                              const std::function<bool()>& idle) {
  while (true) {
    if (idle()) return true;
    if (now_ >= deadline) return false;
    SimTime next = now_ + slice;
    if (deadline < next) next = deadline;
    RunUntil(next);
  }
}

}  // namespace aurora
