#ifndef AURORA_SIM_SIMULATION_H_
#define AURORA_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace aurora {

/// \brief RAII cancellation handle for a periodic schedule.
///
/// Returned by Simulation::SchedulePeriodicCancelable; destroying (or
/// Cancel()-ing) the handle stops future firings. Subsystems with a shorter
/// lifetime than the simulation (HA managers, fault injectors) hold one per
/// timer so their periodic callbacks can never run after destruction.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  explicit PeriodicTimer(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  PeriodicTimer(PeriodicTimer&&) = default;
  PeriodicTimer& operator=(PeriodicTimer&& other) {
    Cancel();
    alive_ = std::move(other.alive_);
    return *this;
  }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  ~PeriodicTimer() { Cancel(); }

  /// Stops future firings (idempotent). The already-queued next event still
  /// runs but becomes a no-op and does not reschedule.
  void Cancel() {
    if (alive_) {
      *alive_ = false;
      alive_.reset();
    }
  }
  bool active() const { return alive_ != nullptr && *alive_; }

 private:
  std::shared_ptr<bool> alive_;
};

/// \brief Deterministic discrete-event simulation kernel.
///
/// The distributed substrate (overlay links, node CPUs, failure timers,
/// heartbeats) runs entirely on this kernel, which makes every experiment
/// in the repository reproducible bit-for-bit. Events at equal times fire
/// in scheduling order.
class Simulation {
 public:
  Simulation() = default;

  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now.
  void Schedule(SimDuration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute time (>= Now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedules `fn` every `interval`, starting one interval from now, until
  /// it returns false.
  void SchedulePeriodic(SimDuration interval, std::function<bool()> fn);

  /// Like SchedulePeriodic, but the returned handle cancels the timer when
  /// destroyed — use when the callback's owner may die before the sim.
  [[nodiscard]] PeriodicTimer SchedulePeriodicCancelable(
      SimDuration interval, std::function<bool()> fn);

  /// Runs the earliest pending event. Returns false when none remain.
  bool RunOne();

  /// Runs all events with time <= `until`; leaves Now() == `until`.
  void RunUntil(SimTime until);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  /// Runs until the event queue is empty.
  void RunAll();

  /// Runs in `slice`-sized increments until `idle()` reports true between
  /// slices, or `deadline` passes. For systems with self-rescheduling
  /// periodic timers (node ticks, heartbeats) RunAll never returns; this is
  /// the bounded drain primitive such systems quiesce with. Returns whether
  /// idleness was observed before the deadline.
  bool RunUntilIdle(SimTime deadline, SimDuration slice,
                    const std::function<bool()>& idle);

  size_t pending() const { return queue_.size(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_{};
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace aurora

#endif  // AURORA_SIM_SIMULATION_H_
