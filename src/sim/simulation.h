#ifndef AURORA_SIM_SIMULATION_H_
#define AURORA_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace aurora {

/// \brief Deterministic discrete-event simulation kernel.
///
/// The distributed substrate (overlay links, node CPUs, failure timers,
/// heartbeats) runs entirely on this kernel, which makes every experiment
/// in the repository reproducible bit-for-bit. Events at equal times fire
/// in scheduling order.
class Simulation {
 public:
  Simulation() = default;

  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now.
  void Schedule(SimDuration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute time (>= Now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedules `fn` every `interval`, starting one interval from now, until
  /// it returns false.
  void SchedulePeriodic(SimDuration interval, std::function<bool()> fn);

  /// Runs the earliest pending event. Returns false when none remain.
  bool RunOne();

  /// Runs all events with time <= `until`; leaves Now() == `until`.
  void RunUntil(SimTime until);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  /// Runs until the event queue is empty.
  void RunAll();

  size_t pending() const { return queue_.size(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_{};
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace aurora

#endif  // AURORA_SIM_SIMULATION_H_
