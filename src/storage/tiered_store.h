#ifndef AURORA_STORAGE_TIERED_STORE_H_
#define AURORA_STORAGE_TIERED_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "obs/metrics.h"
#include "storage/storage_fs.h"

namespace aurora {

/// One persisted record of a named stream. `seq` is the store's per-stream
/// monotone sequence number (assigned at append unless the caller supplies
/// one), `timestamp_us` the simulated time the producer stamped.
struct StoredRecord {
  std::string stream;
  uint64_t seq = 0;
  int64_t timestamp_us = 0;
  std::vector<uint8_t> payload;
};

struct TieredStoreOptions {
  /// In-memory tier budget; the oldest cached records are evicted once the
  /// tier exceeds it (they stay readable from the AOF/page tiers).
  size_t mem_budget_bytes = 256 * 1024;
  /// Active AOF segment is sealed (queued for compaction) at this size.
  size_t aof_segment_bytes = 64 * 1024;
  /// Group-fsync threshold: Tick() syncs the active segment once at least
  /// this many unsynced bytes have accumulated (it always syncs on seal).
  /// 0 = sync on every Tick with pending bytes.
  size_t group_sync_bytes = 8 * 1024;
  /// When true every append syncs immediately (no deferred-durability
  /// window; slow, for tests that want zero loss on crash).
  bool sync_every_append = false;
  /// Sealed segments compacted into page files per Tick().
  int compactions_per_tick = 1;
  /// Suffix for this store's occupancy gauges: `storage.<scope>.mem.bytes`
  /// etc. Counters are process-wide aggregates (`storage.aof.appends`, ...)
  /// like the rest of the registry.
  std::string scope = "store";
};

/// \brief Durable tiered stream store: memstore → append-only log →
/// compacted pages (ROADMAP item 3, after dariadb's memstorage/AOF/page
/// split).
///
/// Writes take one path: every Append lands in the in-memory tier (a cache)
/// and is framed into the active AOF segment through the injected
/// StorageFs. The dropper runs on simulation ticks — Tick(now) group-syncs
/// the AOF, seals full segments into a compaction queue, compacts one
/// queued segment per tick into immutable per-stream page files carrying
/// min/max-seq + min/max-timestamp indexes, and evicts cold memstore
/// records — so all background work is driven by the deterministic
/// simulated clock, never by wall time or threads.
///
/// Reads (Read/Scan/ScanAll) serve from the memstore when it covers the
/// requested range and otherwise merge pages → sealed segments → active
/// segment in sequence order; `storage.reads.*` counters expose the scan
/// amplification this costs. Truncate(stream, upto) is the HA
/// queue-truncation hook: a logical floor persisted in a meta file so a
/// recovered store neither resurrects confirmed records nor reuses their
/// sequence numbers.
///
/// Open() recovers from whatever the StorageFs holds: page headers rebuild
/// the page index, AOF segments are scanned tolerantly (a torn tail — crash
/// mid-append — truncates the scan at the first bad length/checksum), and
/// per-stream next_seq/floor are restored from the scan plus the meta file.
class TieredStore {
 public:
  explicit TieredStore(StorageFs* fs, TieredStoreOptions opts = {});

  /// Recovers persistent state from the StorageFs. Call once before use
  /// (a fresh fs recovers to an empty store). Existing AOF segments are
  /// re-queued for compaction and a fresh active segment is started.
  Status Open();

  /// Appends one record, assigning the stream's next sequence number
  /// (starting at 1). Returns the assigned seq.
  uint64_t Append(const std::string& stream, int64_t timestamp_us,
                  const uint8_t* payload, size_t n);
  /// Append with a caller-assigned sequence number (HA output logs reuse
  /// the binding's own seq space). `seq` must exceed every seq already
  /// appended to the stream.
  Status AppendWithSeq(const std::string& stream, uint64_t seq,
                       int64_t timestamp_us, const uint8_t* payload, size_t n);

  /// Background dropper/compaction step; drive from the simulation clock.
  void Tick(SimTime now);
  /// Syncs everything pending now (clean shutdown / test barrier).
  Status Flush();

  /// Reads one record by sequence number.
  Result<StoredRecord> Read(const std::string& stream, uint64_t seq);
  /// Passes every live record with min_seq <= seq <= max_seq to `fn`,
  /// sequence order. Returns the number of records emitted.
  size_t Scan(const std::string& stream, uint64_t min_seq, uint64_t max_seq,
              const std::function<void(const StoredRecord&)>& fn);
  /// Every live record of the stream, oldest first.
  size_t ScanAll(const std::string& stream,
                 const std::function<void(const StoredRecord&)>& fn);
  /// Records whose timestamp falls in [min_ts_us, max_ts_us] (page-index
  /// pruned), sequence order.
  size_t ScanTime(const std::string& stream, int64_t min_ts_us,
                  int64_t max_ts_us,
                  const std::function<void(const StoredRecord&)>& fn);

  /// Logical truncation: records with seq <= upto become dead (skipped by
  /// reads, dropped at the next compaction). Persists the floor.
  void Truncate(const std::string& stream, uint64_t upto);

  /// Models this store's host crashing: volatile state (memstore, indexes,
  /// sequence counters) is lost and the StorageFs drops unsynced bytes.
  /// Call Open() again to recover from the durable remainder.
  void Crash();

  /// Next sequence number the stream would be assigned (1 on an empty or
  /// fully-lost stream).
  uint64_t next_seq(const std::string& stream) const;
  /// Highest truncated seq (0 = nothing truncated).
  uint64_t floor_seq(const std::string& stream) const;
  /// Live records (appended minus truncated) of one stream.
  uint64_t live_records(const std::string& stream) const;

  // Occupancy (also exported as storage.<scope>.* gauges).
  size_t mem_bytes() const { return mem_bytes_; }
  size_t mem_records() const { return mem_records_; }
  size_t aof_bytes() const { return aof_bytes_; }
  size_t page_bytes() const { return page_bytes_; }
  size_t num_pages() const;
  size_t pending_compactions() const { return compact_queue_.size(); }

  /// Node id stamped on this store's trace-0 kStorage spans (fsync windows,
  /// compactions); -1 for a standalone store.
  void set_trace_node(int node) { trace_node_ = node; }

  StorageFs* fs() { return fs_; }
  const TieredStoreOptions& options() const { return opts_; }

 private:
  struct StreamState {
    uint64_t next_seq = 1;
    uint64_t floor = 0;  // records with seq <= floor are dead
  };
  struct MemRecord {
    uint64_t seq;
    int64_t timestamp_us;
    std::vector<uint8_t> payload;
  };
  struct MemStream {
    std::deque<MemRecord> records;
    size_t bytes = 0;
  };
  struct PageInfo {
    std::string path;
    std::string stream;
    uint32_t count = 0;
    uint64_t min_seq = 0;
    uint64_t max_seq = 0;
    int64_t min_ts = 0;
    int64_t max_ts = 0;
    uint64_t bytes = 0;
  };

  std::string SegmentPath(uint64_t n) const;
  std::string PagePath(uint64_t n) const;
  void AppendRecord(const std::string& stream, uint64_t seq, int64_t ts_us,
                    const uint8_t* payload, size_t n);
  void SyncActiveSegment(SimTime now);
  void SealActiveSegment();
  void CompactOneSegment(SimTime now);
  void EvictMemstore();
  void PersistMeta();
  void LoadMeta();
  /// Decodes a segment's records, stopping at the first malformed frame
  /// (torn tail). Returns bytes of clean data consumed.
  size_t DecodeSegment(const std::vector<uint8_t>& data,
                       const std::function<void(StoredRecord)>& fn) const;
  Result<PageInfo> ReadPageHeader(const std::string& path,
                                  std::vector<uint8_t>* data) const;
  size_t ScanRange(const std::string& stream, uint64_t min_seq,
                   uint64_t max_seq, int64_t min_ts, int64_t max_ts,
                   const std::function<void(const StoredRecord&)>& fn);
  void EmitFromPages(const std::string& stream, uint64_t min_seq,
                     uint64_t max_seq, int64_t min_ts, int64_t max_ts,
                     uint64_t* last_emitted, size_t* emitted,
                     const std::function<void(const StoredRecord&)>& fn);
  bool RecordLive(const StreamState& ss, uint64_t seq) const {
    return seq > ss.floor;
  }
  void UpdateGauges();
  void RecordSpan(const char* site, int64_t start_us, int64_t end_us);

  StorageFs* fs_;
  TieredStoreOptions opts_;
  bool opened_ = false;

  std::map<std::string, StreamState> streams_;
  std::map<std::string, MemStream> mem_;
  size_t mem_bytes_ = 0;
  size_t mem_records_ = 0;

  // AOF: sealed segments awaiting compaction + the active one.
  std::deque<uint64_t> compact_queue_;  // segment numbers, oldest first
  uint64_t next_segment_ = 1;
  uint64_t active_segment_ = 0;  // 0 = none started yet
  size_t active_segment_size_ = 0;
  size_t unsynced_bytes_ = 0;
  int64_t oldest_unsynced_us_ = -1;
  size_t aof_bytes_ = 0;

  // Immutable pages, per stream, ordered by min_seq.
  std::map<std::string, std::vector<PageInfo>> pages_;
  uint64_t next_page_ = 1;
  size_t page_bytes_ = 0;

  int trace_node_ = -1;

  // Registry series (process-wide counters, per-scope gauges).
  Counter* m_appends_;
  Counter* m_append_bytes_;
  Counter* m_fsyncs_;
  Counter* m_seals_;
  Counter* m_compactions_;
  Counter* m_compact_records_;
  Counter* m_compact_dropped_;
  Counter* m_pages_written_;
  Counter* m_reads_;
  Counter* m_read_records_;
  Counter* m_read_scanned_;
  Counter* m_read_bytes_;
  Counter* m_truncates_;
  Counter* m_recovered_records_;
  Counter* m_torn_bytes_;
  Gauge* g_mem_bytes_;
  Gauge* g_mem_records_;
  Gauge* g_aof_bytes_;
  Gauge* g_aof_segments_;
  Gauge* g_page_bytes_;
  Gauge* g_page_files_;
  Gauge* g_read_amp_;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_TIERED_STORE_H_
