#include "storage/storage_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace aurora {

// ---------------------------------------------------------------------------
// MemStorageFs
// ---------------------------------------------------------------------------

Status MemStorageFs::Append(const std::string& path, const uint8_t* data,
                            size_t n) {
  FileRep& f = files_[path];
  f.data.insert(f.data.end(), data, data + n);
  appends_++;
  bytes_appended_ += n;
  return Status::OK();
}

Status MemStorageFs::Sync(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("sync: no such file '" + path + "'");
  }
  if (!sync_error_.ok()) return sync_error_;
  it->second.synced = it->second.data.size();
  syncs_++;
  return Status::OK();
}

Status MemStorageFs::WriteFileAtomic(const std::string& path,
                                     const std::vector<uint8_t>& data) {
  FileRep& f = files_[path];
  f.data = data;
  f.synced = data.size();
  return Status::OK();
}

Result<std::vector<uint8_t>> MemStorageFs::ReadFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("read: no such file '" + path + "'");
  }
  return it->second.data;
}

Result<uint64_t> MemStorageFs::FileSize(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("size: no such file '" + path + "'");
  }
  return static_cast<uint64_t>(it->second.data.size());
}

bool MemStorageFs::Exists(const std::string& path) {
  return files_.count(path) > 0;
}

std::vector<std::string> MemStorageFs::List(const std::string& prefix) {
  std::vector<std::string> out;
  for (const auto& [name, f] : files_) {
    if (name.rfind(prefix, 0) == 0) out.push_back(name);
  }
  return out;  // map iteration is already sorted
}

Status MemStorageFs::Remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("remove: no such file '" + path + "'");
  }
  return Status::OK();
}

void MemStorageFs::Crash() {
  crashes_++;
  for (auto it = files_.begin(); it != files_.end();) {
    FileRep& f = it->second;
    size_t keep = f.synced;
    if (torn_writes_ && f.data.size() > f.synced) {
      keep = f.synced + (f.data.size() - f.synced) / 2;
    }
    if (keep == 0) {
      // Nothing durable: the directory entry itself was never fsynced, so
      // the file does not exist after the crash.
      it = files_.erase(it);
      continue;
    }
    f.data.resize(keep);
    f.synced = f.data.size();
    ++it;
  }
}

uint64_t MemStorageFs::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, f] : files_) total += f.data.size();
  return total;
}

uint64_t MemStorageFs::UnsyncedBytes(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return 0;
  return it->second.data.size() - it->second.synced;
}

uint64_t MemStorageFs::ContentDigest() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](const uint8_t* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [name, f] : files_) {
    mix(reinterpret_cast<const uint8_t*>(name.data()), name.size());
    mix(f.data.data(), f.data.size());
  }
  return h;
}

// ---------------------------------------------------------------------------
// PosixStorageFs
// ---------------------------------------------------------------------------

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " '" + path + "': " + std::strerror(errno));
}

void ListRecursive(const std::string& abs_dir, const std::string& rel_dir,
                   std::vector<std::string>* out) {
  DIR* d = ::opendir(abs_dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    std::string abs = abs_dir + "/" + name;
    std::string rel = rel_dir.empty() ? name : rel_dir + "/" + name;
    struct stat st;
    if (::stat(abs.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      ListRecursive(abs, rel, out);
    } else {
      out->push_back(rel);
    }
  }
  ::closedir(d);
}

}  // namespace

PosixStorageFs::PosixStorageFs(std::string root) : root_(std::move(root)) {
  ::mkdir(root_.c_str(), 0755);  // best effort; surfaced on first write
}

Status PosixStorageFs::EnsureParentDirs(const std::string& path) {
  std::string abs = Abs(path);
  for (size_t i = root_.size() + 1; i < abs.size(); ++i) {
    if (abs[i] != '/') continue;
    std::string dir = abs.substr(0, i);
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", dir);
    }
  }
  return Status::OK();
}

Status PosixStorageFs::Append(const std::string& path, const uint8_t* data,
                              size_t n) {
  Status st = EnsureParentDirs(path);
  if (!st.ok()) return st;
  int fd = ::open(Abs(path).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      ::close(fd);
      return ErrnoStatus("write", path);
    }
    off += static_cast<size_t>(w);
  }
  ::close(fd);
  return Status::OK();
}

Status PosixStorageFs::Sync(const std::string& path) {
  int fd = ::open(Abs(path).c_str(), O_WRONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync", path);
  return Status::OK();
}

Status PosixStorageFs::WriteFileAtomic(const std::string& path,
                                       const std::vector<uint8_t>& data) {
  Status st = EnsureParentDirs(path);
  if (!st.ok()) return st;
  std::string tmp = Abs(path) + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  size_t off = 0;
  while (off < data.size()) {
    ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      ::close(fd);
      return ErrnoStatus("write", tmp);
    }
    off += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), Abs(path).c_str()) != 0) {
    return ErrnoStatus("rename", path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> PosixStorageFs::ReadFile(const std::string& path) {
  int fd = ::open(Abs(path).c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  std::vector<uint8_t> out;
  uint8_t buf[1 << 16];
  while (true) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  ::close(fd);
  return out;
}

Result<uint64_t> PosixStorageFs::FileSize(const std::string& path) {
  struct stat st;
  if (::stat(Abs(path).c_str(), &st) != 0) return ErrnoStatus("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

bool PosixStorageFs::Exists(const std::string& path) {
  struct stat st;
  return ::stat(Abs(path).c_str(), &st) == 0;
}

std::vector<std::string> PosixStorageFs::List(const std::string& prefix) {
  std::vector<std::string> all;
  ListRecursive(root_, "", &all);
  std::vector<std::string> out;
  for (auto& name : all) {
    if (name.rfind(prefix, 0) == 0) out.push_back(std::move(name));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status PosixStorageFs::Remove(const std::string& path) {
  if (::unlink(Abs(path).c_str()) != 0) return ErrnoStatus("unlink", path);
  return Status::OK();
}

}  // namespace aurora
