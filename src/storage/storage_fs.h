#ifndef AURORA_STORAGE_STORAGE_FS_H_
#define AURORA_STORAGE_STORAGE_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace aurora {

/// \brief Injectable file-system boundary under the tiered store.
///
/// Every byte the storage subsystem persists goes through this interface,
/// which is what makes the store testable and deterministic: production runs
/// use PosixStorageFs against a real directory, while simcheck/tests use
/// MemStorageFs — a pure in-memory model whose durability semantics (synced
/// prefix survives a crash, unsynced suffix is lost or torn) are driven
/// explicitly by the test instead of by the kernel's page cache.
///
/// Paths are relative, '/'-separated names ("aof/000001.log"); backends own
/// the mapping to real locations. Append-only writing plus whole-file
/// atomic replace is the entire write surface — the same narrow contract
/// LSM-style stores rely on, and small enough that the two backends cannot
/// drift apart semantically.
class StorageFs {
 public:
  virtual ~StorageFs() = default;

  /// Appends `n` bytes to `path`, creating it if absent. Appended data is
  /// readable immediately but only durable (crash-survivable) after Sync.
  virtual Status Append(const std::string& path, const uint8_t* data,
                        size_t n) = 0;

  /// Makes all appended bytes of `path` durable (fsync).
  virtual Status Sync(const std::string& path) = 0;

  /// Atomically replaces `path` with `data`, durable on return (write to a
  /// temporary, fsync, rename). Readers never observe a partial file.
  virtual Status WriteFileAtomic(const std::string& path,
                                 const std::vector<uint8_t>& data) = 0;

  virtual Result<std::vector<uint8_t>> ReadFile(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// All file paths starting with `prefix`, lexicographically sorted (the
  /// store's segment/page names are zero-padded so this is creation order).
  virtual std::vector<std::string> List(const std::string& prefix) = 0;
  virtual Status Remove(const std::string& path) = 0;

  /// Fault hook: models a machine/process failure. In-memory backends drop
  /// every unsynced byte (optionally leaving a torn partial append, see
  /// MemStorageFs); the POSIX backend is a no-op — a real crash is outside
  /// the process.
  virtual void Crash() {}
};

/// \brief Deterministic in-memory StorageFs for tests and simcheck.
///
/// Each file tracks its synced prefix separately from unsynced appends, so
/// Crash() models exactly what a kernel loses: synced bytes survive, the
/// unsynced suffix vanishes. With set_torn_writes(true), Crash() instead
/// keeps the first half (rounded down) of each file's unsynced suffix — a
/// torn final write, the input the AOF recovery path's checksum scan must
/// tolerate. Both behaviours are pure functions of the append history, so
/// two same-seed runs crash into byte-identical states.
class MemStorageFs final : public StorageFs {
 public:
  Status Append(const std::string& path, const uint8_t* data,
                size_t n) override;
  Status Sync(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         const std::vector<uint8_t>& data) override;
  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool Exists(const std::string& path) override;
  std::vector<std::string> List(const std::string& prefix) override;
  Status Remove(const std::string& path) override;
  void Crash() override;

  /// When set, Crash() leaves a deterministic torn tail (half the unsynced
  /// suffix) instead of dropping it cleanly.
  void set_torn_writes(bool torn) { torn_writes_ = torn; }

  /// When set, every Sync returns this status (fsync-loss fault hook) and
  /// leaves the file's unsynced suffix volatile.
  void set_sync_error(Status st) { sync_error_ = std::move(st); }

  // Introspection for tests and determinism diffs.
  uint64_t appends() const { return appends_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t crashes() const { return crashes_; }
  size_t num_files() const { return files_.size(); }
  uint64_t TotalBytes() const;
  /// Bytes of `path` not yet durable; 0 when absent.
  uint64_t UnsyncedBytes(const std::string& path) const;
  /// FNV-1a digest over every (name, content) pair in sorted order — one
  /// number that proves two runs produced byte-identical storage state.
  uint64_t ContentDigest() const;

 private:
  struct FileRep {
    std::vector<uint8_t> data;
    size_t synced = 0;  // prefix length that survives Crash()
  };
  std::map<std::string, FileRep> files_;
  bool torn_writes_ = false;
  Status sync_error_;  // OK = syncs succeed
  uint64_t appends_ = 0;
  uint64_t syncs_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t crashes_ = 0;
};

/// \brief Real-directory StorageFs (POSIX appends + fsync + atomic rename).
///
/// Maps relative paths under `root`, creating subdirectories on demand.
/// Used when the store must outlive the process; everything the simulation
/// and CI exercise runs on MemStorageFs.
class PosixStorageFs final : public StorageFs {
 public:
  explicit PosixStorageFs(std::string root);

  Status Append(const std::string& path, const uint8_t* data,
                size_t n) override;
  Status Sync(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         const std::vector<uint8_t>& data) override;
  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool Exists(const std::string& path) override;
  std::vector<std::string> List(const std::string& prefix) override;
  Status Remove(const std::string& path) override;

  const std::string& root() const { return root_; }

 private:
  std::string Abs(const std::string& path) const { return root_ + "/" + path; }
  Status EnsureParentDirs(const std::string& path);

  std::string root_;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_STORAGE_FS_H_
