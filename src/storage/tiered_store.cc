#include "storage/tiered_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "obs/trace.h"
#include "tuple/serde.h"

namespace aurora {

namespace {

constexpr uint32_t kPageMagic = 0x61757250;  // "Pura"
constexpr uint32_t kMetaMagic = 0x6175724D;  // "Mura"
constexpr uint32_t kFormatVersion = 1;
constexpr char kMetaPath[] = "meta.bin";

uint32_t Fnv1a32(const uint8_t* data, size_t n, uint32_t seed = 2166136261u) {
  uint32_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

/// Trailing zero-padded number of "aof/000007.log" / "page/000012.page".
uint64_t PathNumber(const std::string& path) {
  size_t slash = path.rfind('/');
  size_t dot = path.rfind('.');
  if (slash == std::string::npos || dot == std::string::npos || dot <= slash) {
    return 0;
  }
  uint64_t n = 0;
  for (size_t i = slash + 1; i < dot; ++i) {
    char c = path[i];
    if (c < '0' || c > '9') return 0;
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  return n;
}

}  // namespace

TieredStore::TieredStore(StorageFs* fs, TieredStoreOptions opts)
    : fs_(fs), opts_(std::move(opts)) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_appends_ = reg.GetCounter("storage.aof.appends");
  m_append_bytes_ = reg.GetCounter("storage.aof.appended_bytes");
  m_fsyncs_ = reg.GetCounter("storage.aof.fsyncs");
  m_seals_ = reg.GetCounter("storage.aof.segments_sealed");
  m_compactions_ = reg.GetCounter("storage.compactions");
  m_compact_records_ = reg.GetCounter("storage.compaction.records");
  m_compact_dropped_ = reg.GetCounter("storage.compaction.dropped_records");
  m_pages_written_ = reg.GetCounter("storage.pages.written");
  m_reads_ = reg.GetCounter("storage.reads");
  m_read_records_ = reg.GetCounter("storage.reads.records");
  m_read_scanned_ = reg.GetCounter("storage.reads.records_scanned");
  m_read_bytes_ = reg.GetCounter("storage.reads.bytes");
  m_truncates_ = reg.GetCounter("storage.truncates");
  m_recovered_records_ = reg.GetCounter("storage.recovered.records");
  m_torn_bytes_ = reg.GetCounter("storage.recovered.torn_bytes");
  const std::string p = "storage." + opts_.scope + ".";
  g_mem_bytes_ = reg.GetGauge(p + "mem.bytes");
  g_mem_records_ = reg.GetGauge(p + "mem.records");
  g_aof_bytes_ = reg.GetGauge(p + "aof.bytes");
  g_aof_segments_ = reg.GetGauge(p + "aof.segments");
  g_page_bytes_ = reg.GetGauge(p + "page.bytes");
  g_page_files_ = reg.GetGauge(p + "page.files");
  g_read_amp_ = reg.GetGauge(p + "read_amp");
}

std::string TieredStore::SegmentPath(uint64_t n) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "aof/%06" PRIu64 ".log", n);
  return buf;
}

std::string TieredStore::PagePath(uint64_t n) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "page/%06" PRIu64 ".page", n);
  return buf;
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

uint64_t TieredStore::Append(const std::string& stream, int64_t timestamp_us,
                             const uint8_t* payload, size_t n) {
  StreamState& ss = streams_[stream];
  uint64_t seq = ss.next_seq++;
  AppendRecord(stream, seq, timestamp_us, payload, n);
  return seq;
}

Status TieredStore::AppendWithSeq(const std::string& stream, uint64_t seq,
                                  int64_t timestamp_us, const uint8_t* payload,
                                  size_t n) {
  StreamState& ss = streams_[stream];
  if (seq < ss.next_seq) {
    return Status::InvalidArgument("append seq " + std::to_string(seq) +
                                   " below stream '" + stream + "' next " +
                                   std::to_string(ss.next_seq));
  }
  ss.next_seq = seq + 1;
  AppendRecord(stream, seq, timestamp_us, payload, n);
  return Status::OK();
}

void TieredStore::AppendRecord(const std::string& stream, uint64_t seq,
                               int64_t ts_us, const uint8_t* payload,
                               size_t n) {
  // AOF frame: u32 body_len | u32 fnv1a(body) | body. The body carries the
  // stream name so one log serializes every stream's appends in arrival
  // order — exactly the total order recovery replays.
  Encoder body;
  body.PutString(stream);
  body.PutU64(seq);
  body.PutI64(ts_us);
  body.PutU32(static_cast<uint32_t>(n));
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(body.size() + n));
  // Chained FNV over header-then-payload equals one pass over the stored
  // contiguous frame body, which is what DecodeSegment verifies.
  uint32_t cksum = Fnv1a32(body.buffer().data(), body.size());
  cksum = Fnv1a32(payload, n, cksum);
  frame.PutU32(cksum);

  if (active_segment_ == 0) {
    active_segment_ = next_segment_++;
    active_segment_size_ = 0;
  }
  const std::string path = SegmentPath(active_segment_);
  Status st = fs_->Append(path, frame.buffer().data(), frame.size());
  if (st.ok()) st = fs_->Append(path, body.buffer().data(), body.size());
  if (st.ok() && n > 0) st = fs_->Append(path, payload, n);
  if (!st.ok()) {
    AURORA_LOG(Error) << "storage: AOF append failed: " << st.ToString();
  }
  size_t frame_bytes = frame.size() + body.size() + n;
  active_segment_size_ += frame_bytes;
  aof_bytes_ += frame_bytes;
  unsynced_bytes_ += frame_bytes;
  if (oldest_unsynced_us_ < 0) oldest_unsynced_us_ = ts_us;
  m_appends_->Add();
  m_append_bytes_->Add(frame_bytes);
  if (opts_.sync_every_append) {
    Status sync = fs_->Sync(path);
    if (sync.ok()) {
      unsynced_bytes_ = 0;
      oldest_unsynced_us_ = -1;
      m_fsyncs_->Add();
    }
  }

  MemStream& ms = mem_[stream];
  size_t mem_sz = n + sizeof(MemRecord);
  ms.records.push_back(
      MemRecord{seq, ts_us, std::vector<uint8_t>(payload, payload + n)});
  ms.bytes += mem_sz;
  mem_bytes_ += mem_sz;
  mem_records_++;
  if (opts_.mem_budget_bytes > 0 && mem_bytes_ > opts_.mem_budget_bytes) {
    EvictMemstore();
  }
  UpdateGauges();
}

void TieredStore::SyncActiveSegment(SimTime now) {
  if (active_segment_ == 0 || unsynced_bytes_ == 0) return;
  Status st = fs_->Sync(SegmentPath(active_segment_));
  if (!st.ok()) {
    // Fault hook (fsync loss): the bytes stay appended but volatile; a
    // crash before a later successful sync loses them, which is exactly
    // the durability window the recovery tests probe.
    AURORA_LOG(Warn) << "storage: fsync failed: " << st.ToString();
    return;
  }
  m_fsyncs_->Add();
  RecordSpan("storage:fsync",
             oldest_unsynced_us_ >= 0 ? oldest_unsynced_us_ : now.micros(),
             now.micros());
  unsynced_bytes_ = 0;
  oldest_unsynced_us_ = -1;
}

void TieredStore::SealActiveSegment() {
  if (active_segment_ == 0) return;
  compact_queue_.push_back(active_segment_);
  m_seals_->Add();
  active_segment_ = 0;
  active_segment_size_ = 0;
}

void TieredStore::Tick(SimTime now) {
  // Group fsync: amortize syncs over group_sync_bytes of appended data.
  if (unsynced_bytes_ > 0 &&
      (opts_.group_sync_bytes == 0 || unsynced_bytes_ >= opts_.group_sync_bytes ||
       active_segment_size_ >= opts_.aof_segment_bytes)) {
    SyncActiveSegment(now);
  }
  if (active_segment_ != 0 && active_segment_size_ >= opts_.aof_segment_bytes &&
      unsynced_bytes_ == 0) {
    SealActiveSegment();
  }
  for (int i = 0; i < opts_.compactions_per_tick && !compact_queue_.empty();
       ++i) {
    CompactOneSegment(now);
  }
  // Dropper: page files wholly below their stream's floor are dead.
  for (auto& [stream, infos] : pages_) {
    const StreamState& ss = streams_[stream];
    while (!infos.empty() && infos.front().max_seq <= ss.floor) {
      page_bytes_ -= infos.front().bytes;
      (void)fs_->Remove(infos.front().path);
      infos.erase(infos.begin());
    }
  }
  if (opts_.mem_budget_bytes > 0 && mem_bytes_ > opts_.mem_budget_bytes) {
    EvictMemstore();
  }
  UpdateGauges();
}

Status TieredStore::Flush() {
  if (active_segment_ != 0 && unsynced_bytes_ > 0) {
    Status st = fs_->Sync(SegmentPath(active_segment_));
    if (!st.ok()) return st;
    m_fsyncs_->Add();
    unsynced_bytes_ = 0;
    oldest_unsynced_us_ = -1;
  }
  return Status::OK();
}

void TieredStore::CompactOneSegment(SimTime now) {
  uint64_t seg = compact_queue_.front();
  compact_queue_.pop_front();
  const std::string path = SegmentPath(seg);
  auto data = fs_->ReadFile(path);
  if (!data.ok()) {
    AURORA_LOG(Error) << "storage: compact read failed: "
                      << data.status().ToString();
    return;
  }
  // Preserve per-stream arrival order (== seq order) while grouping.
  std::map<std::string, std::vector<StoredRecord>> by_stream;
  DecodeSegment(*data, [&](StoredRecord rec) {
    by_stream[rec.stream].push_back(std::move(rec));
  });
  uint64_t kept = 0, dropped = 0;
  for (auto& [stream, records] : by_stream) {
    const StreamState& ss = streams_[stream];
    std::vector<StoredRecord*> live;
    live.reserve(records.size());
    for (auto& r : records) {
      if (RecordLive(ss, r.seq)) {
        live.push_back(&r);
      } else {
        dropped++;
      }
    }
    if (live.empty()) continue;
    kept += live.size();
    PageInfo info;
    info.stream = stream;
    info.count = static_cast<uint32_t>(live.size());
    info.min_seq = live.front()->seq;
    info.max_seq = live.back()->seq;
    info.min_ts = std::numeric_limits<int64_t>::max();
    info.max_ts = std::numeric_limits<int64_t>::min();
    for (const StoredRecord* r : live) {
      info.min_ts = std::min(info.min_ts, r->timestamp_us);
      info.max_ts = std::max(info.max_ts, r->timestamp_us);
    }
    Encoder enc;
    enc.PutU32(kPageMagic);
    enc.PutU32(kFormatVersion);
    enc.PutString(stream);
    enc.PutU32(info.count);
    enc.PutU64(info.min_seq);
    enc.PutU64(info.max_seq);
    enc.PutI64(info.min_ts);
    enc.PutI64(info.max_ts);
    for (const StoredRecord* r : live) {
      enc.PutU64(r->seq);
      enc.PutI64(r->timestamp_us);
      enc.PutU32(static_cast<uint32_t>(r->payload.size()));
      for (uint8_t b : r->payload) enc.PutU8(b);
    }
    info.path = PagePath(next_page_++);
    info.bytes = enc.size();
    Status st = fs_->WriteFileAtomic(info.path, enc.buffer());
    if (!st.ok()) {
      AURORA_LOG(Error) << "storage: page write failed: " << st.ToString();
      continue;
    }
    page_bytes_ += info.bytes;
    pages_[stream].push_back(info);
    m_pages_written_->Add();
  }
  aof_bytes_ -= std::min<size_t>(aof_bytes_, data->size());
  (void)fs_->Remove(path);
  m_compactions_->Add();
  m_compact_records_->Add(kept);
  m_compact_dropped_->Add(dropped);
  RecordSpan("storage:compact", now.micros(), now.micros());
}

void TieredStore::EvictMemstore() {
  while (mem_bytes_ > opts_.mem_budget_bytes && !mem_.empty()) {
    // Deterministic victim: the stream whose cached head is oldest
    // (timestamp, then name). Evicted records stay readable from the
    // AOF/page tiers — the memstore is purely a cache.
    auto victim = mem_.end();
    for (auto it = mem_.begin(); it != mem_.end(); ++it) {
      if (it->second.records.empty()) continue;
      if (victim == mem_.end() ||
          it->second.records.front().timestamp_us <
              victim->second.records.front().timestamp_us) {
        victim = it;
      }
    }
    if (victim == mem_.end()) break;
    MemStream& ms = victim->second;
    size_t sz = ms.records.front().payload.size() + sizeof(MemRecord);
    ms.records.pop_front();
    ms.bytes -= sz;
    mem_bytes_ -= sz;
    mem_records_--;
    if (ms.records.empty()) mem_.erase(victim);
  }
}

void TieredStore::Truncate(const std::string& stream, uint64_t upto) {
  StreamState& ss = streams_[stream];
  if (upto <= ss.floor) return;
  ss.floor = upto;
  if (ss.next_seq <= upto) ss.next_seq = upto + 1;
  auto it = mem_.find(stream);
  if (it != mem_.end()) {
    MemStream& ms = it->second;
    while (!ms.records.empty() && ms.records.front().seq <= upto) {
      size_t sz = ms.records.front().payload.size() + sizeof(MemRecord);
      ms.records.pop_front();
      ms.bytes -= sz;
      mem_bytes_ -= sz;
      mem_records_--;
    }
    if (ms.records.empty()) mem_.erase(it);
  }
  m_truncates_->Add();
  PersistMeta();
  UpdateGauges();
}

void TieredStore::PersistMeta() {
  // Tiny, rewritten atomically on every truncation: floors must survive a
  // crash (a recovered store must not resurrect confirmed HA log entries),
  // and next_seq must survive even when every record below it has been
  // truncated and compacted away (a sender restart that reused sequence
  // numbers would be silently deduplicated downstream).
  Encoder enc;
  enc.PutU32(kMetaMagic);
  enc.PutU32(static_cast<uint32_t>(streams_.size()));
  for (const auto& [stream, ss] : streams_) {
    enc.PutString(stream);
    enc.PutU64(ss.floor);
    enc.PutU64(ss.next_seq);
  }
  Status st = fs_->WriteFileAtomic(kMetaPath, enc.buffer());
  if (!st.ok()) {
    AURORA_LOG(Error) << "storage: meta write failed: " << st.ToString();
  }
}

void TieredStore::LoadMeta() {
  if (!fs_->Exists(kMetaPath)) return;
  auto data = fs_->ReadFile(kMetaPath);
  if (!data.ok()) return;
  Decoder dec(*data);
  auto magic = dec.GetU32();
  if (!magic.ok() || *magic != kMetaMagic) return;
  auto count = dec.GetU32();
  if (!count.ok()) return;
  for (uint32_t i = 0; i < *count; ++i) {
    auto stream = dec.GetString();
    auto floor = dec.GetU64();
    auto next = dec.GetU64();
    if (!stream.ok() || !floor.ok() || !next.ok()) return;
    StreamState& ss = streams_[*stream];
    ss.floor = std::max(ss.floor, *floor);
    ss.next_seq = std::max(ss.next_seq, *next);
  }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

size_t TieredStore::DecodeSegment(
    const std::vector<uint8_t>& data,
    const std::function<void(StoredRecord)>& fn) const {
  size_t pos = 0;
  while (data.size() - pos >= 8) {
    Decoder head(data.data() + pos, 8);
    uint32_t len = *head.GetU32();
    uint32_t cksum = *head.GetU32();
    if (len == 0 || data.size() - pos - 8 < len) break;  // torn tail
    const uint8_t* body = data.data() + pos + 8;
    if (Fnv1a32(body, len) != cksum) break;  // corrupt frame
    Decoder dec(body, len);
    auto stream = dec.GetString();
    auto seq = dec.GetU64();
    auto ts = dec.GetI64();
    auto payload_len = dec.GetU32();
    if (!stream.ok() || !seq.ok() || !ts.ok() || !payload_len.ok() ||
        dec.remaining() != *payload_len) {
      break;
    }
    StoredRecord rec;
    rec.stream = std::move(*stream);
    rec.seq = *seq;
    rec.timestamp_us = *ts;
    rec.payload.assign(body + (len - *payload_len), body + len);
    fn(std::move(rec));
    pos += 8 + len;
  }
  return pos;
}

Result<TieredStore::PageInfo> TieredStore::ReadPageHeader(
    const std::string& path, std::vector<uint8_t>* data) const {
  auto bytes = fs_->ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  Decoder dec(*bytes);
  auto magic = dec.GetU32();
  auto version = dec.GetU32();
  if (!magic.ok() || *magic != kPageMagic || !version.ok()) {
    return Status::Internal("bad page header in '" + path + "'");
  }
  auto stream = dec.GetString();
  auto count = dec.GetU32();
  auto min_seq = dec.GetU64();
  auto max_seq = dec.GetU64();
  auto min_ts = dec.GetI64();
  auto max_ts = dec.GetI64();
  if (!stream.ok() || !count.ok() || !min_seq.ok() || !max_seq.ok() ||
      !min_ts.ok() || !max_ts.ok()) {
    return Status::Internal("truncated page header in '" + path + "'");
  }
  PageInfo info;
  info.path = path;
  info.stream = *stream;
  info.count = *count;
  info.min_seq = *min_seq;
  info.max_seq = *max_seq;
  info.min_ts = *min_ts;
  info.max_ts = *max_ts;
  info.bytes = bytes->size();
  if (data != nullptr) *data = std::move(*bytes);
  return info;
}

Status TieredStore::Open() {
  streams_.clear();
  mem_.clear();
  mem_bytes_ = mem_records_ = 0;
  compact_queue_.clear();
  pages_.clear();
  aof_bytes_ = page_bytes_ = 0;
  active_segment_ = 0;
  active_segment_size_ = 0;
  unsynced_bytes_ = 0;
  oldest_unsynced_us_ = -1;
  next_segment_ = 1;
  next_page_ = 1;

  LoadMeta();

  for (const std::string& path : fs_->List("page/")) {
    auto info = ReadPageHeader(path, nullptr);
    if (!info.ok()) {
      AURORA_LOG(Warn) << "storage: skipping bad page: "
                       << info.status().ToString();
      continue;
    }
    StreamState& ss = streams_[info->stream];
    ss.next_seq = std::max(ss.next_seq, info->max_seq + 1);
    page_bytes_ += info->bytes;
    pages_[info->stream].push_back(*info);
    next_page_ = std::max(next_page_, PathNumber(path) + 1);
  }
  for (auto& [stream, infos] : pages_) {
    std::sort(infos.begin(), infos.end(),
              [](const PageInfo& a, const PageInfo& b) {
                return a.min_seq < b.min_seq;
              });
  }

  // Every surviving AOF segment is sealed by recovery: its clean prefix is
  // re-queued for compaction; a torn tail (crash mid-append) is measured
  // and dropped when the segment compacts. Appends resume in a fresh
  // segment so recovery never writes into a possibly-torn file.
  for (const std::string& path : fs_->List("aof/")) {
    auto data = fs_->ReadFile(path);
    if (!data.ok()) continue;
    uint64_t recovered = 0;
    size_t clean = DecodeSegment(*data, [&](StoredRecord rec) {
      StreamState& ss = streams_[rec.stream];
      ss.next_seq = std::max(ss.next_seq, rec.seq + 1);
      recovered++;
    });
    m_recovered_records_->Add(recovered);
    if (clean < data->size()) m_torn_bytes_->Add(data->size() - clean);
    aof_bytes_ += data->size();
    compact_queue_.push_back(PathNumber(path));
    next_segment_ = std::max(next_segment_, PathNumber(path) + 1);
  }
  opened_ = true;
  UpdateGauges();
  return Status::OK();
}

void TieredStore::Crash() {
  fs_->Crash();
  streams_.clear();
  mem_.clear();
  mem_bytes_ = mem_records_ = 0;
  compact_queue_.clear();
  pages_.clear();
  aof_bytes_ = page_bytes_ = 0;
  active_segment_ = 0;
  active_segment_size_ = 0;
  unsynced_bytes_ = 0;
  oldest_unsynced_us_ = -1;
  opened_ = false;
  UpdateGauges();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

Result<StoredRecord> TieredStore::Read(const std::string& stream,
                                       uint64_t seq) {
  m_reads_->Add();
  auto sit = streams_.find(stream);
  if (sit == streams_.end() || !RecordLive(sit->second, seq) ||
      seq >= sit->second.next_seq) {
    return Status::NotFound("storage: no live record " + std::to_string(seq) +
                            " on stream '" + stream + "'");
  }
  // Memstore fast path: a spilled queue tail is re-read oldest-first soon
  // after spilling, so the cache usually still covers it.
  auto mit = mem_.find(stream);
  if (mit != mem_.end() && !mit->second.records.empty() &&
      seq >= mit->second.records.front().seq) {
    const auto& records = mit->second.records;
    auto rit = std::lower_bound(
        records.begin(), records.end(), seq,
        [](const MemRecord& r, uint64_t s) { return r.seq < s; });
    if (rit != records.end() && rit->seq == seq) {
      m_read_records_->Add();
      m_read_scanned_->Add();
      StoredRecord rec;
      rec.stream = stream;
      rec.seq = rit->seq;
      rec.timestamp_us = rit->timestamp_us;
      rec.payload = rit->payload;
      UpdateGauges();
      return rec;
    }
  }
  StoredRecord found;
  bool have = false;
  ScanRange(stream, seq, seq, std::numeric_limits<int64_t>::min(),
            std::numeric_limits<int64_t>::max(), [&](const StoredRecord& r) {
              found = r;
              have = true;
            });
  if (!have) {
    return Status::NotFound("storage: record " + std::to_string(seq) +
                            " on stream '" + stream + "' unreadable");
  }
  return found;
}

size_t TieredStore::Scan(const std::string& stream, uint64_t min_seq,
                         uint64_t max_seq,
                         const std::function<void(const StoredRecord&)>& fn) {
  m_reads_->Add();
  return ScanRange(stream, min_seq, max_seq,
                   std::numeric_limits<int64_t>::min(),
                   std::numeric_limits<int64_t>::max(), fn);
}

size_t TieredStore::ScanAll(const std::string& stream,
                            const std::function<void(const StoredRecord&)>& fn) {
  return Scan(stream, 1, std::numeric_limits<uint64_t>::max(), fn);
}

size_t TieredStore::ScanTime(const std::string& stream, int64_t min_ts_us,
                             int64_t max_ts_us,
                             const std::function<void(const StoredRecord&)>& fn) {
  m_reads_->Add();
  return ScanRange(stream, 1, std::numeric_limits<uint64_t>::max(), min_ts_us,
                   max_ts_us, fn);
}

void TieredStore::EmitFromPages(
    const std::string& stream, uint64_t min_seq, uint64_t max_seq,
    int64_t min_ts, int64_t max_ts, uint64_t* last_emitted, size_t* emitted,
    const std::function<void(const StoredRecord&)>& fn) {
  auto pit = pages_.find(stream);
  if (pit == pages_.end()) return;
  const StreamState& ss = streams_[stream];
  for (const PageInfo& info : pit->second) {
    if (info.max_seq < min_seq || info.min_seq > max_seq) continue;
    if (info.max_ts < min_ts || info.min_ts > max_ts) continue;
    if (info.max_seq <= ss.floor) continue;
    auto data = fs_->ReadFile(info.path);
    if (!data.ok()) continue;
    m_read_bytes_->Add(data->size());
    std::vector<uint8_t> bytes = std::move(*data);
    Decoder dec(bytes);
    // Skip the header (already indexed).
    (void)dec.GetU32();
    (void)dec.GetU32();
    (void)dec.GetString();
    (void)dec.GetU32();
    (void)dec.GetU64();
    (void)dec.GetU64();
    (void)dec.GetI64();
    (void)dec.GetI64();
    for (uint32_t i = 0; i < info.count; ++i) {
      auto seq = dec.GetU64();
      auto ts = dec.GetI64();
      auto len = dec.GetU32();
      if (!seq.ok() || !ts.ok() || !len.ok() || dec.remaining() < *len) break;
      m_read_scanned_->Add();
      StoredRecord rec;
      rec.stream = stream;
      rec.seq = *seq;
      rec.timestamp_us = *ts;
      size_t off = bytes.size() - dec.remaining();
      rec.payload.assign(bytes.begin() + off, bytes.begin() + off + *len);
      // Advance past the payload.
      for (uint32_t b = 0; b < *len; ++b) (void)dec.GetU8();
      if (rec.seq <= *last_emitted || rec.seq < min_seq || rec.seq > max_seq ||
          !RecordLive(ss, rec.seq) || rec.timestamp_us < min_ts ||
          rec.timestamp_us > max_ts) {
        continue;
      }
      *last_emitted = rec.seq;
      (*emitted)++;
      m_read_records_->Add();
      fn(rec);
    }
  }
}

size_t TieredStore::ScanRange(
    const std::string& stream, uint64_t min_seq, uint64_t max_seq,
    int64_t min_ts, int64_t max_ts,
    const std::function<void(const StoredRecord&)>& fn) {
  auto sit = streams_.find(stream);
  if (sit == streams_.end()) return 0;
  const StreamState& ss = sit->second;
  min_seq = std::max(min_seq, ss.floor + 1);
  if (min_seq > max_seq) return 0;

  size_t emitted = 0;
  uint64_t last_emitted = min_seq == 0 ? 0 : min_seq - 1;

  // Memstore-only fast path: the cache covers the whole requested range.
  auto mit = mem_.find(stream);
  if (mit != mem_.end() && !mit->second.records.empty() &&
      min_seq >= mit->second.records.front().seq) {
    for (const MemRecord& r : mit->second.records) {
      if (r.seq < min_seq || r.seq > max_seq) continue;
      if (r.timestamp_us < min_ts || r.timestamp_us > max_ts) continue;
      m_read_scanned_->Add();
      m_read_records_->Add();
      StoredRecord rec;
      rec.stream = stream;
      rec.seq = r.seq;
      rec.timestamp_us = r.timestamp_us;
      rec.payload = r.payload;
      fn(rec);
      emitted++;
    }
    UpdateGauges();
    return emitted;
  }

  // Tiered merge, oldest tier first: pages hold the oldest live records,
  // sealed segments the middle, the active segment the newest. Per stream
  // the tiers are disjoint in seq (compaction removes a segment in the same
  // tick its pages appear); the last_emitted guard makes overlap harmless.
  EmitFromPages(stream, min_seq, max_seq, min_ts, max_ts, &last_emitted,
                &emitted, fn);

  std::vector<uint64_t> segments(compact_queue_.begin(), compact_queue_.end());
  if (active_segment_ != 0) segments.push_back(active_segment_);
  for (uint64_t seg : segments) {
    auto data = fs_->ReadFile(SegmentPath(seg));
    if (!data.ok()) continue;
    m_read_bytes_->Add(data->size());
    DecodeSegment(*data, [&](StoredRecord rec) {
      m_read_scanned_->Add();
      if (rec.stream != stream) return;
      if (rec.seq <= last_emitted || rec.seq < min_seq || rec.seq > max_seq) {
        return;
      }
      if (!RecordLive(ss, rec.seq)) return;
      if (rec.timestamp_us < min_ts || rec.timestamp_us > max_ts) return;
      last_emitted = rec.seq;
      emitted++;
      m_read_records_->Add();
      fn(rec);
    });
  }
  UpdateGauges();
  return emitted;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t TieredStore::next_seq(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 1 : it->second.next_seq;
}

uint64_t TieredStore::floor_seq(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.floor;
}

uint64_t TieredStore::live_records(const std::string& stream) const {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return 0;
  // Assumes contiguous appends per stream (both assignment modes keep
  // sequence numbers dense in this codebase).
  return it->second.next_seq - 1 - it->second.floor;
}

size_t TieredStore::num_pages() const {
  size_t n = 0;
  for (const auto& [stream, infos] : pages_) n += infos.size();
  return n;
}

void TieredStore::UpdateGauges() {
  g_mem_bytes_->Set(static_cast<double>(mem_bytes_));
  g_mem_records_->Set(static_cast<double>(mem_records_));
  g_aof_bytes_->Set(static_cast<double>(aof_bytes_));
  g_aof_segments_->Set(static_cast<double>(compact_queue_.size() +
                                           (active_segment_ != 0 ? 1 : 0)));
  g_page_bytes_->Set(static_cast<double>(page_bytes_));
  g_page_files_->Set(static_cast<double>(num_pages()));
  uint64_t returned = m_read_records_->value();
  if (returned > 0) {
    g_read_amp_->Set(static_cast<double>(m_read_scanned_->value()) /
                     static_cast<double>(returned));
  }
}

void TieredStore::RecordSpan(const char* site, int64_t start_us,
                             int64_t end_us) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  tracer.Record({0, SpanKind::kStorage, trace_node_, site, start_us, end_us});
}

}  // namespace aurora
