#ifndef AURORA_DISTRIBUTED_LOAD_DAEMON_H_
#define AURORA_DISTRIBUTED_LOAD_DAEMON_H_

#include <map>
#include <string>

#include "distributed/box_slider.h"
#include "distributed/box_splitter.h"

namespace aurora {

/// Which repartitioning mechanisms the daemon may use (§5.1).
enum class RepartitionAction {
  kSlideOnly,
  kSplitOnly,
  kSlideOrSplit,
};

struct LoadDaemonOptions {
  /// How often each node's daemon wakes up ("a query optimizer/load share
  /// daemon will run periodically in the background", §5.1). Too-frequent
  /// rebalancing causes instability (§5.2) — see cooldown below.
  SimDuration interval = SimDuration::Millis(250);
  /// Utilization above which a node tries to offload.
  double high_water = 0.85;
  /// Peers below this utilization will accept load.
  double low_water = 0.6;
  RepartitionAction action = RepartitionAction::kSlideOrSplit;
  /// A box is not moved again within this period — the paper's stability
  /// concern ("shifting boxes around too frequently could lead to
  /// instability", §5.2).
  SimDuration cooldown = SimDuration::Seconds(1);
  /// Consider link bandwidth before moving a box (§5.2 "Choosing What to
  /// Offload": a neighbour may have cycles but not bandwidth).
  bool bandwidth_aware = true;
  /// Fraction of link bandwidth a moved arc may consume.
  double bandwidth_headroom = 0.8;
  /// Field used for hash-partition split predicates.
  std::string split_field;
};

/// \brief Decentralized load-share daemon (paper §5).
///
/// Each round, every overloaded node looks for an underloaded peer and
/// moves work in a pair-wise interaction: it slides its heaviest movable
/// box (or splits it when sliding is disallowed or insufficient), subject
/// to the destination's operator-capability and the link's bandwidth.
class LoadShareDaemon {
 public:
  LoadShareDaemon(AuroraStarSystem* system, DeployedQuery* deployed,
                  LoadDaemonOptions opts)
      : system_(system),
        deployed_(deployed),
        opts_(opts),
        slider_(system),
        splitter_(system) {}

  /// Starts the periodic daemon on the simulation clock.
  void Start();

  /// One decision round over all nodes; returns the number of
  /// repartitioning actions performed.
  int RunOnce();

  uint64_t slides() const { return slides_; }
  uint64_t splits() const { return splits_; }
  uint64_t rounds() const { return rounds_; }

 private:
  struct BoxLoad {
    std::string name;
    double recent_cost_us = 0.0;  // measured work since last round
    double in_rate_bytes_per_s = 0.0;
  };

  /// Measured per-box work on a node since the previous round.
  std::vector<BoxLoad> MeasureBoxLoads(NodeId node);
  bool BandwidthAllows(NodeId src, NodeId dst, double bytes_per_s) const;

  AuroraStarSystem* system_;
  DeployedQuery* deployed_;
  LoadDaemonOptions opts_;
  BoxSlider slider_;
  BoxSplitter splitter_;
  std::map<std::string, uint64_t> last_tuples_in_;
  std::map<std::string, SimTime> last_moved_;
  SimTime last_round_{};
  uint64_t slides_ = 0;
  uint64_t splits_ = 0;
  uint64_t rounds_ = 0;
  uint64_t split_counter_ = 0;
};

}  // namespace aurora

#endif  // AURORA_DISTRIBUTED_LOAD_DAEMON_H_
