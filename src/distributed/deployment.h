#ifndef AURORA_DISTRIBUTED_DEPLOYMENT_H_
#define AURORA_DISTRIBUTED_DEPLOYMENT_H_

#include <map>
#include <string>
#include <vector>

#include "distributed/aurora_star.h"
#include "ops/op_spec.h"

namespace aurora {

/// \brief Node-agnostic description of an Aurora query network: named
/// inputs, named boxes, named outputs, and arcs between them.
///
/// A GlobalQuery is written once and then *partitioned* onto nodes by a
/// placement map (paper §3.1: "programs will continue to be written in much
/// the same way that they are with single-node Aurora, except that they
/// will now run in a distributed fashion").
class GlobalQuery {
 public:
  struct InputDef {
    std::string name;
    SchemaPtr schema;
  };
  struct BoxDef {
    std::string name;
    OperatorSpec spec;
  };
  struct ArcDef {
    enum class FromKind { kInput, kBox };
    enum class ToKind { kBox, kOutput };
    FromKind from_kind;
    std::string from;
    int from_index = 0;
    ToKind to_kind;
    std::string to;
    int to_index = 0;
  };

  Status AddInput(const std::string& name, SchemaPtr schema);
  Status AddBox(const std::string& name, OperatorSpec spec);
  Status AddOutput(const std::string& name);
  Status ConnectInputToBox(const std::string& input, const std::string& box,
                           int in_index = 0);
  Status ConnectBoxes(const std::string& from, int out_index,
                      const std::string& to, int in_index);
  Status ConnectBoxToOutput(const std::string& box, int out_index,
                            const std::string& output);

  const std::vector<InputDef>& inputs() const { return inputs_; }
  const std::vector<BoxDef>& boxes() const { return boxes_; }
  const std::vector<std::string>& outputs() const { return outputs_; }
  const std::vector<ArcDef>& arcs() const { return arcs_; }

  bool HasBox(const std::string& name) const;
  bool HasInput(const std::string& name) const;
  bool HasOutput(const std::string& name) const;

 private:
  std::vector<InputDef> inputs_;
  std::vector<BoxDef> boxes_;
  std::vector<std::string> outputs_;
  std::vector<ArcDef> arcs_;
};

/// Handle to a deployed (partitioned) query: where every named piece lives.
struct DeployedQuery {
  struct PlacedBox {
    NodeId node = -1;
    BoxId box = -1;
  };
  std::map<std::string, PlacedBox> boxes;
  /// Global input name -> (node, engine input name). Sources inject here.
  std::map<std::string, std::pair<NodeId, std::string>> inputs;
  /// Global output name -> (node, engine output name).
  std::map<std::string, std::pair<NodeId, std::string>> outputs;
  /// Stream names of the remote arcs created, keyed by "<from>-><to>".
  std::map<std::string, std::string> remote_streams;
};

/// Partitions the query across nodes per `placement` (box name -> node),
/// creating local arcs within a node and remote arcs (engine ports +
/// transport streams) across nodes. "As simple as running everything on one
/// node" is placement with a single value (§3.1).
Result<DeployedQuery> DeployQuery(AuroraStarSystem* system,
                                  const GlobalQuery& query,
                                  const std::map<std::string, NodeId>& placement);

/// Materializes the whole query inside one standalone engine — the oracle
/// deployment model-checking runs diff a distributed deployment against
/// (src/check). Same progressive wiring discipline as DeployQuery, but all
/// arcs are local and no transport streams exist.
Status DeployQueryLocal(AuroraEngine* engine, const GlobalQuery& query);

}  // namespace aurora

#endif  // AURORA_DISTRIBUTED_DEPLOYMENT_H_
