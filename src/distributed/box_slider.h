#ifndef AURORA_DISTRIBUTED_BOX_SLIDER_H_
#define AURORA_DISTRIBUTED_BOX_SLIDER_H_

#include <string>
#include <vector>

#include "distributed/deployment.h"

namespace aurora {

/// How the slid box reappears on the destination node (paper §4.4/§5.1).
enum class SlideMode {
  /// Re-instantiate from the operator's declarative spec — the paper's
  /// *remote definition*: no process migration, but stateful operators
  /// restart with empty state (their open-window contents are drained
  /// downstream first so nothing is lost).
  kRemoteDefinition,
  /// Move the live operator object, state included — models intra-domain
  /// process migration, which Aurora* may use inside one participant.
  kStateMigration,
};

struct SlideResult {
  NodeId dst_node = -1;
  BoxId new_box = -1;
  /// Tuples that arrived while the network was stabilized and were
  /// re-injected on the new path, per input.
  size_t held_reinjected = 0;
};

/// \brief Horizontal/vertical box sliding (paper §5.1, Fig. 4).
///
/// Implements the stabilization protocol: choke the box's input arcs
/// (new arrivals held), drain tuples queued within the moved sub-network,
/// move the box, rewire the cut arcs as transport streams, re-inject held
/// tuples ahead of new traffic, and resume. The destination must support
/// the operator kind (§5.1's weak-sensor-node capability check).
class BoxSlider {
 public:
  explicit BoxSlider(AuroraStarSystem* system) : system_(system) {}

  /// Slides `box_name` of the deployed query to `dst_node`, updating the
  /// DeployedQuery in place.
  Result<SlideResult> Slide(DeployedQuery* deployed,
                            const std::string& box_name, NodeId dst_node,
                            SlideMode mode = SlideMode::kRemoteDefinition);

 private:
  AuroraStarSystem* system_;
};

}  // namespace aurora

#endif  // AURORA_DISTRIBUTED_BOX_SLIDER_H_
