#ifndef AURORA_DISTRIBUTED_BOX_SPLITTER_H_
#define AURORA_DISTRIBUTED_BOX_SPLITTER_H_

#include <string>

#include "distributed/deployment.h"
#include "ops/predicate.h"

namespace aurora {

struct SplitRequest {
  /// Deployed box to split (unary, single-output; "filter", "map", or
  /// "tumble").
  std::string box_name;
  /// Routing predicate for the Filter that precedes the split (§5.1):
  /// tuples satisfying it stay on the original machine, the rest go to the
  /// copy. §5.2 discusses choosing it: content-based, hash-partition, etc.
  Predicate partition = Predicate::True();
  /// Node receiving the copy.
  NodeId dst_node = -1;
  /// Timeout for the merge WSort of a Tumble split (Fig. 6). 0 = emit only
  /// when drained / buffer-bounded — the paper's "large enough timeout".
  int64_t wsort_timeout_us = 0;
  /// §5.2 "Handling Connection Points": when the split box's input arc is a
  /// connection point, its history is always preserved on the router's
  /// input. With this flag, a *replica* (history copy included) is also
  /// created on the copy's input at the destination — the "splitting it and
  /// moving a replica to a different machine" strategy. "This might be a
  /// good investment" when many ad hoc queries attach there; the copied
  /// bytes are charged to the link.
  bool replicate_connection_point = false;
};

struct SplitResult {
  /// Names under which the new boxes were added to the DeployedQuery.
  std::string router_name;  // Filter(p) semantic router on the source node
  std::string copy_name;    // the box copy on dst_node
  std::string union_name;   // merge Union
  std::string wsort_name;   // merge WSort (Tumble splits only)
  std::string merge_name;   // merge Tumble(combine) (Tumble splits only)
};

/// \brief Box splitting with transparent merge networks (paper §5.1,
/// Figs. 5–7).
///
/// Splitting a Filter adds `Filter(q) -> {Filter(p), Filter(p)'} -> Union`;
/// splitting a Tumble additionally requires `Union -> WSort(groupby) ->
/// Tumble(combine)` and is only possible when the aggregate has a
/// combination function (FailedPrecondition otherwise — e.g. avg).
/// The original box keeps its open-window state; the copy starts fresh, as
/// in the paper's worked example (split after tuple #3).
class BoxSplitter {
 public:
  explicit BoxSplitter(AuroraStarSystem* system) : system_(system) {}

  Result<SplitResult> Split(DeployedQuery* deployed, const SplitRequest& req);

 private:
  AuroraStarSystem* system_;
};

}  // namespace aurora

#endif  // AURORA_DISTRIBUTED_BOX_SPLITTER_H_
