#include "distributed/box_slider.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aurora {

Result<SlideResult> BoxSlider::Slide(DeployedQuery* deployed,
                                     const std::string& box_name,
                                     NodeId dst_node, SlideMode mode) {
  auto it = deployed->boxes.find(box_name);
  if (it == deployed->boxes.end()) {
    return Status::NotFound("no deployed box named '" + box_name + "'");
  }
  NodeId src_node = it->second.node;
  BoxId m = it->second.box;
  if (dst_node == src_node) {
    return Status::InvalidArgument("box is already on the destination node");
  }
  if (dst_node < 0 || dst_node >= static_cast<int>(system_->num_nodes())) {
    return Status::InvalidArgument("bad destination node");
  }
  StreamNode& a_node = system_->node(src_node);
  StreamNode& b_node = system_->node(dst_node);
  AuroraEngine& ae = a_node.engine();
  AuroraEngine& be = b_node.engine();
  SimTime now = system_->sim()->Now();

  AURORA_ASSIGN_OR_RETURN(const OperatorSpec* spec_ptr, ae.BoxSpec(m));
  OperatorSpec spec = *spec_ptr;
  if (!system_->net()->NodeSupports(dst_node, spec.kind)) {
    return Status::FailedPrecondition(
        "destination node cannot execute '" + spec.kind +
        "' boxes (§5.1 capability check)");
  }
  AURORA_ASSIGN_OR_RETURN(Operator * op, ae.BoxOp(m));
  const int n_in = op->num_inputs();
  const int n_out = op->num_outputs();
  std::vector<SchemaPtr> in_schemas, out_schemas;
  for (int i = 0; i < n_in; ++i) in_schemas.push_back(op->input_schema(i));
  for (int k = 0; k < n_out; ++k) out_schemas.push_back(op->output_schema(k));

  // --- Stabilize: choke inputs, drain queued tuples (§5.1). ---
  std::vector<ArcId> in_arcs(n_in, -1);
  for (int i = 0; i < n_in; ++i) {
    AURORA_ASSIGN_OR_RETURN(in_arcs[i], ae.FindArcInto(m, i));
    AURORA_RETURN_NOT_OK(ae.ChokeArc(in_arcs[i]));
  }
  AURORA_RETURN_NOT_OK(ae.RunUntilQuiescent(now));
  // Emissions from the drain are sitting in binding `pending` buffers; get
  // them sequence-numbered and into the retained logs before any binding
  // is snapshotted or retired.
  a_node.Flush();

  std::vector<std::vector<Tuple>> held(n_in);
  std::vector<Endpoint> from_eps(n_in);
  for (int i = 0; i < n_in; ++i) {
    AURORA_ASSIGN_OR_RETURN(held[i], ae.TakeHeldTuples(in_arcs[i]));
    from_eps[i] = ae.ArcFrom(in_arcs[i]);
  }
  std::vector<std::vector<Endpoint>> dests(n_out);
  std::vector<std::vector<ArcId>> out_arcs(n_out);
  for (int k = 0; k < n_out; ++k) {
    for (ArcId arc : ae.ArcsFrom(Endpoint::BoxPort(m, k))) {
      out_arcs[k].push_back(arc);
      dests[k].push_back(ae.ArcTo(arc));
    }
  }

  // Remote definition cannot carry operator state: flush open windows
  // downstream so no data is lost, then let the engine settle.
  if (mode == SlideMode::kRemoteDefinition && op->HasState()) {
    AURORA_RETURN_NOT_OK(ae.DrainBoxState(m, now));
    AURORA_RETURN_NOT_OK(ae.RunUntilQuiescent(now));
    a_node.Flush();
  }

  // --- Cut the box out of the source network. ---
  for (int i = 0; i < n_in; ++i) {
    AURORA_RETURN_NOT_OK(ae.DisconnectArc(in_arcs[i]));
  }
  for (int k = 0; k < n_out; ++k) {
    for (ArcId arc : out_arcs[k]) AURORA_RETURN_NOT_OK(ae.DisconnectArc(arc));
  }

  // --- Move. ---
  BoxId new_box;
  if (mode == SlideMode::kStateMigration) {
    AURORA_ASSIGN_OR_RETURN(OperatorPtr moved, ae.ExtractBoxOperator(m));
    AURORA_ASSIGN_OR_RETURN(new_box, be.AdoptBoxOperator(std::move(moved)));
  } else {
    AURORA_RETURN_NOT_OK(ae.RemoveBox(m));
    AURORA_ASSIGN_OR_RETURN(new_box, be.AddBox(spec));
  }

  // --- Rewire inputs. ---
  //
  // Two cases per input (Fig. 4):
  //  * The input arc's source is an engine input port fed by remote
  //    binding(s) from other nodes: re-route those bindings straight to the
  //    destination node — the true "horizontal" slide, which is what makes
  //    upstream slides save bandwidth. A straggler relay keeps messages
  //    already in flight toward the old node from being lost (they may
  //    arrive slightly out of order; WSort downstream handles reordering,
  //    per the paper's design).
  //  * Otherwise (a local box output, or a genuine source input pinned to
  //    this node): relay through the old node.
  std::vector<PortId> relay_ports(n_in, -1);  // held re-injection via A
  std::vector<PortId> direct_inputs(n_in, -1);  // held re-injection at B
  for (int i = 0; i < n_in; ++i) {
    std::vector<std::pair<NodeId, std::string>> feeders;
    if (from_eps[i].kind == Endpoint::Kind::kInputPort) {
      feeders = system_->BindingsInto(src_node,
                                      ae.input_name(from_eps[i].id));
    }
    if (!feeders.empty()) {
      std::string iname = system_->FreshName("slide_in");
      AURORA_ASSIGN_OR_RETURN(PortId inp, be.AddInput(iname, in_schemas[i]));
      AURORA_RETURN_NOT_OK(
          be.Connect(Endpoint::InputPort(inp), Endpoint::BoxPort(new_box, i))
              .status());
      direct_inputs[i] = inp;
      for (const auto& [x, output_name] : feeders) {
        StreamNode& x_node = system_->node(x);
        double weight = x_node.bindings().at(output_name).weight;
        bool retained = x_node.bindings().at(output_name).retain_log;
        // With state migration, the box's open windows (whose dependencies
        // are sequence numbers of THIS binding's stream) travel to the new
        // node. The replacement binding must continue the same sequence
        // space and keep the unconfirmed log, or a later failure of the
        // destination would lose the migrated state.
        StreamNode::BindingContinuity continuity;
        if (mode == SlideMode::kStateMigration && retained) {
          AURORA_ASSIGN_OR_RETURN(continuity,
                                  x_node.SnapshotBindingContinuity(output_name));
        }
        AURORA_RETURN_NOT_OK(x_node.UnbindRemoteOutput(output_name));
        AURORA_RETURN_NOT_OK(x_node.BindRemoteOutput(
            output_name, &b_node, iname,
            system_->FreshName("slide_stream"), weight));
        if (mode == SlideMode::kStateMigration && retained) {
          AURORA_RETURN_NOT_OK(x_node.RestoreBindingContinuity(
              output_name, std::move(continuity)));
        }
      }
      // Straggler relay for messages already on the wire toward A.
      std::string rname = system_->FreshName("slide_straggler");
      AURORA_ASSIGN_OR_RETURN(PortId rport, ae.AddOutput(rname));
      AURORA_RETURN_NOT_OK(
          ae.Connect(from_eps[i], Endpoint::OutputPort(rport)).status());
      AURORA_RETURN_NOT_OK(a_node.BindRemoteOutput(
          rname, &b_node, iname, system_->FreshName("slide_stream"), 1.0));
    } else {
      std::string xname = system_->FreshName("slide_in");
      AURORA_ASSIGN_OR_RETURN(relay_ports[i], ae.AddOutput(xname));
      AURORA_RETURN_NOT_OK(
          ae.Connect(from_eps[i], Endpoint::OutputPort(relay_ports[i]))
              .status());
      AURORA_ASSIGN_OR_RETURN(PortId inp, be.AddInput(xname, in_schemas[i]));
      AURORA_RETURN_NOT_OK(
          be.Connect(Endpoint::InputPort(inp), Endpoint::BoxPort(new_box, i))
              .status());
      AURORA_RETURN_NOT_OK(
          system_->ConnectRemote(src_node, xname, dst_node, xname).status());
    }
  }

  // --- Rewire outputs. ---
  //
  // A destination that is an engine output port remotely bound to node Y is
  // re-bound B -> Y directly; everything else (local boxes, application
  // outputs on A) is reached via a relay input on A.
  for (int k = 0; k < n_out; ++k) {
    if (dests[k].empty()) continue;
    std::vector<Endpoint> relay_dests;
    for (const Endpoint& d : dests[k]) {
      if (d.kind == Endpoint::Kind::kOutputPort) {
        auto bname = a_node.BindingNameForOutputPort(d.id);
        if (bname.ok()) {
          const auto& binding = a_node.bindings().at(*bname);
          StreamNode* y = binding.dst;
          std::string remote_input = binding.remote_input;
          double weight = binding.weight;
          bool retained = binding.retain_log;
          // The retained log protects the *downstream* node: whoever now
          // sources the stream must keep it (and its sequence space), or a
          // failure of the destination after the slide is unrecoverable.
          StreamNode::BindingContinuity continuity;
          if (retained) {
            AURORA_ASSIGN_OR_RETURN(continuity,
                                    a_node.SnapshotBindingContinuity(*bname));
          }
          AURORA_RETURN_NOT_OK(a_node.UnbindRemoteOutput(*bname));
          std::string oname = system_->FreshName("slide_out");
          AURORA_ASSIGN_OR_RETURN(PortId op2, be.AddOutput(oname));
          AURORA_RETURN_NOT_OK(be.Connect(Endpoint::BoxPort(new_box, k),
                                          Endpoint::OutputPort(op2))
                                   .status());
          AURORA_RETURN_NOT_OK(b_node.BindRemoteOutput(
              oname, y, remote_input, system_->FreshName("slide_stream"),
              weight));
          if (retained) {
            AURORA_RETURN_NOT_OK(b_node.RestoreBindingContinuity(
                oname, std::move(continuity)));
          }
          continue;
        }
      }
      relay_dests.push_back(d);
    }
    if (relay_dests.empty()) continue;
    std::string yname = system_->FreshName("slide_out");
    AURORA_ASSIGN_OR_RETURN(PortId boutp, be.AddOutput(yname));
    AURORA_RETURN_NOT_OK(
        be.Connect(Endpoint::BoxPort(new_box, k), Endpoint::OutputPort(boutp))
            .status());
    AURORA_ASSIGN_OR_RETURN(PortId ainp, ae.AddInput(yname, out_schemas[k]));
    for (const Endpoint& d : relay_dests) {
      AURORA_RETURN_NOT_OK(
          ae.Connect(Endpoint::InputPort(ainp), d).status());
    }
    AURORA_RETURN_NOT_OK(
        system_->ConnectRemote(dst_node, yname, src_node, yname).status());
  }

  AURORA_RETURN_NOT_OK(be.InitializeBoxes(/*require_all=*/false));
  if (!be.IsBoxInitialized(new_box)) {
    return Status::Internal("slid box failed to initialize on destination");
  }

  // --- Re-inject held tuples ahead of new traffic, then resume. ---
  SlideResult result;
  result.dst_node = dst_node;
  result.new_box = new_box;
  for (int i = 0; i < n_in; ++i) {
    for (const Tuple& t : held[i]) {
      if (relay_ports[i] >= 0) {
        AURORA_RETURN_NOT_OK(ae.EmitToOutputPort(relay_ports[i], t, now));
      } else {
        AURORA_ASSIGN_OR_RETURN(ArcId arc, be.FindArcInto(new_box, i));
        AURORA_RETURN_NOT_OK(be.EnqueueOnArc(arc, t, now));
      }
      result.held_reinjected++;
    }
  }
  a_node.Flush();
  it->second = DeployedQuery::PlacedBox{dst_node, new_box};
  a_node.Kick();
  b_node.Kick();
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("lb.slides")->Add();
  reg.GetCounter("lb.held_reinjected")->Add(result.held_reinjected);
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    tracer.Record({0, SpanKind::kMigration, src_node,
                   "slide:" + box_name + ":" + std::to_string(src_node) +
                       "->" + std::to_string(dst_node),
                   now.micros(), system_->sim()->Now().micros()});
  }
  return result;
}

}  // namespace aurora
