#ifndef AURORA_DISTRIBUTED_CATALOG_BINDING_H_
#define AURORA_DISTRIBUTED_CATALOG_BINDING_H_

#include <string>

#include "dht/dht_catalog.h"
#include "distributed/deployment.h"

namespace aurora {

/// \brief Glue between deployments and the naming/discovery layer
/// (paper §4.1–4.2).
///
/// Registers a deployed query's streams and query pieces in the DHT-backed
/// inter-participant catalog, keeps locations current after load-sharing
/// moves, and implements §4.2's source routing: "When a data source
/// produces events, it labels them with a stream name and sends them to
/// one of the nodes in the overlay network. Upon receiving these events,
/// the node consults the … catalog and forwards events to the appropriate
/// locations."
class CatalogBinding {
 public:
  CatalogBinding(AuroraStarSystem* system, DhtCatalog* catalog,
                 std::string participant)
      : system_(system), catalog_(catalog), participant_(std::move(participant)) {}

  /// Registers every input stream (with its home location and schema) and
  /// every placed box of the deployment under `query_name`.
  Status RegisterDeployment(const std::string& query_name,
                            const GlobalQuery& query,
                            const DeployedQuery& deployed);

  /// Propagates a box's new location after a slide/split/recovery ("the
  /// location information is always propagated", §4.2).
  Status UpdateBoxLocation(const std::string& query_name,
                           const std::string& box_name, NodeId node);

  /// Looks a stream's home up in the catalog starting from `at`'s ring
  /// position and delivers the tuple there — directly when `at` is the
  /// home, otherwise via an overlay message. Charges the real forwarding
  /// cost.
  Status RouteSourceTuple(NodeId at, const std::string& stream_name, Tuple t);

  /// Current locations of a query piece, per the catalog.
  Result<std::vector<NodeId>> LookupBox(const std::string& query_name,
                                        const std::string& box_name,
                                        NodeId from) const;

  uint64_t lookups() const { return lookups_; }
  uint64_t forwards() const { return forwards_; }
  uint64_t direct_deliveries() const { return direct_deliveries_; }

 private:
  QualifiedName StreamName(const std::string& stream) const {
    return QualifiedName{participant_, "stream/" + stream};
  }
  QualifiedName PieceName(const std::string& query,
                          const std::string& box) const {
    return QualifiedName{participant_, "query/" + query + "/" + box};
  }

  AuroraStarSystem* system_;
  DhtCatalog* catalog_;
  std::string participant_;
  uint64_t lookups_ = 0;
  uint64_t forwards_ = 0;
  uint64_t direct_deliveries_ = 0;
};

}  // namespace aurora

#endif  // AURORA_DISTRIBUTED_CATALOG_BINDING_H_
