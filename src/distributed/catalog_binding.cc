#include "distributed/catalog_binding.h"

#include "tuple/serde.h"

namespace aurora {

Status CatalogBinding::RegisterDeployment(const std::string& query_name,
                                          const GlobalQuery& query,
                                          const DeployedQuery& deployed) {
  // Streams: payload = (engine input name, schema); location = home node.
  for (const auto& in : query.inputs()) {
    auto it = deployed.inputs.find(in.name);
    if (it == deployed.inputs.end()) continue;
    Encoder enc;
    enc.PutString(it->second.second);
    enc.PutSchema(*in.schema);
    DhtEntry entry;
    entry.kind = "stream";
    entry.payload = enc.TakeBuffer();
    entry.locations = {it->second.first};
    AURORA_RETURN_NOT_OK(catalog_->Put(StreamName(in.name), entry));
  }
  // Query pieces: payload = serialized OperatorSpec; location = host node.
  for (const auto& box : query.boxes()) {
    auto it = deployed.boxes.find(box.name);
    if (it == deployed.boxes.end()) continue;
    Encoder enc;
    box.spec.Encode(&enc);
    DhtEntry entry;
    entry.kind = "query_piece";
    entry.payload = enc.TakeBuffer();
    entry.locations = {it->second.node};
    AURORA_RETURN_NOT_OK(catalog_->Put(PieceName(query_name, box.name), entry));
  }
  return Status::OK();
}

Status CatalogBinding::UpdateBoxLocation(const std::string& query_name,
                                         const std::string& box_name,
                                         NodeId node) {
  return catalog_->UpdateLocations(PieceName(query_name, box_name), {node});
}

Result<std::vector<NodeId>> CatalogBinding::LookupBox(
    const std::string& query_name, const std::string& box_name,
    NodeId from) const {
  AURORA_ASSIGN_OR_RETURN(auto got,
                          catalog_->Get(from, PieceName(query_name, box_name)));
  return got.entry.locations;
}

Status CatalogBinding::RouteSourceTuple(NodeId at,
                                        const std::string& stream_name,
                                        Tuple t) {
  lookups_++;
  AURORA_ASSIGN_OR_RETURN(auto got, catalog_->Get(at, StreamName(stream_name)));
  if (got.entry.locations.empty()) {
    return Status::Unavailable("stream '" + stream_name + "' has no location");
  }
  Decoder dec(got.entry.payload);
  AURORA_ASSIGN_OR_RETURN(std::string input_name, dec.GetString());
  // §4.2: "streams may be partitioned across several nodes for load
  // balancing" — with multiple registered locations, events are hash-
  // partitioned on the tuple's first attribute so each location sees a
  // consistent subset.
  NodeId home;
  if (got.entry.locations.size() == 1) {
    home = got.entry.locations.front();
  } else {
    uint64_t h = t.num_values() > 0 ? t.value(0).Hash() : 0;
    home = got.entry.locations[h % got.entry.locations.size()];
  }
  if (home == at) {
    direct_deliveries_++;
    return system_->node(at).Inject(input_name, std::move(t));
  }
  // Forward over the overlay, charging bandwidth and latency for the hop.
  forwards_++;
  Message msg;
  msg.kind = "route:tuple";
  msg.stream = input_name;
  msg.payload = SerializeTuples({t});
  AuroraStarSystem* system = system_;
  return system_->net()->Send(
      at, home, std::move(msg), [system, home](const Message& m) {
        system->node(home).OnRemoteTuples(m.stream, m.payload);
      });
}

}  // namespace aurora
