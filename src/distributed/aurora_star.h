#ifndef AURORA_DISTRIBUTED_AURORA_STAR_H_
#define AURORA_DISTRIBUTED_AURORA_STAR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "distributed/stream_node.h"
#include "engine/catalog.h"

namespace aurora {

struct StarOptions {
  EngineOptions engine;
  TransportOptions transport;
  SimDuration tick_interval = SimDuration::Millis(10);
};

/// \brief Aurora*: multiple single-node Aurora servers in one
/// administrative domain, cooperating to run a query network (paper §3.1).
///
/// Owns the StreamNodes, the shared intra-participant Catalog, and the
/// remote-arc plumbing. Box sliding, splitting, and the load-share daemon
/// operate on this object.
class AuroraStarSystem {
 public:
  AuroraStarSystem(Simulation* sim, OverlayNetwork* net, StarOptions opts);

  Simulation* sim() { return sim_; }
  OverlayNetwork* net() { return net_; }
  Catalog& catalog() { return catalog_; }
  const StarOptions& options() const { return opts_; }

  /// Adds an overlay node plus its Aurora server, started.
  Result<NodeId> AddNode(NodeOptions node_opts);
  /// Same, with node-specific engine options.
  Result<NodeId> AddNode(NodeOptions node_opts, EngineOptions engine_opts);
  StreamNode& node(NodeId id) { return *nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Creates a remote arc: output port `src_output` on `src` flows into
  /// input port `dst_input` on `dst` under a fresh globally-unique stream
  /// name (returned). Both ports must already exist.
  Result<std::string> ConnectRemote(NodeId src, const std::string& src_output,
                                    NodeId dst, const std::string& dst_input,
                                    double weight = 1.0);

  /// Registers an application sink on a node's engine output.
  Status CollectOutput(NodeId node, const std::string& output_name,
                       AuroraEngine::OutputCallback cb);

  /// All (source node, output name) bindings that feed the named engine
  /// input on `dst` — the upstream side of a remote arc.
  std::vector<std::pair<NodeId, std::string>> BindingsInto(
      NodeId dst, const std::string& remote_input) const;

  /// Fresh unique name for plumbing ports/streams created at run time.
  std::string FreshName(const std::string& prefix) {
    return prefix + "#" + std::to_string(next_name_++);
  }

 private:
  Simulation* sim_;
  OverlayNetwork* net_;
  StarOptions opts_;
  Catalog catalog_;
  std::vector<std::unique_ptr<StreamNode>> nodes_;
  uint64_t next_name_ = 0;
};

}  // namespace aurora

#endif  // AURORA_DISTRIBUTED_AURORA_STAR_H_
