#ifndef AURORA_DISTRIBUTED_STREAM_NODE_H_
#define AURORA_DISTRIBUTED_STREAM_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/aurora_engine.h"
#include "net/transport.h"
#include "sim/simulation.h"

namespace aurora {

/// \brief One Aurora server in the distributed system: an AuroraEngine
/// bound to a simulated node's CPU and links.
///
/// The node schedules engine steps as simulation events — each step's
/// returned CPU cost (scaled by the node's speed) is the time until the
/// node can run again, so overload manifests as queue growth exactly as it
/// would on a real machine. Cross-node arcs are *remote bindings*: an
/// engine output whose tuples are batched, sequence-numbered, serialized,
/// and sent over the pair's Transport to an engine input on the peer.
class StreamNode {
 public:
  StreamNode(Simulation* sim, OverlayNetwork* net, NodeId id,
             EngineOptions engine_opts, TransportOptions transport_opts,
             SimDuration tick_interval = SimDuration::Millis(10));

  NodeId id() const { return id_; }
  AuroraEngine& engine() { return engine_; }
  const AuroraEngine& engine() const { return engine_; }
  double speed() const { return net_->node(id_).speed; }

  /// Begins periodic engine ticks (WSort timeouts etc.).
  void Start();

  // ---- Remote arcs -------------------------------------------------------

  /// Routes the named engine output to `remote_input` on `dst`. The stream
  /// name (globally unique, caller-chosen) keys transport scheduling and
  /// HA logs.
  Status BindRemoteOutput(const std::string& output_name, StreamNode* dst,
                          const std::string& remote_input,
                          const std::string& stream_name, double weight = 1.0);
  Status UnbindRemoteOutput(const std::string& output_name);
  bool HasRemoteBinding(const std::string& output_name) const {
    return bindings_.count(output_name) > 0;
  }
  /// Name of the binding (== engine output name) attached to the given
  /// engine output port, or NotFound.
  Result<std::string> BindingNameForOutputPort(PortId port) const;

  /// Registers which local engine input a named incoming transport stream
  /// feeds. Called by the sender-side binding setup; `src` (the sending
  /// node) is needed for credit-based flow control — grants travel back to
  /// it over the network.
  void RegisterIncomingStream(const std::string& stream,
                              const std::string& input_name,
                              StreamNode* src = nullptr) {
    IncomingStream& in = incoming_[stream];
    in.input_name = input_name;
    if (src != nullptr) in.src = src;
    in.granted_limit = transport_opts_.credit_window_bytes;
  }

  /// Called (via transport delivery) when a batch of tuples arrives on a
  /// registered stream.
  void OnRemoteStream(const std::string& stream,
                      const std::vector<uint8_t>& payload);

  /// Full delivery entry point used by the transport: tracks the stream's
  /// received flow offset, delivers the payload, and re-grants credit.
  void OnRemoteMessage(const std::string& stream, const Message& msg);

  /// Credit probe from a stalled sender: `sent_offset` is its cumulative
  /// dispatched bytes. Data lost on the wire (chaos) leaves the receiver's
  /// watermark behind the sender's; adopting the larger offset re-opens the
  /// window so the stream cannot deadlock on loss.
  void OnFlowProbe(const std::string& stream, uint64_t sent_offset);

  /// Cumulative credit grant arriving back at this (sending) node.
  void OnFlowGrant(const std::string& stream, uint64_t limit);

  /// True while some remote binding is out of credit, which pauses engine
  /// stepping and makes Inject() reject with "blocked upstream".
  bool flow_blocked() const { return flow_blocked_; }

  /// Sender-side transport toward `dst`, or nullptr if no traffic has been
  /// bound there yet. Read-only: lets tests and observability inspect queue
  /// depth and credit state without going through the metrics registry.
  const Transport* PeerTransport(NodeId dst) const {
    auto it = transports_.find(dst);
    return it == transports_.end() ? nullptr : it->second.get();
  }

  /// Pushes a batch of serialized tuples into a local engine input.
  void OnRemoteTuples(const std::string& input_name,
                      const std::vector<uint8_t>& payload);

  // ---- Data sources ------------------------------------------------------

  /// Pushes a source tuple into a local engine input (§4.2: a data source
  /// sends events to one of the nodes).
  Status Inject(const std::string& input_name, Tuple t);

  /// Ensures a processing step is scheduled.
  void Kick();

  /// Immediately sends any tuples buffered on remote bindings (used after
  /// out-of-band emissions during reconfiguration).
  void Flush() { FlushPending(); }

  // ---- Failure model -----------------------------------------------------

  /// Crashes / restores the node (pairs with OverlayNetwork::SetNodeUp).
  void SetUp(bool up);
  bool up() const { return up_; }

  /// Fail-stop crash (fault injection): goes down AND wipes the node's
  /// volatile sender state — unsent pending batches, retained output logs,
  /// and received-sequence watermarks — exactly what a real process loses.
  /// Upstream-backup recovery replays the *upstream* neighbours' logs, so
  /// the wiped state is never read again (§6.3). Returns the number of
  /// tuples lost from this node's own buffers.
  size_t Crash();

  /// Tuples dropped as duplicates by per-stream sequence tracking (chaos
  /// duplication or retransmits; see OnRemoteStream).
  uint64_t duplicate_tuples_dropped() const { return dup_tuples_dropped_; }

  // ---- Durable storage ----------------------------------------------------

  /// Wires a tiered store (not owned) under this node: the engine's spills
  /// and connection points go durable, and every retained HA output log is
  /// mirrored to a "halog/<stream>" store stream. Crash() then also crashes
  /// the store (unsynced bytes lost) and RecoverDurableState() rebuilds CP
  /// history, output logs, and sequence counters from what survived.
  void AttachDurableStorage(TieredStore* store);
  bool has_durable_storage() const { return store_ != nullptr; }
  TieredStore* durable_store() { return store_; }

  /// Recovery after a crash+restart with durable storage: re-opens the
  /// store, rebuilds connection-point history, restores each retained
  /// binding's output log and next_seq from its halog stream, and replays
  /// the restored log downstream (receivers' dedup watermarks suppress
  /// anything they already processed — the §6.3 upstream-backup replay, fed
  /// from disk instead of from a surviving peer).
  Status RecoverDurableState();

  // ---- Invariant probes (used by src/check) -------------------------------

  /// Observes every tuple arriving on a named transport stream, *before*
  /// engine ingestion: `duplicate` is true when the per-stream dedup
  /// watermark suppressed it. Model-checking harnesses hang per-stream
  /// FIFO / exactly-once invariant checks here; unset in production.
  using DeliveryProbe = std::function<void(
      NodeId node, const std::string& stream, const Tuple& t, bool duplicate)>;
  void SetDeliveryProbe(DeliveryProbe probe) {
    delivery_probe_ = std::move(probe);
  }

  // ---- HA hooks (used by src/ha) ------------------------------------------

  /// A retained sent tuple plus its lineage: the sequence number (in the
  /// space of this node's *incoming* stream) of the earliest input tuple it
  /// was derived from. Lineage is what cascaded truncation reports upstream
  /// ("tuples whose values got determined directly or indirectly", §6.2).
  struct LogEntry {
    Tuple tuple;        // seq() is this stream's outgoing sequence number
    SeqNo lineage = kNoSeqNo;
  };

  struct RemoteBinding {
    PortId output_port = -1;
    StreamNode* dst = nullptr;
    std::string remote_input;
    std::string stream;
    double weight = 1.0;
    /// Next sequence number to assign on this stream (§6.2: monotonically
    /// increasing, per stream).
    SeqNo next_seq = 1;
    /// When true, sent tuples are retained in `output_log` until the
    /// downstream confirms them processed (upstream backup, Fig. 8).
    bool retain_log = false;
    std::deque<LogEntry> output_log;
    /// Schema of the logged tuples; configuration (not data), so it
    /// survives Crash() and decodes the durable log during recovery.
    SchemaPtr log_schema;
    std::vector<Tuple> pending;  // emitted this step, not yet sent
    /// When the pending buffer first hit a credit-blocked stream (-1 =
    /// not blocked). Tuples sent after a blocked spell get a kCreditWait
    /// span covering it, so latency attribution charges the wait to credit
    /// back-pressure instead of to the wire.
    int64_t blocked_since_us = -1;
    uint64_t tuples_sent = 0;
    uint64_t messages_sent = 0;
  };

  /// The durable part of a binding: its retained log and sequence counter.
  /// When a slide re-routes a binding whose consumer carried its operator
  /// state along (state migration), the replacement binding must continue
  /// the same sequence space and keep the unconfirmed log — otherwise a
  /// later failure of the destination could lose the migrated open-window
  /// contents.
  struct BindingContinuity {
    std::deque<LogEntry> output_log;
    SeqNo next_seq = 1;
  };
  Result<BindingContinuity> SnapshotBindingContinuity(
      const std::string& output_name) const;
  Status RestoreBindingContinuity(const std::string& output_name,
                                  BindingContinuity continuity);

  /// Enables upstream-backup retention on all current and future bindings.
  void RetainOutputLogs(bool retain);
  const std::map<std::string, RemoteBinding>& bindings() const {
    return bindings_;
  }
  /// Discards logged tuples with seq <= `upto` on the stream (§6.2 queue
  /// truncation). Returns how many were discarded.
  size_t TruncateOutputLog(const std::string& stream, SeqNo upto);
  /// Tuples currently retained on the stream's output log.
  std::vector<Tuple> OutputLogSnapshot(const std::string& stream) const;
  size_t OutputLogSize(const std::string& stream) const;
  /// Smallest lineage over all retained + pending tuples of every binding:
  /// the oldest *input* tuple this node's unconfirmed outputs still depend
  /// on. kNoSeqNo when nothing is retained.
  SeqNo UnconfirmedOutputMinLineage() const;
  /// Highest sequence number received so far per input stream.
  SeqNo LastReceivedSeq(const std::string& input_name) const;

  // ---- Statistics ---------------------------------------------------------

  /// Fraction of time the CPU was busy over the most recent utilization
  /// window (smoothed).
  double utilization() const { return utilization_; }
  uint64_t steps_executed() const { return steps_executed_; }

 private:
  /// Receiver-side flow state of one incoming stream (see FLOW_CONTROL.md).
  struct IncomingStream {
    std::string input_name;
    StreamNode* src = nullptr;  // grants are sent back to this node
    PortId input_port = -1;     // resolved lazily from input_name
    /// Highest cumulative payload-byte offset received (or probed).
    uint64_t received_offset = 0;
    /// Last cumulative limit granted to the sender.
    uint64_t granted_limit = 0;
  };

  void ScheduleStep();
  void Step();
  void FlushPending();
  Transport* TransportTo(StreamNode* dst);
  /// Deserializes and pushes a batch; `stream` (when non-null) enables
  /// per-stream duplicate suppression by sequence number.
  void DeliverTuples(const std::string& input_name, const std::string* stream,
                     const std::vector<uint8_t>& payload);
  bool flow_enabled() const { return transport_opts_.credit_window_bytes > 0; }
  /// Re-grants credit on the stream when the input backlog leaves room for
  /// more than already granted; `force` resends the current limit even when
  /// unchanged (probe replies, healing lost grants).
  void MaybeGrantCredit(const std::string& stream, IncomingStream& in,
                        bool force);
  /// Recomputes flow_blocked_ from the bindings' transport credit state and
  /// mirrors it into the engine's ingestion gate.
  void UpdateFlowBlocked();

  Simulation* sim_;
  OverlayNetwork* net_;
  NodeId id_;
  AuroraEngine engine_;
  TransportOptions transport_opts_;
  SimDuration tick_interval_;
  std::map<NodeId, std::unique_ptr<Transport>> transports_;
  std::map<std::string, RemoteBinding> bindings_;
  std::map<std::string, IncomingStream> incoming_;
  std::map<std::string, SeqNo> last_received_;
  /// Highest sequence seen per incoming *stream* — the dedup watermark.
  /// Streams are FIFO per transport, so in normal operation sequences only
  /// grow and this never drops anything; under chaos duplication (or
  /// overtaking reorder) stale tuples are suppressed, which keeps the §6
  /// recovery invariant "only in-process tuples are redone" intact.
  std::map<std::string, SeqNo> stream_dedup_watermark_;
  /// Per-node decode scratch recycled across remote batches (the encode
  /// side now lives in Transport's span Send).
  std::vector<Tuple> decode_scratch_;
  DeliveryProbe delivery_probe_;
  TieredStore* store_ = nullptr;
  std::vector<uint8_t> halog_scratch_;
  uint64_t dup_tuples_dropped_ = 0;
  bool retain_logs_ = false;
  bool step_scheduled_ = false;
  bool up_ = true;
  bool started_ = false;
  bool flow_blocked_ = false;
  /// CPU accounting: the node may not start another step before this time,
  /// enforcing its processing capacity even across idle gaps.
  SimTime busy_until_{};
  uint64_t steps_executed_ = 0;
  // Utilization accounting.
  SimTime window_start_{};
  double busy_us_in_window_ = 0.0;
  double utilization_ = 0.0;
  // Registry mirrors of cross-node traffic (process-wide totals).
  Counter* m_tuples_sent_;
  Counter* m_msgs_sent_;
  Counter* m_dup_dropped_;
  Counter* m_crash_lost_;
  Counter* m_flow_grants_;
  Counter* m_flow_granted_bytes_;
  Counter* m_halog_appends_;
  Counter* m_halog_replayed_;
};

}  // namespace aurora

#endif  // AURORA_DISTRIBUTED_STREAM_NODE_H_
