#include "distributed/stream_node.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tuple/serde.h"

namespace aurora {

namespace {
constexpr double kUtilizationWindowS = 0.25;
}  // namespace

StreamNode::StreamNode(Simulation* sim, OverlayNetwork* net, NodeId id,
                       EngineOptions engine_opts,
                       TransportOptions transport_opts,
                       SimDuration tick_interval)
    : sim_(sim),
      net_(net),
      id_(id),
      engine_(engine_opts),
      transport_opts_(transport_opts),
      tick_interval_(tick_interval) {
  engine_.set_trace_node(static_cast<int>(id));
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_tuples_sent_ = reg.GetCounter("node.tuples_sent");
  m_msgs_sent_ = reg.GetCounter("node.msgs_sent");
  m_dup_dropped_ = reg.GetCounter("node.stream.dup_dropped");
  m_crash_lost_ = reg.GetCounter("node.crash.tuples_lost");
}

void StreamNode::Start() {
  if (started_) return;
  started_ = true;
  window_start_ = sim_->Now();
  sim_->SchedulePeriodic(tick_interval_, [this]() {
    if (!up_) return true;  // keep the timer; skip while down
    engine_.Tick(sim_->Now());
    FlushPending();
    Kick();
    return true;
  });
}

Transport* StreamNode::TransportTo(StreamNode* dst) {
  auto it = transports_.find(dst->id());
  if (it != transports_.end()) return it->second.get();
  auto transport = std::make_unique<Transport>(sim_, net_, id_, dst->id(),
                                               transport_opts_);
  // Delivery executes logically at the destination node.
  transport->SetDeliveryHandler(
      [dst](const std::string& stream, const Message& msg) {
        if (!dst->up()) return;
        dst->OnRemoteStream(stream, msg.payload);
      });
  Transport* raw = transport.get();
  transports_[dst->id()] = std::move(transport);
  return raw;
}

Status StreamNode::BindRemoteOutput(const std::string& output_name,
                                    StreamNode* dst,
                                    const std::string& remote_input,
                                    const std::string& stream_name,
                                    double weight) {
  if (bindings_.count(output_name)) {
    return Status::AlreadyExists("output '" + output_name +
                                 "' already bound remotely");
  }
  AURORA_ASSIGN_OR_RETURN(PortId port, engine_.FindOutput(output_name));
  // Destination input must exist (remote definition creates it first).
  AURORA_RETURN_NOT_OK(dst->engine().FindInput(remote_input).status());
  Transport* transport = TransportTo(dst);
  if (!transport->HasStream(stream_name)) {
    AURORA_RETURN_NOT_OK(transport->RegisterStream(stream_name, weight));
  }
  RemoteBinding binding;
  binding.output_port = port;
  binding.dst = dst;
  binding.remote_input = remote_input;
  binding.stream = stream_name;
  binding.weight = weight;
  binding.retain_log = retain_logs_;
  dst->RegisterIncomingStream(stream_name, remote_input);
  bindings_[output_name] = std::move(binding);
  engine_.SetOutputCallback(port, [this, output_name](const Tuple& t, SimTime) {
    auto it = bindings_.find(output_name);
    if (it != bindings_.end()) it->second.pending.push_back(t);
  });
  return Status::OK();
}

Result<std::string> StreamNode::BindingNameForOutputPort(PortId port) const {
  for (const auto& [name, binding] : bindings_) {
    if (binding.output_port == port) return name;
  }
  return Status::NotFound("no binding on output port " + std::to_string(port));
}

Result<StreamNode::BindingContinuity> StreamNode::SnapshotBindingContinuity(
    const std::string& output_name) const {
  auto it = bindings_.find(output_name);
  if (it == bindings_.end()) {
    return Status::NotFound("output '" + output_name + "' is not bound");
  }
  BindingContinuity continuity;
  continuity.output_log = it->second.output_log;
  continuity.next_seq = it->second.next_seq;
  return continuity;
}

Status StreamNode::RestoreBindingContinuity(const std::string& output_name,
                                            BindingContinuity continuity) {
  auto it = bindings_.find(output_name);
  if (it == bindings_.end()) {
    return Status::NotFound("output '" + output_name + "' is not bound");
  }
  it->second.output_log = std::move(continuity.output_log);
  it->second.next_seq = continuity.next_seq;
  return Status::OK();
}

Status StreamNode::UnbindRemoteOutput(const std::string& output_name) {
  auto it = bindings_.find(output_name);
  if (it == bindings_.end()) {
    return Status::NotFound("output '" + output_name + "' is not bound");
  }
  engine_.SetOutputCallback(it->second.output_port, nullptr);
  bindings_.erase(it);
  return Status::OK();
}

void StreamNode::OnRemoteStream(const std::string& stream,
                                const std::vector<uint8_t>& payload) {
  auto it = stream_to_input_.find(stream);
  if (it == stream_to_input_.end()) {
    AURORA_LOG(Warn) << "node " << id_ << ": tuples on unregistered stream '"
                     << stream << "'";
    return;
  }
  DeliverTuples(it->second, &stream, payload);
}

void StreamNode::OnRemoteTuples(const std::string& input_name,
                                const std::vector<uint8_t>& payload) {
  DeliverTuples(input_name, nullptr, payload);
}

void StreamNode::DeliverTuples(const std::string& input_name,
                               const std::string* stream,
                               const std::vector<uint8_t>& payload) {
  if (!up_) return;
  auto port = engine_.FindInput(input_name);
  if (!port.ok()) {
    AURORA_LOG(Warn) << "node " << id_ << ": dropping tuples for unknown input '"
                     << input_name << "'";
    return;
  }
  SchemaPtr schema = engine_.input_schema(*port);
  auto tuples = DeserializeTuples(payload, schema);
  if (!tuples.ok()) {
    AURORA_LOG(Error) << "node " << id_ << ": bad tuple batch: "
                      << tuples.status().ToString();
    return;
  }
  SeqNo& last = last_received_[input_name];
  SeqNo* dedup = stream ? &stream_dedup_watermark_[*stream] : nullptr;
  Tracer& tracer = Tracer::Global();
  for (auto& t : *tuples) {
    if (dedup != nullptr && t.seq() != kNoSeqNo) {
      // Streams are FIFO per transport connection, so a sequence number at
      // or below the watermark is a duplicate (chaos duplication) or an
      // overtaken copy (chaos reorder) — suppressing it keeps delivery
      // at-most-once per stream.
      if (t.seq() <= *dedup) {
        dup_tuples_dropped_++;
        m_dup_dropped_->Add();
        continue;
      }
      *dedup = t.seq();
    }
    if (t.seq() != kNoSeqNo && t.seq() > last) last = t.seq();
    if (tracer.enabled() && t.trace_id() != 0) {
      // Recorded at the receiver: the hop is complete once the batch lands.
      tracer.Record({t.trace_id(), SpanKind::kTransportHop,
                     static_cast<int>(id_), "stream:" + input_name,
                     sim_->Now().micros(), sim_->Now().micros()});
    }
    Status st = engine_.PushInput(*port, std::move(t), sim_->Now());
    if (!st.ok()) {
      AURORA_LOG(Error) << "node " << id_ << ": push failed: " << st.ToString();
    }
  }
  FlushPending();
  Kick();
}

Status StreamNode::Inject(const std::string& input_name, Tuple t) {
  if (!up_) return Status::Unavailable("node is down");
  if (t.timestamp().micros() == 0) t.set_timestamp(sim_->Now());
  AURORA_RETURN_NOT_OK(engine_.PushInputByName(input_name, std::move(t),
                                               sim_->Now()));
  // Relay arcs (input port -> output port) deliver synchronously; flush so
  // their tuples do not wait for the next engine step.
  FlushPending();
  Kick();
  return Status::OK();
}

void StreamNode::Kick() {
  if (!up_ || step_scheduled_ || !engine_.HasWork()) return;
  ScheduleStep();
}

void StreamNode::ScheduleStep() {
  step_scheduled_ = true;
  // Never start a step while the CPU is still charged with earlier work.
  SimTime at = std::max(sim_->Now() + SimDuration::Micros(1), busy_until_);
  sim_->ScheduleAt(at, [this]() { Step(); });
}

void StreamNode::Step() {
  step_scheduled_ = false;
  if (!up_) return;
  auto cost = engine_.RunOneStep(sim_->Now());
  if (!cost.ok()) {
    AURORA_LOG(Error) << "node " << id_ << ": " << cost.status().ToString();
    return;
  }
  steps_executed_++;
  FlushPending();
  double scaled_us = *cost / std::max(1e-6, speed());
  busy_until_ = sim_->Now() + SimDuration::Micros(std::max<int64_t>(
                                  1, static_cast<int64_t>(scaled_us)));
  // Utilization window bookkeeping.
  busy_us_in_window_ += scaled_us;
  double elapsed_s = (sim_->Now() - window_start_).seconds();
  if (elapsed_s >= kUtilizationWindowS) {
    utilization_ = std::min(1.0, busy_us_in_window_ / (elapsed_s * 1e6));
    busy_us_in_window_ = 0.0;
    window_start_ = sim_->Now();
  }
  if (engine_.HasWork()) {
    ScheduleStep();
  }
}

void StreamNode::FlushPending() {
  for (auto& [name, binding] : bindings_) {
    if (binding.pending.empty()) continue;
    for (auto& t : binding.pending) {
      SeqNo lineage = t.seq();  // in the incoming stream's space
      t.set_seq(binding.next_seq++);
      if (binding.retain_log) binding.output_log.push_back(LogEntry{t, lineage});
    }
    Message msg;
    msg.kind = "tuples";
    msg.stream = binding.stream;
    msg.payload = SerializeTuples(binding.pending);
    binding.tuples_sent += binding.pending.size();
    binding.messages_sent++;
    m_tuples_sent_->Add(binding.pending.size());
    m_msgs_sent_->Add();
    binding.pending.clear();
    Transport* transport = TransportTo(binding.dst);
    Status st = transport->Send(binding.stream, std::move(msg));
    if (!st.ok()) {
      AURORA_LOG(Error) << "node " << id_ << ": send failed: " << st.ToString();
    }
  }
}

void StreamNode::SetUp(bool up) {
  up_ = up;
  net_->SetNodeUp(id_, up);
  if (up) Kick();
}

size_t StreamNode::Crash() {
  SetUp(false);
  size_t lost = 0;
  for (auto& [name, binding] : bindings_) {
    lost += binding.pending.size();
    lost += binding.output_log.size();
    binding.pending.clear();
    binding.output_log.clear();
  }
  last_received_.clear();
  stream_dedup_watermark_.clear();
  if (lost > 0) m_crash_lost_->Add(lost);
  AURORA_LOG(Debug) << "node " << id_ << ": crashed, lost " << lost
                    << " buffered tuples";
  return lost;
}

void StreamNode::RetainOutputLogs(bool retain) {
  retain_logs_ = retain;
  for (auto& [name, binding] : bindings_) binding.retain_log = retain;
}

size_t StreamNode::TruncateOutputLog(const std::string& stream, SeqNo upto) {
  size_t discarded = 0;
  for (auto& [name, binding] : bindings_) {
    if (binding.stream != stream) continue;
    while (!binding.output_log.empty() &&
           binding.output_log.front().tuple.seq() <= upto) {
      binding.output_log.pop_front();
      ++discarded;
    }
  }
  return discarded;
}

std::vector<Tuple> StreamNode::OutputLogSnapshot(
    const std::string& stream) const {
  for (const auto& [name, binding] : bindings_) {
    if (binding.stream == stream) {
      std::vector<Tuple> out;
      out.reserve(binding.output_log.size());
      for (const auto& e : binding.output_log) out.push_back(e.tuple);
      return out;
    }
  }
  return {};
}

SeqNo StreamNode::UnconfirmedOutputMinLineage() const {
  SeqNo min_seq = kNoSeqNo;
  auto consider = [&min_seq](SeqNo s) {
    if (s == kNoSeqNo) return;
    if (min_seq == kNoSeqNo || s < min_seq) min_seq = s;
  };
  for (const auto& [name, binding] : bindings_) {
    for (const auto& e : binding.output_log) consider(e.lineage);
    for (const auto& t : binding.pending) consider(t.seq());
  }
  return min_seq;
}

size_t StreamNode::OutputLogSize(const std::string& stream) const {
  for (const auto& [name, binding] : bindings_) {
    if (binding.stream == stream) return binding.output_log.size();
  }
  return 0;
}

SeqNo StreamNode::LastReceivedSeq(const std::string& input_name) const {
  auto it = last_received_.find(input_name);
  return it == last_received_.end() ? kNoSeqNo : it->second;
}

}  // namespace aurora
