#include "distributed/stream_node.h"

#include <algorithm>
#include <cstdint>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tuple/serde.h"

namespace aurora {

namespace {
constexpr double kUtilizationWindowS = 0.25;
}  // namespace

StreamNode::StreamNode(Simulation* sim, OverlayNetwork* net, NodeId id,
                       EngineOptions engine_opts,
                       TransportOptions transport_opts,
                       SimDuration tick_interval)
    : sim_(sim),
      net_(net),
      id_(id),
      engine_(engine_opts),
      transport_opts_(transport_opts),
      tick_interval_(tick_interval) {
  engine_.set_trace_node(static_cast<int>(id));
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_tuples_sent_ = reg.GetCounter("node.tuples_sent");
  m_msgs_sent_ = reg.GetCounter("node.msgs_sent");
  m_dup_dropped_ = reg.GetCounter("node.stream.dup_dropped");
  m_crash_lost_ = reg.GetCounter("node.crash.tuples_lost");
  m_flow_grants_ = reg.GetCounter("net.flow.credit_grants");
  m_flow_granted_bytes_ = reg.GetCounter("net.flow.granted_bytes");
  m_halog_appends_ = reg.GetCounter("storage.halog.appends");
  m_halog_replayed_ = reg.GetCounter("storage.halog.replayed");
}

void StreamNode::AttachDurableStorage(TieredStore* store) {
  store_ = store;
  store_->set_trace_node(static_cast<int>(id_));
  engine_.AttachDurableStore(store);
}

Status StreamNode::RecoverDurableState() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition("no durable store attached");
  }
  AURORA_RETURN_NOT_OK(store_->Open());
  engine_.RecoverDurableState(sim_->Now());
  for (auto& [name, binding] : bindings_) {
    if (!binding.retain_log) continue;
    const std::string stream = "halog/" + binding.stream;
    binding.output_log.clear();
    std::vector<Tuple> replay;
    store_->ScanAll(stream, [&](const StoredRecord& rec) {
      Decoder dec(rec.payload);
      auto t = dec.GetTuple(binding.log_schema);
      if (!t.ok()) {
        AURORA_LOG(Error) << "node " << id_ << ": halog decode failed: "
                          << t.status().ToString();
        return;
      }
      auto lineage = dec.GetU64();
      binding.output_log.push_back(
          LogEntry{*t, lineage.ok() ? static_cast<SeqNo>(*lineage) : kNoSeqNo});
      replay.push_back(std::move(*t));
    });
    // next_seq survives in the store meta even when the whole log has been
    // truncated away — reusing sequence numbers after a restart would make
    // downstream dedup silently drop every fresh tuple.
    binding.next_seq =
        std::max(binding.next_seq, static_cast<SeqNo>(store_->next_seq(stream)));
    if (replay.empty()) continue;
    // Replay the restored log downstream with the original sequence
    // numbers; the receiver's dedup watermark suppresses what it already
    // processed, so replay is idempotent.
    m_halog_replayed_->Add(replay.size());
    Status st = TransportTo(binding.dst)
                    ->Send(binding.stream, replay.data(), replay.size());
    if (!st.ok()) {
      AURORA_LOG(Error) << "node " << id_
                        << ": halog replay send failed: " << st.ToString();
    }
  }
  Kick();
  return Status::OK();
}

void StreamNode::Start() {
  if (started_) return;
  started_ = true;
  window_start_ = sim_->Now();
  sim_->SchedulePeriodic(tick_interval_, [this]() {
    if (!up_) return true;  // keep the timer; skip while down
    engine_.Tick(sim_->Now());
    if (flow_enabled()) {
      // The input backlog drains without any new arrival, so credit must
      // also be re-granted on the clock, not just on data delivery.
      for (auto& [stream, in] : incoming_) {
        MaybeGrantCredit(stream, in, /*force=*/false);
      }
      UpdateFlowBlocked();
    }
    FlushPending();
    Kick();
    return true;
  });
}

Transport* StreamNode::TransportTo(StreamNode* dst) {
  auto it = transports_.find(dst->id());
  if (it != transports_.end()) return it->second.get();
  auto transport = std::make_unique<Transport>(sim_, net_, id_, dst->id(),
                                               transport_opts_);
  // Delivery executes logically at the destination node.
  transport->SetDeliveryHandler(
      [dst](const std::string& stream, const Message& msg) {
        dst->OnRemoteMessage(stream, msg);
      });
  transport->SetFlowProbeHandler(
      [dst](const std::string& stream, uint64_t sent_offset) {
        dst->OnFlowProbe(stream, sent_offset);
      });
  Transport* raw = transport.get();
  transports_[dst->id()] = std::move(transport);
  return raw;
}

Status StreamNode::BindRemoteOutput(const std::string& output_name,
                                    StreamNode* dst,
                                    const std::string& remote_input,
                                    const std::string& stream_name,
                                    double weight) {
  if (bindings_.count(output_name)) {
    return Status::AlreadyExists("output '" + output_name +
                                 "' already bound remotely");
  }
  AURORA_ASSIGN_OR_RETURN(PortId port, engine_.FindOutput(output_name));
  // Destination input must exist (remote definition creates it first).
  AURORA_RETURN_NOT_OK(dst->engine().FindInput(remote_input).status());
  Transport* transport = TransportTo(dst);
  if (!transport->HasStream(stream_name)) {
    AURORA_RETURN_NOT_OK(transport->RegisterStream(stream_name, weight));
  }
  RemoteBinding binding;
  binding.output_port = port;
  binding.dst = dst;
  binding.remote_input = remote_input;
  binding.stream = stream_name;
  binding.weight = weight;
  binding.retain_log = retain_logs_;
  dst->RegisterIncomingStream(stream_name, remote_input, this);
  bindings_[output_name] = std::move(binding);
  engine_.SetOutputCallback(port, [this, output_name](const Tuple& t, SimTime) {
    auto it = bindings_.find(output_name);
    if (it != bindings_.end()) it->second.pending.push_back(t);
  });
  return Status::OK();
}

Result<std::string> StreamNode::BindingNameForOutputPort(PortId port) const {
  for (const auto& [name, binding] : bindings_) {
    if (binding.output_port == port) return name;
  }
  return Status::NotFound("no binding on output port " + std::to_string(port));
}

Result<StreamNode::BindingContinuity> StreamNode::SnapshotBindingContinuity(
    const std::string& output_name) const {
  auto it = bindings_.find(output_name);
  if (it == bindings_.end()) {
    return Status::NotFound("output '" + output_name + "' is not bound");
  }
  BindingContinuity continuity;
  continuity.output_log = it->second.output_log;
  continuity.next_seq = it->second.next_seq;
  return continuity;
}

Status StreamNode::RestoreBindingContinuity(const std::string& output_name,
                                            BindingContinuity continuity) {
  auto it = bindings_.find(output_name);
  if (it == bindings_.end()) {
    return Status::NotFound("output '" + output_name + "' is not bound");
  }
  it->second.output_log = std::move(continuity.output_log);
  it->second.next_seq = continuity.next_seq;
  return Status::OK();
}

Status StreamNode::UnbindRemoteOutput(const std::string& output_name) {
  auto it = bindings_.find(output_name);
  if (it == bindings_.end()) {
    return Status::NotFound("output '" + output_name + "' is not bound");
  }
  engine_.SetOutputCallback(it->second.output_port, nullptr);
  bindings_.erase(it);
  return Status::OK();
}

void StreamNode::OnRemoteStream(const std::string& stream,
                                const std::vector<uint8_t>& payload) {
  auto it = incoming_.find(stream);
  if (it == incoming_.end()) {
    AURORA_LOG(Warn) << "node " << id_ << ": tuples on unregistered stream '"
                     << stream << "'";
    return;
  }
  DeliverTuples(it->second.input_name, &stream, payload);
}

void StreamNode::OnRemoteMessage(const std::string& stream,
                                 const Message& msg) {
  if (!up_) return;
  auto it = incoming_.find(stream);
  if (flow_enabled() && it != incoming_.end()) {
    it->second.received_offset =
        std::max(it->second.received_offset, msg.flow_offset);
  }
  OnRemoteStream(stream, msg.payload);
  if (flow_enabled() && it != incoming_.end()) {
    MaybeGrantCredit(stream, it->second, /*force=*/false);
  }
}

void StreamNode::OnFlowProbe(const std::string& stream, uint64_t sent_offset) {
  if (!up_ || !flow_enabled()) return;
  auto it = incoming_.find(stream);
  if (it == incoming_.end()) return;
  it->second.received_offset =
      std::max(it->second.received_offset, sent_offset);
  // Force a (re)grant: the probe means the sender is stalled, so either the
  // previous grant was lost or data beyond our watermark was — both heal by
  // restating the current limit.
  MaybeGrantCredit(stream, it->second, /*force=*/true);
}

void StreamNode::MaybeGrantCredit(const std::string& stream, IncomingStream& in,
                                  bool force) {
  if (!flow_enabled() || in.src == nullptr) return;
  if (in.input_port < 0) {
    auto port = engine_.FindInput(in.input_name);
    if (!port.ok()) return;
    in.input_port = *port;
  }
  // Free window = credit budget minus what is already queued locally: the
  // sender may have at most the window in flight beyond what we've seen.
  uint64_t window = transport_opts_.credit_window_bytes;
  uint64_t backlog = engine_.InputBacklogBytes(in.input_port);
  uint64_t free = backlog >= window ? 0 : window - backlog;
  uint64_t limit = in.received_offset + free;
  if (limit <= in.granted_limit && !force) return;
  if (limit < in.granted_limit) limit = in.granted_limit;  // never shrink
  uint64_t newly = limit - in.granted_limit;
  in.granted_limit = limit;
  m_flow_grants_->Add();
  if (newly > 0) m_flow_granted_bytes_->Add(newly);
  Message grant;
  grant.kind = "flow_grant";
  grant.stream = stream;
  grant.flow_offset = limit;
  StreamNode* src = in.src;
  Status sent = net_->Send(id_, src->id(), std::move(grant),
                           [src, stream](const Message& m) {
                             src->OnFlowGrant(stream, m.flow_offset);
                           });
  if (!sent.ok()) {
    AURORA_LOG(Warn) << "node " << id_
                     << ": credit grant send failed: " << sent.ToString();
  }
}

void StreamNode::OnFlowGrant(const std::string& stream, uint64_t limit) {
  if (!up_ || !flow_enabled()) return;
  for (auto& [name, binding] : bindings_) {
    if (binding.stream != stream) continue;
    auto it = transports_.find(binding.dst->id());
    if (it != transports_.end()) it->second->GrantCredit(stream, limit);
    break;
  }
  UpdateFlowBlocked();
  FlushPending();
  Kick();
}

void StreamNode::UpdateFlowBlocked() {
  bool blocked = false;
  if (flow_enabled()) {
    for (const auto& [name, binding] : bindings_) {
      auto it = transports_.find(binding.dst->id());
      if (it != transports_.end() && it->second->StreamBlocked(binding.stream)) {
        blocked = true;
        break;
      }
    }
  }
  flow_blocked_ = blocked;
  engine_.SetIngestBlocked(blocked);
}

void StreamNode::OnRemoteTuples(const std::string& input_name,
                                const std::vector<uint8_t>& payload) {
  DeliverTuples(input_name, nullptr, payload);
}

void StreamNode::DeliverTuples(const std::string& input_name,
                               const std::string* stream,
                               const std::vector<uint8_t>& payload) {
  if (!up_) return;
  auto port = engine_.FindInput(input_name);
  if (!port.ok()) {
    AURORA_LOG(Warn) << "node " << id_ << ": dropping tuples for unknown input '"
                     << input_name << "'";
    return;
  }
  SchemaPtr schema = engine_.input_schema(*port);
  Status decoded = DeserializeTuplesInto(payload, schema, &decode_scratch_);
  if (!decoded.ok()) {
    AURORA_LOG(Error) << "node " << id_ << ": bad tuple batch: "
                      << decoded.ToString();
    return;
  }
  std::vector<Tuple>* tuples = &decode_scratch_;
  SeqNo& last = last_received_[input_name];
  SeqNo* dedup = stream != nullptr && transport_opts_.stream_dedup
                     ? &stream_dedup_watermark_[*stream]
                     : nullptr;
  Tracer& tracer = Tracer::Global();
  for (auto& t : *tuples) {
    if (dedup != nullptr && t.seq() != kNoSeqNo) {
      // Streams are FIFO per transport connection, so a sequence number at
      // or below the watermark is a duplicate (chaos duplication) or an
      // overtaken copy (chaos reorder) — suppressing it keeps delivery
      // at-most-once per stream.
      if (t.seq() <= *dedup) {
        dup_tuples_dropped_++;
        m_dup_dropped_->Add();
        if (delivery_probe_) delivery_probe_(id_, *stream, t, true);
        continue;
      }
      *dedup = t.seq();
    }
    if (delivery_probe_ && stream != nullptr) {
      delivery_probe_(id_, *stream, t, false);
    }
    if (t.seq() != kNoSeqNo && t.seq() > last) last = t.seq();
    if (tracer.enabled() && t.trace_id() != 0) {
      // Recorded at the receiver: the hop is complete once the batch lands.
      tracer.Record({t.trace_id(), SpanKind::kTransportHop,
                     static_cast<int>(id_), "stream:" + input_name,
                     sim_->Now().micros(), sim_->Now().micros()});
    }
    // Remote arrivals bypass the ingestion gate: they already consumed
    // transport credit, so dropping them here would lose accepted data.
    Status st = engine_.PushInput(*port, std::move(t), sim_->Now(),
                                  /*gate_ingest=*/false);
    if (!st.ok()) {
      AURORA_LOG(Error) << "node " << id_ << ": push failed: " << st.ToString();
    }
  }
  FlushPending();
  Kick();
}

Status StreamNode::Inject(const std::string& input_name, Tuple t) {
  if (!up_) return Status::Unavailable("node is down");
  if (t.timestamp().micros() == 0) t.set_timestamp(sim_->Now());
  AURORA_RETURN_NOT_OK(engine_.PushInputByName(input_name, std::move(t),
                                               sim_->Now()));
  // Relay arcs (input port -> output port) deliver synchronously; flush so
  // their tuples do not wait for the next engine step.
  FlushPending();
  Kick();
  return Status::OK();
}

void StreamNode::Kick() {
  // While out of downstream credit the node stops consuming: its input
  // backlog grows, which in turn stops its own credit grants — that is how
  // back-pressure cascades upstream toward the sources.
  if (!up_ || flow_blocked_ || step_scheduled_ || !engine_.HasWork()) return;
  ScheduleStep();
}

void StreamNode::ScheduleStep() {
  step_scheduled_ = true;
  // Never start a step while the CPU is still charged with earlier work.
  SimTime at = std::max(sim_->Now() + SimDuration::Micros(1), busy_until_);
  sim_->ScheduleAt(at, [this]() { Step(); });
}

void StreamNode::Step() {
  step_scheduled_ = false;
  if (!up_) return;
  auto cost = engine_.RunOneStep(sim_->Now());
  if (!cost.ok()) {
    AURORA_LOG(Error) << "node " << id_ << ": " << cost.status().ToString();
    return;
  }
  steps_executed_++;
  FlushPending();
  double scaled_us = *cost / std::max(1e-6, speed());
  busy_until_ = sim_->Now() + SimDuration::Micros(std::max<int64_t>(
                                  1, static_cast<int64_t>(scaled_us)));
  // Utilization window bookkeeping.
  busy_us_in_window_ += scaled_us;
  double elapsed_s = (sim_->Now() - window_start_).seconds();
  if (elapsed_s >= kUtilizationWindowS) {
    utilization_ = std::min(1.0, busy_us_in_window_ / (elapsed_s * 1e6));
    busy_us_in_window_ = 0.0;
    window_start_ = sim_->Now();
  }
  if (engine_.HasWork()) {
    ScheduleStep();
  }
}

void StreamNode::FlushPending() {
  // With flow control on, a pending buffer held through a blocked spell is
  // sent in window/4-byte chunks with a credit re-check between them, so
  // the transport queue overshoots the credit window by at most one chunk.
  // Flow off keeps the legacy one-message-per-flush batching.
  const size_t chunk_cap =
      flow_enabled()
          ? std::max<size_t>(1, transport_opts_.credit_window_bytes / 4)
          : SIZE_MAX;
  for (auto& [name, binding] : bindings_) {
    Transport* tx = nullptr;
    while (!binding.pending.empty()) {
      if (tx == nullptr) tx = TransportTo(binding.dst);
      if (flow_enabled() && tx->StreamBlocked(binding.stream)) {
        // Out of credit: hold the batch (sequence numbers are assigned at
        // send time, so holding is transparent to dedup and HA logs).
        if (binding.blocked_since_us < 0) {
          binding.blocked_since_us = sim_->Now().micros();
        }
        break;
      }
      size_t n = 0, bytes = 0;
      while (n < binding.pending.size() && (n == 0 || bytes < chunk_cap)) {
        bytes += binding.pending[n].WireSize();
        ++n;
      }
      std::vector<Tuple> batch(binding.pending.begin(),
                               binding.pending.begin() + n);
      binding.pending.erase(binding.pending.begin(),
                            binding.pending.begin() + n);
      if (binding.blocked_since_us >= 0) {
        // These tuples sat out a credit-blocked spell before getting on the
        // wire; attribute the wait to each traced tuple's lineage.
        Tracer& tracer = Tracer::Global();
        if (tracer.enabled()) {
          for (const Tuple& t : batch) {
            if (t.trace_id() == 0) continue;
            tracer.Record({t.trace_id(), SpanKind::kCreditWait, id_,
                           "credit:" + binding.stream,
                           binding.blocked_since_us, sim_->Now().micros()});
          }
        }
        binding.blocked_since_us = -1;
      }
      for (auto& t : batch) {
        SeqNo lineage = t.seq();  // in the incoming stream's space
        t.set_seq(binding.next_seq++);
        if (binding.retain_log) {
          binding.output_log.push_back(LogEntry{t, lineage});
          if (store_ != nullptr) {
            // Mirror the retained entry to the durable halog stream, keyed
            // by the binding's own sequence number (AppendWithSeq), so a
            // recovered node can rebuild and replay this exact log.
            if (t.schema() != nullptr) binding.log_schema = t.schema();
            Encoder enc(std::move(halog_scratch_));
            enc.PutTuple(t);
            enc.PutU64(lineage);
            Status st = store_->AppendWithSeq(
                "halog/" + binding.stream, t.seq(), t.timestamp().micros(),
                enc.buffer().data(), enc.size());
            halog_scratch_ = enc.TakeBuffer();
            if (st.ok()) {
              m_halog_appends_->Add();
            } else {
              AURORA_LOG(Error) << "node " << id_ << ": halog append failed: "
                                << st.ToString();
            }
          }
        }
      }
      binding.tuples_sent += batch.size();
      binding.messages_sent++;
      m_tuples_sent_->Add(batch.size());
      m_msgs_sent_->Add();
      // Span Send: the whole chunk serializes into one train sub-message
      // with a single flow/queue update.
      Status st = tx->Send(binding.stream, batch.data(), batch.size());
      if (!st.ok()) {
        AURORA_LOG(Error) << "node " << id_
                          << ": send failed: " << st.ToString();
      }
    }
  }
  if (flow_enabled()) UpdateFlowBlocked();
}

void StreamNode::SetUp(bool up) {
  up_ = up;
  net_->SetNodeUp(id_, up);
  if (up) Kick();
}

size_t StreamNode::Crash() {
  SetUp(false);
  size_t lost = 0;
  for (auto& [name, binding] : bindings_) {
    lost += binding.pending.size();
    lost += binding.output_log.size();
    binding.pending.clear();
    binding.output_log.clear();
  }
  last_received_.clear();
  stream_dedup_watermark_.clear();
  // Receiver-side flow state is volatile too: offsets restart at zero. The
  // senders' cumulative offsets survive on their side, so their next credit
  // probes walk our watermark forward again (see FLOW_CONTROL.md).
  for (auto& [stream, in] : incoming_) {
    in.received_offset = 0;
    in.granted_limit = transport_opts_.credit_window_bytes;
  }
  flow_blocked_ = false;
  engine_.SetIngestBlocked(false);
  if (store_ != nullptr) {
    // Volatile storage state dies with the process: connection points lose
    // their memory tier and index, the store loses unsynced bytes. The
    // durable remainder is what RecoverDurableState() rebuilds from.
    engine_.WipeVolatileStorage();
    store_->Crash();
  }
  if (lost > 0) m_crash_lost_->Add(lost);
  FlightRecorder::Global().Trigger(
      "node_crash",
      "node=" + std::to_string(id_) + " lost=" + std::to_string(lost),
      sim_->Now().micros());
  AURORA_LOG(Debug) << "node " << id_ << ": crashed, lost " << lost
                    << " buffered tuples";
  return lost;
}

void StreamNode::RetainOutputLogs(bool retain) {
  retain_logs_ = retain;
  for (auto& [name, binding] : bindings_) binding.retain_log = retain;
}

size_t StreamNode::TruncateOutputLog(const std::string& stream, SeqNo upto) {
  size_t discarded = 0;
  for (auto& [name, binding] : bindings_) {
    if (binding.stream != stream) continue;
    while (!binding.output_log.empty() &&
           binding.output_log.front().tuple.seq() <= upto) {
      binding.output_log.pop_front();
      ++discarded;
    }
  }
  if (store_ != nullptr && discarded > 0) {
    // Confirmed entries are dead durably too (§6.2 queue truncation).
    store_->Truncate("halog/" + stream, upto);
  }
  return discarded;
}

std::vector<Tuple> StreamNode::OutputLogSnapshot(
    const std::string& stream) const {
  for (const auto& [name, binding] : bindings_) {
    if (binding.stream == stream) {
      std::vector<Tuple> out;
      out.reserve(binding.output_log.size());
      for (const auto& e : binding.output_log) out.push_back(e.tuple);
      return out;
    }
  }
  return {};
}

SeqNo StreamNode::UnconfirmedOutputMinLineage() const {
  SeqNo min_seq = kNoSeqNo;
  auto consider = [&min_seq](SeqNo s) {
    if (s == kNoSeqNo) return;
    if (min_seq == kNoSeqNo || s < min_seq) min_seq = s;
  };
  for (const auto& [name, binding] : bindings_) {
    for (const auto& e : binding.output_log) consider(e.lineage);
    for (const auto& t : binding.pending) consider(t.seq());
  }
  return min_seq;
}

size_t StreamNode::OutputLogSize(const std::string& stream) const {
  for (const auto& [name, binding] : bindings_) {
    if (binding.stream == stream) return binding.output_log.size();
  }
  return 0;
}

SeqNo StreamNode::LastReceivedSeq(const std::string& input_name) const {
  auto it = last_received_.find(input_name);
  return it == last_received_.end() ? kNoSeqNo : it->second;
}

}  // namespace aurora
