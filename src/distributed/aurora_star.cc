#include "distributed/aurora_star.h"

namespace aurora {

AuroraStarSystem::AuroraStarSystem(Simulation* sim, OverlayNetwork* net,
                                   StarOptions opts)
    : sim_(sim), net_(net), opts_(opts) {}

Result<NodeId> AuroraStarSystem::AddNode(NodeOptions node_opts) {
  return AddNode(std::move(node_opts), opts_.engine);
}

Result<NodeId> AuroraStarSystem::AddNode(NodeOptions node_opts,
                                         EngineOptions engine_opts) {
  NodeId id = net_->AddNode(std::move(node_opts));
  if (id != static_cast<NodeId>(nodes_.size())) {
    return Status::Internal(
        "overlay and star node ids diverged; add all nodes through "
        "AuroraStarSystem");
  }
  nodes_.push_back(std::make_unique<StreamNode>(
      sim_, net_, id, engine_opts, opts_.transport, opts_.tick_interval));
  nodes_.back()->Start();
  return id;
}

Result<std::string> AuroraStarSystem::ConnectRemote(
    NodeId src, const std::string& src_output, NodeId dst,
    const std::string& dst_input, double weight) {
  if (src < 0 || src >= static_cast<int>(nodes_.size()) || dst < 0 ||
      dst >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("bad node id");
  }
  std::string stream = FreshName("stream:" + std::to_string(src) + ">" +
                                 std::to_string(dst));
  AURORA_RETURN_NOT_OK(nodes_[src]->BindRemoteOutput(
      src_output, nodes_[dst].get(), dst_input, stream, weight));
  return stream;
}

std::vector<std::pair<NodeId, std::string>> AuroraStarSystem::BindingsInto(
    NodeId dst, const std::string& remote_input) const {
  std::vector<std::pair<NodeId, std::string>> refs;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& [output_name, binding] : nodes_[i]->bindings()) {
      if (binding.dst != nullptr && binding.dst->id() == dst &&
          binding.remote_input == remote_input) {
        refs.emplace_back(static_cast<NodeId>(i), output_name);
      }
    }
  }
  return refs;
}

Status AuroraStarSystem::CollectOutput(NodeId node,
                                       const std::string& output_name,
                                       AuroraEngine::OutputCallback cb) {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("bad node id");
  }
  AURORA_ASSIGN_OR_RETURN(PortId port,
                          nodes_[node]->engine().FindOutput(output_name));
  nodes_[node]->engine().SetOutputCallback(port, std::move(cb));
  return Status::OK();
}

}  // namespace aurora
