#include "distributed/load_daemon.h"

#include <algorithm>

#include "obs/metrics.h"

namespace aurora {

void LoadShareDaemon::Start() {
  last_round_ = system_->sim()->Now();
  system_->sim()->SchedulePeriodic(opts_.interval, [this]() {
    RunOnce();
    return true;
  });
}

std::vector<LoadShareDaemon::BoxLoad> LoadShareDaemon::MeasureBoxLoads(
    NodeId node) {
  std::vector<BoxLoad> loads;
  double elapsed_s =
      std::max(1e-3, (system_->sim()->Now() - last_round_).seconds());
  AuroraEngine& engine = system_->node(node).engine();
  for (const auto& [name, placed] : deployed_->boxes) {
    if (placed.node != node) continue;
    auto op = engine.BoxOp(placed.box);
    if (!op.ok()) continue;
    uint64_t in_now = (*op)->tuples_in();
    uint64_t& prev = last_tuples_in_[name];
    uint64_t delta = in_now >= prev ? in_now - prev : 0;
    prev = in_now;
    BoxLoad load;
    load.name = name;
    load.recent_cost_us =
        static_cast<double>(delta) * (*op)->cost_micros_per_tuple();
    // Rough bandwidth need of the box's input if it crossed a link: recent
    // tuple rate times a nominal wire size.
    constexpr double kNominalTupleBytes = 64.0;
    load.in_rate_bytes_per_s =
        static_cast<double>(delta) / elapsed_s * kNominalTupleBytes;
    loads.push_back(std::move(load));
  }
  std::sort(loads.begin(), loads.end(),
            [](const BoxLoad& a, const BoxLoad& b) {
              return a.recent_cost_us > b.recent_cost_us;
            });
  return loads;
}

bool LoadShareDaemon::BandwidthAllows(NodeId src, NodeId dst,
                                      double bytes_per_s) const {
  if (!opts_.bandwidth_aware) return true;
  auto link = system_->net()->GetLinkOptions(src, dst);
  if (!link.ok()) return false;
  return bytes_per_s <= link->bandwidth_bytes_per_sec * opts_.bandwidth_headroom;
}

int LoadShareDaemon::RunOnce() {
  rounds_++;
  SimTime now = system_->sim()->Now();
  int actions = 0;
  const size_t n = system_->num_nodes();
  for (size_t i = 0; i < n; ++i) {
    NodeId src = static_cast<NodeId>(i);
    StreamNode& src_node = system_->node(src);
    if (!src_node.up() || src_node.utilization() < opts_.high_water) continue;

    // Pair-wise: find the least-loaded live peer below the low-water mark.
    NodeId target = -1;
    double best_util = opts_.low_water;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      StreamNode& peer = system_->node(static_cast<NodeId>(j));
      if (!peer.up()) continue;
      if (peer.utilization() < best_util) {
        best_util = peer.utilization();
        target = static_cast<NodeId>(j);
      }
    }
    if (target < 0) continue;

    std::vector<BoxLoad> loads = MeasureBoxLoads(src);
    for (const BoxLoad& load : loads) {
      if (load.recent_cost_us <= 0.0) continue;
      auto moved_it = last_moved_.find(load.name);
      if (moved_it != last_moved_.end() &&
          now - moved_it->second < opts_.cooldown) {
        continue;
      }
      const auto& placed = deployed_->boxes.at(load.name);
      auto spec = system_->node(placed.node).engine().BoxSpec(placed.box);
      if (!spec.ok()) continue;
      if (!system_->net()->NodeSupports(target, (*spec)->kind)) continue;
      if (!BandwidthAllows(src, target, load.in_rate_bytes_per_s)) continue;

      bool try_slide = opts_.action != RepartitionAction::kSplitOnly;
      if (try_slide) {
        auto result = slider_.Slide(deployed_, load.name, target,
                                    SlideMode::kStateMigration);
        if (result.ok()) {
          last_moved_[load.name] = now;
          slides_++;
          actions++;
          break;  // one action per overloaded node per round
        }
      }
      if (opts_.action != RepartitionAction::kSlideOnly &&
          !opts_.split_field.empty()) {
        SplitRequest req;
        req.box_name = load.name;
        // Alternate the hash remainder so repeated splits partition
        // differently ("half of the available streams", §5.2).
        req.partition = Predicate::HashPartition(
            opts_.split_field, 2, static_cast<uint32_t>(split_counter_ % 2));
        split_counter_++;
        req.dst_node = target;
        req.wsort_timeout_us = 10'000;
        auto result = splitter_.Split(deployed_, req);
        if (result.ok()) {
          last_moved_[load.name] = now;
          splits_++;
          actions++;
          break;
        }
      }
    }
  }
  last_round_ = now;
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("lb.rounds")->Add();
  reg.GetCounter("lb.actions")->Add(static_cast<uint64_t>(actions));
  return actions;
}

}  // namespace aurora
