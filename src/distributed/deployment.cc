#include "distributed/deployment.h"

#include <algorithm>

namespace aurora {

Status GlobalQuery::AddInput(const std::string& name, SchemaPtr schema) {
  if (HasInput(name)) {
    return Status::AlreadyExists("input '" + name + "' already defined");
  }
  if (schema == nullptr) return Status::InvalidArgument("null schema");
  inputs_.push_back(InputDef{name, std::move(schema)});
  return Status::OK();
}

Status GlobalQuery::AddBox(const std::string& name, OperatorSpec spec) {
  if (HasBox(name)) {
    return Status::AlreadyExists("box '" + name + "' already defined");
  }
  boxes_.push_back(BoxDef{name, std::move(spec)});
  return Status::OK();
}

Status GlobalQuery::AddOutput(const std::string& name) {
  if (HasOutput(name)) {
    return Status::AlreadyExists("output '" + name + "' already defined");
  }
  outputs_.push_back(name);
  return Status::OK();
}

Status GlobalQuery::ConnectInputToBox(const std::string& input,
                                      const std::string& box, int in_index) {
  if (!HasInput(input)) return Status::NotFound("no input '" + input + "'");
  if (!HasBox(box)) return Status::NotFound("no box '" + box + "'");
  arcs_.push_back(ArcDef{ArcDef::FromKind::kInput, input, 0,
                         ArcDef::ToKind::kBox, box, in_index});
  return Status::OK();
}

Status GlobalQuery::ConnectBoxes(const std::string& from, int out_index,
                                 const std::string& to, int in_index) {
  if (!HasBox(from)) return Status::NotFound("no box '" + from + "'");
  if (!HasBox(to)) return Status::NotFound("no box '" + to + "'");
  arcs_.push_back(ArcDef{ArcDef::FromKind::kBox, from, out_index,
                         ArcDef::ToKind::kBox, to, in_index});
  return Status::OK();
}

Status GlobalQuery::ConnectBoxToOutput(const std::string& box, int out_index,
                                       const std::string& output) {
  if (!HasBox(box)) return Status::NotFound("no box '" + box + "'");
  if (!HasOutput(output)) return Status::NotFound("no output '" + output + "'");
  arcs_.push_back(ArcDef{ArcDef::FromKind::kBox, box, out_index,
                         ArcDef::ToKind::kOutput, output, 0});
  return Status::OK();
}

bool GlobalQuery::HasBox(const std::string& name) const {
  return std::any_of(boxes_.begin(), boxes_.end(),
                     [&](const BoxDef& b) { return b.name == name; });
}
bool GlobalQuery::HasInput(const std::string& name) const {
  return std::any_of(inputs_.begin(), inputs_.end(),
                     [&](const InputDef& i) { return i.name == name; });
}
bool GlobalQuery::HasOutput(const std::string& name) const {
  return std::find(outputs_.begin(), outputs_.end(), name) != outputs_.end();
}

namespace {

// The schema an arc's source produces, if determinable yet.
Result<SchemaPtr> ArcSourceSchema(AuroraStarSystem* system,
                                  const GlobalQuery& query,
                                  const DeployedQuery& deployed,
                                  const GlobalQuery::ArcDef& arc) {
  if (arc.from_kind == GlobalQuery::ArcDef::FromKind::kInput) {
    for (const auto& in : query.inputs()) {
      if (in.name == arc.from) return in.schema;
    }
    return Status::NotFound("no input '" + arc.from + "'");
  }
  const auto& placed = deployed.boxes.at(arc.from);
  AuroraEngine& engine = system->node(placed.node).engine();
  if (!engine.IsBoxInitialized(placed.box)) {
    return Status::FailedPrecondition("source box not initialized yet");
  }
  AURORA_ASSIGN_OR_RETURN(Operator * op, engine.BoxOp(placed.box));
  return op->output_schema(arc.from_index);
}

}  // namespace

Result<DeployedQuery> DeployQuery(
    AuroraStarSystem* system, const GlobalQuery& query,
    const std::map<std::string, NodeId>& placement) {
  DeployedQuery deployed;

  // 1. Create boxes at their assigned nodes.
  for (const auto& box : query.boxes()) {
    auto it = placement.find(box.name);
    if (it == placement.end()) {
      return Status::InvalidArgument("box '" + box.name + "' has no placement");
    }
    NodeId node = it->second;
    if (node < 0 || node >= static_cast<int>(system->num_nodes())) {
      return Status::InvalidArgument("bad node for box '" + box.name + "'");
    }
    if (!system->net()->NodeSupports(node, box.spec.kind)) {
      return Status::FailedPrecondition(
          "node " + std::to_string(node) + " does not support operator kind '" +
          box.spec.kind + "'");
    }
    AURORA_ASSIGN_OR_RETURN(BoxId id,
                            system->node(node).engine().AddBox(box.spec));
    deployed.boxes[box.name] = DeployedQuery::PlacedBox{node, id};
  }

  // 2. Home each global input at the node of its first consumer box.
  for (const auto& in : query.inputs()) {
    NodeId home = -1;
    for (const auto& arc : query.arcs()) {
      if (arc.from_kind == GlobalQuery::ArcDef::FromKind::kInput &&
          arc.from == in.name &&
          arc.to_kind == GlobalQuery::ArcDef::ToKind::kBox) {
        home = deployed.boxes.at(arc.to).node;
        break;
      }
    }
    if (home < 0) home = 0;
    AURORA_RETURN_NOT_OK(
        system->node(home).engine().AddInput(in.name, in.schema).status());
    deployed.inputs[in.name] = {home, in.name};
  }

  // 3. Wire arcs progressively: an arc can be wired once its source schema
  //    is known (global inputs immediately; box outputs once the box is
  //    initialized). After every pass, initialize whatever became ready.
  std::vector<bool> wired(query.arcs().size(), false);
  size_t remaining = query.arcs().size();
  while (remaining > 0) {
    size_t progressed = 0;
    for (size_t i = 0; i < query.arcs().size(); ++i) {
      if (wired[i]) continue;
      const auto& arc = query.arcs()[i];
      auto schema = ArcSourceSchema(system, query, deployed, arc);
      if (!schema.ok()) continue;

      // Resolve the source endpoint and node.
      NodeId src_node;
      Endpoint src_ep;
      if (arc.from_kind == GlobalQuery::ArcDef::FromKind::kInput) {
        auto [home, input_name] = deployed.inputs.at(arc.from);
        src_node = home;
        AURORA_ASSIGN_OR_RETURN(
            PortId port, system->node(home).engine().FindInput(input_name));
        src_ep = Endpoint::InputPort(port);
      } else {
        const auto& placed = deployed.boxes.at(arc.from);
        src_node = placed.node;
        src_ep = Endpoint::BoxPort(placed.box, arc.from_index);
      }

      if (arc.to_kind == GlobalQuery::ArcDef::ToKind::kOutput) {
        AuroraEngine& engine = system->node(src_node).engine();
        auto port = engine.FindOutput(arc.to);
        PortId out_port;
        if (port.ok()) {
          out_port = *port;
        } else {
          AURORA_ASSIGN_OR_RETURN(out_port, engine.AddOutput(arc.to));
        }
        AURORA_RETURN_NOT_OK(
            engine.Connect(src_ep, Endpoint::OutputPort(out_port)).status());
        deployed.outputs[arc.to] = {src_node, arc.to};
      } else {
        const auto& to_placed = deployed.boxes.at(arc.to);
        if (to_placed.node == src_node) {
          AURORA_RETURN_NOT_OK(
              system->node(src_node)
                  .engine()
                  .Connect(src_ep, Endpoint::BoxPort(to_placed.box, arc.to_index))
                  .status());
        } else {
          // Cross-node arc: relay output port at the source, fresh input
          // port at the destination, transport stream between them.
          AuroraEngine& src_engine = system->node(src_node).engine();
          AuroraEngine& dst_engine = system->node(to_placed.node).engine();
          std::string xname = system->FreshName("xarc");
          AURORA_ASSIGN_OR_RETURN(PortId out_port, src_engine.AddOutput(xname));
          AURORA_RETURN_NOT_OK(
              src_engine.Connect(src_ep, Endpoint::OutputPort(out_port))
                  .status());
          AURORA_ASSIGN_OR_RETURN(PortId in_port,
                                  dst_engine.AddInput(xname, *schema));
          AURORA_RETURN_NOT_OK(
              dst_engine
                  .Connect(Endpoint::InputPort(in_port),
                           Endpoint::BoxPort(to_placed.box, arc.to_index))
                  .status());
          AURORA_ASSIGN_OR_RETURN(
              std::string stream,
              system->ConnectRemote(src_node, xname, to_placed.node, xname));
          deployed.remote_streams[arc.from + "->" + arc.to] = stream;
        }
      }
      wired[i] = true;
      ++progressed;
      --remaining;
    }
    // Initialize whatever became fully wired.
    for (size_t n = 0; n < system->num_nodes(); ++n) {
      AURORA_RETURN_NOT_OK(system->node(static_cast<NodeId>(n))
                               .engine()
                               .InitializeBoxes(/*require_all=*/false));
    }
    if (progressed == 0) {
      return Status::FailedPrecondition(
          "deployment stuck: query has a cycle or a box input depends on an "
          "unconnected source");
    }
  }
  // Final strict pass: everything must now be initialized.
  for (size_t n = 0; n < system->num_nodes(); ++n) {
    AURORA_RETURN_NOT_OK(
        system->node(static_cast<NodeId>(n)).engine().InitializeBoxes());
  }
  return deployed;
}

Status DeployQueryLocal(AuroraEngine* engine, const GlobalQuery& query) {
  for (const auto& in : query.inputs()) {
    AURORA_RETURN_NOT_OK(engine->AddInput(in.name, in.schema).status());
  }
  std::map<std::string, BoxId> boxes;
  for (const auto& box : query.boxes()) {
    AURORA_ASSIGN_OR_RETURN(BoxId id, engine->AddBox(box.spec));
    boxes[box.name] = id;
  }
  for (const auto& out : query.outputs()) {
    AURORA_RETURN_NOT_OK(engine->AddOutput(out).status());
  }
  // Progressive wiring, as in DeployQuery: an arc out of a box can only be
  // connected once the box is initialized (its output schema is known).
  std::vector<bool> wired(query.arcs().size(), false);
  size_t remaining = query.arcs().size();
  while (remaining > 0) {
    size_t progressed = 0;
    for (size_t i = 0; i < query.arcs().size(); ++i) {
      if (wired[i]) continue;
      const auto& arc = query.arcs()[i];
      Endpoint src_ep;
      if (arc.from_kind == GlobalQuery::ArcDef::FromKind::kInput) {
        AURORA_ASSIGN_OR_RETURN(PortId port, engine->FindInput(arc.from));
        src_ep = Endpoint::InputPort(port);
      } else {
        BoxId box = boxes.at(arc.from);
        if (!engine->IsBoxInitialized(box)) continue;
        src_ep = Endpoint::BoxPort(box, arc.from_index);
      }
      Endpoint dst_ep;
      if (arc.to_kind == GlobalQuery::ArcDef::ToKind::kOutput) {
        AURORA_ASSIGN_OR_RETURN(PortId port, engine->FindOutput(arc.to));
        dst_ep = Endpoint::OutputPort(port);
      } else {
        dst_ep = Endpoint::BoxPort(boxes.at(arc.to), arc.to_index);
      }
      AURORA_RETURN_NOT_OK(engine->Connect(src_ep, dst_ep).status());
      wired[i] = true;
      ++progressed;
      --remaining;
    }
    AURORA_RETURN_NOT_OK(engine->InitializeBoxes(/*require_all=*/false));
    if (progressed == 0 && remaining > 0) {
      return Status::FailedPrecondition(
          "local deployment stuck: query has a cycle or a box input depends "
          "on an unconnected source");
    }
  }
  return engine->InitializeBoxes();
}

}  // namespace aurora
