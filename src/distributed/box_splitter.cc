#include "distributed/box_splitter.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/aggregate.h"
#include "tuple/serde.h"

namespace aurora {

Result<SplitResult> BoxSplitter::Split(DeployedQuery* deployed,
                                       const SplitRequest& req) {
  auto it = deployed->boxes.find(req.box_name);
  if (it == deployed->boxes.end()) {
    return Status::NotFound("no deployed box named '" + req.box_name + "'");
  }
  NodeId src_node = it->second.node;
  BoxId m = it->second.box;
  if (req.dst_node < 0 ||
      req.dst_node >= static_cast<int>(system_->num_nodes())) {
    return Status::InvalidArgument("bad destination node");
  }
  StreamNode& a_node = system_->node(src_node);
  StreamNode& b_node = system_->node(req.dst_node);
  AuroraEngine& ae = a_node.engine();
  AuroraEngine& be = b_node.engine();
  SimTime now = system_->sim()->Now();

  AURORA_ASSIGN_OR_RETURN(const OperatorSpec* spec_ptr, ae.BoxSpec(m));
  OperatorSpec spec = *spec_ptr;
  AURORA_ASSIGN_OR_RETURN(Operator * op, ae.BoxOp(m));
  if (op->num_inputs() != 1 || op->num_outputs() != 1) {
    return Status::FailedPrecondition(
        "only unary single-output boxes can be split");
  }
  const bool is_tumble = spec.kind == "tumble";
  if (spec.kind != "filter" && spec.kind != "map" && !is_tumble) {
    return Status::NotImplemented("splitting '" + spec.kind +
                                  "' boxes is not supported");
  }
  std::string combine_agg;
  if (is_tumble) {
    if (spec.attrs.empty()) {
      return Status::FailedPrecondition(
          "tumble split requires groupby attributes for the merge WSort");
    }
    AURORA_ASSIGN_OR_RETURN(combine_agg,
                            CombineFunctionFor(spec.GetString("agg", "cnt")));
  }
  if (!system_->net()->NodeSupports(req.dst_node, spec.kind)) {
    return Status::FailedPrecondition(
        "destination node cannot execute '" + spec.kind + "' boxes");
  }

  SchemaPtr in_schema = op->input_schema(0);
  SchemaPtr out_schema = op->output_schema(0);

  // --- Stabilize around the box (§5.1). ---
  AURORA_ASSIGN_OR_RETURN(ArcId in_arc, ae.FindArcInto(m, 0));
  AURORA_RETURN_NOT_OK(ae.ChokeArc(in_arc));
  AURORA_RETURN_NOT_OK(ae.RunUntilQuiescent(now));
  a_node.Flush();  // move drain emissions into the retained logs
  AURORA_ASSIGN_OR_RETURN(std::vector<Tuple> held, ae.TakeHeldTuples(in_arc));
  Endpoint from_ep = ae.ArcFrom(in_arc);
  // Preserve a connection point living on the split arc (§5.2).
  std::string cp_name;
  RetentionPolicy cp_policy;
  std::vector<Tuple> cp_history;
  if (ConnectionPoint* cp = ae.ArcConnectionPoint(in_arc)) {
    cp_name = cp->name();
    cp_policy = cp->policy();
    cp_history = cp->SnapshotHistory();
  }
  std::vector<Endpoint> dests;
  std::vector<ArcId> out_arcs;
  for (ArcId arc : ae.ArcsFrom(Endpoint::BoxPort(m, 0))) {
    out_arcs.push_back(arc);
    dests.push_back(ae.ArcTo(arc));
  }
  AURORA_RETURN_NOT_OK(ae.DisconnectArc(in_arc));
  for (ArcId arc : out_arcs) AURORA_RETURN_NOT_OK(ae.DisconnectArc(arc));

  // --- Build the split network (Figs. 5/6). ---
  SplitResult result;
  // Router Filter(p) with two outputs: true stays, false goes to the copy.
  AURORA_ASSIGN_OR_RETURN(
      BoxId router, ae.AddBox(FilterSpec(req.partition, /*two_way=*/true)));
  AURORA_RETURN_NOT_OK(
      ae.Connect(from_ep, Endpoint::BoxPort(router, 0)).status());
  ArcId router_in_arc;
  {
    AURORA_ASSIGN_OR_RETURN(router_in_arc, ae.FindArcInto(router, 0));
  }
  if (!cp_name.empty()) {
    // The connection point moves to the router's input — the same semantic
    // location (everything entering the split sub-network) — with its
    // history intact.
    AURORA_RETURN_NOT_OK(ae.MakeConnectionPoint(router_in_arc, cp_name,
                                                cp_policy));
    AURORA_ASSIGN_OR_RETURN(ConnectionPoint * moved,
                            ae.GetConnectionPoint(cp_name));
    moved->LoadHistory(cp_history);
  }
  // True branch -> original box (which keeps its state).
  AURORA_RETURN_NOT_OK(
      ae.Connect(Endpoint::BoxPort(router, 0), Endpoint::BoxPort(m, 0))
          .status());
  // False branch -> remote copy.
  std::string to_copy = system_->FreshName("split_to");
  AURORA_ASSIGN_OR_RETURN(PortId to_copy_out, ae.AddOutput(to_copy));
  AURORA_RETURN_NOT_OK(ae.Connect(Endpoint::BoxPort(router, 1),
                                  Endpoint::OutputPort(to_copy_out))
                           .status());
  AURORA_ASSIGN_OR_RETURN(PortId copy_in, be.AddInput(to_copy, in_schema));
  AURORA_ASSIGN_OR_RETURN(BoxId copy, be.AddBox(spec));
  AURORA_RETURN_NOT_OK(
      be.Connect(Endpoint::InputPort(copy_in), Endpoint::BoxPort(copy, 0))
          .status());
  if (req.replicate_connection_point && !cp_name.empty()) {
    // Replica of the connection point at the destination (§5.2): copy the
    // retained history across the link, charging the bytes it costs.
    AURORA_ASSIGN_OR_RETURN(ArcId copy_arc, be.FindArcInto(copy, 0));
    AURORA_RETURN_NOT_OK(
        be.MakeConnectionPoint(copy_arc, cp_name + "/replica", cp_policy));
    AURORA_ASSIGN_OR_RETURN(ConnectionPoint * replica,
                            be.GetConnectionPoint(cp_name + "/replica"));
    replica->LoadHistory(cp_history);
    Message copy_msg;
    copy_msg.kind = "cp:replicate";
    copy_msg.payload = SerializeTuples(cp_history);
    (void)system_->net()->Send(src_node, req.dst_node, std::move(copy_msg),
                               nullptr);
  }
  AURORA_RETURN_NOT_OK(
      system_->ConnectRemote(src_node, to_copy, req.dst_node, to_copy)
          .status());
  // Copy's output flows back to the merge on the source node.
  std::string from_copy = system_->FreshName("split_back");
  AURORA_ASSIGN_OR_RETURN(PortId copy_out, be.AddOutput(from_copy));
  AURORA_RETURN_NOT_OK(
      be.Connect(Endpoint::BoxPort(copy, 0), Endpoint::OutputPort(copy_out))
          .status());
  AURORA_ASSIGN_OR_RETURN(PortId back_in, ae.AddInput(from_copy, out_schema));
  AURORA_RETURN_NOT_OK(
      system_->ConnectRemote(req.dst_node, from_copy, src_node, from_copy)
          .status());

  // Merge network.
  AURORA_ASSIGN_OR_RETURN(BoxId merge_union, ae.AddBox(UnionSpec(2)));
  AURORA_RETURN_NOT_OK(
      ae.Connect(Endpoint::BoxPort(m, 0), Endpoint::BoxPort(merge_union, 0))
          .status());
  AURORA_RETURN_NOT_OK(ae.Connect(Endpoint::InputPort(back_in),
                                  Endpoint::BoxPort(merge_union, 1))
                           .status());
  Endpoint merge_tail = Endpoint::BoxPort(merge_union, 0);
  BoxId wsort = -1, merge_tumble = -1;
  if (is_tumble) {
    AURORA_ASSIGN_OR_RETURN(
        wsort, ae.AddBox(WSortSpec(spec.attrs, req.wsort_timeout_us)));
    AURORA_RETURN_NOT_OK(
        ae.Connect(merge_tail, Endpoint::BoxPort(wsort, 0)).status());
    std::string result_field = spec.GetString("result_field", "Result");
    AURORA_ASSIGN_OR_RETURN(
        merge_tumble,
        ae.AddBox(TumbleSpec(combine_agg, result_field, spec.attrs,
                             result_field)));
    AURORA_RETURN_NOT_OK(
        ae.Connect(Endpoint::BoxPort(wsort, 0),
                   Endpoint::BoxPort(merge_tumble, 0))
            .status());
    merge_tail = Endpoint::BoxPort(merge_tumble, 0);
  }
  for (const Endpoint& d : dests) {
    AURORA_RETURN_NOT_OK(ae.Connect(merge_tail, d).status());
  }
  AURORA_RETURN_NOT_OK(ae.InitializeBoxes(/*require_all=*/false));
  AURORA_RETURN_NOT_OK(be.InitializeBoxes(/*require_all=*/false));

  // --- Re-inject held tuples on the router's input arc, then resume. ---
  for (Tuple& t : held) {
    AURORA_RETURN_NOT_OK(ae.EnqueueOnArc(router_in_arc, std::move(t), now));
  }
  a_node.Kick();
  b_node.Kick();

  // Record the new pieces in the deployment.
  result.router_name = req.box_name + "/router";
  result.copy_name = req.box_name + "/copy";
  result.union_name = req.box_name + "/union";
  deployed->boxes[result.router_name] = {src_node, router};
  deployed->boxes[result.copy_name] = {req.dst_node, copy};
  deployed->boxes[result.union_name] = {src_node, merge_union};
  if (is_tumble) {
    result.wsort_name = req.box_name + "/wsort";
    result.merge_name = req.box_name + "/merge";
    deployed->boxes[result.wsort_name] = {src_node, wsort};
    deployed->boxes[result.merge_name] = {src_node, merge_tumble};
  }
  MetricsRegistry::Global().GetCounter("lb.splits")->Add();
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    tracer.Record({0, SpanKind::kMigration, src_node,
                   "split:" + req.box_name + ":" + std::to_string(src_node) +
                       "->" + std::to_string(req.dst_node),
                   now.micros(), system_->sim()->Now().micros()});
  }
  return result;
}

}  // namespace aurora
