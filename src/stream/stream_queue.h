#ifndef AURORA_STREAM_STREAM_QUEUE_H_
#define AURORA_STREAM_STREAM_QUEUE_H_

#include <cstdint>
#include <deque>

#include "common/logging.h"
#include "tuple/tuple.h"

namespace aurora {

/// \brief Destination for tuples a StreamQueue pushes out of memory.
///
/// Spill/unspill is strictly FIFO over the queue's spilled prefix: tuples
/// are handed over oldest-first and read back in the same order, so a sink
/// is just a durable FIFO (the StorageManager backs it with one tiered-store
/// stream per arc). DiscardSpilled drops the next `n` unread tuples (queue
/// Clear during load shedding or crash wipes).
class SpillSink {
 public:
  virtual ~SpillSink() = default;
  virtual void SpillTuple(const Tuple& t) = 0;
  virtual Tuple UnspillTuple() = 0;
  virtual void DiscardSpilled(size_t n) = 0;
};

/// \brief FIFO tuple queue sitting on an arc of the query network.
///
/// Tracks its memory footprint so the StorageManager can decide which queues
/// to spill when main memory runs out (paper §2.3). Without a SpillSink,
/// spilling is modeled: the oldest tuples are marked on-disk; they stay
/// accessible but popping one counts a disk read, which the engine charges
/// as extra processing cost. With a sink attached, Spill() actually moves
/// the tuple bodies out: each spilled slot keeps only a metadata stub
/// (timestamp/seq/trace_id, no values) and Pop() reconstructs the tuple by
/// reading it back through the sink — same byte accounting, same disk-read
/// charge, but the memory is genuinely released to the store's budget.
class StreamQueue {
 public:
  StreamQueue() = default;

  void Push(Tuple t) {
    bytes_ += t.WireSize();
    total_pushed_++;
    items_.push_back(std::move(t));
    if (items_.size() > peak_size_) peak_size_ = items_.size();
    if (bytes_ > peak_bytes_) peak_bytes_ = bytes_;
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  /// Total bytes queued (resident + spilled).
  size_t bytes() const { return bytes_; }
  uint64_t total_pushed() const { return total_pushed_; }
  /// High-water marks since construction (not cleared by Clear()), the
  /// per-queue numbers the observability layer exports.
  size_t peak_size() const { return peak_size_; }
  size_t peak_bytes() const { return peak_bytes_; }

  const Tuple& Front() const {
    AURORA_DCHECK(!items_.empty());
    return items_.front();
  }

  Tuple Pop() {
    AURORA_DCHECK(!items_.empty());
    Tuple t = std::move(items_.front());
    items_.pop_front();
    size_t sz;
    if (spilled_count_ > 0) {
      // The popped tuple is part of the spilled prefix: charge a read. With
      // a sink the slot held only a stub; its original size was remembered
      // at spill time and the body is read back through the sink.
      if (sink_ != nullptr) {
        sz = spilled_sizes_.front();
        spilled_sizes_.pop_front();
        t = sink_->UnspillTuple();
      } else {
        sz = t.WireSize();
      }
      AURORA_DCHECK(spilled_bytes_ >= sz);
      spilled_count_--;
      spilled_bytes_ -= sz;
      unspill_reads_++;
    } else {
      sz = t.WireSize();
    }
    AURORA_DCHECK(bytes_ >= sz);
    bytes_ -= sz;
    return t;
  }

  void Clear() {
    if (sink_ != nullptr && spilled_count_ > 0) {
      sink_->DiscardSpilled(spilled_count_);
    }
    items_.clear();
    spilled_sizes_.clear();
    bytes_ = 0;
    spilled_count_ = 0;
    spilled_bytes_ = 0;
  }

  /// Marks the oldest `n` resident tuples as spilled to disk. Returns the
  /// number of bytes newly moved out of memory.
  size_t Spill(size_t n);

  /// Number of queued tuples currently marked on-disk.
  size_t spilled_count() const { return spilled_count_; }
  /// Bytes of queue content currently spilled (on-disk prefix).
  size_t spilled_bytes() const { return spilled_bytes_; }
  /// Bytes of queue content currently in memory (unspilled suffix).
  size_t resident_bytes() const { return bytes_ - spilled_bytes_; }
  /// Cumulative count of pops that had to read from disk.
  uint64_t unspill_reads() const { return unspill_reads_; }

  /// Attaches (or detaches, nullptr) the destination real spills write to.
  /// Must only change while nothing is spilled.
  void set_spill_sink(SpillSink* sink) {
    AURORA_DCHECK(spilled_count_ == 0);
    sink_ = sink;
  }
  SpillSink* spill_sink() const { return sink_; }

  /// Direct iteration for drain/inspection (HA output logs, stabilization).
  /// Spilled slots hold metadata stubs (seq/timestamp valid, no values).
  const std::deque<Tuple>& items() const { return items_; }

 private:
  std::deque<Tuple> items_;
  size_t bytes_ = 0;
  size_t peak_size_ = 0;
  size_t peak_bytes_ = 0;
  size_t spilled_count_ = 0;
  size_t spilled_bytes_ = 0;
  uint64_t total_pushed_ = 0;
  uint64_t unspill_reads_ = 0;
  SpillSink* sink_ = nullptr;
  /// Original WireSize of each spilled slot, FIFO-parallel to the spilled
  /// prefix (stub sizes differ from the bodies they stand in for).
  std::deque<size_t> spilled_sizes_;
};

}  // namespace aurora

#endif  // AURORA_STREAM_STREAM_QUEUE_H_
