#ifndef AURORA_STREAM_STREAM_QUEUE_H_
#define AURORA_STREAM_STREAM_QUEUE_H_

#include <cstdint>
#include <deque>

#include "common/logging.h"
#include "tuple/tuple.h"

namespace aurora {

/// \brief FIFO tuple queue sitting on an arc of the query network.
///
/// Tracks its memory footprint so the StorageManager can decide which queues
/// to spill when main memory runs out (paper §2.3). Spilling is modeled: the
/// oldest tuples are marked on-disk; they stay accessible but popping one
/// counts a disk read, which the engine charges as extra processing cost.
class StreamQueue {
 public:
  StreamQueue() = default;

  void Push(Tuple t) {
    bytes_ += t.WireSize();
    total_pushed_++;
    items_.push_back(std::move(t));
    if (items_.size() > peak_size_) peak_size_ = items_.size();
    if (bytes_ > peak_bytes_) peak_bytes_ = bytes_;
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  /// Total bytes queued (resident + spilled).
  size_t bytes() const { return bytes_; }
  uint64_t total_pushed() const { return total_pushed_; }
  /// High-water marks since construction (not cleared by Clear()), the
  /// per-queue numbers the observability layer exports.
  size_t peak_size() const { return peak_size_; }
  size_t peak_bytes() const { return peak_bytes_; }

  const Tuple& Front() const {
    AURORA_DCHECK(!items_.empty());
    return items_.front();
  }

  Tuple Pop() {
    AURORA_DCHECK(!items_.empty());
    Tuple t = std::move(items_.front());
    items_.pop_front();
    size_t sz = t.WireSize();
    AURORA_DCHECK(bytes_ >= sz);
    bytes_ -= sz;
    if (spilled_count_ > 0) {
      // The popped tuple is part of the spilled prefix: charge a read.
      AURORA_DCHECK(spilled_bytes_ >= sz);
      spilled_count_--;
      spilled_bytes_ -= sz;
      unspill_reads_++;
    }
    return t;
  }

  void Clear() {
    items_.clear();
    bytes_ = 0;
    spilled_count_ = 0;
    spilled_bytes_ = 0;
  }

  /// Marks the oldest `n` resident tuples as spilled to disk. Returns the
  /// number of bytes newly moved out of memory.
  size_t Spill(size_t n);

  /// Number of queued tuples currently marked on-disk.
  size_t spilled_count() const { return spilled_count_; }
  /// Bytes of queue content currently in memory (unspilled suffix).
  size_t resident_bytes() const { return bytes_ - spilled_bytes_; }
  /// Cumulative count of pops that had to read from disk.
  uint64_t unspill_reads() const { return unspill_reads_; }

  /// Direct iteration for drain/inspection (HA output logs, stabilization).
  const std::deque<Tuple>& items() const { return items_; }

 private:
  std::deque<Tuple> items_;
  size_t bytes_ = 0;
  size_t peak_size_ = 0;
  size_t peak_bytes_ = 0;
  size_t spilled_count_ = 0;
  size_t spilled_bytes_ = 0;
  uint64_t total_pushed_ = 0;
  uint64_t unspill_reads_ = 0;
};

}  // namespace aurora

#endif  // AURORA_STREAM_STREAM_QUEUE_H_
