#ifndef AURORA_STREAM_CONNECTION_POINT_H_
#define AURORA_STREAM_CONNECTION_POINT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "tuple/tuple.h"

namespace aurora {

/// Retention policy for the historical storage behind a connection point.
struct RetentionPolicy {
  /// Keep at most this many tuples (0 = unbounded by count).
  size_t max_tuples = 0;
  /// Keep tuples no older than this window (0 = unbounded by age).
  SimDuration max_age{};
};

/// \brief A predetermined arc in the flow graph where historical data is
/// stored and ad hoc queries may attach (paper §2.2).
///
/// Connection points are also the only places where the distributed layer
/// performs network transformations (paper §5.1): their choke/drain
/// protocol is implemented by the stabilization code in src/distributed.
class ConnectionPoint {
 public:
  ConnectionPoint(std::string name, RetentionPolicy policy)
      : name_(std::move(name)), policy_(policy) {}

  const std::string& name() const { return name_; }
  const RetentionPolicy& policy() const { return policy_; }

  /// Records a tuple passing through the point.
  void Record(const Tuple& t, SimTime now);

  /// All retained history, oldest first.
  const std::deque<Tuple>& history() const { return history_; }
  size_t history_size() const { return history_.size(); }
  size_t history_bytes() const { return history_bytes_; }

  /// Runs an ad hoc query over retained history: every stored tuple matching
  /// the filter is passed to `sink`, oldest first. This is the "ad hoc query
  /// attached at a connection point" path.
  size_t QueryHistory(const std::function<bool(const Tuple&)>& filter,
                      const std::function<void(const Tuple&)>& sink) const;

  using Subscriber = std::function<void(const Tuple&, SimTime)>;
  /// Subscribes a live listener: every tuple subsequently recorded at this
  /// point is delivered to it. Returns a token for Unsubscribe.
  int Subscribe(Subscriber subscriber);
  void Unsubscribe(int token);
  size_t num_subscribers() const;

  /// Choke control used by network stabilization: while choked, the engine
  /// holds tuples upstream of this point instead of forwarding them.
  void Choke() { choked_ = true; }
  void Unchoke() { choked_ = false; }
  bool choked() const { return choked_; }

  /// Deep copy of retained history; used when a connection point is split
  /// and a replica moves to another machine (paper §5.2).
  std::vector<Tuple> SnapshotHistory() const {
    return {history_.begin(), history_.end()};
  }
  void LoadHistory(std::vector<Tuple> tuples);

 private:
  void EnforceRetention(SimTime now);

  std::string name_;
  RetentionPolicy policy_;
  std::deque<Tuple> history_;
  size_t history_bytes_ = 0;
  bool choked_ = false;
  std::vector<std::pair<int, Subscriber>> subscribers_;
  int next_token_ = 1;
  /// Reentrancy guard for Record(): while > 0, Unsubscribe defers the
  /// actual erase (a callback may unsubscribe itself or a peer) and newly
  /// subscribed listeners only see tuples recorded after the current one.
  int notify_depth_ = 0;
  std::vector<int> deferred_unsubs_;
};

}  // namespace aurora

#endif  // AURORA_STREAM_CONNECTION_POINT_H_
