#ifndef AURORA_STREAM_CONNECTION_POINT_H_
#define AURORA_STREAM_CONNECTION_POINT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "storage/tiered_store.h"
#include "tuple/tuple.h"

namespace aurora {

/// Retention policy for the historical storage behind a connection point.
struct RetentionPolicy {
  /// Keep at most this many tuples (0 = unbounded by count).
  size_t max_tuples = 0;
  /// Keep tuples no older than this window (0 = unbounded by age).
  SimDuration max_age{};
};

/// \brief A predetermined arc in the flow graph where historical data is
/// stored and ad hoc queries may attach (paper §2.2).
///
/// Connection points are also the only places where the distributed layer
/// performs network transformations (paper §5.1): their choke/drain
/// protocol is implemented by the stabilization code in src/distributed.
///
/// History lives in one of two modes. Unbound (the default), every retained
/// tuple is held in memory, exactly the original behaviour. BindStorage
/// switches the point to tiered mode: every recorded tuple is written
/// through to a tiered-store stream, the in-memory deque becomes a cache of
/// the newest `mem_tuples` records, and QueryHistory serves older records
/// by reading them back from the store — so retained history can exceed RAM
/// and survives a crash (RecoverFromStorage rebuilds the point from the
/// durable tiers).
class ConnectionPoint {
 public:
  ConnectionPoint(std::string name, RetentionPolicy policy)
      : name_(std::move(name)), policy_(policy) {}

  const std::string& name() const { return name_; }
  const RetentionPolicy& policy() const { return policy_; }

  /// Switches to tiered mode, writing history through `store` (not owned)
  /// under stream `stream`. At most `mem_tuples` of the newest records stay
  /// cached in memory (0 = no extra cap beyond the retention policy);
  /// `schema` decodes read-back payloads (updated from recorded tuples, so
  /// a null schema heals on first Record).
  void BindStorage(TieredStore* store, std::string stream, size_t mem_tuples,
                   SchemaPtr schema);
  bool storage_bound() const { return store_ != nullptr; }
  const std::string& storage_stream() const { return stream_; }

  /// Records a tuple passing through the point.
  void Record(const Tuple& t, SimTime now);

  /// The in-memory history tier, oldest first (all retained history when
  /// unbound; the newest cached suffix in tiered mode).
  const std::deque<Tuple>& history() const { return history_; }
  /// Logical retained records (memory + store tiers).
  size_t history_size() const {
    return storage_bound() ? durable_index_.size() : history_.size();
  }
  /// Bytes held by the in-memory tier.
  size_t history_bytes() const { return history_bytes_; }

  /// Runs an ad hoc query over retained history: every stored tuple matching
  /// the filter is passed to `sink`, oldest first. This is the "ad hoc query
  /// attached at a connection point" path. In tiered mode records older than
  /// the memory cache are read back from the store.
  size_t QueryHistory(const std::function<bool(const Tuple&)>& filter,
                      const std::function<void(const Tuple&)>& sink) const;

  using Subscriber = std::function<void(const Tuple&, SimTime)>;
  /// Subscribes a live listener: every tuple subsequently recorded at this
  /// point is delivered to it. Returns a token for Unsubscribe.
  int Subscribe(Subscriber subscriber);
  void Unsubscribe(int token);
  size_t num_subscribers() const;

  /// Choke control used by network stabilization: while choked, the engine
  /// holds tuples upstream of this point instead of forwarding them.
  void Choke() { choked_ = true; }
  void Unchoke() { choked_ = false; }
  bool choked() const { return choked_; }

  /// Handle snapshot of the in-memory history tier, oldest first; used when
  /// a connection point is split and a replica moves to another machine
  /// (paper §5.2). NOT a deep copy: since the COW tuple refactor the
  /// returned handles alias the stored bodies, and copy-on-write is what
  /// keeps later mutation of either side from corrupting the other.
  std::vector<Tuple> SnapshotHistory() const {
    return {history_.begin(), history_.end()};
  }
  /// Replaces retained history. In tiered mode the stream is logically
  /// truncated first, then the tuples are appended through the store.
  void LoadHistory(std::vector<Tuple> tuples);

  /// Drops the volatile tier (memory cache + durable index) — what a node
  /// crash loses. Meaningful in tiered mode; RecoverFromStorage rebuilds.
  void DropMemoryTier();
  /// Rebuilds the durable index and memory cache from the store (call on a
  /// recovered store after Open()), then re-applies retention at `now`.
  void RecoverFromStorage(SimTime now);

 private:
  void EnforceRetention(SimTime now);
  void AppendToStore(const Tuple& t);
  /// Trims the memory cache to `mem_tuples_` (tiered mode only).
  void TrimMemoryCache();

  std::string name_;
  RetentionPolicy policy_;
  /// Memory tier: all history when unbound, newest cached suffix when bound.
  std::deque<Tuple> history_;
  size_t history_bytes_ = 0;
  bool choked_ = false;
  std::vector<std::pair<int, Subscriber>> subscribers_;
  int next_token_ = 1;
  /// Reentrancy guard for Record(): while > 0, Unsubscribe defers the
  /// actual erase (a callback may unsubscribe itself or a peer) and newly
  /// subscribed listeners only see tuples recorded after the current one.
  int notify_depth_ = 0;
  std::vector<int> deferred_unsubs_;

  // Tiered mode state.
  TieredStore* store_ = nullptr;
  std::string stream_;
  size_t mem_tuples_ = 0;
  SchemaPtr schema_;
  /// Store seq of each cached tuple, parallel to history_ (bound only).
  std::deque<uint64_t> history_seqs_;
  /// (store seq, timestamp_us) of every live logical record, oldest first —
  /// the index QueryHistory walks across tiers. 16 bytes per record, so a
  /// deep history costs index entries in RAM, not tuple bodies.
  std::deque<std::pair<uint64_t, int64_t>> durable_index_;
  std::vector<uint8_t> encode_scratch_;
};

}  // namespace aurora

#endif  // AURORA_STREAM_CONNECTION_POINT_H_
