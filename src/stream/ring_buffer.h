#ifndef AURORA_STREAM_RING_BUFFER_H_
#define AURORA_STREAM_RING_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace aurora {

/// \brief Bounded single-producer/single-consumer ring buffer — the
/// cross-partition arc queue of the threaded engine (docs/THREADING.md).
///
/// Lock-free in the classic Lamport style: the producer owns `tail_`, the
/// consumer owns `head_`, and each side reads the other's index with acquire
/// semantics to know how much room/data it has. Slots are plain (non-atomic)
/// storage; the release store on the owned index publishes a slot before the
/// other side can reach it.
///
/// "Single producer" / "single consumer" mean *at most one thread at a time
/// on each side*, not one thread forever. The threaded engine guarantees
/// this externally: an arc's producer is whichever worker currently runs the
/// upstream box and its consumer whichever runs the downstream box, and box
/// execution is made exclusive by an acquire/release CAS on the box's state
/// (worker_pool.h). That handoff edge carries the happens-before needed for
/// a new producer (or consumer) to observe its predecessor's relaxed index
/// update, so the ring stays correct under work-stealing.
///
/// A full ring never blocks in here: TryPush refuses, and the caller runs
/// the consumer box inline ("help on full", deadlock-free on an acyclic
/// network) until room opens.
template <typename T>
class BoundedRing {
 public:
  /// Capacity is rounded up to a power of two (min 2).
  explicit BoundedRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Moves from `item` only on success; returns false when
  /// the ring is full.
  bool TryPush(T& item) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;  // full
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, chunked: moves up to `n` items from `src` into the ring
  /// and publishes them with a single release store on `tail_`. Returns the
  /// number of items actually pushed (0 when full); the caller retries or
  /// helps the consumer for the remainder. Items `src[0..k)` are consumed
  /// (moved-from) on return; `src[k..n)` are untouched. The wraparound point
  /// needs no special casing — each slot is addressed through `mask_`.
  size_t TryPushN(T* src, size_t n) {
    if (n == 0) return 0;
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    size_t room = slots_.size() - static_cast<size_t>(tail - head);
    size_t k = n < room ? n : room;
    for (size_t i = 0; i < k; ++i) {
      slots_[(tail + i) & mask_] = std::move(src[i]);
    }
    if (k > 0) tail_.store(tail + k, std::memory_order_release);
    return k;
  }

  /// Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) {
      return false;  // empty
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate — exact only when both sides are quiescent. Used
  /// for "anything pending?" re-checks after a box activation, where a
  /// stale answer is corrected by the producer's notify.
  size_t SizeApprox() const {
    uint64_t tail = tail_.load(std::memory_order_acquire);
    uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Owned by the consumer; index of the next slot to pop.
  alignas(64) std::atomic<uint64_t> head_{0};
  /// Owned by the producer; index of the next slot to fill.
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace aurora

#endif  // AURORA_STREAM_RING_BUFFER_H_
