#include "stream/connection_point.h"

namespace aurora {

void ConnectionPoint::Record(const Tuple& t, SimTime now) {
  history_.push_back(t);
  history_bytes_ += t.WireSize();
  EnforceRetention(now);
  for (const auto& [token, subscriber] : subscribers_) {
    subscriber(t, now);
  }
}

int ConnectionPoint::Subscribe(Subscriber subscriber) {
  int token = next_token_++;
  subscribers_.emplace_back(token, std::move(subscriber));
  return token;
}

void ConnectionPoint::Unsubscribe(int token) {
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (it->first == token) {
      subscribers_.erase(it);
      return;
    }
  }
}

size_t ConnectionPoint::num_subscribers() const { return subscribers_.size(); }

void ConnectionPoint::EnforceRetention(SimTime now) {
  if (policy_.max_tuples > 0) {
    while (history_.size() > policy_.max_tuples) {
      history_bytes_ -= history_.front().WireSize();
      history_.pop_front();
    }
  }
  if (policy_.max_age.micros() > 0) {
    while (!history_.empty() &&
           history_.front().timestamp() + policy_.max_age < now) {
      history_bytes_ -= history_.front().WireSize();
      history_.pop_front();
    }
  }
}

size_t ConnectionPoint::QueryHistory(
    const std::function<bool(const Tuple&)>& filter,
    const std::function<void(const Tuple&)>& sink) const {
  size_t matched = 0;
  for (const auto& t : history_) {
    if (filter(t)) {
      sink(t);
      ++matched;
    }
  }
  return matched;
}

void ConnectionPoint::LoadHistory(std::vector<Tuple> tuples) {
  history_.clear();
  history_bytes_ = 0;
  for (auto& t : tuples) {
    history_bytes_ += t.WireSize();
    history_.push_back(std::move(t));
  }
}

}  // namespace aurora
