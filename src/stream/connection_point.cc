#include "stream/connection_point.h"

#include <algorithm>

namespace aurora {

void ConnectionPoint::Record(const Tuple& t, SimTime now) {
  history_.push_back(t);
  history_bytes_ += t.WireSize();
  EnforceRetention(now);
  // Callbacks may Subscribe/Unsubscribe reentrantly, which would invalidate
  // any iterator (and reallocation would move a std::function out from
  // under its own call). Iterate by index over the subscribers present at
  // entry, invoke a *copy* of each callable, skip tokens unsubscribed
  // earlier in this pass, and erase deferred removals only once the
  // outermost notification unwinds.
  notify_depth_++;
  const size_t n = subscribers_.size();
  for (size_t i = 0; i < n; ++i) {
    int token = subscribers_[i].first;
    if (std::find(deferred_unsubs_.begin(), deferred_unsubs_.end(), token) !=
        deferred_unsubs_.end()) {
      continue;
    }
    Subscriber cb = subscribers_[i].second;
    cb(t, now);
  }
  notify_depth_--;
  if (notify_depth_ == 0 && !deferred_unsubs_.empty()) {
    for (int token : deferred_unsubs_) {
      for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
        if (it->first == token) {
          subscribers_.erase(it);
          break;
        }
      }
    }
    deferred_unsubs_.clear();
  }
}

int ConnectionPoint::Subscribe(Subscriber subscriber) {
  int token = next_token_++;
  subscribers_.emplace_back(token, std::move(subscriber));
  return token;
}

void ConnectionPoint::Unsubscribe(int token) {
  if (notify_depth_ > 0) {
    deferred_unsubs_.push_back(token);
    return;
  }
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (it->first == token) {
      subscribers_.erase(it);
      return;
    }
  }
}

size_t ConnectionPoint::num_subscribers() const { return subscribers_.size(); }

void ConnectionPoint::EnforceRetention(SimTime now) {
  if (policy_.max_tuples > 0) {
    while (history_.size() > policy_.max_tuples) {
      history_bytes_ -= history_.front().WireSize();
      history_.pop_front();
    }
  }
  if (policy_.max_age.micros() > 0) {
    while (!history_.empty() &&
           history_.front().timestamp() + policy_.max_age < now) {
      history_bytes_ -= history_.front().WireSize();
      history_.pop_front();
    }
  }
}

size_t ConnectionPoint::QueryHistory(
    const std::function<bool(const Tuple&)>& filter,
    const std::function<void(const Tuple&)>& sink) const {
  size_t matched = 0;
  for (const auto& t : history_) {
    if (filter(t)) {
      sink(t);
      ++matched;
    }
  }
  return matched;
}

void ConnectionPoint::LoadHistory(std::vector<Tuple> tuples) {
  history_.clear();
  history_bytes_ = 0;
  for (auto& t : tuples) {
    history_bytes_ += t.WireSize();
    history_.push_back(std::move(t));
  }
}

}  // namespace aurora
