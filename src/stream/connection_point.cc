#include "stream/connection_point.h"

#include <algorithm>

#include "common/logging.h"
#include "tuple/serde.h"

namespace aurora {

void ConnectionPoint::BindStorage(TieredStore* store, std::string stream,
                                  size_t mem_tuples, SchemaPtr schema) {
  store_ = store;
  stream_ = std::move(stream);
  mem_tuples_ = mem_tuples;
  schema_ = std::move(schema);
  // Any history recorded before binding becomes the stream's seed.
  history_seqs_.clear();
  durable_index_.clear();
  for (const auto& t : history_) {
    AppendToStore(t);
  }
  TrimMemoryCache();
}

void ConnectionPoint::AppendToStore(const Tuple& t) {
  if (t.schema() != nullptr) schema_ = t.schema();
  Encoder enc(std::move(encode_scratch_));
  enc.PutTuple(t);
  uint64_t seq = store_->Append(stream_, t.timestamp().micros(),
                                enc.buffer().data(), enc.size());
  encode_scratch_ = enc.TakeBuffer();
  history_seqs_.push_back(seq);
  durable_index_.emplace_back(seq, t.timestamp().micros());
}

void ConnectionPoint::TrimMemoryCache() {
  if (mem_tuples_ == 0) return;
  while (history_.size() > mem_tuples_) {
    history_bytes_ -= history_.front().WireSize();
    history_.pop_front();
    history_seqs_.pop_front();
  }
}

void ConnectionPoint::Record(const Tuple& t, SimTime now) {
  history_.push_back(t);
  history_bytes_ += t.WireSize();
  if (storage_bound()) {
    AppendToStore(t);
    TrimMemoryCache();
  }
  EnforceRetention(now);
  // Callbacks may Subscribe/Unsubscribe reentrantly, which would invalidate
  // any iterator (and reallocation would move a std::function out from
  // under its own call). Iterate by index over the subscribers present at
  // entry, invoke a *copy* of each callable, skip tokens unsubscribed
  // earlier in this pass, and erase deferred removals only once the
  // outermost notification unwinds.
  notify_depth_++;
  const size_t n = subscribers_.size();
  for (size_t i = 0; i < n; ++i) {
    int token = subscribers_[i].first;
    if (std::find(deferred_unsubs_.begin(), deferred_unsubs_.end(), token) !=
        deferred_unsubs_.end()) {
      continue;
    }
    Subscriber cb = subscribers_[i].second;
    cb(t, now);
  }
  notify_depth_--;
  if (notify_depth_ == 0 && !deferred_unsubs_.empty()) {
    for (int token : deferred_unsubs_) {
      for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
        if (it->first == token) {
          subscribers_.erase(it);
          break;
        }
      }
    }
    deferred_unsubs_.clear();
  }
}

int ConnectionPoint::Subscribe(Subscriber subscriber) {
  int token = next_token_++;
  subscribers_.emplace_back(token, std::move(subscriber));
  return token;
}

void ConnectionPoint::Unsubscribe(int token) {
  if (notify_depth_ > 0) {
    deferred_unsubs_.push_back(token);
    return;
  }
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (it->first == token) {
      subscribers_.erase(it);
      return;
    }
  }
}

size_t ConnectionPoint::num_subscribers() const { return subscribers_.size(); }

void ConnectionPoint::EnforceRetention(SimTime now) {
  if (!storage_bound()) {
    if (policy_.max_tuples > 0) {
      while (history_.size() > policy_.max_tuples) {
        history_bytes_ -= history_.front().WireSize();
        history_.pop_front();
      }
    }
    if (policy_.max_age.micros() > 0) {
      while (!history_.empty() &&
             history_.front().timestamp() + policy_.max_age < now) {
        history_bytes_ -= history_.front().WireSize();
        history_.pop_front();
      }
    }
    return;
  }
  // Tiered mode: retention is logical — evict from the durable index and
  // advance the store floor so compaction reclaims the bytes. The memory
  // cache drops the same records when it still holds them.
  uint64_t evicted_upto = 0;
  auto evict_front = [&] {
    evicted_upto = durable_index_.front().first;
    durable_index_.pop_front();
    if (!history_seqs_.empty() && history_seqs_.front() <= evicted_upto) {
      history_bytes_ -= history_.front().WireSize();
      history_.pop_front();
      history_seqs_.pop_front();
    }
  };
  if (policy_.max_tuples > 0) {
    while (durable_index_.size() > policy_.max_tuples) evict_front();
  }
  if (policy_.max_age.micros() > 0) {
    while (!durable_index_.empty() &&
           SimTime(durable_index_.front().second) + policy_.max_age < now) {
      evict_front();
    }
  }
  if (evicted_upto > 0) store_->Truncate(stream_, evicted_upto);
}

size_t ConnectionPoint::QueryHistory(
    const std::function<bool(const Tuple&)>& filter,
    const std::function<void(const Tuple&)>& sink) const {
  if (!storage_bound()) {
    size_t matched = 0;
    for (const auto& t : history_) {
      if (filter(t)) {
        sink(t);
        ++matched;
      }
    }
    return matched;
  }
  // Walk the durable index oldest-first; the memory cache is the newest
  // suffix, everything before it is read back from the store.
  size_t matched = 0;
  const size_t mem_start = durable_index_.size() - history_.size();
  for (size_t i = 0; i < durable_index_.size(); ++i) {
    if (i >= mem_start) {
      const Tuple& t = history_[i - mem_start];
      if (filter(t)) {
        sink(t);
        ++matched;
      }
      continue;
    }
    auto rec = store_->Read(stream_, durable_index_[i].first);
    if (!rec.ok()) {
      AURORA_LOG(Error) << "cp '" << name_ << "': history readback failed: "
                        << rec.status().ToString();
      continue;
    }
    Decoder dec(rec->payload);
    auto t = dec.GetTuple(schema_);
    if (!t.ok()) {
      AURORA_LOG(Error) << "cp '" << name_ << "': history decode failed: "
                        << t.status().ToString();
      continue;
    }
    if (filter(*t)) {
      sink(*t);
      ++matched;
    }
  }
  return matched;
}

void ConnectionPoint::LoadHistory(std::vector<Tuple> tuples) {
  if (storage_bound() && !durable_index_.empty()) {
    // Logically drop the existing stream content before reseeding.
    store_->Truncate(stream_, durable_index_.back().first);
  }
  history_.clear();
  history_bytes_ = 0;
  history_seqs_.clear();
  durable_index_.clear();
  for (auto& t : tuples) {
    history_bytes_ += t.WireSize();
    history_.push_back(std::move(t));
    if (storage_bound()) AppendToStore(history_.back());
  }
  if (storage_bound()) TrimMemoryCache();
}

void ConnectionPoint::DropMemoryTier() {
  history_.clear();
  history_bytes_ = 0;
  history_seqs_.clear();
  durable_index_.clear();
}

void ConnectionPoint::RecoverFromStorage(SimTime now) {
  if (!storage_bound()) return;
  DropMemoryTier();
  struct Rec {
    uint64_t seq;
    int64_t ts;
    std::vector<uint8_t> payload;
  };
  std::vector<Rec> records;
  store_->ScanAll(stream_, [&](const StoredRecord& r) {
    records.push_back(Rec{r.seq, r.timestamp_us, r.payload});
  });
  const size_t cache = mem_tuples_ == 0 ? records.size()
                                        : std::min(mem_tuples_, records.size());
  const size_t mem_start = records.size() - cache;
  for (size_t i = 0; i < records.size(); ++i) {
    durable_index_.emplace_back(records[i].seq, records[i].ts);
    if (i < mem_start) continue;
    Decoder dec(records[i].payload);
    auto t = dec.GetTuple(schema_);
    if (!t.ok()) {
      AURORA_LOG(Error) << "cp '" << name_ << "': recovery decode failed: "
                        << t.status().ToString();
      continue;
    }
    history_bytes_ += t->WireSize();
    history_.push_back(std::move(*t));
    history_seqs_.push_back(records[i].seq);
  }
  EnforceRetention(now);
}

}  // namespace aurora
