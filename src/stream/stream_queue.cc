#include "stream/stream_queue.h"

#include <algorithm>

namespace aurora {

size_t StreamQueue::Spill(size_t n) {
  size_t newly = std::min(n, items_.size() - spilled_count_);
  size_t freed = 0;
  for (size_t i = spilled_count_; i < spilled_count_ + newly; ++i) {
    Tuple& t = items_[i];
    size_t sz = t.WireSize();
    freed += sz;
    if (sink_ != nullptr) {
      sink_->SpillTuple(t);
      spilled_sizes_.push_back(sz);
      // Replace the body with a metadata stub so the memory is genuinely
      // released; seq/timestamp stay readable for min-seq and slack scans.
      Tuple stub;
      stub.set_timestamp(t.timestamp());
      stub.set_seq(t.seq());
      stub.set_trace_id(t.trace_id());
      t = std::move(stub);
    }
  }
  spilled_count_ += newly;
  spilled_bytes_ += freed;
  return freed;
}

}  // namespace aurora
