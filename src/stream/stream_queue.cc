#include "stream/stream_queue.h"

#include <algorithm>

namespace aurora {

size_t StreamQueue::Spill(size_t n) {
  size_t newly = std::min(n, items_.size() - spilled_count_);
  size_t freed = 0;
  for (size_t i = spilled_count_; i < spilled_count_ + newly; ++i) {
    freed += items_[i].WireSize();
  }
  spilled_count_ += newly;
  spilled_bytes_ += freed;
  return freed;
}

}  // namespace aurora
