#ifndef AURORA_COMMON_STATUS_H_
#define AURORA_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace aurora {

/// Error categories used across the library. Mirrors the coarse taxonomy used
/// by production storage engines: a small closed set, with detail carried in
/// the message string.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnavailable = 7,
  kInternal = 8,
  kNotImplemented = 9,
  kTimedOut = 10,
};

/// Returns a stable human-readable name for a code ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Value-semantic error carrier used instead of exceptions.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. All fallible public APIs in this library return Status or
/// Result<T>.
class Status {
 public:
  Status() : rep_(nullptr) {}
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : rep_->code; }
  /// Message text; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<Rep> rep_;  // null iff OK
};

/// Propagates a non-OK status to the caller.
#define AURORA_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::aurora::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Evaluates a Result<T> expression and either assigns its value or returns
/// the contained error.
#define AURORA_ASSIGN_OR_RETURN(lhs, expr)          \
  AURORA_ASSIGN_OR_RETURN_IMPL(                     \
      AURORA_CONCAT_(_res_, __LINE__), lhs, expr)
#define AURORA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueUnsafe();
#define AURORA_CONCAT_(a, b) AURORA_CONCAT_2_(a, b)
#define AURORA_CONCAT_2_(a, b) a##b

}  // namespace aurora

#endif  // AURORA_COMMON_STATUS_H_
