#ifndef AURORA_COMMON_SIM_TIME_H_
#define AURORA_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace aurora {

/// \brief A point in simulated time, in microseconds since simulation start.
///
/// The whole system runs on a discrete-event simulated clock (see
/// sim/simulation.h) so that distributed experiments are deterministic. A
/// strong typedef prevents accidental mixing with counts.
class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}
  constexpr explicit SimTime(int64_t micros) : micros_(micros) {}

  static constexpr SimTime Micros(int64_t us) { return SimTime(us); }
  static constexpr SimTime Millis(int64_t ms) { return SimTime(ms * 1000); }
  static constexpr SimTime Seconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6));
  }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double millis() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr SimTime operator+(SimTime o) const { return SimTime(micros_ + o.micros_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(micros_ - o.micros_); }
  SimTime& operator+=(SimTime o) {
    micros_ += o.micros_;
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  int64_t micros_;
};

/// Duration alias: durations and instants share representation deliberately,
/// matching how the paper reasons about latency graphs (Q_i(t) = Q_o(t+T_B)).
using SimDuration = SimTime;

}  // namespace aurora

#endif  // AURORA_COMMON_SIM_TIME_H_
