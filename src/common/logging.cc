#include "common/logging.h"

#include <cctype>
#include <cstring>

namespace aurora {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("AURORA_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kWarn;
  if (std::isdigit(static_cast<unsigned char>(*env))) {
    int n = std::atoi(env);
    if (n >= 0 && n <= static_cast<int>(LogLevel::kFatal)) {
      return static_cast<LogLevel>(n);
    }
    return LogLevel::kWarn;
  }
  std::string name;
  for (const char* p = env; *p; ++p) {
    name.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "fatal") return LogLevel::kFatal;
  return LogLevel::kWarn;
}

/// Initialized from AURORA_LOG_LEVEL on first access.
LogLevel& MutableLevel() {
  static LogLevel level = LevelFromEnv();
  return level;
}

}  // namespace

LogLevel GetLogLevel() { return MutableLevel(); }
void SetLogLevel(LogLevel level) { MutableLevel() = level; }

namespace internal {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace aurora
