#ifndef AURORA_COMMON_LOGGING_H_
#define AURORA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace aurora {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are discarded. Defaults to kWarn
/// so tests and benchmarks stay quiet unless a failure needs context. The
/// AURORA_LOG_LEVEL environment variable ("debug", "info", "warn", "error",
/// "fatal", or 0-4) overrides the default at first use, so debug logs can be
/// enabled without recompiling.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is below threshold.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define AURORA_LOG_INTERNAL(level)                                     \
  ::aurora::internal::LogMessage(level, __FILE__, __LINE__).stream()
#define AURORA_LOG(severity)                                           \
  (::aurora::LogLevel::k##severity < ::aurora::GetLogLevel())          \
      ? (void)0                                                        \
      : ::aurora::internal::LogVoidify() &                             \
            AURORA_LOG_INTERNAL(::aurora::LogLevel::k##severity)

/// Invariant check that stays on in release builds; failure aborts with a
/// message. Used for programmer errors, never for data-dependent conditions.
#define AURORA_CHECK(cond)                                             \
  (cond) ? (void)0                                                     \
         : ::aurora::internal::LogVoidify() &                          \
               AURORA_LOG_INTERNAL(::aurora::LogLevel::kFatal)         \
                   << "Check failed: " #cond " "

/// Debug-only invariant check: behaves like AURORA_CHECK in debug builds
/// and compiles out (condition not evaluated) under NDEBUG, so release
/// benchmarks do not pay for it. `true || (cond)` keeps the condition
/// syntax-checked and its operands "used" without ever evaluating it.
#ifdef NDEBUG
#define AURORA_DCHECK(cond) AURORA_CHECK(true || (cond))
#else
#define AURORA_DCHECK(cond) AURORA_CHECK(cond)
#endif

}  // namespace aurora

#endif  // AURORA_COMMON_LOGGING_H_
