#include "common/status.h"

namespace aurora {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kTimedOut:
      return "TimedOut";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) {
    rep_ = std::make_unique<Rep>(*other.rep_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->msg : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace aurora
