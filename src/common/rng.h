#ifndef AURORA_COMMON_RNG_H_
#define AURORA_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace aurora {

/// \brief Deterministic 64-bit PRNG (splitmix64).
///
/// All randomized components in the library draw from an explicitly seeded
/// Rng so that every simulation, test, and benchmark is reproducible. Not
/// suitable for cryptography.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool OneIn(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 1e-18;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647 * u2);
    return mean + stddev * z;
  }

  /// Fork an independent generator; the child stream does not overlap the
  /// parent's for practical sequence lengths.
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

 private:
  uint64_t state_;
};

/// \brief Zipf-distributed integer sampler over [0, n).
///
/// Precomputes the CDF once; sampling is a binary search. skew = 0 degrades
/// to uniform; typical stream-skew experiments use 0.8–1.2.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double skew);

  uint64_t Sample(Rng* rng) const;
  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  uint64_t n_;
  double skew_;
  std::vector<double> cdf_;
};

}  // namespace aurora

#endif  // AURORA_COMMON_RNG_H_
