#ifndef AURORA_COMMON_RESULT_H_
#define AURORA_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace aurora {

/// \brief Either a value of type T or a non-OK Status.
///
/// Modeled on arrow::Result. Constructing from an OK status is a programming
/// error (asserted in debug builds, degraded to Internal in release).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok());
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The contained error, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Access the value; caller must have checked ok().
  const T& ValueUnsafe() const& { return std::get<T>(rep_); }
  T& ValueUnsafe() & { return std::get<T>(rep_); }
  T&& ValueUnsafe() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Moves the value out, or returns `fallback` if this holds an error.
  T ValueOr(T fallback) && {
    return ok() ? std::get<T>(std::move(rep_)) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace aurora

#endif  // AURORA_COMMON_RESULT_H_
