#include "common/sim_time.h"

#include <cstdio>

namespace aurora {

std::string SimTime::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", millis());
  return buf;
}

}  // namespace aurora
