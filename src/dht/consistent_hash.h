#ifndef AURORA_DHT_CONSISTENT_HASH_H_
#define AURORA_DHT_CONSISTENT_HASH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/catalog.h"  // NodeId

namespace aurora {

/// Stable 64-bit string hash (FNV-1a finished with a mixer) used to place
/// both nodes and keys on the identifier ring.
uint64_t DhtHash(const std::string& s);

/// \brief Consistent-hashing identifier ring with Chord-style finger
/// tables (paper §4.1; [6], [14] in its references).
///
/// Nodes are placed at hash(name + vnode#) positions; a key is owned by its
/// successor. Lookup(from, key) walks finger tables exactly as Chord does
/// and reports the hop count, which bench_dht uses to reproduce the
/// "efficiently locate nodes ... scale with the number of nodes" claim
/// (O(log N) hops).
class ConsistentHashRing {
 public:
  /// vnodes > 1 smooths the load distribution (classic consistent-hashing
  /// result, measured in bench_dht).
  explicit ConsistentHashRing(int vnodes = 1) : vnodes_(vnodes) {}

  Status AddNode(NodeId node, const std::string& name);
  Status RemoveNode(NodeId node);
  bool HasNode(NodeId node) const { return node_names_.count(node) > 0; }
  size_t num_nodes() const { return node_names_.size(); }

  /// Owner of a key: the first virtual node at or after hash(key).
  Result<NodeId> Owner(const std::string& key) const;
  Result<NodeId> OwnerOfPosition(uint64_t position) const;

  /// The `count` distinct nodes succeeding the key's position — the replica
  /// set used by DhtCatalog.
  Result<std::vector<NodeId>> Successors(const std::string& key,
                                         size_t count) const;

  struct LookupResult {
    NodeId owner = -1;
    int hops = 0;
  };
  /// Chord-style lookup from `from`'s ring position: greedily forwards to
  /// the closest preceding finger until the owner is reached, counting
  /// overlay hops.
  Result<LookupResult> Lookup(NodeId from, const std::string& key) const;

  /// Fraction of the ring each node owns (for load-evenness measurements).
  std::map<NodeId, double> OwnershipShares() const;

 private:
  /// First ring position >= pos (wrapping), as an iterator into ring_.
  std::map<uint64_t, NodeId>::const_iterator SuccessorIt(uint64_t pos) const;
  /// Ring distance a -> b going clockwise.
  static uint64_t Clockwise(uint64_t a, uint64_t b) { return b - a; }

  int vnodes_;
  std::map<uint64_t, NodeId> ring_;  // position -> node
  std::map<NodeId, std::string> node_names_;
  std::map<NodeId, uint64_t> primary_position_;
};

}  // namespace aurora

#endif  // AURORA_DHT_CONSISTENT_HASH_H_
