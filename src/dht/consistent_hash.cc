#include "dht/consistent_hash.h"

namespace aurora {

uint64_t DhtHash(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

Status ConsistentHashRing::AddNode(NodeId node, const std::string& name) {
  if (node_names_.count(node)) {
    return Status::AlreadyExists("node already on the ring");
  }
  node_names_[node] = name;
  for (int v = 0; v < vnodes_; ++v) {
    uint64_t pos = DhtHash(name + "#" + std::to_string(v));
    // In the astronomically unlikely event of a collision, probe forward.
    while (ring_.count(pos)) ++pos;
    ring_[pos] = node;
    if (v == 0) primary_position_[node] = pos;
  }
  return Status::OK();
}

Status ConsistentHashRing::RemoveNode(NodeId node) {
  if (!node_names_.count(node)) {
    return Status::NotFound("node not on the ring");
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = (it->second == node) ? ring_.erase(it) : std::next(it);
  }
  node_names_.erase(node);
  primary_position_.erase(node);
  return Status::OK();
}

std::map<uint64_t, NodeId>::const_iterator ConsistentHashRing::SuccessorIt(
    uint64_t pos) const {
  auto it = ring_.lower_bound(pos);
  if (it == ring_.end()) it = ring_.begin();
  return it;
}

Result<NodeId> ConsistentHashRing::Owner(const std::string& key) const {
  return OwnerOfPosition(DhtHash(key));
}

Result<NodeId> ConsistentHashRing::OwnerOfPosition(uint64_t position) const {
  if (ring_.empty()) return Status::FailedPrecondition("empty ring");
  return SuccessorIt(position)->second;
}

Result<std::vector<NodeId>> ConsistentHashRing::Successors(
    const std::string& key, size_t count) const {
  if (ring_.empty()) return Status::FailedPrecondition("empty ring");
  std::vector<NodeId> out;
  auto it = SuccessorIt(DhtHash(key));
  for (size_t scanned = 0; scanned < ring_.size() && out.size() < count;
       ++scanned) {
    NodeId node = it->second;
    bool seen = false;
    for (NodeId n : out) {
      if (n == node) seen = true;
    }
    if (!seen) out.push_back(node);
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return out;
}

Result<ConsistentHashRing::LookupResult> ConsistentHashRing::Lookup(
    NodeId from, const std::string& key) const {
  if (ring_.empty()) return Status::FailedPrecondition("empty ring");
  auto from_it = primary_position_.find(from);
  if (from_it == primary_position_.end()) {
    return Status::NotFound("lookup origin not on the ring");
  }
  AURORA_ASSIGN_OR_RETURN(NodeId owner, Owner(key));
  uint64_t target = DhtHash(key);
  uint64_t at = from_it->second;
  NodeId at_node = from;
  int hops = 0;
  // Chord forwarding: jump to the closest preceding finger. Fingers of a
  // node at position p are successor(p + 2^i), i = 0..63.
  while (at_node != owner && hops < 128) {
    uint64_t best_jump = 0;
    uint64_t best_pos = at;
    NodeId best_node = at_node;
    for (int i = 0; i < 64; ++i) {
      uint64_t finger_target = at + (i == 63 ? (1ull << 63) : (1ull << i));
      auto fit = SuccessorIt(finger_target);
      uint64_t fpos = fit->first;
      // The finger must precede (not pass) the key going clockwise from at.
      uint64_t jump = Clockwise(at, fpos);
      if (jump == 0) continue;
      if (jump <= Clockwise(at, target) && jump > best_jump) {
        best_jump = jump;
        best_pos = fpos;
        best_node = fit->second;
      }
    }
    if (best_node == at_node) {
      // No finger strictly precedes the key: the successor owns it.
      auto it = SuccessorIt(at + 1);
      best_pos = it->first;
      best_node = it->second;
    }
    at = best_pos;
    at_node = best_node;
    hops++;
  }
  return LookupResult{owner, hops};
}

std::map<NodeId, double> ConsistentHashRing::OwnershipShares() const {
  std::map<NodeId, double> shares;
  if (ring_.empty()) return shares;
  auto it = ring_.begin();
  uint64_t prev = std::prev(ring_.end())->first;  // wrap-around segment
  for (; it != ring_.end(); ++it) {
    uint64_t segment = it->first - prev;  // wraps naturally in uint64
    shares[it->second] +=
        static_cast<double>(segment) / 1.8446744073709552e19;
    prev = it->first;
  }
  return shares;
}

}  // namespace aurora
