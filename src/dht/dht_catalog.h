#ifndef AURORA_DHT_DHT_CATALOG_H_
#define AURORA_DHT_DHT_CATALOG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dht/consistent_hash.h"

namespace aurora {

/// Global name in the single shared namespace of §4.1: every entity name
/// begins with the name of the participant who defined it.
struct QualifiedName {
  std::string participant;
  std::string entity;

  std::string Key() const { return participant + "/" + entity; }
  static QualifiedName Parse(const std::string& key);
};

/// One entry in the inter-participant catalog: what the entity is and where
/// pieces of it currently live.
struct DhtEntry {
  /// "stream", "schema", "operator", "query_piece".
  std::string kind;
  /// Serialized description (schema bytes, OperatorSpec bytes, ...).
  std::vector<uint8_t> payload;
  /// Current locations (nodes) where the entity is available/running.
  std::vector<NodeId> locations;
};

/// \brief Inter-participant catalog implemented as a replicated DHT
/// (paper §4.1).
///
/// Keys are qualified entity names; each entry is stored on the key's
/// `replication` successor nodes on the ring. Reads succeed as long as one
/// replica node is alive, and every Get reports the Chord hop count the
/// lookup would traverse — the quantity bench_dht sweeps against ring size.
class DhtCatalog {
 public:
  DhtCatalog(int vnodes = 8, size_t replication = 2)
      : ring_(vnodes), replication_(replication) {}

  Status AddNode(NodeId node, const std::string& name);
  /// Removes a node (crash or departure); entries it held survive on their
  /// other replicas and are re-replicated to the new successor set.
  Status RemoveNode(NodeId node);
  size_t num_nodes() const { return ring_.num_nodes(); }
  const ConsistentHashRing& ring() const { return ring_; }

  Status Put(const QualifiedName& name, DhtEntry entry);
  /// Adds/refreshes locations on an existing entry (load sharing moved a
  /// stream or query piece, §4.2).
  Status UpdateLocations(const QualifiedName& name,
                         std::vector<NodeId> locations);

  struct GetResult {
    DhtEntry entry;
    int hops = 0;
    NodeId served_by = -1;
  };
  /// Looks the entry up starting from `from`'s position on the ring.
  Result<GetResult> Get(NodeId from, const QualifiedName& name) const;

  Status Remove(const QualifiedName& name);

  /// Number of entries physically stored on the node (replicas included).
  size_t StoredOn(NodeId node) const;
  size_t num_entries() const { return entries_.size(); }

 private:
  void Replicate(const std::string& key);

  ConsistentHashRing ring_;
  size_t replication_;
  std::map<std::string, DhtEntry> entries_;
  /// key -> nodes currently holding a replica.
  std::map<std::string, std::vector<NodeId>> placement_;
};

}  // namespace aurora

#endif  // AURORA_DHT_DHT_CATALOG_H_
