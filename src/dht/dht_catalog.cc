#include "dht/dht_catalog.h"

namespace aurora {

QualifiedName QualifiedName::Parse(const std::string& key) {
  auto slash = key.find('/');
  if (slash == std::string::npos) return QualifiedName{"", key};
  return QualifiedName{key.substr(0, slash), key.substr(slash + 1)};
}

Status DhtCatalog::AddNode(NodeId node, const std::string& name) {
  AURORA_RETURN_NOT_OK(ring_.AddNode(node, name));
  // Ownership moved for some keys: refresh placements.
  for (const auto& [key, entry] : entries_) Replicate(key);
  return Status::OK();
}

Status DhtCatalog::RemoveNode(NodeId node) {
  AURORA_RETURN_NOT_OK(ring_.RemoveNode(node));
  for (const auto& [key, entry] : entries_) Replicate(key);
  return Status::OK();
}

void DhtCatalog::Replicate(const std::string& key) {
  auto succ = ring_.Successors(key, replication_);
  placement_[key] = succ.ok() ? *succ : std::vector<NodeId>{};
}

Status DhtCatalog::Put(const QualifiedName& name, DhtEntry entry) {
  if (ring_.num_nodes() == 0) {
    return Status::FailedPrecondition("no catalog nodes");
  }
  std::string key = name.Key();
  entries_[key] = std::move(entry);
  Replicate(key);
  return Status::OK();
}

Status DhtCatalog::UpdateLocations(const QualifiedName& name,
                                   std::vector<NodeId> locations) {
  auto it = entries_.find(name.Key());
  if (it == entries_.end()) {
    return Status::NotFound("no catalog entry for " + name.Key());
  }
  it->second.locations = std::move(locations);
  return Status::OK();
}

Result<DhtCatalog::GetResult> DhtCatalog::Get(NodeId from,
                                              const QualifiedName& name) const {
  auto it = entries_.find(name.Key());
  if (it == entries_.end()) {
    return Status::NotFound("no catalog entry for " + name.Key());
  }
  auto pl = placement_.find(name.Key());
  if (pl == placement_.end() || pl->second.empty()) {
    return Status::Unavailable("no replica holds " + name.Key());
  }
  AURORA_ASSIGN_OR_RETURN(auto lookup, ring_.Lookup(from, name.Key()));
  GetResult result;
  result.entry = it->second;
  result.hops = lookup.hops;
  result.served_by = pl->second.front();
  return result;
}

Status DhtCatalog::Remove(const QualifiedName& name) {
  if (entries_.erase(name.Key()) == 0) {
    return Status::NotFound("no catalog entry for " + name.Key());
  }
  placement_.erase(name.Key());
  return Status::OK();
}

size_t DhtCatalog::StoredOn(NodeId node) const {
  size_t n = 0;
  for (const auto& [key, nodes] : placement_) {
    for (NodeId nd : nodes) {
      if (nd == node) {
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace aurora
