#ifndef AURORA_ENGINE_QOS_MONITOR_H_
#define AURORA_ENGINE_QOS_MONITOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "engine/topology.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "qos/qos_spec.h"

namespace aurora {

/// Exponentially weighted moving average with a fixed smoothing factor.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.05) : alpha_(alpha) {}
  void Add(double x) {
    value_ = has_value_ ? (1 - alpha_) * value_ + alpha_ * x : x;
    has_value_ = true;
  }
  double value() const { return value_; }
  bool has_value() const { return has_value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// \brief Runtime QoS bookkeeping (the QoS Monitor of Fig. 3).
///
/// Tracks, per output: delivered tuple count, latency statistics, drops
/// attributed by the load shedder, and the application's QoSSpec. Tracks,
/// per box: smoothed total processing time T_B (queue wait + execution) and
/// activation counts — the operational statistics §7.1 relies on for QoS
/// inference at internal nodes.
///
/// Per-output counts and latencies live in the process-wide MetricsRegistry
/// under `qos.<scope>.out.<port>.*`, where the scope names the owning
/// engine's place in the federation ("local" for a standalone engine,
/// "n<id>" for a StreamNode's engine — the same tags StorageManager uses).
/// Scope-derived names are stable across process history: how many monitors
/// an earlier test/replay in the same process constructed can never shift
/// them (a process-global instance counter once could — same-process
/// `simcheck --replay` and reordered test suites silently renamed every
/// series). The monitor's own query API (Delivered, Dropped, ...) reads
/// per-instance shadow tallies, so two same-scoped engines in one process
/// share registry series but never each other's answers.
class QoSMonitor {
 public:
  QoSMonitor();

  /// Scope tag naming the owning engine ("local", "n3", ...). Set by
  /// AuroraEngine::set_trace_node before traffic; series names are fixed at
  /// each output's first use.
  void set_scope(const std::string& scope);
  /// The registry prefix currently in force, e.g. "qos.n3.".
  const std::string& prefix() const { return prefix_; }

  void SetSpec(PortId output, QoSSpec spec) { specs_[output] = std::move(spec); }
  const QoSSpec* GetSpec(PortId output) const {
    auto it = specs_.find(output);
    return it == specs_.end() ? nullptr : &it->second;
  }

  /// Records one delivered tuple. `attr` is the tuple's latency stage
  /// breakdown when tracing produced one (nullptr otherwise) and `now_us`
  /// the simulated delivery time (-1 = unknown). A delivery whose latency
  /// utility falls below kViolationUtility counts as a QoS violation: it
  /// bumps `qos.<i>.out.<port>.violations`, attributes the violation to the
  /// breakdown's dominant stage in `...bottleneck.<stage>`, and trips the
  /// flight recorder ("qos_violation") so the evidence around the first
  /// violation is preserved.
  void RecordDelivery(PortId output, double latency_ms,
                      const StageBreakdown* attr = nullptr,
                      int64_t now_us = -1);
  void RecordDrop(PortId output);

  /// Latency-utility threshold below which a delivery is a violation: the
  /// tuple's utility has fallen past the spec's critical knee.
  static constexpr double kViolationUtility = 0.5;
  uint64_t Violations(PortId output) const;

  /// Mean latency of tuples delivered to the output, in ms.
  double AvgLatencyMs(PortId output) const;
  uint64_t Delivered(PortId output) const;
  uint64_t Dropped(PortId output) const;
  /// delivered / (delivered + dropped); 1.0 before any traffic.
  double DeliveredFraction(PortId output) const;

  /// Mean per-tuple latency utility observed at the output (the utility of
  /// each delivered tuple's latency, averaged), scaled by the loss graph's
  /// utility at the delivered fraction. 1.0 with no spec.
  double CurrentUtility(PortId output) const;
  /// Sum of CurrentUtility over all outputs with specs — the "perceived
  /// aggregate QoS" Aurora maximizes (§7.1).
  double AggregateUtility() const;

  /// Per-box smoothed statistics.
  void RecordBoxWork(BoxId box, double t_b_ms, int tuples);
  /// Smoothed T_B (ms), the average time from a tuple's arrival on the
  /// box's queue to its processing completing. 0 when unmeasured.
  double BoxTbMs(BoxId box) const;

 private:
  struct OutputStats {
    Counter* delivered = nullptr;
    Counter* dropped = nullptr;
    LatencyHistogram* latency_ms = nullptr;
    Counter* violations = nullptr;
    /// Violations attributed to each dominant latency stage.
    Counter* bottleneck[kNumStages] = {};
    /// Per-instance shadow tallies backing the query API. The registry
    /// counters above are export-only: same-scoped monitors share them, so
    /// reading them back would leak a sibling engine's traffic into this
    /// monitor's answers.
    uint64_t delivered_n = 0;
    uint64_t dropped_n = 0;
    uint64_t violations_n = 0;
    double latency_sum_ms = 0.0;
    double latency_utility_sum = 0.0;
  };
  /// Registry-backed stats for the output, registered on first use under
  /// `qos.<scope>.out.<port>.*`.
  OutputStats& Stats(PortId output);
  const OutputStats* FindStats(PortId output) const;

  std::string prefix_;  // "qos.<scope>."
  std::map<PortId, QoSSpec> specs_;
  std::map<PortId, OutputStats> outputs_;
  std::map<BoxId, Ewma> box_tb_ms_;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_QOS_MONITOR_H_
