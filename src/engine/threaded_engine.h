#ifndef AURORA_ENGINE_THREADED_ENGINE_H_
#define AURORA_ENGINE_THREADED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/topology.h"
#include "engine/worker_pool.h"
#include "obs/metrics.h"
#include "ops/operator.h"
#include "stream/ring_buffer.h"

namespace aurora {

/// Options for the threaded runtime (docs/THREADING.md).
struct ThreadedEngineOptions {
  /// Worker threads. 0 = one (the runtime never silently multiplies
  /// threads; callers opt into a width explicitly, benches sweep it).
  int workers = 1;
  /// Max tuples one box activation consumes before re-queuing itself —
  /// the train size of the single-threaded scheduler (§2.3).
  int train_size = 64;
  /// Per-arc ring capacity in tuples (rounded up to a power of two). Full
  /// rings backpressure by running the consumer inline, so this bounds
  /// memory, not correctness.
  size_t ring_capacity = 1024;
  /// Tuples per Operator::ProcessBatch call. 1 = scalar path. >1 batches
  /// single-input boxes (multi-input boxes keep the scalar round-robin so
  /// their merge interleaving is untouched), exactly like
  /// EngineOptions::batch_size on the single-threaded engine.
  int batch_size = 1;
};

/// \brief Multithreaded execution runtime: the same query-network model as
/// AuroraEngine (input ports -> boxes -> output ports), executed by a
/// WorkerPool instead of the discrete-event simulation.
///
/// Architecture (docs/THREADING.md has the full story):
///  - Every arc is a bounded SPSC ring (stream/ring_buffer.h). Producer and
///    consumer exclusivity come from box-exclusive execution, not from the
///    ring, so boxes (and their arcs) migrate freely between workers.
///  - Each box carries an atomic state machine {Idle, Queued, Running,
///    RunningNotified}. Producers notify a box after pushing to its ring;
///    the CAS protocol guarantees a box is queued at most once and running
///    on at most one worker, while a notify that races an activation
///    (Running -> RunningNotified) forces a re-queue so no tuple is ever
///    stranded.
///  - Boxes are partitioned across workers at Start(): weakly-connected
///    components of the box graph, assigned greedily largest-first (LPT) by
///    estimated cost. Stealing covers imbalance at runtime, so the
///    partition only has to be roughly right.
///  - A full ring never blocks a producer on a slower consumer: the
///    producer claims and runs the consumer box inline ("help on full").
///    The network is acyclic, so helping terminates.
///
/// Determinism contract: per-arc FIFO order and exactly-once consumption
/// hold unconditionally, so for linear (single-input-box) networks every
/// output port sees the byte-identical row sequence the single-threaded
/// oracle produces — the property tests/check/threaded_simcheck_test.cc
/// gates on. What threading *does* reorder is documented in
/// docs/THREADING.md (cross-output interleaving, multi-input merge order,
/// wall-clock-dependent operators, scheduling-dependent metrics).
///
/// Operators run with `now` = the consumed tuple's timestamp; OnTick and
/// Drain are not driven (no wall-clock timers in threaded mode yet).
///
/// Thread contract: topology construction, Start, and Stop are
/// single-threaded. PushInput may be called concurrently for *different*
/// input ports (one thread at a time per port — each port's arcs are SPSC
/// rings whose producer side is the pushing thread). WaitQuiescent is
/// called by pushers after their pushes complete.
class ThreadedEngine {
 public:
  /// Delivery callback; called with the output's mutex held (serialized
  /// per output, concurrent across outputs) from worker threads.
  using OutputCallback = std::function<void(const Tuple&, SimTime)>;

  explicit ThreadedEngine(ThreadedEngineOptions opts = {});
  ~ThreadedEngine();

  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  const ThreadedEngineOptions& options() const { return opts_; }

  // --- Topology construction (before Start) --------------------------------
  Result<PortId> AddInput(const std::string& name, SchemaPtr schema);
  Result<PortId> AddOutput(const std::string& name);
  Result<BoxId> AddBox(const OperatorSpec& spec);
  Result<ArcId> Connect(Endpoint from, Endpoint to);
  /// Fixed-point schema propagation, as AuroraEngine::InitializeBoxes.
  Status InitializeBoxes(bool require_all = true);
  Result<PortId> FindInput(const std::string& name) const;
  Result<PortId> FindOutput(const std::string& name) const;
  bool IsBoxInitialized(BoxId box) const;
  void SetOutputCallback(PortId output, OutputCallback cb);

  // --- Execution -----------------------------------------------------------
  /// Builds the rings, partitions the boxes, and launches the workers.
  Status Start();
  /// True between a successful Start and Stop.
  bool running() const { return pool_ != nullptr && pool_->started(); }

  /// Injects one tuple (timestamp defaults to `now` when unset). Applies
  /// backpressure by helping when downstream rings are full; never drops.
  Status PushInput(PortId input, Tuple t, SimTime now);
  Status PushInputByName(const std::string& input, Tuple t, SimTime now);

  /// Blocks until no box is queued or running and every ring is empty.
  /// Callers must have finished their own PushInputs first (in-flight
  /// pushes from *other* threads can re-arm work after this returns).
  void WaitQuiescent();

  /// Drains (WaitQuiescent), stops the workers, and returns the first
  /// operator error deferred during the run, if any.
  Status Stop();

  // --- Introspection -------------------------------------------------------
  int partition_of(BoxId box) const;
  uint64_t tuples_in() const {
    return tuples_in_.load(std::memory_order_relaxed);
  }
  uint64_t delivered(PortId output) const;
  uint64_t activations() const {
    return activations_.load(std::memory_order_relaxed);
  }
  /// Ready-box migrations between workers (see WorkerPool::steals).
  uint64_t steals() const { return pool_ == nullptr ? 0 : pool_->steals(); }
  /// Times a producer found a ring full and helped the consumer inline.
  uint64_t ring_full_events() const {
    return ring_full_events_.load(std::memory_order_relaxed);
  }

 private:
  /// Box activation states (the ready-protocol of docs/THREADING.md).
  enum BoxState : uint32_t {
    kIdle = 0,     ///< no pending notify; not on any ready queue
    kQueued = 1,   ///< on some worker's ready queue (or claimed for help)
    kRunning = 2,  ///< a worker is inside ActivateBox
    kRunningNotified = 3,  ///< running, and a producer notified meanwhile
  };

  struct BoxRt {
    OperatorSpec spec;
    OperatorPtr op;
    bool initialized = false;
    bool removed = false;  // reserved; threaded mode has no live reconfig
    std::vector<ArcId> in_arcs;               // one per op input (-1 unset)
    std::vector<std::vector<ArcId>> out_arcs;  // per op output, fan-out list
    int partition = 0;
    int64_t priority = 0;  ///< scheduler key; -distance_to_output
    std::atomic<uint32_t> state{kIdle};
    /// Round-robin cursor over in_arcs; touched only by the worker that
    /// currently holds the box claim.
    int rr_next_input = 0;
  };
  struct ArcRt {
    Endpoint from;
    Endpoint to;
    std::unique_ptr<BoundedRing<Tuple>> ring;  // built at Start
  };
  struct InputPort {
    std::string name;
    SchemaPtr schema;
    std::vector<ArcId> out_arcs;
  };
  struct OutputPort {
    std::string name;
    OutputCallback callback;
    std::unique_ptr<std::mutex> mu;  // serializes deliveries per output
    std::atomic<uint64_t> delivered{0};

    OutputPort(std::string n)
        : name(std::move(n)), mu(std::make_unique<std::mutex>()) {}
    OutputPort(OutputPort&& o) noexcept
        : name(std::move(o.name)),
          callback(std::move(o.callback)),
          mu(std::move(o.mu)),
          delivered(o.delivered.load(std::memory_order_relaxed)) {}
  };

  class RoutingEmitter;

  Result<SchemaPtr> EndpointOutputSchema(const Endpoint& e) const;

  /// Pushes into the arc's ring, helping the consumer inline while full,
  /// then notifies the destination box. `worker` is the calling worker id
  /// (-1 for an external pusher); used as the re-queue preference.
  void EnqueueArc(ArcId arc, Tuple t, int worker);
  /// Chunked EnqueueArc: multi-pushes the span into the ring (one release
  /// store per published run), helping the consumer inline whenever the ring
  /// fills mid-chunk — a chunk larger than the ring degrades to repeated
  /// partial publishes with help-on-full between them, never a deadlock.
  /// Every partial publish notifies the destination before the producer
  /// yields/helps, preserving the "non-empty ring implies notified box"
  /// invariant the quiescence protocol relies on. Consumes the span.
  void EnqueueArcChunk(ArcId arc, Tuple* tuples, size_t n, int worker);
  /// Marks the box ready: Idle -> Queued (+submit), Running ->
  /// RunningNotified, no-op otherwise.
  void NotifyReady(BoxId box, int worker);
  /// Claims an un-queued or queued box directly (help path). On success the
  /// box is Running and the caller must PostRun it.
  bool TryClaimForHelp(BoxId box);
  /// Consumes up to train_size tuples from the box's in-rings.
  void RunBoxActivation(BoxId box, int worker);
  /// Batched variant for single-input boxes (batch_size > 1): pops up to
  /// batch_size tuples per ProcessBatch call. Uses only stack scratch —
  /// help-on-full can nest activations on one thread.
  void RunBoxActivationBatched(BoxId box, int worker);
  /// Post-activation protocol: re-queue if notified or input remains, else
  /// transition to Idle and release the work item.
  void PostRun(BoxId box, int worker);
  /// WorkerPool callback: validate the claim, activate, post-run.
  void RunReadyItem(int box, int worker);

  void DeliverToOutput(PortId output, const Tuple& t, int worker);

  /// Any tuple left in any of the box's input rings?
  bool AnyInputPending(const BoxRt& box) const;

  /// Component-based LPT assignment of boxes to workers.
  void PartitionBoxes();
  /// Longest path to an output port, for scheduler priorities.
  void ComputePriorities();

  void DeferError(const Status& s);

  ThreadedEngineOptions opts_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;
  /// deque: BoxRt holds an atomic (immovable), and box addresses must be
  /// stable across AddBox.
  std::deque<BoxRt> boxes_;
  std::vector<ArcRt> arcs_;

  std::unique_ptr<WorkerPool> pool_;
  /// Boxes currently Queued or Running (in any flavor). Zero, after all
  /// pushers returned, means quiescent: every ring is empty (a worker that
  /// could still push is itself counted here).
  std::atomic<int64_t> work_items_{0};

  std::mutex error_mu_;
  Status deferred_error_;

  std::atomic<uint64_t> tuples_in_{0};
  std::atomic<uint64_t> activations_{0};
  std::atomic<uint64_t> tuples_processed_{0};
  std::atomic<uint64_t> ring_full_events_{0};

  Counter* m_tuples_in_;
  Counter* m_delivered_;
  Counter* m_activations_;
  Counter* m_ring_full_;
  Gauge* m_workers_;
  Gauge* m_steals_;
  // Chunked-emission accounting (totals are exact; see docs/THREADING.md on
  // which threaded metrics are scheduling-dependent — these are not).
  Counter* m_batch_chunks_;
  Counter* m_batch_chunk_tuples_;
  Counter* m_multipush_publishes_;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_THREADED_ENGINE_H_
