#ifndef AURORA_ENGINE_CATALOG_H_
#define AURORA_ENGINE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ops/op_spec.h"
#include "tuple/schema.h"

namespace aurora {

/// Node identifier within the overlay (defined here to avoid a dependency
/// cycle with src/net).
using NodeId = int;

/// Catalog entry for a registered stream (paper §4.1–4.2): its schema and
/// the (possibly stale) physical locations where its events are available.
struct StreamInfo {
  std::string name;
  SchemaPtr schema;
  std::vector<NodeId> locations;
};

/// Catalog entry for one running piece of a query: which boxes run where.
struct QueryPieceInfo {
  NodeId node = -1;
  std::vector<std::string> box_names;
};

struct QueryInfo {
  std::string name;
  std::vector<QueryPieceInfo> pieces;
};

/// \brief Intra-participant catalog (paper §4.1).
///
/// Holds definitions of schemas, streams, named operators (the "pre-defined
/// set" offered for remote definition), and the content/location of running
/// query pieces. Every node owned by a participant has access to the full
/// intra-participant catalog; the inter-participant (global) catalog is the
/// DHT-backed DhtCatalog in src/dht.
class Catalog {
 public:
  Status DefineSchema(const std::string& name, SchemaPtr schema);
  Result<SchemaPtr> GetSchema(const std::string& name) const;

  Status DefineStream(StreamInfo info);
  Result<StreamInfo> GetStream(const std::string& name) const;
  /// Updates stream locations after load sharing moves or partitions data.
  Status SetStreamLocations(const std::string& name, std::vector<NodeId> locs);

  /// Registers an operator definition other participants (or the splitter)
  /// may instantiate by name.
  Status DefineOperator(const std::string& name, OperatorSpec spec);
  Result<OperatorSpec> GetOperator(const std::string& name) const;
  std::vector<std::string> ListOperators() const;

  Status DefineQuery(QueryInfo info);
  Result<QueryInfo> GetQuery(const std::string& name) const;
  Status SetQueryPieces(const std::string& name,
                        std::vector<QueryPieceInfo> pieces);

  size_t num_streams() const { return streams_.size(); }

 private:
  std::map<std::string, SchemaPtr> schemas_;
  std::map<std::string, StreamInfo> streams_;
  std::map<std::string, OperatorSpec> operators_;
  std::map<std::string, QueryInfo> queries_;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_CATALOG_H_
