#ifndef AURORA_ENGINE_STORAGE_MANAGER_H_
#define AURORA_ENGINE_STORAGE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/tiered_store.h"
#include "stream/stream_queue.h"

namespace aurora {

/// One arc queue eligible for spilling, tagged with its arc id so the
/// per-queue metric series survive engine reconfiguration.
struct SpillableQueue {
  StreamQueue* queue;
  int arc;
};

/// \brief Buffer manager for arc queues (the Storage Manager of Fig. 3).
///
/// When total resident queue memory exceeds the budget, spills the largest
/// queues to disk, oldest tuples first — "particularly important for queues
/// at connection points since they can grow quite long" (§2.3). Spilled
/// tuples remain poppable; each such pop is charged a disk read by the
/// engine.
///
/// Two modes share the same policy and accounting:
///  - Modeled (default): queues only *mark* tuples spilled; nothing leaves
///    memory. This keeps tests and benches free of storage dependencies.
///  - Durable (AttachStore): each spilling arc gets a SpillChannel — a
///    SpillSink writing the actual tuple bytes to a per-arc tiered-store
///    stream ("spill/<scope>/arc<N>") and reading them back FIFO on pop.
///
/// Either way every arc that ever spills gets high-water-mark gauges
/// (`engine.storage.spilled_hwm.<scope>.arc<N>` bytes and
/// `engine.storage.spilled_tuples.<scope>.arc<N>`), which is what
/// `aurora_inspect --check` reconciles against the global spill counters.
class StorageManager {
 public:
  /// budget_bytes == 0 disables spilling (unbounded memory).
  explicit StorageManager(size_t budget_bytes = 0);
  ~StorageManager();

  size_t budget() const { return budget_; }
  void set_budget(size_t b) { budget_ = b; }

  /// Scope tag for this manager's per-arc series ("n3", "local", ...). Set
  /// before the first spill; series names are fixed at first use.
  void set_scope(std::string scope) { scope_ = std::move(scope); }
  const std::string& scope() const { return scope_; }

  /// Switches to durable mode: subsequent spills write through `store`
  /// (not owned). Attach before the first spill.
  void AttachStore(TieredStore* store);
  TieredStore* store() const { return store_; }

  /// Checks the budget against all queues and spills as needed. `queues`
  /// must enumerate every arc queue in the engine. Returns bytes spilled.
  /// Mutex-guarded: concurrent calls (or a budget check racing a stats
  /// read) serialize here, though the queues themselves must not be mutated
  /// by another thread during the call.
  size_t EnforceBudget(const std::vector<SpillableQueue>& queues);

  uint64_t total_spilled_bytes() const {
    return total_spilled_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t spill_events() const {
    return spill_events_.load(std::memory_order_relaxed);
  }

 private:
  class SpillChannel;

  struct ArcSpillState {
    Gauge* hwm_bytes = nullptr;
    Gauge* hwm_tuples = nullptr;
    std::unique_ptr<SpillChannel> channel;  // null in modeled mode
  };

  /// Lazily creates the arc's gauges (and, in durable mode, its channel,
  /// attaching it to the queue as SpillSink).
  ArcSpillState& StateFor(const SpillableQueue& q);

  size_t budget_;
  std::string scope_ = "local";
  TieredStore* store_ = nullptr;
  /// Guards arcs_ and the spill loop; the totals are atomics so the stats
  /// accessors stay lock-free.
  std::mutex mu_;
  std::map<int, ArcSpillState> arcs_;
  std::atomic<uint64_t> total_spilled_bytes_{0};
  std::atomic<uint64_t> spill_events_{0};
  Counter* m_spill_events_;
  Counter* m_spill_bytes_;
  Counter* m_spill_tuples_;
  Counter* m_unspill_tuples_;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_STORAGE_MANAGER_H_
