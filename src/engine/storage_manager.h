#ifndef AURORA_ENGINE_STORAGE_MANAGER_H_
#define AURORA_ENGINE_STORAGE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "stream/stream_queue.h"

namespace aurora {

/// \brief Buffer manager for arc queues (the Storage Manager of Fig. 3).
///
/// When total resident queue memory exceeds the budget, spills the largest
/// queues to (modeled) disk, oldest tuples first — "particularly important
/// for queues at connection points since they can grow quite long" (§2.3).
/// Spilled tuples remain poppable; each such pop is charged a disk read by
/// the engine.
class StorageManager {
 public:
  /// budget_bytes == 0 disables spilling (unbounded memory).
  explicit StorageManager(size_t budget_bytes = 0) : budget_(budget_bytes) {}

  size_t budget() const { return budget_; }
  void set_budget(size_t b) { budget_ = b; }

  /// Checks the budget against all queues and spills as needed. `queues`
  /// must enumerate every arc queue in the engine. Returns bytes spilled.
  size_t EnforceBudget(const std::vector<StreamQueue*>& queues);

  uint64_t total_spilled_bytes() const { return total_spilled_bytes_; }
  uint64_t spill_events() const { return spill_events_; }

 private:
  size_t budget_;
  uint64_t total_spilled_bytes_ = 0;
  uint64_t spill_events_ = 0;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_STORAGE_MANAGER_H_
