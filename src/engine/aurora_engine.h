#ifndef AURORA_ENGINE_AURORA_ENGINE_H_
#define AURORA_ENGINE_AURORA_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "engine/load_shedder.h"
#include "engine/qos_monitor.h"
#include "engine/storage_manager.h"
#include "engine/topology.h"
#include "obs/metrics.h"
#include "ops/operator.h"
#include "qos/inference.h"
#include "stream/connection_point.h"
#include "stream/stream_queue.h"

namespace aurora {

/// Box scheduling disciplines (§2.3; ablated in bench_scheduler).
enum class SchedulerPolicy {
  /// Cycle through boxes, one activation each.
  kRoundRobin,
  /// Activate the box with the most queued input tuples.
  kLongestQueue,
  /// Activate the ready box nearest an output (latency-oriented, the
  /// QoS-driven discipline's core heuristic).
  kMinOutputDistance,
  /// One tuple per activation, no trains (the baseline train scheduling is
  /// compared against).
  kTupleAtATime,
  /// QoS-slack scheduling (§2.3/§7.1): activate the box whose oldest queued
  /// tuple is closest to violating its inferred latency deadline
  /// (CriticalX of the arc's inferred QoS graph). Call RefreshQoSDeadlines
  /// after setting output QoS specs and after topology changes.
  kQoSSlack,
};

struct EngineOptions {
  SchedulerPolicy scheduler = SchedulerPolicy::kLongestQueue;
  /// Max tuples consumed per box activation (train scheduling, §2.3).
  int train_size = 64;
  /// Tuples handed to one Operator::ProcessBatch call. 1 = the scalar path
  /// (one virtual Process per tuple). >1 enables the batched path for
  /// single-input boxes: up to this many tuples are dequeued per box
  /// activation into a TupleBatch (never exceeding train_size), amortizing
  /// dispatch and scheduler bookkeeping. Multi-input boxes and
  /// kTupleAtATime stay scalar — batching a multi-input box would change
  /// the round-robin interleaving across its inputs, and therefore output
  /// order. Outputs are bit-identical either way (gated by the simcheck
  /// golden seeds and the batch-vs-scalar property suite).
  int batch_size = 1;
  /// How far a train is pushed toward the output within one step: after a
  /// box activation, boxes that received its emissions are activated too,
  /// up to this many layers.
  int train_depth = 1;
  /// Storage manager budget; 0 = unbounded memory (no spilling).
  size_t memory_budget_bytes = 0;
  /// Simulated cost of reading one spilled tuple back from disk.
  double spill_read_cost_us = 20.0;
  /// With a durable store attached, how many of the newest records each
  /// connection point keeps cached in memory (0 = no cap beyond retention).
  size_t cp_cache_tuples = 128;
  /// Load shedder configuration (policy kNone disables shedding).
  LoadShedder::Options shedder;
};

/// \brief Single-node Aurora run-time (paper §2, Fig. 3).
///
/// Owns the query network (boxes + arcs with queues), the train scheduler,
/// the storage manager, the QoS monitor, and the load shedder. The network
/// is fully dynamic: boxes and arcs can be added, choked, drained, and
/// removed at run time — the primitive operations the distributed layer's
/// box sliding and splitting are built from.
///
/// Time is externalized: callers pass the current SimTime into PushInput /
/// RunOneStep, and RunOneStep returns the simulated CPU microseconds the
/// activation consumed. Standalone (non-simulated) use just passes a fixed
/// or monotonically increasing time.
class AuroraEngine {
 public:
  using OutputCallback = std::function<void(const Tuple&, SimTime)>;

  explicit AuroraEngine(EngineOptions opts = {});

  // ---- Topology construction ------------------------------------------

  /// Declares a named input stream with its schema.
  Result<PortId> AddInput(const std::string& name, SchemaPtr schema);
  /// Declares a named output (application attachment point).
  Result<PortId> AddOutput(const std::string& name);
  /// Adds a box from its declarative spec. The operator is instantiated
  /// immediately but not initialized until InitializeBoxes().
  Result<BoxId> AddBox(const OperatorSpec& spec);
  /// Connects two endpoints with a new arc. At most one arc may enter a
  /// given (box, input index); sources may fan out freely.
  Result<ArcId> Connect(Endpoint from, Endpoint to);
  /// Initializes all not-yet-initialized boxes in topological order,
  /// propagating schemas. Call after a batch of topology changes. With
  /// `require_all` false, boxes that cannot be initialized yet (inputs not
  /// wired) are left for a later call instead of failing — used by
  /// progressive distributed deployment.
  Status InitializeBoxes(bool require_all = true);
  bool IsBoxInitialized(BoxId box) const;

  /// Marks an arc as a connection point with historical storage (§2.2).
  Status MakeConnectionPoint(ArcId arc, const std::string& name,
                             RetentionPolicy policy);
  Result<ConnectionPoint*> GetConnectionPoint(const std::string& name);

  /// Attaches an ad hoc query at a connection point (§2.2): tuples in the
  /// retained history that satisfy `predicate` are replayed into `sink`
  /// immediately (stamped with their original timestamps), and matching
  /// live tuples follow as they pass the point. Returns a token for
  /// DetachAdHocQuery.
  Result<int> AttachAdHocQuery(const std::string& cp_name, Predicate predicate,
                               OutputCallback sink);
  Status DetachAdHocQuery(const std::string& cp_name, int token);
  /// The connection point on an arc, or nullptr. Non-owning.
  ConnectionPoint* ArcConnectionPoint(ArcId arc);

  // ---- Dynamic reconfiguration (used by box sliding/splitting) --------

  /// Chokes an arc per the stabilization protocol (§5.1): tuples already
  /// queued keep draining into the destination box, but *new* arrivals are
  /// collected in a side hold buffer instead of the consumable queue.
  Status ChokeArc(ArcId arc);
  /// Reopens the arc, moving held tuples back to the front of the flow.
  Status UnchokeArc(ArcId arc);
  bool ArcChoked(ArcId arc) const;
  /// Removes an arc. Its queue must be empty (TakeArcQueue first).
  Status DisconnectArc(ArcId arc);
  /// Removes a box. All of its arcs must have been disconnected.
  Status RemoveBox(BoxId box);
  /// Empties an arc's queue, returning the tuples (for migration).
  Result<std::vector<Tuple>> TakeArcQueue(ArcId arc);
  /// Takes the tuples collected while the arc was choked, in arrival order.
  Result<std::vector<Tuple>> TakeHeldTuples(ArcId arc);
  size_t HeldTupleCount(ArcId arc) const;
  /// Extracts a fully-disconnected box's operator *with its state* — the
  /// state-migration flavour of box sliding (Aurora*, intra-participant).
  /// The box id is retired.
  Result<OperatorPtr> ExtractBoxOperator(BoxId box);
  /// Adds an already-initialized operator (from ExtractBoxOperator on
  /// another engine). Connections must match its existing schemas.
  Result<BoxId> AdoptBoxOperator(OperatorPtr op);

  // ---- Lookup ----------------------------------------------------------

  Result<PortId> FindInput(const std::string& name) const;
  Result<PortId> FindOutput(const std::string& name) const;
  const std::string& input_name(PortId p) const { return inputs_[p].name; }
  const std::string& output_name(PortId p) const { return outputs_[p].name; }
  SchemaPtr input_schema(PortId p) const { return inputs_[p].schema; }
  /// Arc entering (box, input index), or NotFound.
  Result<ArcId> FindArcInto(BoxId box, int input_index) const;
  /// All arcs leaving an endpoint.
  std::vector<ArcId> ArcsFrom(Endpoint from) const;
  std::vector<ArcId> ArcsInto(PortId output_port) const;
  Result<const OperatorSpec*> BoxSpec(BoxId box) const;
  Result<Operator*> BoxOp(BoxId box);
  std::vector<BoxId> BoxIds() const;
  Endpoint ArcFrom(ArcId arc) const;
  Endpoint ArcTo(ArcId arc) const;
  size_t ArcQueueSize(ArcId arc) const;
  /// Smallest non-zero sequence number among tuples queued (or held) on the
  /// arc; kNoSeqNo when none. Used by the HA truncation protocol (§6.2).
  SeqNo ArcQueueMinSeq(ArcId arc) const;
  size_t num_boxes() const;
  /// Copy of the callback registered on an output port (may be empty).
  OutputCallback GetOutputCallback(PortId output) const;

  // ---- QoS -------------------------------------------------------------

  Status SetOutputQoS(PortId output, QoSSpec spec);
  /// Infers the QoS spec holding on an arc by pushing output specs through
  /// the boxes between the arc and every reachable output, using measured
  /// T_B where available and per-kind cost defaults otherwise (§7.1).
  Result<QoSSpec> InferArcQoS(ArcId arc) const;
  /// Recomputes each box's latency deadline (the ms at which its inferred
  /// input-side QoS drops below 0.5 utility) for kQoSSlack scheduling.
  void RefreshQoSDeadlines();

  // ---- Data path -------------------------------------------------------

  /// `gate_ingest` applies the blocked-upstream ingestion gate (see
  /// SetIngestBlocked). Source-side injection gates; remote deliveries that
  /// already consumed transport credit must pass `false` so credited data
  /// is never dropped at the door.
  Status PushInput(PortId input, Tuple t, SimTime now, bool gate_ingest = true);
  Status PushInputByName(const std::string& name, Tuple t, SimTime now);
  void SetOutputCallback(PortId output, OutputCallback cb);
  /// Delivers a tuple directly to an output port (bypassing boxes). Used
  /// when re-injecting tuples held during a reconfiguration whose new path
  /// begins at an engine output (box sliding).
  Status EmitToOutputPort(PortId output, const Tuple& t, SimTime now);
  /// Enqueues a tuple directly onto an arc's queue. Used when re-injecting
  /// held tuples onto a rewired arc (box splitting).
  Status EnqueueOnArc(ArcId arc, Tuple t, SimTime now);

  // ---- Execution -------------------------------------------------------

  /// True when some initialized box has consumable queued input.
  bool HasWork() const;
  /// Runs one scheduler step (one box activation train, pushed downstream
  /// per train_depth). Returns simulated CPU microseconds consumed; 0.0
  /// when there was no work.
  Result<double> RunOneStep(SimTime now);
  /// Runs steps until no work remains (or `max_steps`). Time stays at
  /// `now`; intended for logical (non-simulated) processing.
  Status RunUntilQuiescent(SimTime now, int max_steps = 1 << 28);
  /// Delivers timer ticks to time-driven boxes (WSort timeouts).
  void Tick(SimTime now);
  /// Flushes a box's operator state downstream (stabilization/migration).
  Status DrainBoxState(BoxId box, SimTime now);

  /// Rebuilds the load shedder's per-input cost/utility model from current
  /// topology, measured selectivities, and output QoS specs.
  void RebuildShedderModel();

  // ---- Flow control (credit back-pressure; set by StreamNode) -----------

  /// While blocked, gated PushInput calls are rejected with Unavailable
  /// ("blocked upstream") and attributed as QoS drops — the node is out of
  /// downstream credit, so offered load must be visible to shedding/QoS
  /// instead of silently growing queues.
  void SetIngestBlocked(bool blocked);
  bool ingest_blocked() const { return ingest_blocked_; }
  /// Bytes currently queued on all arcs fed by the input port (its backlog
  /// against a receive-side credit budget).
  size_t InputBacklogBytes(PortId input) const;

  // ---- Components and statistics ----------------------------------------

  // ---- Durable storage ---------------------------------------------------

  /// Wires a tiered store (not owned) under the engine: arc-queue spills
  /// write real tuple bytes through the StorageManager, existing and future
  /// connection points switch to tiered history ("cp/<name>" streams), and
  /// Tick() drives the store's background compaction.
  void AttachDurableStore(TieredStore* store);
  TieredStore* durable_store() { return durable_store_; }

  /// Drops what a process crash loses from the storage consumers: every
  /// connection point's memory tier and index. The store itself is crashed
  /// separately (TieredStore::Crash) by the owner.
  void WipeVolatileStorage();
  /// Rebuilds every bound connection point from the (re-opened) store.
  void RecoverDurableState(SimTime now);

  QoSMonitor& qos_monitor() { return qos_; }
  const QoSMonitor& qos_monitor() const { return qos_; }
  StorageManager& storage_manager() { return storage_; }
  LoadShedder& load_shedder() { return shedder_; }
  const EngineOptions& options() const { return opts_; }

  /// Cumulative simulated CPU microseconds consumed by RunOneStep.
  double total_cpu_micros() const { return total_cpu_micros_; }
  uint64_t total_activations() const { return total_activations_; }
  /// Tuples admitted by PushInput past the shedder and the ingestion gate —
  /// the engine-side ground truth tuple-conservation checks reconcile
  /// against (src/check).
  uint64_t tuples_ingested() const { return tuples_ingested_; }
  /// Sum of queued tuples over all arcs.
  size_t TotalQueuedTuples() const;

  /// Node id stamped on lineage spans this engine records (src/obs/trace.h);
  /// -1 for a standalone (non-distributed) engine. Set by StreamNode.
  void set_trace_node(int node) {
    trace_node_ = node;
    std::string scope = node < 0 ? "local" : "n" + std::to_string(node);
    storage_.set_scope(scope);
    qos_.set_scope(scope);
  }
  int trace_node() const { return trace_node_; }

 private:
  struct InputPort {
    std::string name;
    SchemaPtr schema;
    std::vector<ArcId> out_arcs;
  };
  struct OutputPort {
    std::string name;
    OutputCallback callback;
    std::vector<ArcId> in_arcs;
  };
  struct BoxRt {
    OperatorSpec spec;
    OperatorPtr op;
    bool initialized = false;
    bool removed = false;
    /// Arc into each input index (-1 = unconnected).
    std::vector<ArcId> in_arcs;
    /// Arcs out of each output index (fan-out allowed).
    std::vector<std::vector<ArcId>> out_arcs;
    int rr_next_input = 0;
    int distance_to_output = 1 << 20;
    /// Latency budget for tuples entering this box (kQoSSlack); +inf when
    /// no QoS-bearing output is reachable.
    double deadline_ms = 1e18;
    /// Tuples consumable across all in-arcs (choked queues still drain, so
    /// they count). Maintained by ArcEnqueue/ArcDequeue; a box is ready iff
    /// initialized && !removed && queued > 0.
    size_t queued = 0;
    /// Bumped whenever this box's scheduler key may have changed; stale
    /// ready-heap entries (entry.gen != sched_gen) are discarded lazily.
    uint64_t sched_gen = 0;
    /// Per-box profiler series (`engine.box.n<node>.<id>:<kind>.*`),
    /// registered on the box's first activation and cached here so the
    /// activation funnel pays pointer adds, not name lookups.
    Counter* prof_activations = nullptr;
    Counter* prof_tuples = nullptr;
    Counter* prof_self_us = nullptr;
    LatencyHistogram* prof_tuple_cost_us = nullptr;
  };
  struct ArcRt {
    Endpoint from;
    Endpoint to;
    bool removed = false;
    bool choked = false;
    StreamQueue queue;
    std::deque<int64_t> enqueue_us;  // parallel to queue items
    /// Arrivals collected while choked (§5.1 "simply collecting any
    /// subsequent input arriving at the connection point"), with their
    /// arrival times.
    std::vector<std::pair<Tuple, int64_t>> hold;
    std::unique_ptr<ConnectionPoint> cp;
  };

  class RoutingEmitter;

  /// Lazily-invalidated ready-heap entry (kLongestQueue /
  /// kMinOutputDistance). An entry is live iff its gen matches the box's
  /// current sched_gen; anything else is a leftover from an earlier queue
  /// state and is popped and dropped during PickBox.
  struct ReadyEntry {
    int64_t key;   // larger = scheduled first
    BoxId box;
    uint64_t gen;
  };
  struct ReadyEntryOrder {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.key != b.key) return a.key < b.key;  // max-heap on key
      return a.box > b.box;  // ties: smallest box id on top (matches the
                             // old first-best-wins linear scan)
    }
  };

  Result<SchemaPtr> EndpointOutputSchema(const Endpoint& e) const;
  /// Delivers one emitted tuple from `from` to all its arcs.
  void Route(const Endpoint& from, const Tuple& t, SimTime now,
             std::vector<BoxId>* touched);
  /// Chunked Route: `n` tuples emitted to one endpoint in emission order
  /// (the flush of a BatchEmitter's staged run). Per destination arc the
  /// whole chunk is applied at once — one queue-append run, one
  /// NoteBoxQueued delta, one touched-dedup probe — instead of per tuple.
  /// Arc-major iteration preserves everything the gates observe: per-arc
  /// FIFO, per-output delivery order, and per-CP record order all match the
  /// tuple-major scalar loop because each is per-destination state.
  /// Consumes (moves from) the span.
  void RouteChunk(const Endpoint& from, Tuple* tuples, size_t n, SimTime now,
                  std::vector<BoxId>* touched);
  void DeliverToOutput(PortId port, const Tuple& t, SimTime now);
  Result<BoxId> PickBox(SimTime now);
  /// Activates one box: consumes up to train_size tuples. Returns cost.
  double ActivateBox(BoxId box, SimTime now, std::vector<BoxId>* touched);
  /// Batched activation (batch_size > 1, single-input box): dequeues up to
  /// batch_size tuples per ProcessBatch call, with per-tuple accounting
  /// identical to the scalar loop and one scheduler update per dequeue run.
  double ActivateBoxBatched(BoxId box, SimTime now,
                            std::vector<BoxId>* touched);
  /// Registers the box's profiler series on first activation.
  void EnsureBoxProfile(BoxId box_id, BoxRt* box);
  void RecomputeOutputDistances();
  bool BoxReady(const BoxRt& box) const;
  // ---- Ready-queue maintenance (see docs/PERFORMANCE.md) ---------------
  /// All consumable-queue mutations funnel through these two so per-box
  /// `queued` counters, ready_count_, and the ready heap stay exact.
  void ArcEnqueue(ArcRt& arc, Tuple t, int64_t enqueue_us);
  /// Bulk ArcEnqueue: appends `n` tuples with one scheduler delta. With
  /// `may_move` the span's handles are moved (last arc of a fan-out);
  /// otherwise each arc takes its own cheap COW handle copy.
  void ArcEnqueueChunk(ArcRt& arc, Tuple* tuples, size_t n,
                       int64_t enqueue_us, bool may_move);
  Tuple ArcDequeue(ArcRt& arc);
  /// Applies a queue-size delta to a box's scheduler accounting.
  void NoteBoxQueued(BoxId box, int delta);
  /// Scheduler key under the current heap policy (queue length for
  /// kLongestQueue, negated output distance for kMinOutputDistance).
  int64_t SchedKey(const BoxRt& box) const;
  bool UsesReadyHeap() const {
    return opts_.scheduler == SchedulerPolicy::kLongestQueue ||
           opts_.scheduler == SchedulerPolicy::kMinOutputDistance;
  }
  /// Recounts `queued`/ready_count_ and reseeds the heap from scratch.
  /// Called after topology changes (box init/adopt/remove, connect,
  /// disconnect) — rare, so O(boxes + arcs) is fine there.
  void RebuildScheduler();
  std::vector<SpillableQueue> AllQueues();
  /// Binds one arc's connection point to the durable store (no-op when no
  /// store is attached or the point is already bound).
  void BindConnectionPointStorage(ArcId arc);
  /// Walks downstream from an endpoint, collecting reachable outputs and
  /// accumulating expected cost. Used by shedder model and QoS inference.
  void WalkDownstream(const Endpoint& from, double cost_so_far_us,
                      std::map<PortId, double>* outputs_cost) const;

  EngineOptions opts_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;
  std::vector<BoxRt> boxes_;
  std::vector<ArcRt> arcs_;
  std::map<std::string, ArcId> connection_points_;
  QoSMonitor qos_;
  StorageManager storage_;
  LoadShedder shedder_;
  int rr_next_box_ = 0;
  /// Boxes currently ready (initialized, live, queued > 0): O(1) HasWork
  /// for every policy.
  size_t ready_count_ = 0;
  /// Max-heap of candidate boxes for the heap policies; stale entries are
  /// skipped in PickBox, so each scheduling step is O(log n) amortized
  /// instead of a linear scan over all boxes.
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyEntryOrder>
      ready_heap_;
  double total_cpu_micros_ = 0.0;
  uint64_t total_activations_ = 0;
  uint64_t tuples_ingested_ = 0;
  int trace_node_ = -1;
  bool ingest_blocked_ = false;
  TieredStore* durable_store_ = nullptr;
  // Cached registry metrics (process-wide aggregates across engines; the
  // per-output QoS series are per-engine, via QoSMonitor's prefix).
  Counter* m_tuples_in_;
  Counter* m_tuples_shed_;
  Counter* m_tuples_blocked_;
  Gauge* m_ingest_blocked_;
  Counter* m_activations_;
  Counter* m_sched_decisions_;
  LatencyHistogram* m_box_exec_us_;
  LatencyHistogram* m_queue_wait_ms_;
  Gauge* m_queue_depth_;
  // Chunked-emission accounting (see aurora_inspect --check): emitter-side
  // chunk/tuple counts, the per-arc fan-out total, and sink-side counts by
  // destination kind. Conservation: enqueued + delivered + held == fanout.
  Counter* m_batch_chunks_;
  Counter* m_batch_chunk_tuples_;
  Counter* m_batch_fanout_tuples_;
  Counter* m_batch_chunk_enqueued_;
  Counter* m_batch_chunk_delivered_;
  Counter* m_batch_chunk_held_;
  Status deferred_error_;  // first error raised inside an emitter callback
};

}  // namespace aurora

#endif  // AURORA_ENGINE_AURORA_ENGINE_H_
