#include "engine/load_shedder.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "obs/flight_recorder.h"

namespace aurora {

void LoadShedder::SetInputs(std::vector<InputInfo> inputs) {
  inputs_ = std::move(inputs);
  input_index_.clear();
  for (size_t i = 0; i < inputs_.size(); ++i) {
    input_index_[inputs_[i].input] = i;
  }
  arrivals_.assign(inputs_.size(), 0);
  drop_p_.assign(inputs_.size(), 0.0);
}

bool LoadShedder::ShouldDrop(PortId input, const Tuple& t, SimTime now) {
  if (opts_.policy == SheddingPolicy::kNone) return false;
  auto it = input_index_.find(input);
  if (it == input_index_.end()) return false;
  size_t idx = it->second;
  arrivals_[idx]++;
  if (!started_) {
    last_recompute_ = now;
    started_ = true;
  } else if (now - last_recompute_ >= opts_.recompute_interval) {
    Recompute(now);
  }
  if (drop_p_[idx] <= 0.0) return false;
  const InputInfo& info = inputs_[idx];
  if (opts_.policy == SheddingPolicy::kSemantic &&
      !info.value_graph.empty() && t.schema() != nullptr) {
    // Drop the least valuable tuples first: a tuple survives when its
    // value-utility exceeds the needed shedding fraction. (For a utility
    // uniformly spread over [0,1] this sheds ~drop_p of the volume while
    // keeping the most valuable content.) The field index is resolved once
    // at model-build time; the name-scan branch only serves hand-built
    // InputInfos that never set value_index.
    double raw = 0.0;
    if (info.value_index >= 0 &&
        info.value_index < static_cast<int>(t.num_values())) {
      raw = t.value(info.value_index).AsNumeric();
    } else if (t.schema()->HasField(info.value_field)) {
      raw = t.Get(info.value_field).AsNumeric();
    } else {
      // No semantic attribute on this tuple: fall through to random drop.
      if (rng_.NextDouble() < drop_p_[idx]) {
        total_dropped_++;
        return true;
      }
      return false;
    }
    double utility = info.value_graph.Eval(raw);
    if (utility < drop_p_[idx]) {
      total_dropped_++;
      return true;
    }
    return false;
  }
  if (rng_.NextDouble() < drop_p_[idx]) {
    total_dropped_++;
    return true;
  }
  return false;
}

double LoadShedder::drop_probability(PortId input) const {
  auto it = input_index_.find(input);
  return it == input_index_.end() ? 0.0 : drop_p_[it->second];
}

void LoadShedder::Recompute(SimTime now) {
  double elapsed_s = (now - last_recompute_).seconds();
  last_recompute_ = now;
  if (elapsed_s <= 0.0) return;

  // Offered per-input CPU load (us of work per second of time), computed
  // from pre-drop arrival counts.
  std::vector<double> load(inputs_.size(), 0.0);
  for (size_t i = 0; i < inputs_.size(); ++i) {
    double rate = static_cast<double>(arrivals_[i]) / elapsed_s;
    load[i] = rate * inputs_[i].downstream_cost_us;
    arrivals_[i] = 0;
  }
  double total = std::accumulate(load.begin(), load.end(), 0.0);
  offered_load_ = total;
  double budget = opts_.capacity_us_per_sec * opts_.target_utilization;
  if (total <= budget) {
    std::fill(drop_p_.begin(), drop_p_.end(), 0.0);
    NoteDropState(now);
    return;
  }
  double excess = total - budget;

  if (opts_.policy == SheddingPolicy::kRandom ||
      opts_.policy == SheddingPolicy::kSemantic) {
    // Proportional shedding across inputs; the semantic policy differs in
    // *which* tuples it drops, not how many.
    double p = excess / total;
    std::fill(drop_p_.begin(), drop_p_.end(), std::min(1.0, p));
    NoteDropState(now);
    return;
  }

  // kQoSAware: shed greedily from the inputs with the most CPU recovered
  // per unit of utility lost. Shedding fraction d of input i saves
  // d * load[i] CPU and costs roughly d * utility_slope[i] utility.
  std::vector<size_t> order(inputs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double slope_a = std::max(1e-9, inputs_[a].utility_slope);
    double slope_b = std::max(1e-9, inputs_[b].utility_slope);
    return load[a] / slope_a > load[b] / slope_b;
  });
  std::fill(drop_p_.begin(), drop_p_.end(), 0.0);
  double remaining = excess;
  for (size_t idx : order) {
    if (remaining <= 0.0) break;
    if (load[idx] <= 0.0) continue;
    double frac = std::min(1.0, remaining / load[idx]);
    drop_p_[idx] = frac;
    remaining -= frac * load[idx];
  }
  NoteDropState(now);
}

void LoadShedder::NoteDropState(SimTime now) {
  double max_p = 0.0;
  for (double p : drop_p_) max_p = std::max(max_p, p);
  bool active = max_p > 0.0;
  if (active && !shedding_) {
    std::ostringstream detail;
    detail << "offered_load_us_per_s=" << offered_load_
           << " capacity_us_per_s=" << opts_.capacity_us_per_sec
           << " max_drop_p=" << max_p;
    FlightRecorder::Global().Trigger("shed_activation", detail.str(),
                                     now.micros());
  }
  shedding_ = active;
}

}  // namespace aurora
