#include "engine/worker_pool.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace aurora {

WorkerPool::WorkerPool(int workers) {
  int n = std::max(1, workers);
  locals_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) locals_.push_back(std::make_unique<Local>());
}

WorkerPool::~WorkerPool() { Stop(); }

void WorkerPool::Start(RunFn run) {
  AURORA_CHECK(!started_) << "WorkerPool started twice";
  run_ = std::move(run);
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  threads_.reserve(locals_.size());
  for (int i = 0; i < workers(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void WorkerPool::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    stop_.store(true, std::memory_order_relaxed);
    submit_epoch_++;
  }
  park_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  started_ = false;
}

void WorkerPool::Submit(int item, int64_t priority, int preferred) {
  int target = preferred;
  if (target < 0 || target >= workers()) target = 0;
  Entry e{priority, seq_.fetch_add(1, std::memory_order_relaxed), item};
  {
    std::lock_guard<std::mutex> lock(locals_[target]->mu);
    locals_[target]->q.push(e);
  }
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    submit_epoch_++;
  }
  park_cv_.notify_one();
}

bool WorkerPool::PopAny(int wid, int* item) {
  {
    Local& own = *locals_[wid];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.q.empty()) {
      *item = own.q.top().item;
      own.q.pop();
      return true;
    }
  }
  // Steal: take the top (highest-priority) ready item of the first
  // non-empty victim.
  int n = workers();
  for (int off = 1; off < n; ++off) {
    Local& victim = *locals_[(wid + off) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.q.empty()) {
      *item = victim.q.top().item;
      victim.q.pop();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkerPool::WorkerLoop(int wid) {
  while (!stop_.load(std::memory_order_relaxed)) {
    int item = -1;
    if (PopAny(wid, &item)) {
      executed_.fetch_add(1, std::memory_order_relaxed);
      run_(item, wid);
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    if (stop_.load(std::memory_order_relaxed)) return;
    // wait_for bounds any lost-wakeup window (a Submit that slipped in
    // between our empty PopAny and taking the lock bumped the epoch, which
    // the predicate sees immediately).
    uint64_t seen = submit_epoch_;
    park_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return stop_.load(std::memory_order_relaxed) || submit_epoch_ != seen;
    });
  }
}

}  // namespace aurora
