#ifndef AURORA_ENGINE_TOPOLOGY_H_
#define AURORA_ENGINE_TOPOLOGY_H_

#include <string>

namespace aurora {

/// Identifier types for the query network graph. All are engine-scoped.
using BoxId = int;
using ArcId = int;
using PortId = int;

/// \brief One end of an arc: an engine input port, a box input/output, or an
/// engine output port.
struct Endpoint {
  enum class Kind { kInputPort, kBox, kOutputPort };

  Kind kind = Kind::kBox;
  int id = -1;
  /// Box output index (as a `from`) or box input index (as a `to`). Unused
  /// for ports.
  int index = 0;

  static Endpoint InputPort(PortId id) {
    return Endpoint{Kind::kInputPort, id, 0};
  }
  static Endpoint BoxPort(BoxId id, int index) {
    return Endpoint{Kind::kBox, id, index};
  }
  static Endpoint OutputPort(PortId id) {
    return Endpoint{Kind::kOutputPort, id, 0};
  }

  bool is_box() const { return kind == Kind::kBox; }

  std::string ToString() const {
    switch (kind) {
      case Kind::kInputPort:
        return "in:" + std::to_string(id);
      case Kind::kBox:
        return "box:" + std::to_string(id) + "." + std::to_string(index);
      case Kind::kOutputPort:
        return "out:" + std::to_string(id);
    }
    return "?";
  }

  bool operator==(const Endpoint& other) const = default;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_TOPOLOGY_H_
