#include "engine/qos_monitor.h"

namespace aurora {

void QoSMonitor::RecordDelivery(PortId output, double latency_ms) {
  OutputStats& s = outputs_[output];
  s.delivered++;
  s.latency_sum_ms += latency_ms;
  s.latency_ewma.Add(latency_ms);
  const QoSSpec* spec = GetSpec(output);
  double u = 1.0;
  if (spec != nullptr && !spec->latency.empty()) {
    u = spec->latency.Eval(latency_ms);
  }
  s.latency_utility_sum += u;
}

double QoSMonitor::AvgLatencyMs(PortId output) const {
  auto it = outputs_.find(output);
  if (it == outputs_.end() || it->second.delivered == 0) return 0.0;
  return it->second.latency_sum_ms / static_cast<double>(it->second.delivered);
}

uint64_t QoSMonitor::Delivered(PortId output) const {
  auto it = outputs_.find(output);
  return it == outputs_.end() ? 0 : it->second.delivered;
}

uint64_t QoSMonitor::Dropped(PortId output) const {
  auto it = drops_.find(output);
  return it == drops_.end() ? 0 : it->second;
}

double QoSMonitor::DeliveredFraction(PortId output) const {
  uint64_t d = Delivered(output);
  uint64_t x = Dropped(output);
  if (d + x == 0) return 1.0;
  return static_cast<double>(d) / static_cast<double>(d + x);
}

double QoSMonitor::CurrentUtility(PortId output) const {
  const QoSSpec* spec = GetSpec(output);
  if (spec == nullptr) return 1.0;
  auto it = outputs_.find(output);
  double latency_part = 1.0;
  if (it != outputs_.end() && it->second.delivered > 0) {
    latency_part = it->second.latency_utility_sum /
                   static_cast<double>(it->second.delivered);
  }
  double loss_part =
      spec->loss.empty() ? 1.0 : spec->loss.Eval(DeliveredFraction(output));
  return latency_part * loss_part;
}

double QoSMonitor::AggregateUtility() const {
  double sum = 0.0;
  for (const auto& [port, spec] : specs_) sum += CurrentUtility(port);
  return sum;
}

void QoSMonitor::RecordBoxWork(BoxId box, double t_b_ms, int tuples) {
  Ewma& e = box_tb_ms_[box];
  for (int i = 0; i < tuples; ++i) e.Add(t_b_ms);
}

double QoSMonitor::BoxTbMs(BoxId box) const {
  auto it = box_tb_ms_.find(box);
  return it == box_tb_ms_.end() ? 0.0 : it->second.value();
}

}  // namespace aurora
