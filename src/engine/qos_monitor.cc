#include "engine/qos_monitor.h"

#include <sstream>

#include "common/logging.h"
#include "obs/flight_recorder.h"

namespace aurora {

QoSMonitor::QoSMonitor() : prefix_("qos.local.") {}

void QoSMonitor::set_scope(const std::string& scope) {
  // Series names are fixed at each output's first Stats() call; re-scoping
  // after traffic would orphan the already-registered series.
  AURORA_DCHECK(outputs_.empty())
      << "QoSMonitor::set_scope(\"" << scope
      << "\") after output stats were registered under " << prefix_;
  prefix_ = "qos." + scope + ".";
}

QoSMonitor::OutputStats& QoSMonitor::Stats(PortId output) {
  auto it = outputs_.find(output);
  if (it != outputs_.end()) return it->second;
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string base = prefix_ + "out." + std::to_string(output) + ".";
  OutputStats s;
  s.delivered = reg.GetCounter(base + "delivered");
  s.dropped = reg.GetCounter(base + "dropped");
  s.latency_ms = reg.GetHistogram(base + "latency_ms");
  s.violations = reg.GetCounter(base + "violations");
  for (int i = 0; i < kNumStages; ++i) {
    s.bottleneck[i] =
        reg.GetCounter(base + "bottleneck." + StageName(static_cast<Stage>(i)));
  }
  return outputs_.emplace(output, s).first->second;
}

const QoSMonitor::OutputStats* QoSMonitor::FindStats(PortId output) const {
  auto it = outputs_.find(output);
  return it == outputs_.end() ? nullptr : &it->second;
}

void QoSMonitor::RecordDelivery(PortId output, double latency_ms,
                                const StageBreakdown* attr, int64_t now_us) {
  OutputStats& s = Stats(output);
  s.delivered->Add();
  s.delivered_n++;
  s.latency_ms->Record(latency_ms);
  s.latency_sum_ms += latency_ms;
  const QoSSpec* spec = GetSpec(output);
  double u = 1.0;
  if (spec != nullptr && !spec->latency.empty()) {
    u = spec->latency.Eval(latency_ms);
  }
  s.latency_utility_sum += u;
  if (spec != nullptr && !spec->latency.empty() && u < kViolationUtility) {
    s.violations->Add();
    s.violations_n++;
    std::ostringstream detail;
    detail << prefix_ << "out." << output << " latency_ms=" << latency_ms
           << " utility=" << u;
    if (attr != nullptr) {
      Stage dom = attr->dominant();
      s.bottleneck[static_cast<int>(dom)]->Add();
      detail << " dominant=" << StageName(dom) << " ("
             << attr->StageUs(dom) << "us of " << attr->total_us << "us)";
    }
    FlightRecorder::Global().Trigger("qos_violation", detail.str(), now_us);
  }
}

void QoSMonitor::RecordDrop(PortId output) {
  OutputStats& s = Stats(output);
  s.dropped->Add();
  s.dropped_n++;
}

double QoSMonitor::AvgLatencyMs(PortId output) const {
  const OutputStats* s = FindStats(output);
  if (s == nullptr || s->delivered_n == 0) return 0.0;
  return s->latency_sum_ms / static_cast<double>(s->delivered_n);
}

uint64_t QoSMonitor::Delivered(PortId output) const {
  const OutputStats* s = FindStats(output);
  return s == nullptr ? 0 : s->delivered_n;
}

uint64_t QoSMonitor::Violations(PortId output) const {
  const OutputStats* s = FindStats(output);
  return s == nullptr ? 0 : s->violations_n;
}

uint64_t QoSMonitor::Dropped(PortId output) const {
  const OutputStats* s = FindStats(output);
  return s == nullptr ? 0 : s->dropped_n;
}

double QoSMonitor::DeliveredFraction(PortId output) const {
  uint64_t d = Delivered(output);
  uint64_t x = Dropped(output);
  if (d + x == 0) return 1.0;
  return static_cast<double>(d) / static_cast<double>(d + x);
}

double QoSMonitor::CurrentUtility(PortId output) const {
  const QoSSpec* spec = GetSpec(output);
  if (spec == nullptr) return 1.0;
  const OutputStats* s = FindStats(output);
  double latency_part = 1.0;
  if (s != nullptr && s->delivered_n > 0) {
    latency_part =
        s->latency_utility_sum / static_cast<double>(s->delivered_n);
  }
  double loss_part =
      spec->loss.empty() ? 1.0 : spec->loss.Eval(DeliveredFraction(output));
  return latency_part * loss_part;
}

double QoSMonitor::AggregateUtility() const {
  double sum = 0.0;
  for (const auto& [port, spec] : specs_) sum += CurrentUtility(port);
  return sum;
}

void QoSMonitor::RecordBoxWork(BoxId box, double t_b_ms, int tuples) {
  Ewma& e = box_tb_ms_[box];
  for (int i = 0; i < tuples; ++i) e.Add(t_b_ms);
}

double QoSMonitor::BoxTbMs(BoxId box) const {
  auto it = box_tb_ms_.find(box);
  return it == box_tb_ms_.end() ? 0.0 : it->second.value();
}

}  // namespace aurora
