#include "engine/aurora_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace aurora {

AuroraEngine::AuroraEngine(EngineOptions opts)
    : opts_(opts), storage_(opts.memory_budget_bytes), shedder_(opts.shedder) {
  if (opts_.batch_size < 1) opts_.batch_size = 1;
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_tuples_in_ = reg.GetCounter("engine.tuples_in");
  m_tuples_shed_ = reg.GetCounter("engine.tuples_shed");
  m_tuples_blocked_ = reg.GetCounter("engine.tuples_blocked_upstream");
  m_ingest_blocked_ = reg.GetGauge("engine.ingest.blocked");
  m_activations_ = reg.GetCounter("engine.activations");
  m_sched_decisions_ = reg.GetCounter("engine.sched.decisions");
  m_box_exec_us_ = reg.GetHistogram("engine.box_exec_us");
  m_queue_wait_ms_ = reg.GetHistogram("engine.queue_wait_ms");
  m_queue_depth_ = reg.GetGauge("engine.queue_depth");
  m_batch_chunks_ = reg.GetCounter("engine.batch.emitted_chunks");
  m_batch_chunk_tuples_ = reg.GetCounter("engine.batch.emitted_tuples");
  m_batch_fanout_tuples_ = reg.GetCounter("engine.batch.fanout_tuples");
  m_batch_chunk_enqueued_ = reg.GetCounter("engine.batch.chunk_enqueued");
  m_batch_chunk_delivered_ = reg.GetCounter("engine.batch.chunk_delivered");
  m_batch_chunk_held_ = reg.GetCounter("engine.batch.chunk_held");
}

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

Result<PortId> AuroraEngine::AddInput(const std::string& name,
                                      SchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("input '" + name + "' needs a schema");
  }
  for (const auto& in : inputs_) {
    if (in.name == name) {
      return Status::AlreadyExists("input '" + name + "' already exists");
    }
  }
  inputs_.push_back(InputPort{name, std::move(schema), {}});
  return static_cast<PortId>(inputs_.size() - 1);
}

Result<PortId> AuroraEngine::AddOutput(const std::string& name) {
  for (const auto& out : outputs_) {
    if (out.name == name) {
      return Status::AlreadyExists("output '" + name + "' already exists");
    }
  }
  outputs_.push_back(OutputPort{name, nullptr, {}});
  return static_cast<PortId>(outputs_.size() - 1);
}

Result<BoxId> AuroraEngine::AddBox(const OperatorSpec& spec) {
  AURORA_ASSIGN_OR_RETURN(OperatorPtr op, CreateOperator(spec));
  BoxRt box;
  box.spec = spec;
  box.in_arcs.assign(static_cast<size_t>(op->num_inputs()), -1);
  box.out_arcs.assign(static_cast<size_t>(op->num_outputs()), {});
  box.op = std::move(op);
  boxes_.push_back(std::move(box));
  return static_cast<BoxId>(boxes_.size() - 1);
}

Result<ArcId> AuroraEngine::Connect(Endpoint from, Endpoint to) {
  // Validate endpoints.
  switch (from.kind) {
    case Endpoint::Kind::kInputPort:
      if (from.id < 0 || from.id >= static_cast<int>(inputs_.size())) {
        return Status::InvalidArgument("bad input port " + from.ToString());
      }
      break;
    case Endpoint::Kind::kBox: {
      if (from.id < 0 || from.id >= static_cast<int>(boxes_.size()) ||
          boxes_[from.id].removed) {
        return Status::InvalidArgument("bad source box " + from.ToString());
      }
      const BoxRt& b = boxes_[from.id];
      if (from.index < 0 || from.index >= b.op->num_outputs()) {
        return Status::InvalidArgument("bad box output " + from.ToString());
      }
      break;
    }
    case Endpoint::Kind::kOutputPort:
      return Status::InvalidArgument("cannot connect from an output port");
  }
  switch (to.kind) {
    case Endpoint::Kind::kInputPort:
      return Status::InvalidArgument("cannot connect into an input port");
    case Endpoint::Kind::kBox: {
      if (to.id < 0 || to.id >= static_cast<int>(boxes_.size()) ||
          boxes_[to.id].removed) {
        return Status::InvalidArgument("bad destination box " + to.ToString());
      }
      BoxRt& b = boxes_[to.id];
      if (to.index < 0 || to.index >= b.op->num_inputs()) {
        return Status::InvalidArgument("bad box input " + to.ToString());
      }
      if (b.in_arcs[to.index] >= 0) {
        return Status::AlreadyExists("box input " + to.ToString() +
                                     " already connected");
      }
      break;
    }
    case Endpoint::Kind::kOutputPort:
      if (to.id < 0 || to.id >= static_cast<int>(outputs_.size())) {
        return Status::InvalidArgument("bad output port " + to.ToString());
      }
      break;
  }

  // When both endpoints already know their schemas (e.g. an adopted box),
  // verify compatibility now instead of at InitializeBoxes.
  if (to.kind == Endpoint::Kind::kBox && boxes_[to.id].initialized) {
    auto from_schema = EndpointOutputSchema(from);
    if (from_schema.ok() &&
        !(*from_schema)->Equals(*boxes_[to.id].op->input_schema(to.index))) {
      return Status::InvalidArgument(
          "schema mismatch on arc: " + (*from_schema)->ToString() + " vs " +
          boxes_[to.id].op->input_schema(to.index)->ToString());
    }
  }

  ArcId id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back(ArcRt{});
  arcs_[id].from = from;
  arcs_[id].to = to;

  if (from.kind == Endpoint::Kind::kInputPort) {
    inputs_[from.id].out_arcs.push_back(id);
  } else {
    boxes_[from.id].out_arcs[from.index].push_back(id);
  }
  if (to.kind == Endpoint::Kind::kBox) {
    boxes_[to.id].in_arcs[to.index] = id;
  } else {
    outputs_[to.id].in_arcs.push_back(id);
  }
  RecomputeOutputDistances();
  return id;
}

Result<SchemaPtr> AuroraEngine::EndpointOutputSchema(const Endpoint& e) const {
  switch (e.kind) {
    case Endpoint::Kind::kInputPort:
      return inputs_[e.id].schema;
    case Endpoint::Kind::kBox: {
      const BoxRt& b = boxes_[e.id];
      if (!b.initialized) {
        return Status::FailedPrecondition("box " + std::to_string(e.id) +
                                          " not initialized yet");
      }
      return b.op->output_schema(e.index);
    }
    case Endpoint::Kind::kOutputPort:
      return Status::InvalidArgument("output ports have no schema");
  }
  return Status::Internal("bad endpoint kind");
}

bool AuroraEngine::IsBoxInitialized(BoxId box) const {
  if (box < 0 || box >= static_cast<int>(boxes_.size()) ||
      boxes_[box].removed) {
    return false;
  }
  return boxes_[box].initialized;
}

Status AuroraEngine::InitializeBoxes(bool require_all) {
  // Fixed-point pass: initialize every box whose input schemas are
  // available. The network is loop-free (§2.1), so this terminates with all
  // boxes initialized unless an input is unconnected or a cycle exists.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < boxes_.size(); ++i) {
      BoxRt& box = boxes_[i];
      if (box.removed || box.initialized) continue;
      std::vector<SchemaPtr> schemas;
      bool ready = true;
      for (int in = 0; in < box.op->num_inputs() && ready; ++in) {
        ArcId arc = box.in_arcs[in];
        if (arc < 0) {
          ready = false;
          break;
        }
        auto schema = EndpointOutputSchema(arcs_[arc].from);
        if (!schema.ok()) {
          ready = false;
          break;
        }
        schemas.push_back(*schema);
      }
      if (!ready) continue;
      AURORA_RETURN_NOT_OK(box.op->Init(std::move(schemas)));
      box.initialized = true;
      progress = true;
    }
  }
  if (require_all) {
    for (size_t i = 0; i < boxes_.size(); ++i) {
      const BoxRt& box = boxes_[i];
      if (!box.removed && !box.initialized) {
        for (int in = 0; in < box.op->num_inputs(); ++in) {
          if (box.in_arcs[in] < 0) {
            return Status::FailedPrecondition(
                "box " + std::to_string(i) + " (" + box.spec.kind + ") input " +
                std::to_string(in) + " is unconnected");
          }
        }
        return Status::FailedPrecondition(
            "box " + std::to_string(i) +
            " could not be initialized (cycle in the network?)");
      }
    }
  }
  RecomputeOutputDistances();
  return Status::OK();
}

Status AuroraEngine::MakeConnectionPoint(ArcId arc, const std::string& name,
                                         RetentionPolicy policy) {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return Status::InvalidArgument("bad arc id");
  }
  if (connection_points_.count(name)) {
    return Status::AlreadyExists("connection point '" + name + "' exists");
  }
  arcs_[arc].cp = std::make_unique<ConnectionPoint>(name, policy);
  connection_points_[name] = arc;
  if (durable_store_ != nullptr) BindConnectionPointStorage(arc);
  return Status::OK();
}

void AuroraEngine::AttachDurableStore(TieredStore* store) {
  durable_store_ = store;
  storage_.AttachStore(store);
  for (const auto& [name, arc] : connection_points_) {
    BindConnectionPointStorage(arc);
  }
}

void AuroraEngine::BindConnectionPointStorage(ArcId arc) {
  ArcRt& a = arcs_[arc];
  if (a.removed || a.cp == nullptr || a.cp->storage_bound()) return;
  SchemaPtr schema;
  auto s = EndpointOutputSchema(a.from);
  if (s.ok()) schema = *s;
  a.cp->BindStorage(durable_store_, "cp/" + a.cp->name(),
                    opts_.cp_cache_tuples, std::move(schema));
}

void AuroraEngine::WipeVolatileStorage() {
  for (auto& a : arcs_) {
    if (!a.removed && a.cp != nullptr) a.cp->DropMemoryTier();
  }
}

void AuroraEngine::RecoverDurableState(SimTime now) {
  for (auto& a : arcs_) {
    if (!a.removed && a.cp != nullptr && a.cp->storage_bound()) {
      a.cp->RecoverFromStorage(now);
    }
  }
}

Result<ConnectionPoint*> AuroraEngine::GetConnectionPoint(
    const std::string& name) {
  auto it = connection_points_.find(name);
  if (it == connection_points_.end()) {
    return Status::NotFound("connection point '" + name + "' not found");
  }
  return arcs_[it->second].cp.get();
}

Result<int> AuroraEngine::AttachAdHocQuery(const std::string& cp_name,
                                           Predicate predicate,
                                           OutputCallback sink) {
  AURORA_ASSIGN_OR_RETURN(ConnectionPoint * cp, GetConnectionPoint(cp_name));
  if (!sink) return Status::InvalidArgument("ad hoc query needs a sink");
  // Replay history first, then go live — the attachment point in time is
  // well-defined because both happen atomically w.r.t. tuple flow.
  auto shared_pred = std::make_shared<Predicate>(std::move(predicate));
  cp->QueryHistory(
      [&](const Tuple& t) { return shared_pred->Eval(t); },
      [&](const Tuple& t) { sink(t, t.timestamp()); });
  return cp->Subscribe(
      [shared_pred, sink = std::move(sink)](const Tuple& t, SimTime now) {
        if (shared_pred->Eval(t)) sink(t, now);
      });
}

Status AuroraEngine::DetachAdHocQuery(const std::string& cp_name, int token) {
  AURORA_ASSIGN_OR_RETURN(ConnectionPoint * cp, GetConnectionPoint(cp_name));
  cp->Unsubscribe(token);
  return Status::OK();
}

ConnectionPoint* AuroraEngine::ArcConnectionPoint(ArcId arc) {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return nullptr;
  }
  return arcs_[arc].cp.get();
}

// ---------------------------------------------------------------------------
// Dynamic reconfiguration
// ---------------------------------------------------------------------------

Status AuroraEngine::ChokeArc(ArcId arc) {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return Status::InvalidArgument("bad arc id");
  }
  arcs_[arc].choked = true;
  if (arcs_[arc].cp) arcs_[arc].cp->Choke();
  return Status::OK();
}

Status AuroraEngine::UnchokeArc(ArcId arc) {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return Status::InvalidArgument("bad arc id");
  }
  ArcRt& a = arcs_[arc];
  a.choked = false;
  if (a.cp) a.cp->Unchoke();
  // Held arrivals flow back in arrival order, ahead of any new traffic.
  for (auto& [t, us] : a.hold) {
    ArcEnqueue(a, std::move(t), us);
  }
  a.hold.clear();
  return Status::OK();
}

bool AuroraEngine::ArcChoked(ArcId arc) const {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size())) return false;
  return arcs_[arc].choked;
}

Result<std::vector<Tuple>> AuroraEngine::TakeHeldTuples(ArcId arc) {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return Status::InvalidArgument("bad arc id");
  }
  std::vector<Tuple> out;
  out.reserve(arcs_[arc].hold.size());
  for (auto& [t, us] : arcs_[arc].hold) out.push_back(std::move(t));
  arcs_[arc].hold.clear();
  return out;
}

size_t AuroraEngine::HeldTupleCount(ArcId arc) const {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size())) return 0;
  return arcs_[arc].hold.size();
}

Result<OperatorPtr> AuroraEngine::ExtractBoxOperator(BoxId box) {
  if (box < 0 || box >= static_cast<int>(boxes_.size()) ||
      boxes_[box].removed) {
    return Status::InvalidArgument("bad box id");
  }
  BoxRt& b = boxes_[box];
  for (ArcId arc : b.in_arcs) {
    if (arc >= 0) {
      return Status::FailedPrecondition("box still has a connected input arc");
    }
  }
  for (const auto& outs : b.out_arcs) {
    if (!outs.empty()) {
      return Status::FailedPrecondition("box still has a connected output arc");
    }
  }
  b.removed = true;
  return std::move(b.op);
}

Result<BoxId> AuroraEngine::AdoptBoxOperator(OperatorPtr op) {
  if (op == nullptr) return Status::InvalidArgument("null operator");
  BoxRt box;
  box.spec = op->spec();
  box.in_arcs.assign(static_cast<size_t>(op->num_inputs()), -1);
  box.out_arcs.assign(static_cast<size_t>(op->num_outputs()), {});
  box.op = std::move(op);
  box.initialized = true;  // arrives with schemas and state intact
  boxes_.push_back(std::move(box));
  return static_cast<BoxId>(boxes_.size() - 1);
}

Status AuroraEngine::DisconnectArc(ArcId arc) {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return Status::InvalidArgument("bad arc id");
  }
  ArcRt& a = arcs_[arc];
  if (!a.queue.empty()) {
    return Status::FailedPrecondition(
        "arc queue not empty (" + std::to_string(a.queue.size()) +
        " tuples); TakeArcQueue first");
  }
  if (!a.hold.empty()) {
    return Status::FailedPrecondition("arc has held tuples; TakeHeldTuples first");
  }
  auto erase_from = [arc](std::vector<ArcId>* list) {
    list->erase(std::remove(list->begin(), list->end(), arc), list->end());
  };
  if (a.from.kind == Endpoint::Kind::kInputPort) {
    erase_from(&inputs_[a.from.id].out_arcs);
  } else if (a.from.kind == Endpoint::Kind::kBox) {
    erase_from(&boxes_[a.from.id].out_arcs[a.from.index]);
  }
  if (a.to.kind == Endpoint::Kind::kBox) {
    boxes_[a.to.id].in_arcs[a.to.index] = -1;
  } else if (a.to.kind == Endpoint::Kind::kOutputPort) {
    erase_from(&outputs_[a.to.id].in_arcs);
  }
  a.removed = true;
  for (auto it = connection_points_.begin(); it != connection_points_.end();) {
    it = (it->second == arc) ? connection_points_.erase(it) : std::next(it);
  }
  a.cp.reset();
  RecomputeOutputDistances();
  return Status::OK();
}

Status AuroraEngine::RemoveBox(BoxId box) {
  if (box < 0 || box >= static_cast<int>(boxes_.size()) ||
      boxes_[box].removed) {
    return Status::InvalidArgument("bad box id");
  }
  BoxRt& b = boxes_[box];
  for (ArcId arc : b.in_arcs) {
    if (arc >= 0) {
      return Status::FailedPrecondition("box still has a connected input arc");
    }
  }
  for (const auto& outs : b.out_arcs) {
    if (!outs.empty()) {
      return Status::FailedPrecondition("box still has a connected output arc");
    }
  }
  b.removed = true;
  b.op.reset();
  return Status::OK();
}

Result<std::vector<Tuple>> AuroraEngine::TakeArcQueue(ArcId arc) {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return Status::InvalidArgument("bad arc id");
  }
  ArcRt& a = arcs_[arc];
  std::vector<Tuple> out;
  out.reserve(a.queue.size());
  while (!a.queue.empty()) {
    out.push_back(ArcDequeue(a));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

Result<PortId> AuroraEngine::FindInput(const std::string& name) const {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].name == name) return static_cast<PortId>(i);
  }
  return Status::NotFound("no input named '" + name + "'");
}

Result<PortId> AuroraEngine::FindOutput(const std::string& name) const {
  for (size_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i].name == name) return static_cast<PortId>(i);
  }
  return Status::NotFound("no output named '" + name + "'");
}

Result<ArcId> AuroraEngine::FindArcInto(BoxId box, int input_index) const {
  if (box < 0 || box >= static_cast<int>(boxes_.size()) ||
      boxes_[box].removed) {
    return Status::InvalidArgument("bad box id");
  }
  const BoxRt& b = boxes_[box];
  if (input_index < 0 || input_index >= static_cast<int>(b.in_arcs.size()) ||
      b.in_arcs[input_index] < 0) {
    return Status::NotFound("no arc into box input");
  }
  return b.in_arcs[input_index];
}

std::vector<ArcId> AuroraEngine::ArcsFrom(Endpoint from) const {
  if (from.kind == Endpoint::Kind::kInputPort &&
      from.id < static_cast<int>(inputs_.size())) {
    return inputs_[from.id].out_arcs;
  }
  if (from.kind == Endpoint::Kind::kBox &&
      from.id < static_cast<int>(boxes_.size()) && !boxes_[from.id].removed &&
      from.index < static_cast<int>(boxes_[from.id].out_arcs.size())) {
    return boxes_[from.id].out_arcs[from.index];
  }
  return {};
}

std::vector<ArcId> AuroraEngine::ArcsInto(PortId output_port) const {
  if (output_port < 0 || output_port >= static_cast<int>(outputs_.size())) {
    return {};
  }
  return outputs_[output_port].in_arcs;
}

Result<const OperatorSpec*> AuroraEngine::BoxSpec(BoxId box) const {
  if (box < 0 || box >= static_cast<int>(boxes_.size()) ||
      boxes_[box].removed) {
    return Status::InvalidArgument("bad box id");
  }
  return &boxes_[box].spec;
}

Result<Operator*> AuroraEngine::BoxOp(BoxId box) {
  if (box < 0 || box >= static_cast<int>(boxes_.size()) ||
      boxes_[box].removed) {
    return Status::InvalidArgument("bad box id");
  }
  return boxes_[box].op.get();
}

std::vector<BoxId> AuroraEngine::BoxIds() const {
  std::vector<BoxId> ids;
  for (size_t i = 0; i < boxes_.size(); ++i) {
    if (!boxes_[i].removed) ids.push_back(static_cast<BoxId>(i));
  }
  return ids;
}

Endpoint AuroraEngine::ArcFrom(ArcId arc) const { return arcs_[arc].from; }
Endpoint AuroraEngine::ArcTo(ArcId arc) const { return arcs_[arc].to; }

size_t AuroraEngine::ArcQueueSize(ArcId arc) const {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size())) return 0;
  return arcs_[arc].queue.size();
}

SeqNo AuroraEngine::ArcQueueMinSeq(ArcId arc) const {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return kNoSeqNo;
  }
  SeqNo min_seq = kNoSeqNo;
  auto consider = [&min_seq](SeqNo s) {
    if (s == kNoSeqNo) return;
    if (min_seq == kNoSeqNo || s < min_seq) min_seq = s;
  };
  for (const auto& t : arcs_[arc].queue.items()) consider(t.seq());
  for (const auto& [t, us] : arcs_[arc].hold) consider(t.seq());
  return min_seq;
}

AuroraEngine::OutputCallback AuroraEngine::GetOutputCallback(
    PortId output) const {
  if (output < 0 || output >= static_cast<int>(outputs_.size())) return nullptr;
  return outputs_[output].callback;
}

size_t AuroraEngine::num_boxes() const {
  size_t n = 0;
  for (const auto& b : boxes_) {
    if (!b.removed) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// QoS
// ---------------------------------------------------------------------------

Status AuroraEngine::SetOutputQoS(PortId output, QoSSpec spec) {
  if (output < 0 || output >= static_cast<int>(outputs_.size())) {
    return Status::InvalidArgument("bad output port");
  }
  qos_.SetSpec(output, std::move(spec));
  return Status::OK();
}

void AuroraEngine::WalkDownstream(const Endpoint& from, double cost_so_far_us,
                                  std::map<PortId, double>* outputs_cost) const {
  for (ArcId arc : ArcsFrom(from)) {
    const ArcRt& a = arcs_[arc];
    if (a.to.kind == Endpoint::Kind::kOutputPort) {
      auto it = outputs_cost->find(a.to.id);
      // Keep the most stringent (largest) accumulated time over paths.
      if (it == outputs_cost->end() || it->second < cost_so_far_us) {
        (*outputs_cost)[a.to.id] = cost_so_far_us;
      }
      continue;
    }
    const BoxRt& box = boxes_[a.to.id];
    double measured_ms = qos_.BoxTbMs(a.to.id);
    double t_b_us = measured_ms > 0.0 ? measured_ms * 1000.0
                                      : box.op->cost_micros_per_tuple();
    for (int k = 0; k < box.op->num_outputs(); ++k) {
      WalkDownstream(Endpoint::BoxPort(a.to.id, k), cost_so_far_us + t_b_us,
                     outputs_cost);
    }
  }
}

Result<QoSSpec> AuroraEngine::InferArcQoS(ArcId arc) const {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return Status::InvalidArgument("bad arc id");
  }
  const ArcRt& a = arcs_[arc];
  std::map<PortId, double> outputs_cost;
  if (a.to.kind == Endpoint::Kind::kOutputPort) {
    outputs_cost[a.to.id] = 0.0;
  } else {
    const BoxRt& box = boxes_[a.to.id];
    double measured_ms = qos_.BoxTbMs(a.to.id);
    double t_b_us = measured_ms > 0.0 ? measured_ms * 1000.0
                                      : box.op->cost_micros_per_tuple();
    for (int k = 0; k < box.op->num_outputs(); ++k) {
      WalkDownstream(Endpoint::BoxPort(a.to.id, k), t_b_us, &outputs_cost);
    }
  }
  std::vector<QoSSpec> candidates;
  for (const auto& [port, cost_us] : outputs_cost) {
    const QoSSpec* spec = qos_.GetSpec(port);
    if (spec == nullptr) continue;
    candidates.push_back(InferThroughBox(*spec, cost_us / 1000.0));
  }
  if (candidates.empty()) {
    return Status::NotFound("no QoS-bearing output reachable from arc");
  }
  if (candidates.size() == 1) return candidates[0];
  return CombineSpecs(candidates);
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

class AuroraEngine::RoutingEmitter : public Emitter {
 public:
  RoutingEmitter(AuroraEngine* engine, BoxId box, SimTime now,
                 std::vector<BoxId>* touched)
      : engine_(engine), box_(box), now_(now), touched_(touched) {}

  /// Lineage id the current input tuple carries; emitted tuples that don't
  /// already have one (freshly constructed by the operator) inherit it.
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  void Emit(int output, Tuple t) override {
    if (trace_id_ != 0 && t.trace_id() == 0) t.set_trace_id(trace_id_);
    engine_->Route(Endpoint::BoxPort(box_, output), t, now_, touched_);
  }

  /// Chunked sink for the batched path: one routing pass per staged run of
  /// same-output emissions. Seq/trace stamping already happened inside the
  /// BatchEmitter, so the chunk is routed as-is (trace_id_ is unset on the
  /// batched path; the loop below mirrors Emit for completeness).
  void EmitChunk(int output, Tuple* tuples, size_t n) override {
    if (n == 0) return;
    if (trace_id_ != 0) {
      for (size_t i = 0; i < n; ++i) {
        if (tuples[i].trace_id() == 0) tuples[i].set_trace_id(trace_id_);
      }
    }
    engine_->RouteChunk(Endpoint::BoxPort(box_, output), tuples, n, now_,
                        touched_);
  }

 private:
  AuroraEngine* engine_;
  BoxId box_;
  SimTime now_;
  std::vector<BoxId>* touched_;
  uint64_t trace_id_ = 0;
};

void AuroraEngine::Route(const Endpoint& from, const Tuple& t, SimTime now,
                         std::vector<BoxId>* touched) {
  for (ArcId arc : ArcsFrom(from)) {
    ArcRt& a = arcs_[arc];
    if (a.cp) {
      // Subscriber callbacks are application code, free to use Get(name).
      TupleHotPathSection::Exemption allow_get;
      a.cp->Record(t, now);
    }
    if (a.choked) {
      a.hold.emplace_back(t, now.micros());
      continue;
    }
    if (a.to.kind == Endpoint::Kind::kOutputPort) {
      DeliverToOutput(a.to.id, t, now);
    } else {
      ArcEnqueue(a, t, now.micros());
      if (touched != nullptr &&
          std::find(touched->begin(), touched->end(), a.to.id) ==
              touched->end()) {
        touched->push_back(a.to.id);
      }
    }
  }
}

void AuroraEngine::RouteChunk(const Endpoint& from, Tuple* tuples, size_t n,
                              SimTime now, std::vector<BoxId>* touched) {
  m_batch_chunks_->Add();
  m_batch_chunk_tuples_->Add(static_cast<uint64_t>(n));
  std::vector<ArcId> fan = ArcsFrom(from);
  for (size_t a_idx = 0; a_idx < fan.size(); ++a_idx) {
    ArcRt& a = arcs_[fan[a_idx]];
    const bool last_arc = a_idx + 1 == fan.size();
    m_batch_fanout_tuples_->Add(static_cast<uint64_t>(n));
    if (a.cp) {
      // Subscriber callbacks are application code, free to use Get(name).
      TupleHotPathSection::Exemption allow_get;
      for (size_t i = 0; i < n; ++i) a.cp->Record(tuples[i], now);
    }
    if (a.choked) {
      m_batch_chunk_held_->Add(static_cast<uint64_t>(n));
      const int64_t us = now.micros();
      for (size_t i = 0; i < n; ++i) a.hold.emplace_back(tuples[i], us);
      continue;
    }
    if (a.to.kind == Endpoint::Kind::kOutputPort) {
      m_batch_chunk_delivered_->Add(static_cast<uint64_t>(n));
      for (size_t i = 0; i < n; ++i) DeliverToOutput(a.to.id, tuples[i], now);
      continue;
    }
    m_batch_chunk_enqueued_->Add(static_cast<uint64_t>(n));
    ArcEnqueueChunk(a, tuples, n, now.micros(), last_arc);
    if (touched != nullptr &&
        std::find(touched->begin(), touched->end(), a.to.id) ==
            touched->end()) {
      touched->push_back(a.to.id);
    }
  }
}

void AuroraEngine::DeliverToOutput(PortId port, const Tuple& t, SimTime now) {
  double latency_ms = std::max(0.0, (now - t.timestamp()).millis());
  // Record the delivery span *before* telling the QoS monitor, so the
  // attributor's stage breakdown for this very tuple is ready and a QoS
  // violation can name its bottleneck stage.
  Tracer& tracer = Tracer::Global();
  const StageBreakdown* attr = nullptr;
  if (tracer.enabled() && t.trace_id() != 0) {
    tracer.Record({t.trace_id(), SpanKind::kDelivery, trace_node_,
                   "out:" + outputs_[port].name, now.micros(), now.micros()});
    const StageBreakdown* last = tracer.attribution().last_delivery();
    if (last != nullptr && last->trace_id == t.trace_id()) attr = last;
  }
  qos_.RecordDelivery(port, latency_ms, attr, now.micros());
  if (outputs_[port].callback) {
    // Output callbacks are application code, free to use Get(name).
    TupleHotPathSection::Exemption allow_get;
    outputs_[port].callback(t, now);
  }
}

Status AuroraEngine::PushInput(PortId input, Tuple t, SimTime now,
                               bool gate_ingest) {
  if (input < 0 || input >= static_cast<int>(inputs_.size())) {
    return Status::InvalidArgument("bad input port");
  }
  if (t.schema() == nullptr) {
    return Status::InvalidArgument("tuple has no schema");
  }
  if (!t.schema()->Equals(*inputs_[input].schema)) {
    return Status::InvalidArgument("tuple schema " + t.schema()->ToString() +
                                   " does not match input schema " +
                                   inputs_[input].schema->ToString());
  }
  m_tuples_in_->Add();
  if (shedder_.ShouldDrop(input, t, now)) {
    m_tuples_shed_->Add();
    // Remote tuples arrive with lineage already attached; close it out so
    // the attributor stops tracking a tuple that will never deliver.
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled() && t.trace_id() != 0) {
      tracer.Record({t.trace_id(), SpanKind::kShed, trace_node_,
                     "shed:in:" + inputs_[input].name, now.micros(),
                     now.micros()});
    }
    // Attribute the drop to every output downstream of this input so the
    // QoS monitor's delivered-fraction reflects shedding.
    for (const auto& info : shedder_.inputs()) {
      if (info.input != input) continue;
      for (PortId out : info.outputs) qos_.RecordDrop(out);
      break;
    }
    return Status::OK();
  }
  // The gate comes *after* the shedder so its arrival estimator keeps
  // seeing true offered load while the node is back-pressured.
  if (gate_ingest && ingest_blocked_) {
    m_tuples_blocked_->Add();
    for (const auto& info : shedder_.inputs()) {
      if (info.input != input) continue;
      for (PortId out : info.outputs) qos_.RecordDrop(out);
      break;
    }
    return Status::Unavailable("blocked upstream: out of downstream credit");
  }
  if (t.timestamp().micros() == 0) t.set_timestamp(now);
  tuples_ingested_++;
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    // Source tuples draw a (sampled) lineage id here; tuples arriving over
    // the wire keep the id their origin node assigned.
    if (t.trace_id() == 0) t.set_trace_id(tracer.NewTrace());
    if (t.trace_id() != 0) {
      tracer.Record({t.trace_id(), SpanKind::kEnqueue, trace_node_,
                     "in:" + inputs_[input].name, now.micros(), now.micros()});
    }
  }
  Route(Endpoint::InputPort(input), t, now, nullptr);
  storage_.EnforceBudget(AllQueues());
  return Status::OK();
}

Status AuroraEngine::PushInputByName(const std::string& name, Tuple t,
                                     SimTime now) {
  AURORA_ASSIGN_OR_RETURN(PortId port, FindInput(name));
  return PushInput(port, std::move(t), now);
}

void AuroraEngine::SetOutputCallback(PortId output, OutputCallback cb) {
  AURORA_CHECK(output >= 0 && output < static_cast<int>(outputs_.size()));
  outputs_[output].callback = std::move(cb);
}

Status AuroraEngine::EmitToOutputPort(PortId output, const Tuple& t,
                                      SimTime now) {
  if (output < 0 || output >= static_cast<int>(outputs_.size())) {
    return Status::InvalidArgument("bad output port");
  }
  DeliverToOutput(output, t, now);
  return Status::OK();
}

Status AuroraEngine::EnqueueOnArc(ArcId arc, Tuple t, SimTime now) {
  if (arc < 0 || arc >= static_cast<int>(arcs_.size()) || arcs_[arc].removed) {
    return Status::InvalidArgument("bad arc id");
  }
  ArcRt& a = arcs_[arc];
  if (a.to.kind == Endpoint::Kind::kOutputPort) {
    DeliverToOutput(a.to.id, t, now);
    return Status::OK();
  }
  ArcEnqueue(a, std::move(t), now.micros());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

bool AuroraEngine::BoxReady(const BoxRt& box) const {
  // `queued` counts consumable tuples across this box's in-arcs. A choked
  // arc's queue remains consumable (it drains); only *new* arrivals are
  // held — see ChokeArc — so choking does not affect readiness.
  return !box.removed && box.initialized && box.queued > 0;
}

bool AuroraEngine::HasWork() const { return ready_count_ > 0; }

void AuroraEngine::ArcEnqueue(ArcRt& arc, Tuple t, int64_t enqueue_us) {
  arc.queue.Push(std::move(t));
  arc.enqueue_us.push_back(enqueue_us);
  if (arc.to.kind == Endpoint::Kind::kBox) NoteBoxQueued(arc.to.id, +1);
}

void AuroraEngine::ArcEnqueueChunk(ArcRt& arc, Tuple* tuples, size_t n,
                                   int64_t enqueue_us, bool may_move) {
  for (size_t i = 0; i < n; ++i) {
    if (may_move) {
      arc.queue.Push(std::move(tuples[i]));
    } else {
      Tuple copy = tuples[i];
      arc.queue.Push(std::move(copy));
    }
    arc.enqueue_us.push_back(enqueue_us);
  }
  if (arc.to.kind == Endpoint::Kind::kBox) {
    NoteBoxQueued(arc.to.id, static_cast<int>(n));
  }
}

Tuple AuroraEngine::ArcDequeue(ArcRt& arc) {
  Tuple t = arc.queue.Pop();
  arc.enqueue_us.pop_front();
  if (arc.to.kind == Endpoint::Kind::kBox) NoteBoxQueued(arc.to.id, -1);
  return t;
}

int64_t AuroraEngine::SchedKey(const BoxRt& box) const {
  if (opts_.scheduler == SchedulerPolicy::kLongestQueue) {
    return static_cast<int64_t>(box.queued);
  }
  // kMinOutputDistance: nearer outputs first, so negate.
  return -static_cast<int64_t>(box.distance_to_output);
}

void AuroraEngine::NoteBoxQueued(BoxId box_id, int delta) {
  BoxRt& b = boxes_[box_id];
  bool was_ready = BoxReady(b);
  b.queued = static_cast<size_t>(static_cast<int64_t>(b.queued) + delta);
  bool now_ready = BoxReady(b);
  if (now_ready && !was_ready) ready_count_++;
  if (!now_ready && was_ready) ready_count_--;
  if (!UsesReadyHeap()) return;
  if (opts_.scheduler == SchedulerPolicy::kLongestQueue) {
    // The key *is* the queue length, so every change retires the box's
    // current heap entry and (if still ready) posts a fresh one.
    b.sched_gen++;
    if (now_ready) ready_heap_.push({SchedKey(b), box_id, b.sched_gen});
  } else {
    // kMinOutputDistance: the key is fixed per topology; only readiness
    // transitions touch the heap, so draining a deep backlog is churn-free.
    if (now_ready == was_ready) return;
    b.sched_gen++;
    if (now_ready) ready_heap_.push({SchedKey(b), box_id, b.sched_gen});
  }
}

void AuroraEngine::RebuildScheduler() {
  for (auto& box : boxes_) {
    box.queued = 0;
    box.sched_gen++;
  }
  for (const auto& a : arcs_) {
    if (!a.removed && a.to.kind == Endpoint::Kind::kBox) {
      boxes_[a.to.id].queued += a.queue.size();
    }
  }
  ready_count_ = 0;
  ready_heap_ = {};
  for (size_t i = 0; i < boxes_.size(); ++i) {
    const BoxRt& b = boxes_[i];
    if (!BoxReady(b)) continue;
    ready_count_++;
    if (UsesReadyHeap()) {
      ready_heap_.push({SchedKey(b), static_cast<BoxId>(i), b.sched_gen});
    }
  }
}

void AuroraEngine::RefreshQoSDeadlines() {
  for (size_t i = 0; i < boxes_.size(); ++i) {
    BoxRt& box = boxes_[i];
    if (box.removed || !box.initialized) continue;
    box.deadline_ms = 1e18;
    for (ArcId arc : box.in_arcs) {
      if (arc < 0) continue;
      auto spec = InferArcQoS(arc);
      if (!spec.ok() || spec->latency.empty()) continue;
      box.deadline_ms = std::min(box.deadline_ms, spec->latency.CriticalX(0.5));
    }
  }
}

Result<BoxId> AuroraEngine::PickBox(SimTime now) {
  const size_t n = boxes_.size();
  if (n == 0) return Status::NotFound("no boxes");
  switch (opts_.scheduler) {
    case SchedulerPolicy::kQoSSlack: {
      // Most urgent first: smallest (deadline - age of oldest queued tuple).
      int best = -1;
      double best_slack = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (!BoxReady(boxes_[i])) continue;
        double oldest_ms = 0.0;
        for (ArcId arc : boxes_[i].in_arcs) {
          if (arc < 0 || arcs_[arc].queue.empty()) continue;
          oldest_ms = std::max(
              oldest_ms,
              (now - arcs_[arc].queue.Front().timestamp()).millis());
        }
        double slack = boxes_[i].deadline_ms - oldest_ms;
        if (best < 0 || slack < best_slack) {
          best = static_cast<int>(i);
          best_slack = slack;
        }
      }
      if (best < 0) return Status::NotFound("no ready box");
      return best;
    }
    case SchedulerPolicy::kRoundRobin:
    case SchedulerPolicy::kTupleAtATime: {
      for (size_t step = 0; step < n; ++step) {
        size_t i = (rr_next_box_ + step) % n;
        if (BoxReady(boxes_[i])) {
          rr_next_box_ = static_cast<int>((i + 1) % n);
          return static_cast<BoxId>(i);
        }
      }
      return Status::NotFound("no ready box");
    }
    case SchedulerPolicy::kLongestQueue:
    case SchedulerPolicy::kMinOutputDistance: {
      // O(log n) pop from the lazily-invalidated ready heap. Deep stale
      // entries only surface (and get discarded) when they reach the top,
      // so cap the garbage with an occasional O(n) rebuild.
      if (ready_heap_.size() > 64 && ready_heap_.size() > 8 * n) {
        RebuildScheduler();
      }
      while (!ready_heap_.empty()) {
        const ReadyEntry top = ready_heap_.top();
        const BoxRt& b = boxes_[top.box];
        if (top.gen != b.sched_gen || !BoxReady(b)) {
          ready_heap_.pop();  // stale: queue state moved on since the push
          continue;
        }
        // Max key first; ties broken toward the smallest box id — both
        // exactly as the old first-best-wins linear scan decided.
        return top.box;
      }
      return Status::NotFound("no ready box");
    }
  }
  return Status::Internal("bad scheduler policy");
}

void AuroraEngine::EnsureBoxProfile(BoxId box_id, BoxRt* box) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string base = "engine.box.n" + std::to_string(trace_node_) + "." +
                           std::to_string(box_id) + ":" + box->spec.kind + ".";
  box->prof_activations = reg.GetCounter(base + "activations");
  box->prof_tuples = reg.GetCounter(base + "tuples");
  box->prof_self_us = reg.GetCounter(base + "self_us");
  box->prof_tuple_cost_us = reg.GetHistogram(base + "tuple_cost_us");
}

double AuroraEngine::ActivateBox(BoxId box_id, SimTime now,
                                 std::vector<BoxId>* touched) {
  BoxRt& box = boxes_[box_id];
  if (box.prof_activations == nullptr) EnsureBoxProfile(box_id, &box);
  if (opts_.batch_size > 1 &&
      opts_.scheduler != SchedulerPolicy::kTupleAtATime &&
      box.op->num_inputs() == 1) {
    return ActivateBoxBatched(box_id, now, touched);
  }
  int budget = opts_.scheduler == SchedulerPolicy::kTupleAtATime
                   ? 1
                   : opts_.train_size;
  double cost_us = 0.0;
  double wait_sum_ms = 0.0;
  int processed = 0;
  RoutingEmitter emitter(this, box_id, now, touched);
  const int n_inputs = box.op->num_inputs();
  int idle_scans = 0;
  while (processed < budget && idle_scans < n_inputs) {
    int in = box.rr_next_input % n_inputs;
    box.rr_next_input = (box.rr_next_input + 1) % n_inputs;
    ArcId arc = box.in_arcs[in];
    if (arc < 0 || arcs_[arc].queue.empty()) {
      idle_scans++;
      continue;
    }
    idle_scans = 0;
    ArcRt& a = arcs_[arc];
    uint64_t reads_before = a.queue.unspill_reads();
    int64_t enq_us = a.enqueue_us.front();
    Tuple t = ArcDequeue(a);
    double wait_ms = static_cast<double>(now.micros() - enq_us) / 1000.0;
    wait_sum_ms += wait_ms;
    m_queue_wait_ms_->Record(wait_ms);
    double tuple_cost_us = box.op->cost_micros_per_tuple();
    tuple_cost_us += static_cast<double>(a.queue.unspill_reads() -
                                         reads_before) *
                     opts_.spill_read_cost_us;
    cost_us += tuple_cost_us;
    box.prof_tuple_cost_us->Record(tuple_cost_us);
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled() && t.trace_id() != 0) {
      tracer.Record({t.trace_id(), SpanKind::kBoxExec, trace_node_,
                     "box:" + box.spec.kind, now.micros(),
                     now.micros() + static_cast<int64_t>(tuple_cost_us)});
    }
    emitter.set_trace_id(t.trace_id());
    Status st;
    {
      // Per-tuple operator work must use bound field indices, not
      // Get(name); see TupleHotPathSection.
      TupleHotPathSection hot_path;
      st = box.op->Process(in, t, now, &emitter);
    }
    if (!st.ok() && deferred_error_.ok()) deferred_error_ = st;
    processed++;
  }
  if (processed > 0) {
    double t_b_ms = wait_sum_ms / processed +
                    (cost_us / processed) / 1000.0;
    qos_.RecordBoxWork(box_id, t_b_ms, processed);
    total_activations_++;
    m_activations_->Add();
    m_box_exec_us_->Record(cost_us);
    box.prof_activations->Add();
    box.prof_tuples->Add(static_cast<uint64_t>(processed));
    box.prof_self_us->Add(static_cast<uint64_t>(cost_us));
  }
  return cost_us;
}

double AuroraEngine::ActivateBoxBatched(BoxId box_id, SimTime now,
                                        std::vector<BoxId>* touched) {
  BoxRt& box = boxes_[box_id];
  ArcId arc_id = box.in_arcs[0];
  if (arc_id < 0) return 0.0;
  ArcRt& a = arcs_[arc_id];
  const int budget = opts_.train_size;
  double cost_us = 0.0;
  double wait_sum_ms = 0.0;
  int processed = 0;
  RoutingEmitter emitter(this, box_id, now, touched);
  Tracer& tracer = Tracer::Global();
  // Stack-local scratch: output callbacks run inside ProcessBatch emissions
  // and are free to re-enter the engine, so a member buffer could be
  // clobbered mid-iteration. Column/tuple capacity still amortizes across
  // the chunks of one activation.
  TupleBatch batch;
  batch.Reserve(static_cast<size_t>(std::min(budget, opts_.batch_size)));
  // The queue is re-checked per chunk, so a self-feeding box sees its own
  // emissions exactly as the scalar loop would.
  while (processed < budget && !a.queue.empty()) {
    const int want = std::min(budget - processed, opts_.batch_size);
    batch.Clear();
    int got = 0;
    // Per-tuple accounting identical to the scalar activation loop, with
    // consecutive equal histogram samples collapsed into one RecordN call
    // (RecordN is defined to be bit-identical to the per-call sequence).
    // Runs are flushed in arrival order, so even the floating sum inside
    // each histogram accumulates in the scalar order.
    double run_wait_ms = 0.0, run_cost_us = 0.0;
    uint64_t run_wait_n = 0, run_cost_n = 0;
    const bool tracing = tracer.enabled();
    while (got < want && !a.queue.empty()) {
      uint64_t reads_before = a.queue.unspill_reads();
      int64_t enq_us = a.enqueue_us.front();
      Tuple t = a.queue.Pop();
      a.enqueue_us.pop_front();
      double wait_ms = static_cast<double>(now.micros() - enq_us) / 1000.0;
      wait_sum_ms += wait_ms;
      if (run_wait_n > 0 && wait_ms != run_wait_ms) {
        m_queue_wait_ms_->RecordN(run_wait_ms, run_wait_n);
        run_wait_n = 0;
      }
      run_wait_ms = wait_ms;
      run_wait_n++;
      double tuple_cost_us = box.op->cost_micros_per_tuple();
      tuple_cost_us += static_cast<double>(a.queue.unspill_reads() -
                                           reads_before) *
                       opts_.spill_read_cost_us;
      cost_us += tuple_cost_us;
      if (run_cost_n > 0 && tuple_cost_us != run_cost_us) {
        box.prof_tuple_cost_us->RecordN(run_cost_us, run_cost_n);
        run_cost_n = 0;
      }
      run_cost_us = tuple_cost_us;
      run_cost_n++;
      if (tracing && t.trace_id() != 0) {
        tracer.Record({t.trace_id(), SpanKind::kBoxExec, trace_node_,
                       "box:" + box.spec.kind, now.micros(),
                       now.micros() + static_cast<int64_t>(tuple_cost_us)});
      }
      batch.Push(std::move(t), now);
      got++;
    }
    if (run_wait_n > 0) m_queue_wait_ms_->RecordN(run_wait_ms, run_wait_n);
    if (run_cost_n > 0) box.prof_tuple_cost_us->RecordN(run_cost_us, run_cost_n);
    // One scheduler update for the whole dequeue run — same final queued
    // count and readiness as `got` per-tuple NoteBoxQueued calls, minus the
    // heap churn.
    if (a.to.kind == Endpoint::Kind::kBox) NoteBoxQueued(a.to.id, -got);
    // Seq/trace inheritance happens inside ProcessBatch's BatchEmitter (the
    // engine can't know per-emission provenance mid-batch), so the routing
    // emitter's trace id stays unset here.
    Status st;
    {
      TupleHotPathSection hot_path;
      st = box.op->ProcessBatch(0, batch, &emitter);
    }
    if (!st.ok() && deferred_error_.ok()) deferred_error_ = st;
    processed += got;
  }
  if (processed > 0) {
    double t_b_ms = wait_sum_ms / processed +
                    (cost_us / processed) / 1000.0;
    qos_.RecordBoxWork(box_id, t_b_ms, processed);
    total_activations_++;
    m_activations_->Add();
    m_box_exec_us_->Record(cost_us);
    box.prof_activations->Add();
    box.prof_tuples->Add(static_cast<uint64_t>(processed));
    box.prof_self_us->Add(static_cast<uint64_t>(cost_us));
  }
  return cost_us;
}

Result<double> AuroraEngine::RunOneStep(SimTime now) {
  if (!deferred_error_.ok()) {
    Status err = deferred_error_;
    deferred_error_ = Status::OK();
    return err;
  }
  auto pick = PickBox(now);
  if (!pick.ok()) return 0.0;
  m_sched_decisions_->Add();
  std::vector<BoxId> touched;
  double cost_us = ActivateBox(*pick, now, &touched);
  // Push the train toward the output (train_depth > 1): activate the boxes
  // that just received tuples, layer by layer.
  for (int depth = 1; depth < opts_.train_depth && !touched.empty(); ++depth) {
    std::vector<BoxId> next;
    for (BoxId b : touched) {
      if (BoxReady(boxes_[b])) cost_us += ActivateBox(b, now, &next);
    }
    touched = std::move(next);
  }
  storage_.EnforceBudget(AllQueues());
  total_cpu_micros_ += cost_us;
  m_queue_depth_->Set(static_cast<double>(TotalQueuedTuples()));
  if (!deferred_error_.ok()) {
    Status err = deferred_error_;
    deferred_error_ = Status::OK();
    return err;
  }
  return cost_us;
}

Status AuroraEngine::RunUntilQuiescent(SimTime now, int max_steps) {
  for (int i = 0; i < max_steps; ++i) {
    if (!HasWork()) return Status::OK();
    auto cost = RunOneStep(now);
    AURORA_RETURN_NOT_OK(cost.status());
  }
  return Status::ResourceExhausted("network did not quiesce within step limit");
}

void AuroraEngine::Tick(SimTime now) {
  for (size_t i = 0; i < boxes_.size(); ++i) {
    BoxRt& box = boxes_[i];
    if (box.removed || !box.initialized) continue;
    RoutingEmitter emitter(this, static_cast<BoxId>(i), now, nullptr);
    box.op->OnTick(now, &emitter);
  }
  // The tiered store's dropper (group fsync, segment seal, compaction) runs
  // on the same deterministic tick cadence as the operators.
  if (durable_store_ != nullptr) durable_store_->Tick(now);
}

Status AuroraEngine::DrainBoxState(BoxId box, SimTime now) {
  if (box < 0 || box >= static_cast<int>(boxes_.size()) ||
      boxes_[box].removed) {
    return Status::InvalidArgument("bad box id");
  }
  RoutingEmitter emitter(this, box, now, nullptr);
  boxes_[box].op->Drain(&emitter);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Support
// ---------------------------------------------------------------------------

void AuroraEngine::RecomputeOutputDistances() {
  // Reverse BFS from output ports.
  for (auto& box : boxes_) box.distance_to_output = 1 << 20;
  std::deque<std::pair<BoxId, int>> frontier;
  for (const auto& out : outputs_) {
    for (ArcId arc : out.in_arcs) {
      const ArcRt& a = arcs_[arc];
      if (a.removed) continue;
      if (a.from.kind == Endpoint::Kind::kBox) {
        frontier.emplace_back(a.from.id, 0);
      }
    }
  }
  while (!frontier.empty()) {
    auto [box_id, dist] = frontier.front();
    frontier.pop_front();
    BoxRt& box = boxes_[box_id];
    if (box.removed || box.distance_to_output <= dist) continue;
    box.distance_to_output = dist;
    for (ArcId arc : box.in_arcs) {
      if (arc < 0) continue;
      const ArcRt& a = arcs_[arc];
      if (a.from.kind == Endpoint::Kind::kBox) {
        frontier.emplace_back(a.from.id, dist + 1);
      }
    }
  }
  // Distances feed kMinOutputDistance's scheduler keys, and every caller is
  // a topology change (connect, disconnect, box init) that can also flip
  // readiness — reseed the ready-queue accounting in one place.
  RebuildScheduler();
}

std::vector<SpillableQueue> AuroraEngine::AllQueues() {
  std::vector<SpillableQueue> queues;
  queues.reserve(arcs_.size());
  for (size_t i = 0; i < arcs_.size(); ++i) {
    ArcRt& a = arcs_[i];
    if (!a.removed && a.to.kind == Endpoint::Kind::kBox) {
      queues.push_back(SpillableQueue{&a.queue, static_cast<int>(i)});
    }
  }
  return queues;
}

size_t AuroraEngine::TotalQueuedTuples() const {
  size_t total = 0;
  for (const auto& a : arcs_) {
    if (!a.removed) total += a.queue.size();
  }
  return total;
}

void AuroraEngine::SetIngestBlocked(bool blocked) {
  ingest_blocked_ = blocked;
  m_ingest_blocked_->Set(blocked ? 1.0 : 0.0);
}

size_t AuroraEngine::InputBacklogBytes(PortId input) const {
  if (input < 0 || input >= static_cast<int>(inputs_.size())) return 0;
  size_t bytes = 0;
  for (ArcId arc : inputs_[input].out_arcs) {
    const ArcRt& a = arcs_[arc];
    if (a.removed) continue;
    bytes += a.queue.bytes();
    for (const auto& [t, us] : a.hold) bytes += t.WireSize();
  }
  return bytes;
}

void AuroraEngine::RebuildShedderModel() {
  // Expected downstream CPU cost of one tuple entering `endpoint`, using
  // measured selectivities where available.
  std::function<double(const Endpoint&)> cost_from =
      [&](const Endpoint& from) -> double {
    double total = 0.0;
    for (ArcId arc : ArcsFrom(from)) {
      const ArcRt& a = arcs_[arc];
      if (a.to.kind != Endpoint::Kind::kBox) continue;
      const BoxRt& box = boxes_[a.to.id];
      if (!box.initialized) continue;
      double c = box.op->cost_micros_per_tuple();
      double sel = box.op->selectivity();
      double downstream = 0.0;
      for (int k = 0; k < box.op->num_outputs(); ++k) {
        downstream += cost_from(Endpoint::BoxPort(a.to.id, k));
      }
      total += c + sel * downstream;
    }
    return total;
  };

  std::vector<LoadShedder::InputInfo> infos;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    LoadShedder::InputInfo info;
    info.input = static_cast<PortId>(i);
    info.downstream_cost_us =
        std::max(0.1, cost_from(Endpoint::InputPort(static_cast<int>(i))));
    std::map<PortId, double> outputs_cost;
    WalkDownstream(Endpoint::InputPort(static_cast<int>(i)), 0.0,
                   &outputs_cost);
    double slope = 0.0;
    for (const auto& [port, cost] : outputs_cost) {
      info.outputs.push_back(port);
      const QoSSpec* spec = qos_.GetSpec(port);
      if (spec != nullptr && !spec->loss.empty()) {
        slope += (spec->loss.Eval(1.0) - spec->loss.Eval(0.5)) / 0.5;
      } else {
        slope += 1.0;
      }
      // Semantic shedding uses the first downstream value-based graph
      // whose attribute exists on this input's schema.
      if (spec != nullptr && !spec->value.empty() &&
          info.value_graph.empty() &&
          inputs_[i].schema->HasField(spec->value_field)) {
        info.value_field = spec->value_field;
        info.value_graph = spec->value;
        // Resolve the field index once here so the per-tuple shedding
        // decision is an array access, not a field-name scan.
        auto idx = inputs_[i].schema->IndexOf(spec->value_field);
        if (idx.ok()) info.value_index = static_cast<int>(*idx);
      }
    }
    info.utility_slope = std::max(1e-6, slope);
    infos.push_back(std::move(info));
  }
  shedder_.SetInputs(std::move(infos));
}

}  // namespace aurora
