#include "engine/threaded_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace aurora {

// ---------------------------------------------------------------------------
// Construction / topology
// ---------------------------------------------------------------------------

ThreadedEngine::ThreadedEngine(ThreadedEngineOptions opts) : opts_(opts) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.train_size < 1) opts_.train_size = 1;
  if (opts_.ring_capacity < 2) opts_.ring_capacity = 2;
  if (opts_.batch_size < 1) opts_.batch_size = 1;
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_tuples_in_ = reg.GetCounter("engine.threaded.tuples_in");
  m_delivered_ = reg.GetCounter("engine.threaded.delivered");
  m_activations_ = reg.GetCounter("engine.threaded.activations");
  m_ring_full_ = reg.GetCounter("engine.threaded.ring_full_events");
  m_workers_ = reg.GetGauge("engine.threaded.workers");
  m_steals_ = reg.GetGauge("engine.threaded.steals");
  m_batch_chunks_ = reg.GetCounter("engine.threaded.batch.emitted_chunks");
  m_batch_chunk_tuples_ =
      reg.GetCounter("engine.threaded.batch.emitted_tuples");
  m_multipush_publishes_ =
      reg.GetCounter("engine.threaded.batch.multipush_publishes");
}

ThreadedEngine::~ThreadedEngine() {
  if (running()) (void)Stop();
}

Result<PortId> ThreadedEngine::AddInput(const std::string& name,
                                        SchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("input '" + name + "' needs a schema");
  }
  for (const auto& in : inputs_) {
    if (in.name == name) {
      return Status::AlreadyExists("input '" + name + "' already exists");
    }
  }
  inputs_.push_back(InputPort{name, std::move(schema), {}});
  return static_cast<PortId>(inputs_.size() - 1);
}

Result<PortId> ThreadedEngine::AddOutput(const std::string& name) {
  for (const auto& out : outputs_) {
    if (out.name == name) {
      return Status::AlreadyExists("output '" + name + "' already exists");
    }
  }
  outputs_.emplace_back(name);
  return static_cast<PortId>(outputs_.size() - 1);
}

Result<BoxId> ThreadedEngine::AddBox(const OperatorSpec& spec) {
  AURORA_ASSIGN_OR_RETURN(OperatorPtr op, CreateOperator(spec));
  boxes_.emplace_back();
  BoxRt& box = boxes_.back();
  box.spec = spec;
  box.in_arcs.assign(static_cast<size_t>(op->num_inputs()), -1);
  box.out_arcs.assign(static_cast<size_t>(op->num_outputs()), {});
  box.op = std::move(op);
  return static_cast<BoxId>(boxes_.size() - 1);
}

Result<ArcId> ThreadedEngine::Connect(Endpoint from, Endpoint to) {
  AURORA_CHECK(!running()) << "Connect after Start";
  switch (from.kind) {
    case Endpoint::Kind::kInputPort:
      if (from.id < 0 || from.id >= static_cast<int>(inputs_.size())) {
        return Status::InvalidArgument("bad input port " + from.ToString());
      }
      break;
    case Endpoint::Kind::kBox: {
      if (from.id < 0 || from.id >= static_cast<int>(boxes_.size())) {
        return Status::InvalidArgument("bad source box " + from.ToString());
      }
      const BoxRt& b = boxes_[from.id];
      if (from.index < 0 || from.index >= b.op->num_outputs()) {
        return Status::InvalidArgument("bad box output " + from.ToString());
      }
      break;
    }
    case Endpoint::Kind::kOutputPort:
      return Status::InvalidArgument("cannot connect from an output port");
  }
  switch (to.kind) {
    case Endpoint::Kind::kInputPort:
      return Status::InvalidArgument("cannot connect into an input port");
    case Endpoint::Kind::kBox: {
      if (to.id < 0 || to.id >= static_cast<int>(boxes_.size())) {
        return Status::InvalidArgument("bad destination box " + to.ToString());
      }
      BoxRt& b = boxes_[to.id];
      if (to.index < 0 || to.index >= b.op->num_inputs()) {
        return Status::InvalidArgument("bad box input " + to.ToString());
      }
      if (b.in_arcs[to.index] >= 0) {
        return Status::AlreadyExists("box input " + to.ToString() +
                                     " already connected");
      }
      break;
    }
    case Endpoint::Kind::kOutputPort:
      if (to.id < 0 || to.id >= static_cast<int>(outputs_.size())) {
        return Status::InvalidArgument("bad output port " + to.ToString());
      }
      break;
  }

  ArcId id = static_cast<ArcId>(arcs_.size());
  arcs_.emplace_back();
  arcs_[id].from = from;
  arcs_[id].to = to;
  if (from.kind == Endpoint::Kind::kInputPort) {
    inputs_[from.id].out_arcs.push_back(id);
  } else {
    boxes_[from.id].out_arcs[from.index].push_back(id);
  }
  if (to.kind == Endpoint::Kind::kBox) {
    boxes_[to.id].in_arcs[to.index] = id;
  }
  return id;
}

Result<SchemaPtr> ThreadedEngine::EndpointOutputSchema(
    const Endpoint& e) const {
  switch (e.kind) {
    case Endpoint::Kind::kInputPort:
      return inputs_[e.id].schema;
    case Endpoint::Kind::kBox: {
      const BoxRt& b = boxes_[e.id];
      if (!b.initialized) {
        return Status::FailedPrecondition("box " + std::to_string(e.id) +
                                          " not initialized yet");
      }
      return b.op->output_schema(e.index);
    }
    case Endpoint::Kind::kOutputPort:
      return Status::InvalidArgument("output ports have no schema");
  }
  return Status::Internal("bad endpoint kind");
}

bool ThreadedEngine::IsBoxInitialized(BoxId box) const {
  if (box < 0 || box >= static_cast<int>(boxes_.size())) return false;
  return boxes_[box].initialized;
}

Status ThreadedEngine::InitializeBoxes(bool require_all) {
  // Fixed-point pass, as AuroraEngine::InitializeBoxes: initialize every
  // box whose input schemas are available; loop-free networks terminate.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < boxes_.size(); ++i) {
      BoxRt& box = boxes_[i];
      if (box.initialized) continue;
      std::vector<SchemaPtr> schemas;
      bool ready = true;
      for (int in = 0; in < box.op->num_inputs() && ready; ++in) {
        ArcId arc = box.in_arcs[in];
        if (arc < 0) {
          ready = false;
          break;
        }
        auto schema = EndpointOutputSchema(arcs_[arc].from);
        if (!schema.ok()) {
          ready = false;
          break;
        }
        schemas.push_back(*schema);
      }
      if (!ready) continue;
      AURORA_RETURN_NOT_OK(box.op->Init(std::move(schemas)));
      box.initialized = true;
      progress = true;
    }
  }
  if (require_all) {
    for (size_t i = 0; i < boxes_.size(); ++i) {
      if (!boxes_[i].initialized) {
        return Status::FailedPrecondition(
            "box " + std::to_string(i) + " (" + boxes_[i].spec.kind +
            ") could not be initialized (unconnected input or cycle)");
      }
    }
  }
  return Status::OK();
}

Result<PortId> ThreadedEngine::FindInput(const std::string& name) const {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].name == name) return static_cast<PortId>(i);
  }
  return Status::NotFound("no input '" + name + "'");
}

Result<PortId> ThreadedEngine::FindOutput(const std::string& name) const {
  for (size_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i].name == name) return static_cast<PortId>(i);
  }
  return Status::NotFound("no output '" + name + "'");
}

void ThreadedEngine::SetOutputCallback(PortId output, OutputCallback cb) {
  AURORA_CHECK(output >= 0 && output < static_cast<int>(outputs_.size()));
  outputs_[output].callback = std::move(cb);
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

namespace {
int FindRoot(std::vector<int>& parent, int x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}
}  // namespace

void ThreadedEngine::PartitionBoxes() {
  // Weakly-connected components over box->box arcs. Boxes that only share
  // an input port are independent flows and may land on different workers.
  int n = static_cast<int>(boxes_.size());
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  for (const ArcRt& arc : arcs_) {
    if (arc.from.is_box() && arc.to.is_box()) {
      int a = FindRoot(parent, arc.from.id);
      int b = FindRoot(parent, arc.to.id);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  struct Component {
    int root = -1;
    double cost = 0.0;
    std::vector<int> members;
  };
  std::vector<Component> comps;
  std::vector<int> comp_of(n, -1);
  for (int i = 0; i < n; ++i) {
    int root = FindRoot(parent, i);
    if (comp_of[root] < 0) {
      comp_of[root] = static_cast<int>(comps.size());
      Component c;
      c.root = root;
      comps.push_back(std::move(c));
    }
    Component& c = comps[comp_of[root]];
    c.members.push_back(i);
    c.cost += boxes_[i].op->cost_micros_per_tuple();
  }
  // Greedy LPT: heaviest component to the least-loaded worker; determinism
  // via (cost desc, root asc) ordering and lowest-index tie-break.
  std::sort(comps.begin(), comps.end(), [](const Component& a,
                                           const Component& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.root < b.root;
  });
  std::vector<double> load(static_cast<size_t>(opts_.workers), 0.0);
  for (const Component& c : comps) {
    int target = 0;
    for (int w = 1; w < opts_.workers; ++w) {
      if (load[w] < load[target]) target = w;
    }
    load[target] += c.cost;
    for (int member : c.members) boxes_[member].partition = target;
  }
}

void ThreadedEngine::ComputePriorities() {
  // Reverse BFS from output-port arcs: boxes closer to an output run first
  // (the kMinOutputDistance discipline), which drains rings instead of
  // growing them.
  constexpr int kFar = 1 << 20;
  std::vector<int> dist(boxes_.size(), kFar);
  std::vector<BoxId> frontier;
  for (const ArcRt& arc : arcs_) {
    if (arc.to.kind == Endpoint::Kind::kOutputPort && arc.from.is_box()) {
      if (dist[arc.from.id] > 1) {
        dist[arc.from.id] = 1;
        frontier.push_back(arc.from.id);
      }
    }
  }
  while (!frontier.empty()) {
    std::vector<BoxId> next;
    for (BoxId b : frontier) {
      for (ArcId in : boxes_[b].in_arcs) {
        if (in < 0 || !arcs_[in].from.is_box()) continue;
        BoxId up = arcs_[in].from.id;
        if (dist[up] > dist[b] + 1) {
          dist[up] = dist[b] + 1;
          next.push_back(up);
        }
      }
    }
    frontier = std::move(next);
  }
  for (size_t i = 0; i < boxes_.size(); ++i) {
    boxes_[i].priority = -static_cast<int64_t>(dist[i]);
  }
}

// ---------------------------------------------------------------------------
// Start / Stop
// ---------------------------------------------------------------------------

Status ThreadedEngine::Start() {
  if (running()) return Status::FailedPrecondition("engine already running");
  AURORA_RETURN_NOT_OK(InitializeBoxes());
  for (ArcRt& arc : arcs_) {
    if (arc.to.is_box() && arc.ring == nullptr) {
      arc.ring = std::make_unique<BoundedRing<Tuple>>(opts_.ring_capacity);
    }
  }
  PartitionBoxes();
  ComputePriorities();
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    deferred_error_ = Status::OK();
  }
  m_workers_->Set(static_cast<double>(opts_.workers));
  pool_ = std::make_unique<WorkerPool>(opts_.workers);
  pool_->Start([this](int box, int worker) { RunReadyItem(box, worker); });
  return Status::OK();
}

Status ThreadedEngine::Stop() {
  if (!running()) return Status::FailedPrecondition("engine not running");
  WaitQuiescent();
  m_steals_->Set(static_cast<double>(pool_->steals()));
  pool_->Stop();
  pool_.reset();
  std::lock_guard<std::mutex> lock(error_mu_);
  Status err = deferred_error_;
  deferred_error_ = Status::OK();
  return err;
}

void ThreadedEngine::WaitQuiescent() {
  if (!running()) return;
  while (work_items_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
#ifndef NDEBUG
  for (const ArcRt& arc : arcs_) {
    if (arc.ring != nullptr) {
      AURORA_DCHECK(arc.ring->EmptyApprox())
          << "quiescent with tuples on arc " << arc.from.ToString() << "->"
          << arc.to.ToString();
    }
  }
#endif
}

void ThreadedEngine::DeferError(const Status& s) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (deferred_error_.ok()) deferred_error_ = s;
}

// ---------------------------------------------------------------------------
// Ready protocol
// ---------------------------------------------------------------------------

void ThreadedEngine::NotifyReady(BoxId box, int worker) {
  (void)worker;
  BoxRt& b = boxes_[box];
  uint32_t state = b.state.load(std::memory_order_relaxed);
  for (;;) {
    switch (state) {
      case kIdle:
        // acq_rel: acquire pairs with the releasing transition of the
        // previous holder (PostRun's CAS to Idle), which is the handoff
        // edge box-exclusive structures (rings, rr cursor, op state) ride.
        if (b.state.compare_exchange_weak(state, kQueued,
                                          std::memory_order_acq_rel)) {
          work_items_.fetch_add(1, std::memory_order_acq_rel);
          pool_->Submit(box, b.priority, b.partition);
          return;
        }
        break;  // state reloaded; retry
      case kQueued:
        return;  // already pending; the queued claim will see our tuple
      case kRunning:
        if (b.state.compare_exchange_weak(state, kRunningNotified,
                                          std::memory_order_acq_rel)) {
          return;  // runner must re-check before going idle
        }
        break;
      case kRunningNotified:
        return;
      default:
        AURORA_CHECK(false) << "bad box state " << state;
    }
  }
}

bool ThreadedEngine::TryClaimForHelp(BoxId box) {
  BoxRt& b = boxes_[box];
  uint32_t state = b.state.load(std::memory_order_relaxed);
  for (;;) {
    if (state == kIdle) {
      if (b.state.compare_exchange_weak(state, kRunning,
                                        std::memory_order_acq_rel)) {
        work_items_.fetch_add(1, std::memory_order_acq_rel);
        return true;
      }
    } else if (state == kQueued) {
      // Take over the queued claim; the stale ready-queue entry will fail
      // its own CAS and be skipped.
      if (b.state.compare_exchange_weak(state, kRunning,
                                        std::memory_order_acq_rel)) {
        return true;
      }
    } else {
      return false;  // running elsewhere; let it drain
    }
  }
}

void ThreadedEngine::RunReadyItem(int box, int worker) {
  BoxRt& b = boxes_[box];
  uint32_t expected = kQueued;
  // A stale entry (its claim was taken over by a helper, or an earlier
  // duplicate) fails here and is dropped — same lazy invalidation as the
  // single-threaded ready heap.
  if (!b.state.compare_exchange_strong(expected, kRunning,
                                       std::memory_order_acq_rel)) {
    return;
  }
  RunBoxActivation(box, worker);
  PostRun(box, worker);
}

/// Routes operator emissions: box-to-box arcs through rings, output-port
/// arcs to the (mutex-serialized) delivery callback.
class ThreadedEngine::RoutingEmitter : public Emitter {
 public:
  RoutingEmitter(ThreadedEngine* engine, BoxId box, SimTime now, int worker)
      : engine_(engine), box_(box), now_(now), worker_(worker) {}

  void Emit(int output, Tuple t) override {
    BoxRt& b = engine_->boxes_[box_];
    AURORA_CHECK(output >= 0 && output < static_cast<int>(b.out_arcs.size()))
        << "emit on unknown box output " << output;
    const std::vector<ArcId>& fan = b.out_arcs[output];
    for (size_t i = 0; i < fan.size(); ++i) {
      const ArcRt& arc = engine_->arcs_[fan[i]];
      // COW handle copy for all but the last branch.
      Tuple branch = (i + 1 == fan.size()) ? std::move(t) : t;
      if (arc.to.is_box()) {
        engine_->EnqueueArc(fan[i], std::move(branch), worker_);
      } else {
        engine_->DeliverToOutput(arc.to.id, branch, worker_);
      }
    }
  }

  /// Chunked sink for the batched path: each box-bound branch takes the
  /// whole span through the ring's multi-push (one release store per
  /// published run); output branches stay per-tuple (the callback contract
  /// is per tuple). Per-arc FIFO is unchanged — the span is already in
  /// emission order and each arc receives it in order.
  void EmitChunk(int output, Tuple* tuples, size_t n) override {
    if (n == 0) return;
    BoxRt& b = engine_->boxes_[box_];
    AURORA_CHECK(output >= 0 && output < static_cast<int>(b.out_arcs.size()))
        << "emit on unknown box output " << output;
    const std::vector<ArcId>& fan = b.out_arcs[output];
    if (fan.empty()) return;
    engine_->m_batch_chunks_->Add();
    engine_->m_batch_chunk_tuples_->Add(static_cast<uint64_t>(n));
    for (size_t a = 0; a < fan.size(); ++a) {
      const ArcRt& arc = engine_->arcs_[fan[a]];
      const bool last = a + 1 == fan.size();
      if (arc.to.is_box()) {
        if (last) {
          engine_->EnqueueArcChunk(fan[a], tuples, n, worker_);
        } else {
          // COW handle copies for every branch but the last, as Emit does.
          branch_scratch_.assign(tuples, tuples + n);
          engine_->EnqueueArcChunk(fan[a], branch_scratch_.data(), n,
                                   worker_);
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          engine_->DeliverToOutput(arc.to.id, tuples[i], worker_);
        }
      }
    }
  }

 private:
  ThreadedEngine* engine_;
  BoxId box_;
  SimTime now_;
  int worker_;
  std::vector<Tuple> branch_scratch_;
};

void ThreadedEngine::RunBoxActivation(BoxId box, int worker) {
  BoxRt& b = boxes_[box];
  activations_.fetch_add(1, std::memory_order_relaxed);
  m_activations_->Add();
  int budget = opts_.train_size;
  int num_inputs = static_cast<int>(b.in_arcs.size());
  if (num_inputs == 0) return;
  if (opts_.batch_size > 1 && num_inputs == 1) {
    RunBoxActivationBatched(box, worker);
    return;
  }
  int idle_scans = 0;
  uint64_t processed = 0;
  while (budget > 0 && idle_scans < num_inputs) {
    int input = b.rr_next_input;
    b.rr_next_input = (b.rr_next_input + 1) % num_inputs;
    ArcId arc = b.in_arcs[input];
    if (arc < 0 || arcs_[arc].ring == nullptr) {
      idle_scans++;
      continue;
    }
    Tuple t;
    if (!arcs_[arc].ring->TryPop(&t)) {
      idle_scans++;
      continue;
    }
    idle_scans = 0;
    budget--;
    processed++;
    // Operators see `now` = the tuple's own timestamp (threaded mode has no
    // global clock; docs/THREADING.md).
    SimTime now = t.timestamp();
    Status st;
    {
      TupleHotPathSection hot_path;
      RoutingEmitter emitter(this, box, now, worker);
      st = b.op->Process(input, t, now, &emitter);
    }
    if (!st.ok()) DeferError(st);
  }
  if (processed > 0) {
    tuples_processed_.fetch_add(processed, std::memory_order_relaxed);
  }
}

void ThreadedEngine::RunBoxActivationBatched(BoxId box, int worker) {
  BoxRt& b = boxes_[box];
  ArcId arc = b.in_arcs[0];
  if (arc < 0 || arcs_[arc].ring == nullptr) return;
  BoundedRing<Tuple>* ring = arcs_[arc].ring.get();
  int budget = opts_.train_size;
  uint64_t processed = 0;
  // Stack scratch: help-on-full means a ProcessBatch emission can run a
  // downstream box's activation on this same thread, so nothing batched may
  // live in the engine or box.
  TupleBatch batch;
  batch.Reserve(static_cast<size_t>(std::min(budget, opts_.batch_size)));
  while (budget > 0) {
    const int want = std::min(budget, opts_.batch_size);
    batch.Clear();
    Tuple t;
    while (static_cast<int>(batch.size()) < want && ring->TryPop(&t)) {
      // Operators see `now` = the tuple's own timestamp, as on the scalar
      // threaded path (docs/THREADING.md).
      SimTime ts = t.timestamp();
      batch.Push(std::move(t), ts);
    }
    if (batch.empty()) break;
    budget -= static_cast<int>(batch.size());
    processed += batch.size();
    Status st;
    {
      TupleHotPathSection hot_path;
      RoutingEmitter emitter(this, box, batch.now(0), worker);
      st = b.op->ProcessBatch(0, batch, &emitter);
    }
    if (!st.ok()) DeferError(st);
  }
  if (processed > 0) {
    tuples_processed_.fetch_add(processed, std::memory_order_relaxed);
  }
}

void ThreadedEngine::PostRun(BoxId box, int worker) {
  BoxRt& b = boxes_[box];
  for (;;) {
    uint32_t state = b.state.load(std::memory_order_acquire);
    if (state == kRunningNotified || AnyInputPending(b)) {
      // Unconditional store is safe: only the claim holder may write
      // Queued/Idle, and a racing producer CAS (Running->RunningNotified)
      // either lands before (we overwrite, but we are re-queuing anyway) or
      // fails against our store and re-reads Queued.
      b.state.store(kQueued, std::memory_order_release);
      // Re-queue where it just ran (warm caches); external pushers (-1)
      // fall back to the partition owner.
      pool_->Submit(box, b.priority, worker >= 0 ? worker : b.partition);
      return;
    }
    if (b.state.compare_exchange_strong(state, kIdle,
                                        std::memory_order_acq_rel)) {
      work_items_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    // Notified between the load and the CAS; loop and re-queue.
  }
}

bool ThreadedEngine::AnyInputPending(const BoxRt& box) const {
  for (ArcId arc : box.in_arcs) {
    if (arc >= 0 && arcs_[arc].ring != nullptr &&
        !arcs_[arc].ring->EmptyApprox()) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Data movement
// ---------------------------------------------------------------------------

void ThreadedEngine::EnqueueArc(ArcId arc_id, Tuple t, int worker) {
  ArcRt& arc = arcs_[arc_id];
  BoxId dest = arc.to.id;
  while (!arc.ring->TryPush(t)) {
    // Help on full: run the consumer inline until room opens. The network
    // is acyclic, so the helping chain is bounded by its depth; if the
    // consumer is running on another worker, give it time to drain.
    ring_full_events_.fetch_add(1, std::memory_order_relaxed);
    m_ring_full_->Add();
    if (TryClaimForHelp(dest)) {
      RunBoxActivation(dest, worker);
      PostRun(dest, worker);
    } else {
      std::this_thread::yield();
    }
  }
  NotifyReady(dest, worker);
}

void ThreadedEngine::EnqueueArcChunk(ArcId arc_id, Tuple* tuples, size_t n,
                                     int worker) {
  ArcRt& arc = arcs_[arc_id];
  BoxId dest = arc.to.id;
  size_t pushed = 0;
  while (pushed < n) {
    size_t k = arc.ring->TryPushN(tuples + pushed, n - pushed);
    if (k > 0) {
      m_multipush_publishes_->Add();
      pushed += k;
      // Notify after every published run, not just the last: if the ring
      // filled mid-chunk the producer is about to help or yield, and the
      // consumer must already be queued for the tuples just published.
      NotifyReady(dest, worker);
      if (pushed == n) return;
    }
    // Ring full mid-chunk: same help-on-full discipline as EnqueueArc,
    // at chunk granularity. A chunk larger than the ring's capacity makes
    // progress one capacity-sized run at a time.
    ring_full_events_.fetch_add(1, std::memory_order_relaxed);
    m_ring_full_->Add();
    if (TryClaimForHelp(dest)) {
      RunBoxActivation(dest, worker);
      PostRun(dest, worker);
    } else {
      std::this_thread::yield();
    }
  }
}

void ThreadedEngine::DeliverToOutput(PortId output, const Tuple& t,
                                     int worker) {
  (void)worker;
  OutputPort& port = outputs_[output];
  port.delivered.fetch_add(1, std::memory_order_relaxed);
  m_delivered_->Add();
  if (!port.callback) return;
  std::lock_guard<std::mutex> lock(*port.mu);
  // Callbacks are application code: suspend the hot-path guard as the
  // single-threaded engine does.
  TupleHotPathSection::Exemption exemption;
  port.callback(t, t.timestamp());
}

Status ThreadedEngine::PushInput(PortId input, Tuple t, SimTime now) {
  if (!running()) return Status::FailedPrecondition("engine not running");
  if (input < 0 || input >= static_cast<int>(inputs_.size())) {
    return Status::InvalidArgument("bad input port");
  }
  InputPort& port = inputs_[input];
  if (t.schema() == nullptr) {
    return Status::InvalidArgument("tuple has no schema");
  }
  if (!t.schema()->Equals(*port.schema)) {
    return Status::InvalidArgument("tuple schema " + t.schema()->ToString() +
                                   " does not match input schema " +
                                   port.schema->ToString());
  }
  if (t.timestamp().micros() == 0) t.set_timestamp(now);
  tuples_in_.fetch_add(1, std::memory_order_relaxed);
  m_tuples_in_->Add();
  const std::vector<ArcId>& fan = port.out_arcs;
  for (size_t i = 0; i < fan.size(); ++i) {
    Tuple branch = (i + 1 == fan.size()) ? std::move(t) : t;
    // Input ports feed boxes only (Connect rejects input->output arcs), so
    // every fan-out branch goes through a ring.
    EnqueueArc(fan[i], std::move(branch), /*worker=*/-1);
  }
  return Status::OK();
}

Status ThreadedEngine::PushInputByName(const std::string& input, Tuple t,
                                       SimTime now) {
  AURORA_ASSIGN_OR_RETURN(PortId port, FindInput(input));
  return PushInput(port, std::move(t), now);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

int ThreadedEngine::partition_of(BoxId box) const {
  AURORA_CHECK(box >= 0 && box < static_cast<int>(boxes_.size()));
  return boxes_[box].partition;
}

uint64_t ThreadedEngine::delivered(PortId output) const {
  AURORA_CHECK(output >= 0 && output < static_cast<int>(outputs_.size()));
  return outputs_[output].delivered.load(std::memory_order_relaxed);
}

}  // namespace aurora
