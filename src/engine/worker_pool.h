#ifndef AURORA_ENGINE_WORKER_POOL_H_
#define AURORA_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aurora {

/// \brief Fixed set of worker threads, each with its own ready queue, plus
/// work-stealing between them — the execution substrate of ThreadedEngine.
///
/// Every worker owns one priority queue of ready items (box ids for the
/// engine; the pool itself is agnostic). Submit() targets a preferred
/// worker — the one whose partition owns the box — so a balanced partition
/// runs with zero stealing; an idle worker steals the *highest-priority*
/// ready item from a victim's queue, i.e. whole ready boxes migrate, never
/// fractions of one (an item is claimed by exactly one worker at a time —
/// the engine's box-state CAS enforces that even for stale duplicates).
///
/// This is the PR-5 ready-queue scheduler, one instance per worker: the
/// priority is computed by the submitter (ThreadedEngine uses
/// distance-to-output, the kMinOutputDistance discipline — drain-first keeps
/// rings short), ties broken FIFO by submission order. The queues are small
/// (bounded by box count) so a mutex per queue beats a lock-free structure
/// here; the rings on the arcs are where the per-tuple traffic flows.
///
/// Idle workers park on a condition variable with a 1 ms timeout backstop:
/// Submit bumps an epoch under the park mutex and notifies, and the timeout
/// turns any lost-wakeup window into bounded latency instead of a hang.
class WorkerPool {
 public:
  /// Called to run one claimed item on `worker` (0-based). The callback may
  /// Submit() more items, including from the last running worker.
  using RunFn = std::function<void(int item, int worker)>;

  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return static_cast<int>(locals_.size()); }
  bool started() const { return started_; }

  /// Launches the worker threads. Items submitted before Start are retained
  /// and run once the threads come up.
  void Start(RunFn run);
  /// Signals stop and joins every worker. Pending items are dropped; the
  /// engine drains to quiescence before stopping. Idempotent.
  void Stop();

  /// Queues `item` on `preferred`'s ready queue (clamped into range).
  /// Thread-safe from workers and external threads alike.
  void Submit(int item, int64_t priority, int preferred);

  /// Items that moved across workers (claimed by a non-preferred worker).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  /// Items run so far.
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    int64_t priority = 0;
    uint64_t seq = 0;  ///< global submission order; earlier wins on ties
    int item = -1;
    bool operator<(const Entry& o) const {
      if (priority != o.priority) return priority < o.priority;
      return seq > o.seq;
    }
  };
  struct Local {
    std::mutex mu;
    std::priority_queue<Entry> q;
  };

  /// Pops from `wid`'s own queue, else steals from the first non-empty
  /// victim (scanning from wid+1, wrapping).
  bool PopAny(int wid, int* item);
  void WorkerLoop(int wid);

  std::vector<std::unique_ptr<Local>> locals_;
  RunFn run_;
  std::vector<std::thread> threads_;

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  uint64_t submit_epoch_ = 0;  ///< guarded by park_mu_

  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_WORKER_POOL_H_
