#include "engine/optimizer.h"

#include <set>

namespace aurora {

bool NetworkOptimizer::ArcIdle(ArcId arc) const {
  return engine_->ArcQueueSize(arc) == 0 && engine_->HeldTupleCount(arc) == 0;
}

bool NetworkOptimizer::SingleConsumer(BoxId box, int index) const {
  return engine_->ArcsFrom(Endpoint::BoxPort(box, index)).size() == 1;
}

Result<int> NetworkOptimizer::Optimize() {
  int changes = 0;
  // Bounded fixpoint: each rule strictly improves the plan, and the
  // network is finite, so a generous bound suffices.
  for (int round = 0; round < 64; ++round) {
    AURORA_ASSIGN_OR_RETURN(bool changed, OnePass());
    if (!changed) break;
    ++changes;
  }
  return changes;
}

Result<bool> NetworkOptimizer::OnePass() {
  for (BoxId filter : engine_->BoxIds()) {
    AURORA_ASSIGN_OR_RETURN(const OperatorSpec* spec, engine_->BoxSpec(filter));
    if (spec->kind != "filter" || spec->GetBool("two_way", false)) continue;
    if (!engine_->IsBoxInitialized(filter)) continue;
    auto in_arc = engine_->FindArcInto(filter, 0);
    if (!in_arc.ok()) continue;
    Endpoint from = engine_->ArcFrom(*in_arc);
    if (!from.is_box()) continue;
    AURORA_ASSIGN_OR_RETURN(const OperatorSpec* up_spec,
                            engine_->BoxSpec(from.id));
    if (!SingleConsumer(from.id, from.index)) continue;
    if (up_spec->kind == "map") {
      AURORA_ASSIGN_OR_RETURN(bool did, TryPushOverMap(filter, *in_arc, from.id));
      if (did) return true;
    } else if (up_spec->kind == "union") {
      AURORA_ASSIGN_OR_RETURN(bool did,
                              TryPushOverUnion(filter, *in_arc, from.id));
      if (did) return true;
    } else if (up_spec->kind == "filter" &&
               !up_spec->GetBool("two_way", false)) {
      AURORA_ASSIGN_OR_RETURN(bool did,
                              TryReorderFilters(filter, *in_arc, from.id));
      if (did) return true;
    }
  }
  return false;
}

Result<bool> NetworkOptimizer::TryPushOverMap(BoxId filter, ArcId in_arc,
                                              BoxId map) {
  // The filter commutes with the map only when every attribute it reads is
  // an identity projection (same name, bare field reference).
  AURORA_ASSIGN_OR_RETURN(const OperatorSpec* f_spec, engine_->BoxSpec(filter));
  AURORA_ASSIGN_OR_RETURN(const OperatorSpec* m_spec, engine_->BoxSpec(map));
  if (!f_spec->predicate.has_value()) return false;
  std::set<std::string> fields;
  f_spec->predicate->CollectFields(&fields);
  for (const std::string& field : fields) {
    bool identity = false;
    for (const auto& [name, expr] : m_spec->projections) {
      std::string src;
      if (name == field && expr.IsFieldRef(&src) && src == field) {
        identity = true;
        break;
      }
    }
    if (!identity) return false;
  }

  auto map_in = engine_->FindArcInto(map, 0);
  if (!map_in.ok()) return false;
  std::vector<ArcId> out_arcs = engine_->ArcsFrom(Endpoint::BoxPort(filter, 0));
  if (!ArcIdle(in_arc) || !ArcIdle(*map_in)) return false;
  for (ArcId arc : out_arcs) {
    if (!ArcIdle(arc)) return false;
  }

  Endpoint source = engine_->ArcFrom(*map_in);
  std::vector<Endpoint> dests;
  for (ArcId arc : out_arcs) dests.push_back(engine_->ArcTo(arc));
  OperatorSpec filter_spec = *f_spec;

  // X -> M -> F -> dests   becomes   X -> F' -> M -> dests.
  AURORA_RETURN_NOT_OK(engine_->DisconnectArc(*map_in));
  AURORA_RETURN_NOT_OK(engine_->DisconnectArc(in_arc));
  for (ArcId arc : out_arcs) AURORA_RETURN_NOT_OK(engine_->DisconnectArc(arc));
  AURORA_RETURN_NOT_OK(engine_->RemoveBox(filter));
  // The filter is re-instantiated because its input schema changes (it now
  // sees the map's input); filters are stateless so nothing is lost.
  AURORA_ASSIGN_OR_RETURN(BoxId new_filter, engine_->AddBox(filter_spec));
  AURORA_RETURN_NOT_OK(
      engine_->Connect(source, Endpoint::BoxPort(new_filter, 0)).status());
  AURORA_RETURN_NOT_OK(engine_->Connect(Endpoint::BoxPort(new_filter, 0),
                                        Endpoint::BoxPort(map, 0))
                           .status());
  for (const Endpoint& d : dests) {
    AURORA_RETURN_NOT_OK(
        engine_->Connect(Endpoint::BoxPort(map, 0), d).status());
  }
  AURORA_RETURN_NOT_OK(engine_->InitializeBoxes(/*require_all=*/false));
  map_pushdowns_++;
  return true;
}

Result<bool> NetworkOptimizer::TryPushOverUnion(BoxId filter, ArcId in_arc,
                                                BoxId union_box) {
  AURORA_ASSIGN_OR_RETURN(const OperatorSpec* f_spec, engine_->BoxSpec(filter));
  AURORA_ASSIGN_OR_RETURN(Operator * union_op, engine_->BoxOp(union_box));
  const int n = union_op->num_inputs();
  std::vector<ArcId> union_ins(n);
  for (int i = 0; i < n; ++i) {
    AURORA_ASSIGN_OR_RETURN(union_ins[i], engine_->FindArcInto(union_box, i));
    if (!ArcIdle(union_ins[i])) return false;
  }
  std::vector<ArcId> out_arcs = engine_->ArcsFrom(Endpoint::BoxPort(filter, 0));
  if (!ArcIdle(in_arc)) return false;
  for (ArcId arc : out_arcs) {
    if (!ArcIdle(arc)) return false;
  }

  OperatorSpec filter_spec = *f_spec;
  std::vector<Endpoint> sources(n);
  for (int i = 0; i < n; ++i) sources[i] = engine_->ArcFrom(union_ins[i]);
  std::vector<Endpoint> dests;
  for (ArcId arc : out_arcs) dests.push_back(engine_->ArcTo(arc));

  // srcs -> U -> F -> dests   becomes   srcs -> F_i -> U -> dests.
  for (int i = 0; i < n; ++i) {
    AURORA_RETURN_NOT_OK(engine_->DisconnectArc(union_ins[i]));
  }
  AURORA_RETURN_NOT_OK(engine_->DisconnectArc(in_arc));
  for (ArcId arc : out_arcs) AURORA_RETURN_NOT_OK(engine_->DisconnectArc(arc));
  AURORA_RETURN_NOT_OK(engine_->RemoveBox(filter));
  for (int i = 0; i < n; ++i) {
    AURORA_ASSIGN_OR_RETURN(BoxId f_i, engine_->AddBox(filter_spec));
    AURORA_RETURN_NOT_OK(
        engine_->Connect(sources[i], Endpoint::BoxPort(f_i, 0)).status());
    AURORA_RETURN_NOT_OK(engine_->Connect(Endpoint::BoxPort(f_i, 0),
                                          Endpoint::BoxPort(union_box, i))
                             .status());
  }
  for (const Endpoint& d : dests) {
    AURORA_RETURN_NOT_OK(
        engine_->Connect(Endpoint::BoxPort(union_box, 0), d).status());
  }
  AURORA_RETURN_NOT_OK(engine_->InitializeBoxes(/*require_all=*/false));
  union_pushdowns_++;
  return true;
}

Result<bool> NetworkOptimizer::TryReorderFilters(BoxId second, ArcId in_arc,
                                                 BoxId first) {
  AURORA_ASSIGN_OR_RETURN(Operator * first_op, engine_->BoxOp(first));
  AURORA_ASSIGN_OR_RETURN(Operator * second_op, engine_->BoxOp(second));
  // Reorder only with measured evidence: the downstream filter must be
  // decisively more selective than the upstream one.
  constexpr uint64_t kMinEvidence = 64;
  if (first_op->tuples_in() < kMinEvidence ||
      second_op->tuples_in() < kMinEvidence) {
    return false;
  }
  if (second_op->selectivity() >= first_op->selectivity() * 0.9) return false;

  auto first_in = engine_->FindArcInto(first, 0);
  if (!first_in.ok()) return false;
  std::vector<ArcId> out_arcs = engine_->ArcsFrom(Endpoint::BoxPort(second, 0));
  if (!ArcIdle(*first_in) || !ArcIdle(in_arc)) return false;
  for (ArcId arc : out_arcs) {
    if (!ArcIdle(arc)) return false;
  }

  Endpoint source = engine_->ArcFrom(*first_in);
  std::vector<Endpoint> dests;
  for (ArcId arc : out_arcs) dests.push_back(engine_->ArcTo(arc));

  // X -> F1 -> F2 -> dests becomes X -> F2 -> F1 -> dests. Both filters
  // are pass-through (identical schemas), so the live operator instances
  // are rewired in place — measured statistics survive the swap.
  AURORA_RETURN_NOT_OK(engine_->DisconnectArc(*first_in));
  AURORA_RETURN_NOT_OK(engine_->DisconnectArc(in_arc));
  for (ArcId arc : out_arcs) AURORA_RETURN_NOT_OK(engine_->DisconnectArc(arc));
  AURORA_RETURN_NOT_OK(
      engine_->Connect(source, Endpoint::BoxPort(second, 0)).status());
  AURORA_RETURN_NOT_OK(engine_->Connect(Endpoint::BoxPort(second, 0),
                                        Endpoint::BoxPort(first, 0))
                           .status());
  for (const Endpoint& d : dests) {
    AURORA_RETURN_NOT_OK(
        engine_->Connect(Endpoint::BoxPort(first, 0), d).status());
  }
  filter_reorders_++;
  return true;
}

}  // namespace aurora
