#include "engine/catalog.h"

namespace aurora {

Status Catalog::DefineSchema(const std::string& name, SchemaPtr schema) {
  if (schemas_.count(name)) {
    return Status::AlreadyExists("schema '" + name + "' already defined");
  }
  schemas_[name] = std::move(schema);
  return Status::OK();
}

Result<SchemaPtr> Catalog::GetSchema(const std::string& name) const {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::NotFound("schema '" + name + "' not in catalog");
  }
  return it->second;
}

Status Catalog::DefineStream(StreamInfo info) {
  if (streams_.count(info.name)) {
    return Status::AlreadyExists("stream '" + info.name + "' already defined");
  }
  streams_[info.name] = std::move(info);
  return Status::OK();
}

Result<StreamInfo> Catalog::GetStream(const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '" + name + "' not in catalog");
  }
  return it->second;
}

Status Catalog::SetStreamLocations(const std::string& name,
                                   std::vector<NodeId> locs) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '" + name + "' not in catalog");
  }
  it->second.locations = std::move(locs);
  return Status::OK();
}

Status Catalog::DefineOperator(const std::string& name, OperatorSpec spec) {
  operators_[name] = std::move(spec);
  return Status::OK();
}

Result<OperatorSpec> Catalog::GetOperator(const std::string& name) const {
  auto it = operators_.find(name);
  if (it == operators_.end()) {
    return Status::NotFound("operator '" + name + "' not in catalog");
  }
  return it->second;
}

std::vector<std::string> Catalog::ListOperators() const {
  std::vector<std::string> names;
  names.reserve(operators_.size());
  for (const auto& [name, spec] : operators_) names.push_back(name);
  return names;
}

Status Catalog::DefineQuery(QueryInfo info) {
  if (queries_.count(info.name)) {
    return Status::AlreadyExists("query '" + info.name + "' already defined");
  }
  queries_[info.name] = std::move(info);
  return Status::OK();
}

Result<QueryInfo> Catalog::GetQuery(const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + name + "' not in catalog");
  }
  return it->second;
}

Status Catalog::SetQueryPieces(const std::string& name,
                               std::vector<QueryPieceInfo> pieces) {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + name + "' not in catalog");
  }
  it->second.pieces = std::move(pieces);
  return Status::OK();
}

}  // namespace aurora
