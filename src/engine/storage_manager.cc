#include "engine/storage_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "tuple/serde.h"

namespace aurora {

/// Durable FIFO behind one arc queue's spilled prefix. Each spilled tuple
/// is serialized into the arc's tiered-store stream; pops read the stream
/// back in order and truncate consumed records so the dropper reclaims
/// them. The schema handle is captured from the spilled tuples themselves
/// (an arc carries one schema), so readback re-attaches the same SchemaPtr.
class StorageManager::SpillChannel : public SpillSink {
 public:
  SpillChannel(TieredStore* store, std::string stream, Counter* unspills)
      : store_(store), stream_(std::move(stream)), m_unspills_(unspills) {}

  void SpillTuple(const Tuple& t) override {
    if (t.schema() != nullptr) schema_ = t.schema();
    Encoder enc(std::move(scratch_));
    enc.PutTuple(t);
    uint64_t seq = store_->Append(stream_, t.timestamp().micros(),
                                  enc.buffer().data(), enc.size());
    scratch_ = enc.TakeBuffer();
    if (pending_ == 0) next_read_ = seq;
    pending_++;
  }

  Tuple UnspillTuple() override {
    auto rec = store_->Read(stream_, next_read_);
    next_read_++;
    if (pending_ > 0) pending_--;
    m_unspills_->Add();
    MaybeTruncate();
    if (!rec.ok()) {
      AURORA_LOG(Error) << "storage: unspill read failed: "
                        << rec.status().ToString();
      return Tuple();
    }
    Decoder dec(rec->payload);
    auto t = dec.GetTuple(schema_);
    if (!t.ok()) {
      AURORA_LOG(Error) << "storage: unspill decode failed: "
                        << t.status().ToString();
      return Tuple();
    }
    return std::move(*t);
  }

  void DiscardSpilled(size_t n) override {
    next_read_ += n;
    pending_ = pending_ >= n ? pending_ - n : 0;
    store_->Truncate(stream_, next_read_ - 1);
  }

 private:
  void MaybeTruncate() {
    // Consumed records are dead; truncating every pop would rewrite the
    // meta file per tuple, so batch it and always settle on full drain.
    if (pending_ == 0 || (next_read_ - 1) % 64 == 0) {
      store_->Truncate(stream_, next_read_ - 1);
    }
  }

  TieredStore* store_;
  std::string stream_;
  Counter* m_unspills_;
  SchemaPtr schema_;
  uint64_t next_read_ = 1;  ///< store seq of the oldest unread record
  size_t pending_ = 0;      ///< spilled but not yet read back / discarded
  std::vector<uint8_t> scratch_;
};

StorageManager::StorageManager(size_t budget_bytes) : budget_(budget_bytes) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_spill_events_ = reg.GetCounter("engine.storage.spill.events");
  m_spill_bytes_ = reg.GetCounter("engine.storage.spill.bytes");
  m_spill_tuples_ = reg.GetCounter("engine.storage.spill.tuples");
  m_unspill_tuples_ = reg.GetCounter("engine.storage.unspill.tuples");
}

StorageManager::~StorageManager() = default;

void StorageManager::AttachStore(TieredStore* store) { store_ = store; }

StorageManager::ArcSpillState& StorageManager::StateFor(
    const SpillableQueue& q) {
  ArcSpillState& state = arcs_[q.arc];
  if (state.hwm_bytes == nullptr) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    const std::string suffix = scope_ + ".arc" + std::to_string(q.arc);
    state.hwm_bytes = reg.GetGauge("engine.storage.spilled_hwm." + suffix);
    state.hwm_tuples = reg.GetGauge("engine.storage.spilled_tuples." + suffix);
  }
  if (store_ != nullptr && state.channel == nullptr) {
    state.channel = std::make_unique<SpillChannel>(
        store_, "spill/" + scope_ + "/arc" + std::to_string(q.arc),
        m_unspill_tuples_);
    q.queue->set_spill_sink(state.channel.get());
  }
  return state;
}

size_t StorageManager::EnforceBudget(const std::vector<SpillableQueue>& queues) {
  if (budget_ == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  size_t resident = 0;
  for (const auto& q : queues) resident += q.queue->resident_bytes();
  size_t spilled = 0;
  while (resident > budget_) {
    // Spill half of the largest resident queue.
    const SpillableQueue* victim = nullptr;
    for (const auto& q : queues) {
      if (victim == nullptr ||
          q.queue->resident_bytes() > victim->queue->resident_bytes()) {
        victim = &q;
      }
    }
    if (victim == nullptr || victim->queue->resident_bytes() == 0) break;
    ArcSpillState& state = StateFor(*victim);
    (void)state;
    StreamQueue* queue = victim->queue;
    size_t resident_tuples = queue->size() - queue->spilled_count();
    size_t to_spill = std::max<size_t>(1, resident_tuples / 2);
    size_t before_tuples = queue->spilled_count();
    size_t freed = queue->Spill(to_spill);
    if (freed == 0) break;
    resident -= freed;
    spilled += freed;
    total_spilled_bytes_.fetch_add(freed, std::memory_order_relaxed);
    spill_events_.fetch_add(1, std::memory_order_relaxed);
    m_spill_events_->Add();
    m_spill_bytes_->Add(freed);
    m_spill_tuples_->Add(queue->spilled_count() - before_tuples);
  }
  // Refresh the per-arc gauges; their max() is the spilled high-water mark.
  for (const auto& q : queues) {
    auto it = arcs_.find(q.arc);
    if (it == arcs_.end()) continue;
    it->second.hwm_bytes->Set(static_cast<double>(q.queue->spilled_bytes()));
    it->second.hwm_tuples->Set(static_cast<double>(q.queue->spilled_count()));
  }
  return spilled;
}

}  // namespace aurora
