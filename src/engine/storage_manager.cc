#include "engine/storage_manager.h"

#include <algorithm>

namespace aurora {

size_t StorageManager::EnforceBudget(const std::vector<StreamQueue*>& queues) {
  if (budget_ == 0) return 0;
  size_t resident = 0;
  for (const auto* q : queues) resident += q->resident_bytes();
  size_t spilled = 0;
  while (resident > budget_) {
    // Spill half of the largest resident queue.
    StreamQueue* victim = nullptr;
    for (auto* q : queues) {
      if (victim == nullptr || q->resident_bytes() > victim->resident_bytes()) {
        victim = q;
      }
    }
    if (victim == nullptr || victim->resident_bytes() == 0) break;
    size_t resident_tuples = victim->size() - victim->spilled_count();
    size_t to_spill = std::max<size_t>(1, resident_tuples / 2);
    size_t freed = victim->Spill(to_spill);
    if (freed == 0) break;
    resident -= freed;
    spilled += freed;
    total_spilled_bytes_ += freed;
    spill_events_++;
  }
  return spilled;
}

}  // namespace aurora
