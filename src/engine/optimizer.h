#ifndef AURORA_ENGINE_OPTIMIZER_H_
#define AURORA_ENGINE_OPTIMIZER_H_

#include "engine/aurora_engine.h"

namespace aurora {

/// \brief Network re-optimization via operator commutativities (paper
/// §2.3): "Aurora will try to re-optimize the network using standard query
/// optimization techniques (such as those that rely on operator
/// commutativities). This tactic requires a more global view of the
/// network and thus is used more sparingly."
///
/// Rules implemented:
///  1. *Filter pushdown over Map* — a Filter whose predicate reads only
///     identity-projected attributes moves ahead of the Map, so the Map
///     only processes surviving tuples.
///  2. *Filter pushdown over Union* — a Filter after a Union is replicated
///     onto every Union input (filter(union(..)) == union(filter(..))),
///     exposing further pushdown and slide opportunities.
///  3. *Filter reordering* — consecutive Filters run most-selective first,
///     using measured selectivities.
///
/// Transformations only apply where the affected arc queues are empty, so
/// run Optimize() at a quiescent point (the same stabilization discipline
/// §5.1 prescribes for network moves).
class NetworkOptimizer {
 public:
  explicit NetworkOptimizer(AuroraEngine* engine) : engine_(engine) {}

  /// Applies rules to a fixpoint (bounded). Returns the number of
  /// transformations performed.
  Result<int> Optimize();

  uint64_t map_pushdowns() const { return map_pushdowns_; }
  uint64_t union_pushdowns() const { return union_pushdowns_; }
  uint64_t filter_reorders() const { return filter_reorders_; }

 private:
  /// One scan; returns true if a rule fired (topology changed).
  Result<bool> OnePass();
  Result<bool> TryPushOverMap(BoxId filter, ArcId in_arc, BoxId map);
  Result<bool> TryPushOverUnion(BoxId filter, ArcId in_arc, BoxId union_box);
  Result<bool> TryReorderFilters(BoxId second, ArcId in_arc, BoxId first);

  /// True when the arc can be rewired right now (no queued/held tuples).
  bool ArcIdle(ArcId arc) const;
  /// True when `box` output `index` feeds exactly one arc.
  bool SingleConsumer(BoxId box, int index) const;

  AuroraEngine* engine_;
  uint64_t map_pushdowns_ = 0;
  uint64_t union_pushdowns_ = 0;
  uint64_t filter_reorders_ = 0;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_OPTIMIZER_H_
