#ifndef AURORA_ENGINE_LOAD_SHEDDER_H_
#define AURORA_ENGINE_LOAD_SHEDDER_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "engine/topology.h"
#include "qos/qos_spec.h"
#include "tuple/tuple.h"

namespace aurora {

/// Shedding strategies compared in bench_load_shedding (experiment C5).
enum class SheddingPolicy {
  /// Never drop; overload shows up as queue growth and latency collapse.
  kNone,
  /// Drop uniformly at random across all inputs, just enough to fit.
  kRandom,
  /// Drop where the marginal utility loss per CPU-microsecond recovered is
  /// smallest, per the outputs' loss-tolerance QoS graphs (§2.3, §7.1).
  kQoSAware,
  /// Semantic shedding: drop the *least valuable tuples* first, per the
  /// outputs' value-based QoS graphs (§7.1: "which measures that it prefer
  /// Aurora take" — QoS decides which tuples to drop, not just how many).
  kSemantic,
};

/// \brief Input-side load shedder (the Load Shedder of Fig. 3).
///
/// Estimates offered CPU load from per-input arrival rates and per-input
/// expected downstream processing cost; when the load exceeds the capacity
/// target, computes per-input drop probabilities according to the policy.
class LoadShedder {
 public:
  struct Options {
    SheddingPolicy policy = SheddingPolicy::kNone;
    /// CPU capacity in processing-microseconds per second of time (1e6 =
    /// one dedicated core).
    double capacity_us_per_sec = 1e6;
    /// Shed down to this fraction of capacity.
    double target_utilization = 0.9;
    /// How often drop probabilities are recomputed.
    SimDuration recompute_interval = SimDuration::Millis(100);
  };

  /// Static description of one engine input, rebuilt by the engine when
  /// topology or measured statistics change.
  struct InputInfo {
    PortId input = -1;
    /// Expected CPU microseconds consumed downstream per pushed tuple.
    double downstream_cost_us = 1.0;
    /// Aggregate slope of reachable outputs' loss-utility graphs: utility
    /// lost per unit of delivered-fraction reduction. Higher = more
    /// valuable stream.
    double utility_slope = 1.0;
    /// Outputs reachable from this input (drop attribution for QoS stats).
    std::vector<PortId> outputs;
    /// Value-based QoS (kSemantic): utility of a tuple as a function of
    /// this attribute's value; empty graph = no semantic information.
    std::string value_field;
    UtilityGraph value_graph;
    /// Index of value_field in the input's schema, resolved once at model
    /// (re)build time so the per-tuple path reads value(i) instead of
    /// scanning field names; -1 = unresolved (fall back to name lookup).
    int value_index = -1;
  };

  LoadShedder() : LoadShedder(Options()) {}
  explicit LoadShedder(Options opts) : opts_(opts), rng_(0xbadcafe) {}

  void Configure(const Options& opts) { opts_ = opts; }
  const Options& options() const { return opts_; }

  void SetInputs(std::vector<InputInfo> inputs);

  /// Per-tuple admission decision; also feeds the rate estimator. Returns
  /// true when the tuple should be dropped at the input. The tuple itself
  /// is consulted only by the semantic policy.
  bool ShouldDrop(PortId input, const Tuple& t, SimTime now);

  double drop_probability(PortId input) const;
  uint64_t total_dropped() const { return total_dropped_; }
  /// Most recent offered-load estimate, in CPU-us per second.
  double offered_load() const { return offered_load_; }

  const std::vector<InputInfo>& inputs() const { return inputs_; }

  /// Whether any input currently has a nonzero drop probability.
  bool shedding_active() const { return shedding_; }

 private:
  void Recompute(SimTime now);
  /// Tracks the off->on shedding transition; the first activation trips the
  /// flight recorder ("shed_activation") with the load picture that forced
  /// it.
  void NoteDropState(SimTime now);

  Options opts_;
  Rng rng_;
  std::vector<InputInfo> inputs_;
  std::map<PortId, size_t> input_index_;
  std::vector<uint64_t> arrivals_;  // since last recompute, per input
  std::vector<double> drop_p_;
  SimTime last_recompute_{};
  bool started_ = false;
  bool shedding_ = false;
  uint64_t total_dropped_ = 0;
  double offered_load_ = 0.0;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_LOAD_SHEDDER_H_
