#ifndef AURORA_OBS_FLIGHT_RECORDER_H_
#define AURORA_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>

namespace aurora {

/// \brief Anomaly-triggered dump of the tracer's recent history.
///
/// The Tracer's ring holds a bounded window of the most recent spans; the
/// flight recorder snapshots that window — plus a full metrics snapshot —
/// the moment something anomalous happens, so the run's final artifacts
/// contain the evidence from *around the event*, not just end-of-run
/// aggregates. Trigger points (each passes its own event tag):
///
///   qos_violation   QoSMonitor: a delivery's latency utility fell below
///                   the critical knee (engine/qos_monitor.cc)
///   shed_activation LoadShedder: drop probability went zero -> nonzero
///   node_crash      StreamNode::Crash (injected or chaos-driven)
///   invariant       InvariantMonitor::Report (simcheck oracle divergence)
///
/// Each event tag fires at most once per run (first occurrence is the
/// interesting one; a violating run would otherwise dump thousands of
/// files); Rearm() resets the latch — tests and simcheck call it between
/// episodes. Dumps go to `obs_flight_<event>.json`:
///
///   {"event": ..., "detail": ..., "seq": N, "sim_time_us": T,
///    "spans_dropped": D, "spans": [...], "metrics": {...}}
///
/// Everything in the dump derives from simulation state, so two same-seed
/// runs produce byte-identical dumps (the CI obs-smoke step diffs them).
///
/// Disabled by default; enable programmatically or with
/// AURORA_FLIGHT_RECORDER=1 (read once at first Global() use, inside the
/// magic static so concurrent first use is safe). The once-per-event latch
/// and dump sequencing are mutex-guarded: when several worker threads hit
/// the same anomaly at once, exactly one claims the latch and dumps.
class FlightRecorder {
 public:
  /// Sink invoked with (path, json) per dump; the default writes the file.
  using Sink = std::function<void(const std::string& path,
                                  const std::string& json)>;

  static FlightRecorder& Global();

  FlightRecorder();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Max spans from the tail of the tracer ring per dump.
  void set_max_spans(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    max_spans_ = n;
  }
  size_t max_spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_spans_;
  }

  /// Directory dumps are written into ("" = cwd).
  void set_output_dir(std::string dir) {
    std::lock_guard<std::mutex> lock(mu_);
    output_dir_ = std::move(dir);
  }

  /// Replaces the file-writing sink (tests capture dumps in memory).
  void set_sink(Sink sink) {
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = std::move(sink);
  }

  /// Snapshots the tracer tail + metrics if `event` has not fired since the
  /// last Rearm. Returns true when a dump was produced. `detail` is free
  /// text naming the culprit (output port, stream, node id, ...); `now_us`
  /// is the simulated time of the anomaly (-1 = unknown; the newest
  /// retained span's end time is used instead).
  bool Trigger(const std::string& event, const std::string& detail,
               int64_t now_us = -1);

  /// Total dumps produced (across Rearm cycles).
  uint64_t dumps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dumps_;
  }

  /// Clears the per-event latches so every event kind may fire again.
  void Rearm() {
    std::lock_guard<std::mutex> lock(mu_);
    fired_.clear();
  }

 private:
  std::atomic<bool> enabled_{false};
  /// Guards latch state, dump sequencing, and the sink/config fields.
  mutable std::mutex mu_;
  size_t max_spans_ = 256;
  std::string output_dir_;
  Sink sink_;
  std::set<std::string> fired_;
  uint64_t dumps_ = 0;
};

}  // namespace aurora

#endif  // AURORA_OBS_FLIGHT_RECORDER_H_
