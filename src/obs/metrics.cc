#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace aurora {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

namespace {
/// Hard cap on bucket count: min_bound * growth^511 spans ~31 orders of
/// magnitude at the default growth, far beyond any simulated latency.
constexpr size_t kMaxBuckets = 512;
}  // namespace

LatencyHistogram::LatencyHistogram(double min_bound, double growth)
    : min_bound_(min_bound),
      growth_(growth),
      inv_log_growth_(1.0 / std::log(growth)) {}

size_t LatencyHistogram::BucketIndex(double v) const {
  if (v < min_bound_) return 0;
  double idx = std::floor(std::log(v / min_bound_) * inv_log_growth_) + 1.0;
  return std::min(kMaxBuckets - 1, static_cast<size_t>(std::max(1.0, idx)));
}

double LatencyHistogram::BucketLo(size_t idx) const {
  if (idx == 0) return 0.0;
  return min_bound_ * std::pow(growth_, static_cast<double>(idx - 1));
}

double LatencyHistogram::BucketHi(size_t idx) const {
  if (idx == 0) return min_bound_;
  return min_bound_ * std::pow(growth_, static_cast<double>(idx));
}

void LatencyHistogram::Record(double v) {
  if (std::isnan(v)) return;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_++;
  sum_ += v;
  size_t idx = BucketIndex(v);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx]++;
}

void LatencyHistogram::RecordN(double v, uint64_t n) {
  if (n == 0 || std::isnan(v)) return;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += n;
  // Term-by-term, not v * n: repeated addition rounds exactly like n
  // individual Record calls would, keeping batched and scalar runs
  // byte-identical in every dumped stat.
  for (uint64_t i = 0; i < n; ++i) sum_ += v;
  size_t idx = BucketIndex(v);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += n;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the target observation, 1-based.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::max<uint64_t>(1, std::min(rank, count_));
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (cum + buckets_[i] >= rank) {
      // Interpolate by rank position inside the bucket.
      double frac = static_cast<double>(rank - cum) /
                    static_cast<double>(buckets_[i]);
      double v = BucketLo(i) + frac * (BucketHi(i) - BucketLo(i));
      return std::clamp(v, min_, max_);
    }
    cum += buckets_[i];
  }
  return max_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {

/// Metric names are restricted to identifier-ish characters plus `.`, `:`,
/// `-`, `>`, `#`, `/`; escape the two JSON-significant ones defensively.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void AppendDouble(std::ostringstream* os, double v) {
  // Plain decimal, enough digits to round-trip typical latencies.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *os << buf;
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": {\"value\": ";
    AppendDouble(&os, g->value());
    os << ", \"max\": ";
    AppendDouble(&os, g->max());
    os << "}";
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": {\"count\": " << h->count() << ", \"sum\": ";
    AppendDouble(&os, h->sum());
    os << ", \"min\": ";
    AppendDouble(&os, h->min());
    os << ", \"max\": ";
    AppendDouble(&os, h->max());
    os << ", \"mean\": ";
    AppendDouble(&os, h->mean());
    os << ", \"p50\": ";
    AppendDouble(&os, h->Quantile(0.5));
    os << ", \"p95\": ";
    AppendDouble(&os, h->Quantile(0.95));
    os << ", \"p99\": ";
    AppendDouble(&os, h->Quantile(0.99));
    os << "}";
    first = false;
  }
  os << "\n  }\n}";
  return os.str();
}

std::string MetricsRegistry::SnapshotCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "name,type,field,value\n";
  for (const auto& [name, c] : counters_) {
    os << name << ",counter,value," << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << ",gauge,value,";
    AppendDouble(&os, g->value());
    os << "\n" << name << ",gauge,max,";
    AppendDouble(&os, g->max());
    os << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ",histogram,count," << h->count() << "\n";
    const std::pair<const char*, double> fields[] = {
        {"sum", h->sum()},           {"min", h->min()},
        {"max", h->max()},           {"mean", h->mean()},
        {"p50", h->Quantile(0.5)},   {"p95", h->Quantile(0.95)},
        {"p99", h->Quantile(0.99)},
    };
    for (const auto& [field, v] : fields) {
      os << name << ",histogram," << field << ",";
      AppendDouble(&os, v);
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace aurora
