#ifndef AURORA_OBS_JSON_H_
#define AURORA_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace aurora {

/// \brief Minimal JSON document model for the observability artifacts.
///
/// Parses exactly the dialect the exporters emit (obs_*.json metric
/// snapshots, flight-recorder dumps, BENCH_*.json): objects, arrays,
/// strings with backslash escapes, numbers, booleans, null. Good enough for
/// aurora_inspect and the snapshot-diff helper without pulling in a
/// dependency; not a general-purpose validator (it accepts some invalid
/// escape sequences verbatim).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parses a complete document; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(const std::string& text);
  /// Parses the contents of a file.
  static Result<JsonValue> ParseFile(const std::string& path);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  uint64_t AsUint() const { return static_cast<uint64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Find, demanding a specific type; nullptr on mismatch.
  const JsonValue* FindObject(const std::string& key) const;
  const JsonValue* FindArray(const std::string& key) const;
  /// Member number/string with a fallback.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace aurora

#endif  // AURORA_OBS_JSON_H_
