#ifndef AURORA_OBS_TRACE_H_
#define AURORA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aurora {

/// Lifecycle stages a traced tuple passes through. Load-movement events
/// (box slides/splits) are recorded as kMigration spans with trace_id 0 —
/// they belong to the system timeline, not to one tuple.
enum class SpanKind : uint8_t {
  kEnqueue,       ///< tuple entered an engine input (PushInput)
  kBoxExec,       ///< a box consumed the tuple during an activation
  kTransportHop,  ///< tuple arrived at a node over a transport stream
  kDelivery,      ///< tuple reached an application output port
  kMigration,     ///< a box slide/split reconfigured the network
  kFault,         ///< an injected fault event or a detection/recovery step
};

const char* SpanKindName(SpanKind kind);

/// One event on a tuple's lineage, keyed by simulated time.
struct TraceSpan {
  uint64_t trace_id = 0;  ///< 0 = system-level span (migrations)
  SpanKind kind = SpanKind::kEnqueue;
  /// Overlay node the span executed on; -1 for a standalone engine.
  int node = -1;
  /// Where within the node: "in:<input>", "box:<kind>", "stream:<input>",
  /// "out:<output>", "slide:<box>:<src>-><dst>".
  std::string site;
  int64_t start_us = 0;  ///< sim-time the stage began
  int64_t end_us = 0;    ///< sim-time it finished (== start for events)
};

/// \brief Process-wide per-tuple lineage recorder.
///
/// Disabled by default so the hot paths pay one predictable branch; when
/// enabled, the engine assigns each source tuple a fresh trace id (carried
/// across operators and over the wire via Tuple::trace_id) and every layer
/// appends spans here. Spans are recorded in simulation-event order, so a
/// tuple's spans are already causally ordered; SpansFor additionally sorts
/// by start time (stable) as a belt-and-braces guarantee.
///
/// Capacity-bounded: past `capacity` spans, new records are counted in
/// dropped() instead of stored. Not thread-safe (single-threaded sim).
class Tracer {
 public:
  static Tracer& Global();

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Fresh nonzero tuple lineage id.
  uint64_t NextTraceId() { return next_trace_id_++; }

  /// Stores the span (no-op while disabled; counted as dropped at capacity).
  void Record(TraceSpan span);

  void set_capacity(size_t capacity) { capacity_ = capacity; }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// All spans of one tuple, stably sorted by start_us (record order breaks
  /// ties, which is causal order in the simulation).
  std::vector<TraceSpan> SpansFor(uint64_t trace_id) const;

  /// Drops recorded spans and the dropped counter; trace ids stay monotonic.
  void Clear();

  /// JSON array of span objects, in record order.
  std::string ExportJson() const;
  /// CSV timeseries: trace_id,kind,node,site,start_us,end_us per row.
  std::string ExportCsv() const;

 private:
  bool enabled_ = false;
  uint64_t next_trace_id_ = 1;
  size_t capacity_ = 1 << 20;
  uint64_t dropped_ = 0;
  std::vector<TraceSpan> spans_;
};

}  // namespace aurora

#endif  // AURORA_OBS_TRACE_H_
