#ifndef AURORA_OBS_TRACE_H_
#define AURORA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/attribution.h"
#include "obs/metrics.h"

namespace aurora {

/// Lifecycle stages a traced tuple passes through. Load-movement events
/// (box slides/splits) are recorded as kMigration spans with trace_id 0 —
/// they belong to the system timeline, not to one tuple. kCreditWait is
/// recorded both per tuple (a batch held in a node's pending buffer for
/// downstream credit) and as trace-0 system spans (a transport stream's
/// credit-stall window).
enum class SpanKind : uint8_t {
  kEnqueue,       ///< tuple entered an engine input (PushInput)
  kBoxExec,       ///< a box consumed the tuple during an activation
  kTransportHop,  ///< tuple arrived at a node over a transport stream
  kDelivery,      ///< tuple reached an application output port
  kMigration,     ///< a box slide/split reconfigured the network
  kFault,         ///< an injected fault event or a detection/recovery step
  kCreditWait,    ///< waited out a credit-blocked (back-pressured) spell
  kShed,          ///< the load shedder dropped the tuple at an input
  kStorage,       ///< a tiered-store stall window (fsync, compaction)
};
constexpr int kNumSpanKinds = 9;

const char* SpanKindName(SpanKind kind);
/// Inverse of SpanKindName. Returns false (leaving *out untouched) for an
/// unknown name; tests/obs/trace_test.cc round-trips every enum value so
/// the two can never drift apart.
bool SpanKindFromName(const std::string& name, SpanKind* out);

/// One event on a tuple's lineage, keyed by simulated time.
struct TraceSpan {
  uint64_t trace_id = 0;  ///< 0 = system-level span (migrations)
  SpanKind kind = SpanKind::kEnqueue;
  /// Overlay node the span executed on; -1 for a standalone engine.
  int node = -1;
  /// Where within the node: "in:<input>", "box:<kind>", "stream:<input>",
  /// "out:<output>", "slide:<box>:<src>-><dst>", "shed:in:<input>",
  /// "credit:<stream>".
  std::string site;
  int64_t start_us = 0;  ///< sim-time the stage began
  int64_t end_us = 0;    ///< sim-time it finished (== start for events)
};

/// \brief Process-wide per-tuple lineage recorder and flight-data source.
///
/// Disabled by default so the hot paths pay one predictable branch; when
/// enabled, the engine assigns each *sampled* source tuple a fresh trace id
/// (carried across operators and over the wire via Tuple::trace_id) and
/// every layer appends spans here. Spans are recorded in simulation-event
/// order, so a tuple's spans are already causally ordered; SpansFor
/// additionally sorts by start time (stable) as a belt-and-braces
/// guarantee.
///
/// Storage is a fixed-capacity ring: the newest `capacity` spans are kept,
/// older ones are evicted and counted in dropped() and the registry counter
/// `trace.spans_dropped` — always-on tracing in long runs holds a bounded
/// window of recent history (the flight recorder's source) instead of
/// growing without bound. Every span still feeds the LatencyAttributor
/// before eviction, so stage attribution is exact regardless of ring size.
///
/// Environment knobs, read once at first Global() use (docs/OBSERVABILITY.md):
///   AURORA_TRACE=1           enable tracing at startup
///   AURORA_TRACE_CAPACITY=N  ring capacity in spans (default 1<<20)
///   AURORA_TRACE_SAMPLE=N    trace every Nth source tuple (default 1)
///
/// Thread-safety: env-knob init happens inside Global()'s magic static
/// (synchronized by the C++ runtime), id issuance is atomic, and the ring,
/// attributor, and exports are mutex-guarded, so threaded-engine workers may
/// record concurrently. Span *order* under concurrent recording reflects
/// lock-acquisition order — a documented nondeterminism class of threaded
/// mode. The attribution() accessor hands out unguarded state and stays
/// single-threaded-only.
class Tracer {
 public:
  static Tracer& Global();

  Tracer();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Lineage id for a new source tuple: a fresh nonzero id when the tuple
  /// falls on the sampling grid, 0 (= untraced) otherwise. Sampling is
  /// keyed off a monotone issuance counter, so it is deterministic under a
  /// fixed workload regardless of ring capacity.
  uint64_t NewTrace();
  /// Fresh nonzero tuple lineage id, bypassing sampling.
  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Every Nth source tuple gets a trace id (1 = all, the default).
  void set_sample_period(uint64_t n) {
    sample_period_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  uint64_t sample_period() const {
    return sample_period_.load(std::memory_order_relaxed);
  }

  /// Stores the span (no-op while disabled; evicts the oldest at capacity).
  void Record(TraceSpan span);

  /// Ring capacity in spans. Changing it keeps the newest spans that fit
  /// and is safe at any time (Clear not required).
  void set_capacity(size_t capacity);
  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }
  /// Spans evicted (or rejected at capacity 0) since the last Clear.
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
  }
  /// Retained spans, oldest first (record order).
  std::vector<TraceSpan> SnapshotSpans() const;
  /// The newest `max_spans` retained spans, oldest first.
  std::vector<TraceSpan> TailSpans(size_t max_spans) const;
  /// All retained spans of one tuple, stably sorted by start_us (record
  /// order breaks ties, which is causal order in the simulation).
  std::vector<TraceSpan> SpansFor(uint64_t trace_id) const;

  /// Stage-attribution state fed by Record (see obs/attribution.h).
  /// Unguarded reference — callers must be single-threaded (the sim engine)
  /// or externally quiescent.
  LatencyAttributor& attribution() { return attributor_; }
  const LatencyAttributor& attribution() const { return attributor_; }

  /// Drops recorded spans, attribution state, and the dropped counter;
  /// trace ids stay monotonic.
  void Clear();

  /// JSON array of span objects, oldest first.
  std::string ExportJson() const;
  /// CSV timeseries: trace_id,kind,node,site,start_us,end_us per row.
  std::string ExportCsv() const;

 private:
  /// Index into ring_ of the i-th oldest retained span.
  size_t RingIndex(size_t i) const {
    return full_ ? (head_ + i) % ring_.size() : i;
  }
  /// SnapshotSpans body; caller holds mu_.
  std::vector<TraceSpan> SnapshotSpansLocked() const;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> issued_{0};
  std::atomic<uint64_t> sample_period_{1};
  /// Guards the ring (and its bookkeeping), dropped_, and the attributor.
  mutable std::mutex mu_;
  size_t capacity_ = 1 << 20;
  uint64_t dropped_ = 0;
  /// Ring storage: grows up to capacity_, then wraps. head_ is the next
  /// write position == the oldest span once full.
  std::vector<TraceSpan> ring_;
  size_t head_ = 0;
  bool full_ = false;
  Counter* m_spans_dropped_;
  Counter* m_spans_sampled_out_;
  LatencyAttributor attributor_;
};

}  // namespace aurora

#endif  // AURORA_OBS_TRACE_H_
