#include "obs/trace.h"

#include <algorithm>
#include <sstream>

namespace aurora {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kEnqueue:
      return "enqueue";
    case SpanKind::kBoxExec:
      return "box_exec";
    case SpanKind::kTransportHop:
      return "transport_hop";
    case SpanKind::kDelivery:
      return "delivery";
    case SpanKind::kMigration:
      return "migration";
    case SpanKind::kFault:
      return "fault";
  }
  return "?";
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(TraceSpan span) {
  if (!enabled_) return;
  if (spans_.size() >= capacity_) {
    dropped_++;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> Tracer::SpansFor(uint64_t trace_id) const {
  std::vector<TraceSpan> out;
  for (const auto& span : spans_) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

void Tracer::Clear() {
  spans_.clear();
  dropped_ = 0;
}

std::string Tracer::ExportJson() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    os << (i ? ",\n " : "\n ") << "{\"trace_id\": " << s.trace_id
       << ", \"kind\": \"" << SpanKindName(s.kind) << "\", \"node\": " << s.node
       << ", \"site\": \"" << s.site << "\", \"start_us\": " << s.start_us
       << ", \"end_us\": " << s.end_us << "}";
  }
  os << "\n]";
  return os.str();
}

std::string Tracer::ExportCsv() const {
  std::ostringstream os;
  os << "trace_id,kind,node,site,start_us,end_us\n";
  for (const auto& s : spans_) {
    os << s.trace_id << "," << SpanKindName(s.kind) << "," << s.node << ","
       << s.site << "," << s.start_us << "," << s.end_us << "\n";
  }
  return os.str();
}

}  // namespace aurora
