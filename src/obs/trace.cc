#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace aurora {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kEnqueue:
      return "enqueue";
    case SpanKind::kBoxExec:
      return "box_exec";
    case SpanKind::kTransportHop:
      return "transport_hop";
    case SpanKind::kDelivery:
      return "delivery";
    case SpanKind::kMigration:
      return "migration";
    case SpanKind::kFault:
      return "fault";
    case SpanKind::kCreditWait:
      return "credit_wait";
    case SpanKind::kShed:
      return "shed";
    case SpanKind::kStorage:
      return "storage";
  }
  return "?";
}

bool SpanKindFromName(const std::string& name, SpanKind* out) {
  for (int i = 0; i < kNumSpanKinds; ++i) {
    SpanKind kind = static_cast<SpanKind>(i);
    if (name == SpanKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

Tracer::Tracer()
    : m_spans_dropped_(MetricsRegistry::Global().GetCounter(
          "trace.spans_dropped")),
      m_spans_sampled_out_(MetricsRegistry::Global().GetCounter(
          "trace.sampled_out")) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    Tracer* t = new Tracer();
    if (EnvU64("AURORA_TRACE", 0) != 0) t->set_enabled(true);
    t->set_capacity(static_cast<size_t>(
        EnvU64("AURORA_TRACE_CAPACITY", t->capacity())));
    t->set_sample_period(EnvU64("AURORA_TRACE_SAMPLE", 1));
    return t;
  }();
  return *tracer;
}

uint64_t Tracer::NewTrace() {
  uint64_t slot = issued_.fetch_add(1, std::memory_order_relaxed);
  uint64_t period = sample_period_.load(std::memory_order_relaxed);
  if (period > 1 && slot % period != 0) {
    m_spans_sampled_out_->Add();
    return 0;
  }
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Record(TraceSpan span) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  attributor_.OnSpan(span);
  if (capacity_ == 0) {
    dropped_++;
    m_spans_dropped_->Add();
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  // At capacity: overwrite the oldest span.
  full_ = true;
  ring_[head_] = std::move(span);
  head_ = (head_ + 1) % ring_.size();
  dropped_++;
  m_spans_dropped_->Add();
}

void Tracer::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity == capacity_) return;
  // Keep the newest spans that still fit, restored to a linear prefix.
  std::vector<TraceSpan> kept = SnapshotSpansLocked();
  if (kept.size() > capacity) {
    size_t excess = kept.size() - capacity;
    kept.erase(kept.begin(), kept.begin() + static_cast<long>(excess));
    dropped_ += excess;
    m_spans_dropped_->Add(excess);
  }
  capacity_ = capacity;
  ring_ = std::move(kept);
  ring_.reserve(std::min<size_t>(capacity_, 1 << 20));
  head_ = 0;
  full_ = false;
}

std::vector<TraceSpan> Tracer::SnapshotSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotSpansLocked();
}

std::vector<TraceSpan> Tracer::SnapshotSpansLocked() const {
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) out.push_back(ring_[RingIndex(i)]);
  return out;
}

std::vector<TraceSpan> Tracer::TailSpans(size_t max_spans) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = std::min(max_spans, ring_.size());
  std::vector<TraceSpan> out;
  out.reserve(n);
  for (size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    out.push_back(ring_[RingIndex(i)]);
  }
  return out;
}

std::vector<TraceSpan> Tracer::SpansFor(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const TraceSpan& span = ring_[RingIndex(i)];
    if (span.trace_id == trace_id) out.push_back(span);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  full_ = false;
  dropped_ = 0;
  attributor_.Clear();
}

namespace {

void AppendSpanJson(std::ostringstream* os, const TraceSpan& s) {
  *os << "{\"trace_id\": " << s.trace_id << ", \"kind\": \""
      << SpanKindName(s.kind) << "\", \"node\": " << s.node << ", \"site\": \""
      << s.site << "\", \"start_us\": " << s.start_us
      << ", \"end_us\": " << s.end_us << "}";
}

}  // namespace

std::string Tracer::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < ring_.size(); ++i) {
    os << (i ? ",\n " : "\n ");
    AppendSpanJson(&os, ring_[RingIndex(i)]);
  }
  os << "\n]";
  return os.str();
}

std::string Tracer::ExportCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "trace_id,kind,node,site,start_us,end_us\n";
  for (size_t i = 0; i < ring_.size(); ++i) {
    const TraceSpan& s = ring_[RingIndex(i)];
    os << s.trace_id << "," << SpanKindName(s.kind) << "," << s.node << ","
       << s.site << "," << s.start_us << "," << s.end_us << "\n";
  }
  return os.str();
}

}  // namespace aurora
