#ifndef AURORA_OBS_METRICS_H_
#define AURORA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aurora {

/// \brief Monotonic event count (tuples processed, bytes on a link, ...).
///
/// Counters only grow between registry resets; rates are derived by
/// differencing two snapshots. Increments are relaxed atomics so worker
/// threads can share a counter; totals are exact, only cross-counter
/// ordering is unspecified mid-run.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time level (queue depth, utilization). Tracks the maximum
/// ever set, which is the metric's high-water mark. Set/Add are atomic
/// (relaxed; Add and the high-water mark use CAS loops), so concurrent
/// writers never tear a double — though a gauge written by racing threads is
/// last-writer-wins by nature.
class Gauge {
 public:
  void Set(double v) {
    value_.store(v, std::memory_order_relaxed);
    RaiseMax(v);
  }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
    RaiseMax(cur + delta);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  /// High-water mark since the last reset.
  double max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  void RaiseMax(double v) {
    double m = max_.load(std::memory_order_relaxed);
    while (v > m &&
           !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// \brief Log-bucketed histogram for latency-like positive values.
///
/// Buckets grow geometrically from `min_bound` by `growth`, so quantile
/// queries have bounded relative error (≤ growth-1 before intra-bucket
/// interpolation) over many orders of magnitude at O(#buckets) memory.
/// Exact count/sum/min/max are kept alongside, so mean() and Quantile(1.0)
/// are exact.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double min_bound = 1e-3, double growth = 1.15);

  void Record(double v);
  /// Exactly equivalent to calling Record(v) `n` times, with the log-based
  /// bucket search done once. The sum still accumulates term by term, so
  /// every derived stat (mean, quantiles, dump bytes) stays bit-identical
  /// to the per-call sequence — callers batch purely to amortize cost.
  void RecordN(double v, uint64_t n);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Value at quantile q in [0, 1], linearly interpolated within the
  /// containing bucket and clamped to the observed [min, max]. Monotone in
  /// q by construction (p50 <= p95 <= p99 <= max). 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  /// Bucket index for a value; bucket 0 holds everything below min_bound_.
  size_t BucketIndex(double v) const;
  /// Lower/upper value bounds of a bucket.
  double BucketLo(size_t idx) const;
  double BucketHi(size_t idx) const;

  double min_bound_;
  double growth_;
  double inv_log_growth_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Process-wide named-metric registry (the single source of truth the
/// benches and EXPERIMENTS.md numbers come from).
///
/// Names are dotted paths, `layer.entity.metric` (see docs/OBSERVABILITY.md
/// for the scheme). Get* registers on first use and returns a pointer that
/// stays valid for the registry's lifetime — hot paths cache the pointer
/// once and pay one add per event. Reset() zeroes values but keeps
/// registrations, so cached pointers survive (benches reset between runs).
///
/// Counters, gauges, and histograms are separate namespaces. Registration
/// (Get*/Find*), Reset, and the snapshot exporters are mutex-guarded so the
/// threaded engine's workers can register and bump counters/gauges
/// concurrently; histogram Record() is NOT thread-safe and stays confined to
/// the single-threaded simulation path. The raw map accessors below bypass
/// the lock and require a quiescent registry (no concurrent registration).
class MetricsRegistry {
 public:
  /// The process-wide instance every instrumented layer reports into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Lookup without registering; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  /// Counter value without registering; 0 when absent. Invariant checks
  /// (src/check) reconcile ground-truth tallies against these.
  uint64_t CounterValue(const std::string& name) const {
    const Counter* c = FindCounter(name);
    return c == nullptr ? 0 : c->value();
  }
  const Gauge* FindGauge(const std::string& name) const;
  const LatencyHistogram* FindHistogram(const std::string& name) const;

  size_t num_metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Read-only iteration over registrations (exporters and the
  /// snapshot-diff helper; see obs/snapshot_diff.h).
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<LatencyHistogram>>& histograms()
      const {
    return histograms_;
  }

  /// Zeroes every metric, keeping registrations (and pointers) intact.
  void Reset();

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, names sorted. Histograms export count, sum, min,
  /// max, mean, p50, p95, p99.
  std::string SnapshotJson() const;

  /// Flat CSV, one `name,type,field,value` row per exported field — the
  /// timeseries-friendly format (append a run/time column downstream).
  std::string SnapshotCsv() const;

 private:
  /// Guards the registration maps (not the metric values themselves, which
  /// carry their own atomics). Snapshots hold it for the whole export so a
  /// mid-snapshot registration can't invalidate iteration.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace aurora

#endif  // AURORA_OBS_METRICS_H_
