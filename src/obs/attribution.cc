#include "obs/attribution.h"

#include <algorithm>

#include "obs/trace.h"

namespace aurora {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kIngest:
      return "ingest";
    case Stage::kQueue:
      return "queue";
    case Stage::kExec:
      return "exec";
    case Stage::kTransport:
      return "transport";
    case Stage::kCredit:
      return "credit";
    case Stage::kDeliver:
      return "deliver";
  }
  return "?";
}

Stage StageBreakdown::dominant() const {
  int best = 0;
  for (int i = 1; i < kNumStages; ++i) {
    if (stage_us[i] > stage_us[best]) best = i;
  }
  return static_cast<Stage>(best);
}

namespace {

/// Stage an inter-event gap belongs to, keyed by the event that closes it:
/// what was the tuple doing *until* this event happened?
Stage GapStage(SpanKind kind) {
  switch (kind) {
    case SpanKind::kEnqueue:
      return Stage::kIngest;
    case SpanKind::kBoxExec:
      return Stage::kQueue;
    case SpanKind::kTransportHop:
      return Stage::kTransport;
    case SpanKind::kCreditWait:
      return Stage::kCredit;
    case SpanKind::kDelivery:
      return Stage::kDeliver;
    default:
      // kShed terminates the trace; kMigration/kFault are system spans that
      // never reach here (trace_id 0).
      return Stage::kDeliver;
  }
}

}  // namespace

LatencyAttributor::LatencyAttributor(size_t max_live)
    : max_live_(max_live),
      m_evicted_(MetricsRegistry::Global().GetCounter("trace.attr.evicted")) {}

void LatencyAttributor::OnSpan(const TraceSpan& span) {
  if (span.trace_id == 0) return;  // system spans carry no tuple lineage
  auto it = live_.find(span.trace_id);
  if (it == live_.end()) {
    if (span.kind != SpanKind::kEnqueue) return;  // lineage lost or evicted
    Live fresh;
    fresh.first_us = span.start_us;
    fresh.last_us = span.start_us;
    live_.emplace(span.trace_id, fresh);
    while (live_.size() > max_live_) {
      // Trace ids are issued monotonically, so begin() is the oldest trace.
      live_.erase(live_.begin());
      evicted_++;
      m_evicted_->Add();
    }
    return;
  }

  Live& live = it->second;
  // A kCreditWait span's start is when the *binding* blocked, which can
  // predate this tuple's last event; the unblock moment (end_us) is the
  // closing event. Every other kind closes at its start.
  int64_t event_us =
      span.kind == SpanKind::kCreditWait ? span.end_us : span.start_us;
  int64_t gap = event_us - live.last_us;
  if (gap > 0) {
    // Charged execution cost of the previous box elapses first; whatever
    // remains was spent the way the closing event implies.
    int64_t exec_part = std::min(gap, live.pending_exec_us);
    live.stage_us[static_cast<int>(Stage::kExec)] += exec_part;
    live.pending_exec_us -= exec_part;
    live.stage_us[static_cast<int>(GapStage(span.kind))] += gap - exec_part;
    live.last_us = event_us;
  }
  if (span.kind == SpanKind::kBoxExec) {
    live.pending_exec_us += std::max<int64_t>(0, span.end_us - span.start_us);
  }
  if (span.kind == SpanKind::kDelivery) {
    // site is "out:<name>"; tolerate bare names from hand-built spans.
    std::string output =
        span.site.rfind("out:", 0) == 0 ? span.site.substr(4) : span.site;
    RecordDelivery(span.trace_id, live, output);
  } else if (span.kind == SpanKind::kShed) {
    live_.erase(it);  // the tuple is gone; nothing will be delivered
  }
}

LatencyAttributor::OutputSeries& LatencyAttributor::Series(
    const std::string& output) {
  auto it = series_.find(output);
  if (it != series_.end()) return it->second;
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string base = "latency.attr." + output + ".";
  OutputSeries s;
  for (int i = 0; i < kNumStages; ++i) {
    const char* name = StageName(static_cast<Stage>(i));
    s.stage[i] = reg.GetHistogram(base + name + "_us");
    s.dominant[i] = reg.GetCounter(base + "dominant." + name);
  }
  s.e2e = reg.GetHistogram(base + "e2e_us");
  return series_.emplace(output, s).first->second;
}

void LatencyAttributor::RecordDelivery(uint64_t trace_id, const Live& live,
                                       const std::string& output) {
  last_.trace_id = trace_id;
  last_.output = output;
  last_.total_us = live.last_us - live.first_us;
  for (int i = 0; i < kNumStages; ++i) last_.stage_us[i] = live.stage_us[i];
  has_last_ = true;

  OutputSeries& s = Series(output);
  for (int i = 0; i < kNumStages; ++i) {
    s.stage[i]->Record(static_cast<double>(live.stage_us[i]));
  }
  s.e2e->Record(static_cast<double>(last_.total_us));
  s.dominant[static_cast<int>(last_.dominant())]->Add();
}

void LatencyAttributor::Clear() {
  live_.clear();
  has_last_ = false;
  evicted_ = 0;
}

}  // namespace aurora
