#include "obs/snapshot_diff.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace aurora {

MetricsSnapshot MetricsSnapshot::FromRegistry(const MetricsRegistry& registry) {
  MetricsSnapshot snap;
  for (const auto& [name, c] : registry.counters()) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : registry.gauges()) {
    snap.gauges[name] = g->value();
    snap.gauge_maxes[name] = g->max();
  }
  for (const auto& [name, h] : registry.histograms()) {
    HistogramStats s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->mean();
    s.p50 = h->Quantile(0.5);
    s.p95 = h->Quantile(0.95);
    s.p99 = h->Quantile(0.99);
    snap.histograms[name] = s;
  }
  return snap;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const JsonValue& doc) {
  // Accept either a bare snapshot or a wrapper document (flight dump,
  // BENCH_*.json) that embeds one under "metrics".
  const JsonValue* root = &doc;
  if (doc.Find("counters") == nullptr && doc.FindObject("metrics") != nullptr) {
    root = doc.FindObject("metrics");
  }
  const JsonValue* counters = root->FindObject("counters");
  const JsonValue* gauges = root->FindObject("gauges");
  const JsonValue* histograms = root->FindObject("histograms");
  if (counters == nullptr && gauges == nullptr && histograms == nullptr) {
    return Status::InvalidArgument(
        "not a metrics snapshot: no counters/gauges/histograms object");
  }

  MetricsSnapshot snap;
  if (counters != nullptr) {
    for (const auto& [name, v] : counters->AsObject()) {
      if (v.is_number()) snap.counters[name] = v.AsUint();
    }
  }
  if (gauges != nullptr) {
    for (const auto& [name, v] : gauges->AsObject()) {
      snap.gauges[name] = v.is_number() ? v.AsDouble() : v.NumberOr("value", 0);
      snap.gauge_maxes[name] =
          v.is_number() ? v.AsDouble() : v.NumberOr("max", snap.gauges[name]);
    }
  }
  if (histograms != nullptr) {
    for (const auto& [name, v] : histograms->AsObject()) {
      if (!v.is_object()) continue;
      HistogramStats s;
      s.count = static_cast<uint64_t>(v.NumberOr("count", 0));
      s.sum = v.NumberOr("sum", 0);
      s.min = v.NumberOr("min", 0);
      s.max = v.NumberOr("max", 0);
      s.mean = v.NumberOr("mean", 0);
      s.p50 = v.NumberOr("p50", 0);
      s.p95 = v.NumberOr("p95", 0);
      s.p99 = v.NumberOr("p99", 0);
      snap.histograms[name] = s;
    }
  }
  return snap;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJsonText(const std::string& text) {
  Result<JsonValue> doc = JsonValue::Parse(text);
  if (!doc.ok()) return doc.status();
  return FromJson(*doc);
}

Result<MetricsSnapshot> MetricsSnapshot::FromJsonFile(const std::string& path) {
  Result<JsonValue> doc = JsonValue::ParseFile(path);
  if (!doc.ok()) return doc.status();
  return FromJson(*doc);
}

SnapshotDiff SnapshotDiff::Between(const MetricsSnapshot& before,
                                   const MetricsSnapshot& after) {
  SnapshotDiff diff;

  auto add = [&diff](const std::string& name, MetricDelta d) {
    diff.changed.emplace(name, d);
  };

  for (const auto& [name, b] : before.counters) {
    auto it = after.counters.find(name);
    MetricDelta d;
    d.kind = MetricDelta::Kind::kCounter;
    d.before = static_cast<double>(b);
    if (it == after.counters.end()) {
      d.only_before = true;
      d.delta = -d.before;
      add(name, d);
    } else if (it->second != b) {
      d.after = static_cast<double>(it->second);
      d.delta = d.after - d.before;
      add(name, d);
    }
  }
  for (const auto& [name, a] : after.counters) {
    if (before.counters.count(name)) continue;
    MetricDelta d;
    d.kind = MetricDelta::Kind::kCounter;
    d.only_after = true;
    d.after = static_cast<double>(a);
    d.delta = d.after;
    if (a != 0) add(name, d);
  }

  for (const auto& [name, b] : before.gauges) {
    auto it = after.gauges.find(name);
    MetricDelta d;
    d.kind = MetricDelta::Kind::kGauge;
    d.before = b;
    if (it == after.gauges.end()) {
      d.only_before = true;
      d.delta = -b;
      add(name, d);
    } else if (it->second != b) {
      d.after = it->second;
      d.delta = d.after - d.before;
      add(name, d);
    }
  }
  for (const auto& [name, a] : after.gauges) {
    if (before.gauges.count(name)) continue;
    MetricDelta d;
    d.kind = MetricDelta::Kind::kGauge;
    d.only_after = true;
    d.after = a;
    d.delta = a;
    if (a != 0.0) add(name, d);
  }

  for (const auto& [name, b] : before.histograms) {
    auto it = after.histograms.find(name);
    MetricDelta d;
    d.kind = MetricDelta::Kind::kHistogram;
    d.before = static_cast<double>(b.count);
    if (it == after.histograms.end()) {
      d.only_before = true;
      d.delta = -d.before;
      add(name, d);
    } else if (it->second.count != b.count || it->second.sum != b.sum) {
      d.after = static_cast<double>(it->second.count);
      d.delta = d.after - d.before;
      add(name, d);
    }
  }
  for (const auto& [name, a] : after.histograms) {
    if (before.histograms.count(name)) continue;
    MetricDelta d;
    d.kind = MetricDelta::Kind::kHistogram;
    d.only_after = true;
    d.after = static_cast<double>(a.count);
    d.delta = d.after;
    if (a.count != 0) add(name, d);
  }

  return diff;
}

double SnapshotDiff::CounterDelta(const std::string& name) const {
  auto it = changed.find(name);
  if (it == changed.end()) return 0.0;
  return it->second.delta;
}

namespace {

std::string FormatNum(double v) {
  char buf[64];
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

std::string SnapshotDiff::ToText(size_t max_rows) const {
  std::ostringstream os;
  size_t rows = 0;
  for (const auto& [name, d] : changed) {
    if (max_rows != 0 && rows == max_rows) {
      os << "  ... (" << changed.size() - rows << " more)\n";
      break;
    }
    const char* kind = d.kind == MetricDelta::Kind::kCounter  ? "counter"
                       : d.kind == MetricDelta::Kind::kGauge ? "gauge"
                                                             : "histogram";
    os << "  " << name << " [" << kind << "] ";
    if (d.only_after) {
      os << "(new) -> " << FormatNum(d.after);
    } else if (d.only_before) {
      os << FormatNum(d.before) << " -> (gone)";
    } else {
      os << FormatNum(d.before) << " -> " << FormatNum(d.after);
    }
    os << " (" << (d.delta >= 0 ? "+" : "") << FormatNum(d.delta) << ")\n";
    rows++;
  }
  return os.str();
}

}  // namespace aurora
