#include "obs/flight_recorder.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aurora {

namespace {

/// Escapes a free-text field for embedding in a JSON string literal.
void AppendEscaped(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        *os << c;
        break;
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder() = default;

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = [] {
    FlightRecorder* r = new FlightRecorder();
    const char* v = std::getenv("AURORA_FLIGHT_RECORDER");
    if (v != nullptr && *v != '\0' && *v != '0') r->set_enabled(true);
    return r;
  }();
  return *recorder;
}

bool FlightRecorder::Trigger(const std::string& event,
                             const std::string& detail, int64_t now_us) {
  if (!enabled()) return false;
  // Claim the latch and a dump sequence number atomically; the dump itself
  // is built outside the lock (Tracer and MetricsRegistry synchronize
  // internally) so racing triggers of *different* events don't serialize on
  // file IO.
  uint64_t seq;
  size_t max_spans;
  std::string output_dir;
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!fired_.insert(event).second) return false;  // latched until Rearm
    seq = dumps_++;
    max_spans = max_spans_;
    output_dir = output_dir_;
    sink = sink_;
  }

  Tracer& tracer = Tracer::Global();
  std::vector<TraceSpan> spans = tracer.TailSpans(max_spans);
  if (now_us < 0 && !spans.empty()) now_us = spans.back().end_us;

  std::ostringstream os;
  os << "{\n  \"event\": \"";
  AppendEscaped(&os, event);
  os << "\",\n  \"detail\": \"";
  AppendEscaped(&os, detail);
  os << "\",\n  \"seq\": " << seq << ",\n  \"sim_time_us\": " << now_us
     << ",\n  \"spans_dropped\": " << tracer.dropped() << ",\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"trace_id\": " << s.trace_id << ", \"kind\": \""
       << SpanKindName(s.kind) << "\", \"node\": " << s.node
       << ", \"site\": \"";
    AppendEscaped(&os, s.site);
    os << "\", \"start_us\": " << s.start_us << ", \"end_us\": " << s.end_us
       << "}";
  }
  os << (spans.empty() ? "]" : "\n  ]") << ",\n  \"metrics\": "
     << MetricsRegistry::Global().SnapshotJson() << "\n}\n";

  std::string path = output_dir.empty()
                         ? "obs_flight_" + event + ".json"
                         : output_dir + "/obs_flight_" + event + ".json";
  if (sink) {
    sink(path, os.str());
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << os.str();
  AURORA_LOG(Info) << "flight recorder: " << event << " (" << detail
                   << ") -> " << path;
  return true;
}

}  // namespace aurora
