#include "obs/json.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace aurora {

namespace {

std::string Excerpt(const std::string& text, size_t pos) {
  size_t end = std::min(text.size(), pos + 20);
  return text.substr(pos, end - pos);
}

}  // namespace

/// Recursive-descent parser over the raw text. Friend of JsonValue so it can
/// fill the private representation directly.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    std::ostringstream os;
    os << "json: " << what << " at offset " << pos_;
    if (pos_ < text_.size()) os << " near '" << Excerpt(text_, pos_) << "'";
    return Status::InvalidArgument(os.str());
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (ConsumeWord("true")) {
          out->type_ = JsonValue::Type::kBool;
          out->bool_ = true;
          return Status::OK();
        }
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          out->type_ = JsonValue::Type::kBool;
          out->bool_ = false;
          return Status::OK();
        }
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) {
          out->type_ = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Error("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    pos_++;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue value;
      s = ParseValue(&value);
      if (!s.ok()) return s;
      out->object_.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    pos_++;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status s = ParseValue(&value);
      if (!s.ok()) return s;
      out->array_.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u':
          // The exporters never emit \u escapes; keep the raw sequence so
          // nothing is silently lost if one sneaks in.
          out->push_back('\\');
          out->push_back('u');
          break;
        default:
          out->push_back(esc);
          break;
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) return Error("expected value");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

Result<JsonValue> JsonValue::ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("json: cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return Parse(os.str());
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::FindObject(const std::string& key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_object()) ? v : nullptr;
}

const JsonValue* JsonValue::FindArray(const std::string& key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_array()) ? v : nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : fallback;
}

}  // namespace aurora
