#ifndef AURORA_OBS_ATTRIBUTION_H_
#define AURORA_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace aurora {

struct TraceSpan;

/// Stages a traced tuple's end-to-end latency decomposes into. Each stage
/// is an interval of *elapsed simulated time*; per trace they sum exactly
/// to (delivery time - first enqueue time), which is the conservation
/// property tests/obs/attribution_test.cc asserts.
enum class Stage : uint8_t {
  kIngest,     ///< before/between admissions (timestamp -> kEnqueue gaps)
  kQueue,      ///< waiting on a box input queue (gap closed by kBoxExec)
  kExec,       ///< charged box execution cost that elapsed on the clock
  kTransport,  ///< serialization + sender queue + wire (closed by a hop)
  kCredit,     ///< held for downstream credit (closed by kCreditWait)
  kDeliver,    ///< output-side holding (gap closed by kDelivery)
};
constexpr int kNumStages = 6;
const char* StageName(Stage stage);

/// One delivery's stage decomposition. `total_us` is the delivery's
/// end-to-end latency measured from the trace's first enqueue; the stage
/// entries sum to it exactly.
struct StageBreakdown {
  uint64_t trace_id = 0;
  std::string output;  ///< output name the delivery landed on
  int64_t stage_us[kNumStages] = {0, 0, 0, 0, 0, 0};
  int64_t total_us = 0;
  /// Stage with the largest share (first wins on ties, in enum order).
  Stage dominant() const;
  int64_t StageUs(Stage s) const { return stage_us[static_cast<int>(s)]; }
};

/// \brief Incremental per-trace latency attribution.
///
/// Fed every span the Tracer records (before ring eviction, so attribution
/// never degrades when the flight-recorder window wraps). The model is
/// gap-based: the elapsed time between consecutive span events of one trace
/// is attributed to the stage the *closing* event implies, except that the
/// previous span's charged duration (box execution cost) is consumed first
/// as kExec. Gaps telescope, so per delivery the stages sum exactly to the
/// elapsed time since the trace's first enqueue.
///
/// On every kDelivery span the cumulative breakdown is recorded into the
/// registry under `latency.attr.<output>.<stage>_us` plus
/// `latency.attr.<output>.e2e_us`, and the delivery's dominant stage bumps
/// `latency.attr.<output>.dominant.<stage>` — the series aurora_inspect's
/// stage-attribution table reads.
///
/// Live state is bounded: at most `max_live` traces are tracked; beyond it
/// the oldest (smallest trace id) is evicted and counted in
/// `trace.attr.evicted`.
class LatencyAttributor {
 public:
  explicit LatencyAttributor(size_t max_live = 1 << 16);

  /// Digests one recorded span. Spans must arrive in nondecreasing
  /// start_us order per trace (true in the single-threaded simulation).
  void OnSpan(const TraceSpan& span);

  /// Breakdown of the most recent kDelivery span; nullptr before any.
  /// Valid until the next OnSpan/Clear. The engine reads it right after
  /// recording a delivery span to hand the dominant stage to QoSMonitor.
  const StageBreakdown* last_delivery() const {
    return has_last_ ? &last_ : nullptr;
  }

  size_t live_traces() const { return live_.size(); }
  void set_max_live(size_t n) { max_live_ = n == 0 ? 1 : n; }
  uint64_t evicted() const { return evicted_; }

  void Clear();

 private:
  struct Live {
    int64_t first_us = 0;
    int64_t last_us = 0;
    /// Charged execution cost of the last box span not yet consumed by an
    /// elapsed gap.
    int64_t pending_exec_us = 0;
    int64_t stage_us[kNumStages] = {0, 0, 0, 0, 0, 0};
  };
  /// Cached registry series for one output's attribution histograms.
  struct OutputSeries {
    LatencyHistogram* stage[kNumStages] = {};
    LatencyHistogram* e2e = nullptr;
    Counter* dominant[kNumStages] = {};
  };
  OutputSeries& Series(const std::string& output);
  void RecordDelivery(uint64_t trace_id, const Live& live,
                      const std::string& output);

  size_t max_live_;
  Counter* m_evicted_;
  uint64_t evicted_ = 0;
  std::map<uint64_t, Live> live_;
  std::map<std::string, OutputSeries> series_;
  StageBreakdown last_;
  bool has_last_ = false;
};

}  // namespace aurora

#endif  // AURORA_OBS_ATTRIBUTION_H_
