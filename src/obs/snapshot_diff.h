#ifndef AURORA_OBS_SNAPSHOT_DIFF_H_
#define AURORA_OBS_SNAPSHOT_DIFF_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "obs/json.h"

namespace aurora {

class MetricsRegistry;

/// \brief Point-in-time copy of a metrics registry, comparable and diffable.
///
/// One snapshot type backs both consumers of registry deltas: the benches
/// (capture before/after a measured phase, report the difference) and
/// `aurora_inspect --diff a.json b.json` (compare two exported obs dumps).
/// Both paths land in the same struct, so a bench delta and an offline diff
/// agree by construction.
struct MetricsSnapshot {
  struct HistogramStats {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;  ///< current value (max not diffable)
  /// All-time high-water mark per gauge. Not part of the diff (a max only
  /// moves forward), but `aurora_inspect --storage` reads it to show spill
  /// peaks next to the current occupancy.
  std::map<std::string, double> gauge_maxes;
  std::map<std::string, HistogramStats> histograms;

  /// Copies the live registry (benches use the global one).
  static MetricsSnapshot FromRegistry(const MetricsRegistry& registry);
  /// Reads the `SnapshotJson()` format, either a bare snapshot object or
  /// any document embedding one under a "metrics" key (flight dumps,
  /// BENCH_*.json obs sections).
  static Result<MetricsSnapshot> FromJson(const JsonValue& doc);
  static Result<MetricsSnapshot> FromJsonText(const std::string& text);
  static Result<MetricsSnapshot> FromJsonFile(const std::string& path);

  uint64_t CounterOr(const std::string& name, uint64_t fallback = 0) const {
    auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
  }

  double GaugeOr(const std::string& name, double fallback = 0.0) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? fallback : it->second;
  }

  double GaugeMaxOr(const std::string& name, double fallback = 0.0) const {
    auto it = gauge_maxes.find(name);
    return it == gauge_maxes.end() ? fallback : it->second;
  }
};

/// One metric's change between two snapshots. For histograms the delta is
/// in counts/sums (quantiles are not differencable and are reported from
/// the `after` side).
struct MetricDelta {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  bool only_before = false;  ///< present only in the `before` snapshot
  bool only_after = false;   ///< present only in the `after` snapshot
  double before = 0.0;
  double after = 0.0;
  double delta = 0.0;  ///< after - before (counter value / gauge / hist count)
};

/// \brief Name-keyed difference of two snapshots.
///
/// Metrics equal on both sides are omitted, so `changed` holds exactly the
/// metrics that moved (or appeared/disappeared).
struct SnapshotDiff {
  std::map<std::string, MetricDelta> changed;

  static SnapshotDiff Between(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

  bool empty() const { return changed.empty(); }

  /// Delta of one counter between the snapshots (0 when absent/unchanged).
  double CounterDelta(const std::string& name) const;

  /// Human-readable table, one `name before -> after (delta)` line per
  /// changed metric, sorted by name. `max_rows` 0 = unlimited.
  std::string ToText(size_t max_rows = 0) const;
};

}  // namespace aurora

#endif  // AURORA_OBS_SNAPSHOT_DIFF_H_
