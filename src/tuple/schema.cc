#include "tuple/schema.h"

namespace aurora {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "' in " + ToString());
}

bool Schema::HasField(const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return true;
  }
  return false;
}

std::shared_ptr<Schema> Schema::AddField(Field extra) const {
  std::vector<Field> fields = fields_;
  fields.push_back(std::move(extra));
  return Schema::Make(std::move(fields));
}

Result<std::shared_ptr<Schema>> Schema::Project(
    const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const auto& n : names) {
    AURORA_ASSIGN_OR_RETURN(size_t idx, IndexOf(n));
    fields.push_back(fields_[idx]);
  }
  return Schema::Make(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace aurora
