#ifndef AURORA_TUPLE_SCHEMA_H_
#define AURORA_TUPLE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "tuple/value.h"

namespace aurora {

/// A named, typed attribute of a stream schema.
struct Field {
  std::string name;
  ValueType type;

  bool operator==(const Field& other) const = default;
};

/// \brief Ordered collection of fields describing the tuples of a stream.
///
/// Schemas are immutable and shared (shared_ptr) between the tuples of a
/// stream, the catalog, and operators. Field lookup by name is linear —
/// stream schemas are small (the paper's examples have 2–3 attributes).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static std::shared_ptr<Schema> Make(std::vector<Field> fields) {
    return std::make_shared<Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given name, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;
  bool HasField(const std::string& name) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// Schema with `extra` appended; used by aggregate operators that emit
  /// (groupby attrs..., Result).
  std::shared_ptr<Schema> AddField(Field extra) const;

  /// Schema containing only the named fields, in the given order.
  Result<std::shared_ptr<Schema>> Project(
      const std::vector<std::string>& names) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace aurora

#endif  // AURORA_TUPLE_SCHEMA_H_
