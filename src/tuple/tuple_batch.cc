#include "tuple/tuple_batch.h"

namespace aurora {

void TupleBatch::Clear() {
  tuples_.clear();
  nows_.clear();
  for (Column& c : cols_) {
    c.built_i64 = false;
    c.ok_i64 = false;
    c.built_f64 = false;
    c.ok_f64 = false;
    c.built_str = false;
    c.ok_str = false;
  }
  uniform_ = true;
}

const int64_t* TupleBatch::I64Column(size_t field) {
  if (tuples_.empty() || !uniform_ || schema() == nullptr) return nullptr;
  if (field >= tuples_.front().num_values()) return nullptr;
  if (cols_.size() <= field) cols_.resize(field + 1);
  Column& c = cols_[field];
  if (c.built_i64) return c.ok_i64 ? c.i64.data() : nullptr;
  c.built_i64 = true;
  c.i64.clear();
  c.i64.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    const Value& v = t.value(field);
    if (v.type() != ValueType::kInt64) return nullptr;  // ok_i64 stays false
    c.i64.push_back(v.AsInt());
  }
  c.ok_i64 = true;
  return c.i64.data();
}

const double* TupleBatch::F64Column(size_t field) {
  if (tuples_.empty() || !uniform_ || schema() == nullptr) return nullptr;
  if (field >= tuples_.front().num_values()) return nullptr;
  if (cols_.size() <= field) cols_.resize(field + 1);
  Column& c = cols_[field];
  if (c.built_f64) return c.ok_f64 ? c.f64.data() : nullptr;
  c.built_f64 = true;
  c.f64.clear();
  c.f64.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    const Value& v = t.value(field);
    if (v.type() != ValueType::kDouble) return nullptr;  // ok_f64 stays false
    c.f64.push_back(v.AsDouble());
  }
  c.ok_f64 = true;
  return c.f64.data();
}

const std::string_view* TupleBatch::StrColumn(size_t field) {
  if (tuples_.empty() || !uniform_ || schema() == nullptr) return nullptr;
  if (field >= tuples_.front().num_values()) return nullptr;
  if (cols_.size() <= field) cols_.resize(field + 1);
  Column& c = cols_[field];
  if (c.built_str) return c.ok_str ? c.str.data() : nullptr;
  c.built_str = true;
  c.str.clear();
  c.str.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    const Value& v = t.value(field);
    if (v.type() != ValueType::kString) return nullptr;  // ok_str stays false
    c.str.push_back(std::string_view(v.AsString()));
  }
  c.ok_str = true;
  return c.str.data();
}

}  // namespace aurora
