#ifndef AURORA_TUPLE_TUPLE_BATCH_H_
#define AURORA_TUPLE_TUPLE_BATCH_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/sim_time.h"
#include "tuple/tuple.h"

namespace aurora {

/// \brief One consumable train of tuples handed to Operator::ProcessBatch,
/// plus a lazily-built columnar scratch over it.
///
/// The engine fills a batch with up to `batch_size` tuples dequeued from one
/// arc, together with the per-tuple `now` each tuple would have been
/// processed under on the scalar path (the activation clock in the
/// single-threaded engine, the tuple's own timestamp in the threaded one).
/// Operators consume the batch front to back; emission order must match what
/// per-tuple Process calls would have produced, which is what the
/// batch-vs-scalar equivalence suite gates.
///
/// Columnar scratch: for fixed-width fields (int64 / double) of a
/// schema-uniform batch, I64Column / F64Column materialize the field as a
/// contiguous array once per batch, so Predicate::EvalBatch and
/// Expr::EvalBatch loop over raw machine values instead of re-dispatching
/// through the Value variant per tuple. Columns are built on first request
/// (only fields an expression actually reads pay the gather) and cached for
/// the batch's lifetime; Clear() drops them but keeps capacity, so a batch
/// reused across activations stops allocating once warm. Anything
/// non-fixed-width (strings, nulls, mixed schemas) simply yields nullptr and
/// callers fall back to the per-tuple path.
class TupleBatch {
 public:
  TupleBatch() = default;

  TupleBatch(const TupleBatch&) = delete;
  TupleBatch& operator=(const TupleBatch&) = delete;

  void Reserve(size_t n) {
    tuples_.reserve(n);
    nows_.reserve(n);
  }

  void Push(Tuple t, SimTime now) {
    if (!tuples_.empty() &&
        t.schema().get() != tuples_.front().schema().get()) {
      uniform_ = false;
    }
    tuples_.push_back(std::move(t));
    nows_.push_back(now);
  }

  /// Drops tuples and invalidates columns; keeps all buffer capacity.
  void Clear();

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  Tuple& tuple(size_t i) { return tuples_[i]; }
  /// The scalar-path clock tuple `i` would have been processed under.
  SimTime now(size_t i) const { return nows_[i]; }

  /// All tuples share one schema object (pointer identity). Columns are
  /// only available on uniform batches; an arc's tuples are uniform in
  /// practice, so this mostly guards hand-built test batches.
  bool uniform_schema() const { return uniform_; }
  /// Schema of the first tuple; nullptr on an empty batch.
  const SchemaPtr& schema() const {
    static const SchemaPtr kNull;
    return tuples_.empty() ? kNull : tuples_.front().schema();
  }

  /// Contiguous int64 column for field `field`, one entry per tuple, or
  /// nullptr when the field is not int64 across the whole batch (or the
  /// batch is empty / not schema-uniform). Pointer valid until Clear().
  const int64_t* I64Column(size_t field);
  /// Same for double fields.
  const double* F64Column(size_t field);
  /// Pooled string views for field `field`, one per tuple, or nullptr when
  /// the field is not a string across the whole batch. Each view aliases the
  /// owning tuple's refcounted body — no bytes are copied — so views stay
  /// valid exactly as long as the columns do: until Clear().
  const std::string_view* StrColumn(size_t field);

 private:
  struct Column {
    bool built_i64 = false;
    bool ok_i64 = false;
    bool built_f64 = false;
    bool ok_f64 = false;
    bool built_str = false;
    bool ok_str = false;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<std::string_view> str;
  };

  std::vector<Tuple> tuples_;
  std::vector<SimTime> nows_;
  std::vector<Column> cols_;
  bool uniform_ = true;
};

}  // namespace aurora

#endif  // AURORA_TUPLE_TUPLE_BATCH_H_
