#include "tuple/serde.h"

#include <cstring>

namespace aurora {

void Encoder::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      PutString(v.AsString());
      break;
  }
}

void Encoder::PutTuple(const Tuple& t) {
  PutI64(t.timestamp().micros());
  PutU64(t.seq());
  PutU64(t.trace_id());
  PutU16(static_cast<uint16_t>(t.num_values()));
  for (size_t i = 0; i < t.num_values(); ++i) PutValue(t.value(i));
}

void Encoder::PutSchema(const Schema& s) {
  PutU16(static_cast<uint16_t>(s.num_fields()));
  for (const auto& f : s.fields()) {
    PutString(f.name);
    PutU8(static_cast<uint8_t>(f.type));
  }
}

Status Decoder::Need(size_t n) const {
  if (pos_ + n > size_) {
    return Status::OutOfRange("decode past end of buffer (need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(size_ - pos_) + ")");
  }
  return Status::OK();
}

Result<uint8_t> Decoder::GetU8() {
  AURORA_RETURN_NOT_OK(Need(1));
  return data_[pos_++];
}

Result<uint16_t> Decoder::GetU16() {
  AURORA_RETURN_NOT_OK(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Decoder::GetU32() {
  AURORA_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  AURORA_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> Decoder::GetI64() {
  AURORA_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> Decoder::GetDouble() {
  AURORA_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> Decoder::GetString() {
  AURORA_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  AURORA_RETURN_NOT_OK(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Value> Decoder::GetValue() {
  AURORA_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      AURORA_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value(b != 0);
    }
    case ValueType::kInt64: {
      AURORA_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      AURORA_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value(v);
    }
    case ValueType::kString: {
      AURORA_ASSIGN_OR_RETURN(std::string v, GetString());
      return Value(std::move(v));
    }
  }
  return Status::InvalidArgument("bad value tag " + std::to_string(tag));
}

Result<Tuple> Decoder::GetTuple(const SchemaPtr& schema) {
  AURORA_ASSIGN_OR_RETURN(int64_t ts, GetI64());
  AURORA_ASSIGN_OR_RETURN(uint64_t seq, GetU64());
  AURORA_ASSIGN_OR_RETURN(uint64_t trace_id, GetU64());
  AURORA_ASSIGN_OR_RETURN(uint16_t count, GetU16());
  std::vector<Value> values;
  values.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    AURORA_ASSIGN_OR_RETURN(Value v, GetValue());
    values.push_back(std::move(v));
  }
  Tuple t(schema, std::move(values));
  t.set_timestamp(SimTime::Micros(ts));
  t.set_seq(seq);
  t.set_trace_id(trace_id);
  return t;
}

Result<SchemaPtr> Decoder::GetSchema() {
  AURORA_ASSIGN_OR_RETURN(uint16_t count, GetU16());
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    AURORA_ASSIGN_OR_RETURN(std::string name, GetString());
    AURORA_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
    if (tag > static_cast<uint8_t>(ValueType::kString)) {
      return Status::InvalidArgument("bad field type tag " + std::to_string(tag));
    }
    fields.push_back(Field{std::move(name), static_cast<ValueType>(tag)});
  }
  return Schema::Make(std::move(fields));
}

std::vector<uint8_t> SerializeTuples(const std::vector<Tuple>& tuples) {
  std::vector<uint8_t> out;
  SerializeTuplesInto(tuples, &out);
  return out;
}

void SerializeTuplesInto(const Tuple* tuples, size_t n,
                         std::vector<uint8_t>* out) {
  Encoder enc(std::move(*out));
  enc.PutU32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) enc.PutTuple(tuples[i]);
  *out = enc.TakeBuffer();
}

void SerializeTuplesInto(const std::vector<Tuple>& tuples,
                         std::vector<uint8_t>* out) {
  SerializeTuplesInto(tuples.data(), tuples.size(), out);
}

Result<std::vector<Tuple>> DeserializeTuples(const std::vector<uint8_t>& buf,
                                             const SchemaPtr& schema) {
  std::vector<Tuple> tuples;
  AURORA_RETURN_NOT_OK(DeserializeTuplesInto(buf, schema, &tuples));
  return tuples;
}

Status DeserializeTuplesInto(const std::vector<uint8_t>& buf,
                             const SchemaPtr& schema,
                             std::vector<Tuple>* out) {
  out->clear();
  Decoder dec(buf);
  AURORA_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AURORA_ASSIGN_OR_RETURN(Tuple t, dec.GetTuple(schema));
    out->push_back(std::move(t));
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after tuple batch");
  }
  return Status::OK();
}

}  // namespace aurora
