#ifndef AURORA_TUPLE_SERDE_H_
#define AURORA_TUPLE_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "tuple/tuple.h"

namespace aurora {

/// \brief Append-only binary encoder for the inter-node wire format.
///
/// Fixed-width little-endian integers; strings are length-prefixed (u32).
/// The format is deliberately simple: the paper's transport argument is
/// about connection multiplexing and scheduling, not encoding efficiency,
/// but every message that crosses a simulated link is genuinely encoded and
/// decoded so that bandwidth accounting reflects real byte counts.
class Encoder {
 public:
  Encoder() = default;
  /// Takes over `reuse`'s storage (cleared, capacity kept) so repeated
  /// encodes on a hot path can recycle one buffer instead of regrowing.
  explicit Encoder(std::vector<uint8_t>&& reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(const std::string& s);

  void PutValue(const Value& v);
  void PutTuple(const Tuple& t);
  void PutSchema(const Schema& s);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Bounds-checked decoder over a byte buffer.
///
/// Every accessor returns Result so that a corrupted or truncated message is
/// surfaced as a Status instead of undefined behaviour.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  Result<Value> GetValue();
  /// Decodes a tuple; the schema is attached but not re-validated per tuple.
  Result<Tuple> GetTuple(const SchemaPtr& schema);
  Result<SchemaPtr> GetSchema();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Round-trip helpers used by tests and the transport layer.
std::vector<uint8_t> SerializeTuples(const std::vector<Tuple>& tuples);
Result<std::vector<Tuple>> DeserializeTuples(const std::vector<uint8_t>& buf,
                                             const SchemaPtr& schema);

/// Scratch-reusing variants for per-message hot paths: `out` is cleared but
/// keeps its capacity, so steady-state encode/decode does not reallocate.
/// The span form lets chunked batch emissions serialize straight out of an
/// emission buffer without materializing a vector.
void SerializeTuplesInto(const Tuple* tuples, size_t n,
                         std::vector<uint8_t>* out);
void SerializeTuplesInto(const std::vector<Tuple>& tuples,
                         std::vector<uint8_t>* out);
Status DeserializeTuplesInto(const std::vector<uint8_t>& buf,
                             const SchemaPtr& schema,
                             std::vector<Tuple>* out);

}  // namespace aurora

#endif  // AURORA_TUPLE_SERDE_H_
