#include "tuple/value.h"

#include <cmath>
#include <cstdio>

namespace aurora {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt64;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

double Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      AURORA_CHECK(false) << "Value " << ToString() << " is not numeric";
      return 0.0;
  }
}

namespace {
// Rank for the cross-type total order.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Exact integer comparison when both are ints; numeric otherwise.
      if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
        int64_t a = AsInt(), b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = AsNumeric(), b = other.AsNumeric();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kString:
      return AsString().compare(other.AsString());
  }
  return 0;
}

uint64_t Value::Hash() const {
  auto mix = [](uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  switch (type()) {
    case ValueType::kNull:
      return mix(0x6e756c6cull);
    case ValueType::kBool:
      return mix(AsBool() ? 0x74727565ull : 0x66616c73ull);
    case ValueType::kInt64:
      return mix(static_cast<uint64_t>(AsInt()) ^ 0x1234ull);
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles identically to the equal int64 so that numeric
      // groupby keys behave consistently.
      if (d == std::floor(d) && std::abs(d) < 9e15) {
        return mix(static_cast<uint64_t>(static_cast<int64_t>(d)) ^ 0x1234ull);
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return mix(bits ^ 0x5678ull);
    }
    case ValueType::kString: {
      uint64_t h = 0xcbf29ce484222325ull;
      for (char c : AsString()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
      }
      return mix(h);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "\"" + AsString() + "\"";
  }
  return "?";
}

size_t Value::WireSize() const {
  // 1 tag byte + payload (see serde.cc for the format).
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 2;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 9;
    case ValueType::kString:
      return 1 + 4 + AsString().size();
  }
  return 1;
}

}  // namespace aurora
