#ifndef AURORA_TUPLE_VALUE_H_
#define AURORA_TUPLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

namespace aurora {

/// Column types supported by the stream engine. The CIDR'03 paper's examples
/// use integer and aggregate (double) attributes; strings cover stream names
/// and location-style predicates ("all streams generated in Cambridge").
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeName(ValueType type);

/// \brief A single dynamically-typed attribute value.
///
/// Values are small and value-semantic; strings are owned. Ordering across
/// numeric types compares numerically (int vs double), matching what WSort
/// and groupby equality need.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  Value(bool v) : rep_(v) {}                  // NOLINT(runtime/explicit)
  Value(int64_t v) : rep_(v) {}               // NOLINT(runtime/explicit)
  Value(int v) : rep_(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)
  Value(double v) : rep_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: int64 and double both convert; other types abort.
  double AsNumeric() const;

  /// Total order over values: null < bool < numerics (by value) < string.
  /// Used by WSort and by groupby key comparison.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash, used for hash-partitioning split predicates.
  uint64_t Hash() const;

  std::string ToString() const;

  /// Serialized size in bytes under the wire format in serde.h.
  size_t WireSize() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

}  // namespace aurora

#endif  // AURORA_TUPLE_VALUE_H_
