#ifndef AURORA_TUPLE_TUPLE_H_
#define AURORA_TUPLE_TUPLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace aurora {

/// Sequence number assigned by the transport when a tuple crosses a server
/// boundary; the basis of the HA queue-truncation protocol (paper §6.2).
/// Zero means "not yet assigned".
using SeqNo = uint64_t;
inline constexpr SeqNo kNoSeqNo = 0;

/// \brief One stream tuple: a cheap handle over a refcounted immutable row
/// of values, plus per-hop stream-processing metadata.
///
/// Copying a Tuple copies two shared_ptrs and three integers; the value
/// vector itself (the `TupleBody`) is shared by every copy. Arc hops,
/// ConnectionPoint fan-out, HA backup queues, and transport trains therefore
/// all alias one allocation. Mutation (`SetValue`, `MutableValues`) detaches
/// a private copy first (copy-on-write), so sharing is never observable.
///
/// Metadata carried per handle (NOT shared — each copy may be restamped):
///  - `timestamp`: creation time at the data source; drives latency QoS.
///  - `seq`: transport sequence number on the arc the tuple most recently
///    crossed (HA truncation protocol).
///  - `trace_id`: lineage id assigned by the engine when the process-wide
///    Tracer is enabled (src/obs/trace.h); 0 = untraced. Propagated to
///    derived tuples and across the wire so a tuple's spans can be stitched
///    across nodes.
/// The schema pointer is shared by all tuples of a stream.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)),
        body_(std::make_shared<const TupleBody>(std::move(values))) {}

  const SchemaPtr& schema() const { return schema_; }
  size_t num_values() const { return body_ ? body_->values.size() : 0; }
  const Value& value(size_t i) const { return body_->values[i]; }
  const std::vector<Value>& values() const {
    static const std::vector<Value> kEmpty;
    return body_ ? body_->values : kEmpty;
  }

  /// Replaces field `i`, detaching a private body copy if this handle
  /// shares one with other tuples.
  void SetValue(size_t i, Value v);

  /// Mutable access to the whole row; detaches a private body copy first.
  /// Setup/repair paths only — never on the per-tuple hot path.
  std::vector<Value>& MutableValues();

  /// Value of the named field; aborts if absent (operator wiring validates
  /// field presence at network-construction time). Setup/debug/sink paths
  /// only: per-tuple operator code must bind field indices once at box
  /// initialization (see Expr::Bind / Predicate::Bind) — a debug build
  /// DCHECK-fails if Get is reached inside an operator activation.
  const Value& Get(const std::string& field_name) const;

  SimTime timestamp() const { return timestamp_; }
  void set_timestamp(SimTime t) { timestamp_ = t; }

  SeqNo seq() const { return seq_; }
  void set_seq(SeqNo s) { seq_ = s; }

  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  /// Serialized size in bytes (values + fixed header); used by the transport
  /// to charge link bandwidth. O(1): the value-byte total is cached on the
  /// shared body.
  size_t WireSize() const;

  std::string ToString() const;

  bool ValuesEqual(const Tuple& other) const {
    if (body_ == other.body_) return true;
    return values() == other.values();
  }

  /// True when both handles alias the same body allocation. Test/debug
  /// introspection for the copy-on-write contract.
  bool SharesBodyWith(const Tuple& other) const {
    return body_ != nullptr && body_ == other.body_;
  }

 private:
  struct TupleBody {
    explicit TupleBody(std::vector<Value> v) : values(std::move(v)) {}
    std::vector<Value> values;
    /// Cached sum of the values' wire bytes; kUnknownWire until first
    /// WireSize() call. Relaxed atomic: bodies are shared across worker
    /// threads, and racing fillers recompute the same value, so any
    /// interleaving stores the correct size.
    mutable std::atomic<size_t> wire_values{kUnknownWire};
  };
  static constexpr size_t kUnknownWire = static_cast<size_t>(-1);

  /// Ensures body_ is uniquely owned (deep-copies if shared) and returns it.
  TupleBody* DetachBody();

  SchemaPtr schema_;
  std::shared_ptr<const TupleBody> body_;
  SimTime timestamp_{};
  SeqNo seq_ = kNoSeqNo;
  uint64_t trace_id_ = 0;
};

/// \brief Debug guard marking the engine's per-tuple hot path.
///
/// The engine enters a section around operator activations; Tuple::Get
/// DCHECKs that it is never called inside one (field lookups by name must
/// be bound to indices at init time). Output callbacks and ad-hoc stream
/// subscribers are application code, so the engine suspends the section
/// around them with an Exemption. No-ops in release builds (the DCHECK
/// compiles out); the flag itself is two bool stores either way.
class TupleHotPathSection {
 public:
  TupleHotPathSection() : prev_(Active()) { Active() = true; }
  ~TupleHotPathSection() { Active() = prev_; }
  TupleHotPathSection(const TupleHotPathSection&) = delete;
  TupleHotPathSection& operator=(const TupleHotPathSection&) = delete;

  class Exemption {
   public:
    Exemption() : prev_(Active()) { Active() = false; }
    ~Exemption() { Active() = prev_; }
    Exemption(const Exemption&) = delete;
    Exemption& operator=(const Exemption&) = delete;

   private:
    bool prev_;
  };

  static bool InHotPath() { return Active(); }

 private:
  static bool& Active() {
    // Per-thread: each worker in the threaded engine tracks its own hot-path
    // section independently.
    static thread_local bool active = false;
    return active;
  }
  bool prev_;
};

/// Builder-style convenience for tests and examples:
///   MakeTuple(schema, {1, 2.5, "x"}).
Tuple MakeTuple(const SchemaPtr& schema, std::vector<Value> values);

}  // namespace aurora

#endif  // AURORA_TUPLE_TUPLE_H_
