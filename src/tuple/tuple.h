#ifndef AURORA_TUPLE_TUPLE_H_
#define AURORA_TUPLE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace aurora {

/// Sequence number assigned by the transport when a tuple crosses a server
/// boundary; the basis of the HA queue-truncation protocol (paper §6.2).
/// Zero means "not yet assigned".
using SeqNo = uint64_t;
inline constexpr SeqNo kNoSeqNo = 0;

/// \brief One stream tuple: a row of values plus stream-processing metadata.
///
/// Metadata carried per tuple:
///  - `timestamp`: creation time at the data source; drives latency QoS.
///  - `seq`: transport sequence number on the arc the tuple most recently
///    crossed (HA truncation protocol).
///  - `trace_id`: lineage id assigned by the engine when the process-wide
///    Tracer is enabled (src/obs/trace.h); 0 = untraced. Propagated to
///    derived tuples and across the wire so a tuple's spans can be stitched
///    across nodes.
/// The schema pointer is shared by all tuples of a stream.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)), values_(std::move(values)) {}

  const SchemaPtr& schema() const { return schema_; }
  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  Value& value(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Value of the named field; aborts if absent (operator wiring validates
  /// field presence at network-construction time).
  const Value& Get(const std::string& field_name) const;

  SimTime timestamp() const { return timestamp_; }
  void set_timestamp(SimTime t) { timestamp_ = t; }

  SeqNo seq() const { return seq_; }
  void set_seq(SeqNo s) { seq_ = s; }

  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  /// Serialized size in bytes (values + fixed header); used by the transport
  /// to charge link bandwidth.
  size_t WireSize() const;

  std::string ToString() const;

  bool ValuesEqual(const Tuple& other) const { return values_ == other.values_; }

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
  SimTime timestamp_{};
  SeqNo seq_ = kNoSeqNo;
  uint64_t trace_id_ = 0;
};

/// Builder-style convenience for tests and examples:
///   MakeTuple(schema, {1, 2.5, "x"}).
Tuple MakeTuple(const SchemaPtr& schema, std::vector<Value> values);

}  // namespace aurora

#endif  // AURORA_TUPLE_TUPLE_H_
