#include "tuple/tuple.h"

#include "common/logging.h"

namespace aurora {

const Value& Tuple::Get(const std::string& field_name) const {
  AURORA_DCHECK(!TupleHotPathSection::InHotPath())
      << "Tuple::Get(\"" << field_name
      << "\") inside an operator activation — bind the field index at box "
         "initialization instead (Expr::Bind / Predicate::Bind / "
         "Schema::IndexOf at InitImpl)";
  AURORA_CHECK(schema_ != nullptr) << "tuple has no schema";
  auto idx = schema_->IndexOf(field_name);
  AURORA_CHECK(idx.ok()) << idx.status().ToString();
  return body_->values[*idx];
}

Tuple::TupleBody* Tuple::DetachBody() {
  AURORA_CHECK(body_ != nullptr) << "tuple has no values";
  if (body_.use_count() != 1) {
    body_ = std::make_shared<const TupleBody>(body_->values);
  }
  // Sole owner now: mutating through the const pointer is safe.
  TupleBody* body = const_cast<TupleBody*>(body_.get());
  body->wire_values.store(kUnknownWire, std::memory_order_relaxed);
  return body;
}

void Tuple::SetValue(size_t i, Value v) {
  TupleBody* body = DetachBody();
  AURORA_CHECK(i < body->values.size()) << "value index out of range";
  body->values[i] = std::move(v);
}

std::vector<Value>& Tuple::MutableValues() { return DetachBody()->values; }

size_t Tuple::WireSize() const {
  // 8-byte timestamp + 8-byte seq + 8-byte trace id + 2-byte value count.
  size_t size = 26;
  if (body_ == nullptr) return size;
  size_t cached = body_->wire_values.load(std::memory_order_relaxed);
  if (cached == kUnknownWire) {
    size_t values_size = 0;
    for (const auto& v : body_->values) values_size += v.WireSize();
    body_->wire_values.store(values_size, std::memory_order_relaxed);
    cached = values_size;
  }
  return size + cached;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  const std::vector<Value>& vals = values();
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i > 0) out += ", ";
    if (schema_ && i < schema_->num_fields()) {
      out += schema_->field(i).name;
      out += "=";
    }
    out += vals[i].ToString();
  }
  out += ")";
  return out;
}

Tuple MakeTuple(const SchemaPtr& schema, std::vector<Value> values) {
  AURORA_CHECK(schema == nullptr || schema->num_fields() == values.size())
      << "value count does not match schema " << schema->ToString();
  return Tuple(schema, std::move(values));
}

}  // namespace aurora
