#include "tuple/tuple.h"

#include "common/logging.h"

namespace aurora {

const Value& Tuple::Get(const std::string& field_name) const {
  AURORA_CHECK(schema_ != nullptr) << "tuple has no schema";
  auto idx = schema_->IndexOf(field_name);
  AURORA_CHECK(idx.ok()) << idx.status().ToString();
  return values_[*idx];
}

size_t Tuple::WireSize() const {
  // 8-byte timestamp + 8-byte seq + 8-byte trace id + 2-byte value count.
  size_t size = 26;
  for (const auto& v : values_) size += v.WireSize();
  return size;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    if (schema_ && i < schema_->num_fields()) {
      out += schema_->field(i).name;
      out += "=";
    }
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

Tuple MakeTuple(const SchemaPtr& schema, std::vector<Value> values) {
  AURORA_CHECK(schema == nullptr || schema->num_fields() == values.size())
      << "value count does not match schema " << schema->ToString();
  return Tuple(schema, std::move(values));
}

}  // namespace aurora
