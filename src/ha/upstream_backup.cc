#include "ha/upstream_backup.h"

#include <deque>

#include "obs/trace.h"

namespace aurora {

HaManager::~HaManager() {
  checkpoint_timer_.Cancel();
  heartbeat_timer_.Cancel();
  detector_.Clear();
}

Status HaManager::Protect(DeployedQuery* deployed, const GlobalQuery* query) {
  if (protected_) return Status::FailedPrecondition("already protecting");
  deployed_ = deployed;
  query_ = query;
  protected_ = true;
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    system_->node(static_cast<NodeId>(i)).RetainOutputLogs(true);
  }
  StartTimers();
  return Status::OK();
}

void HaManager::StartTimers() {
  checkpoint_timer_ =
      system_->sim()->SchedulePeriodicCancelable(opts_.checkpoint_interval,
                                                 [this]() {
                                                   RunCheckpointRound();
                                                   return true;
                                                 });
  heartbeat_timer_ =
      system_->sim()->SchedulePeriodicCancelable(opts_.heartbeat_interval,
                                                 [this]() {
                                                   HeartbeatRound();
                                                   CheckFailures();
                                                   return true;
                                                 });
}

std::vector<HaManager::BindingRef> HaManager::BindingsInto(NodeId dst) const {
  std::vector<BindingRef> refs;
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    for (const auto& [output_name, binding] : system_->node(id).bindings()) {
      if (binding.dst != nullptr && binding.dst->id() == dst) {
        refs.push_back(BindingRef{id, output_name});
      }
    }
  }
  return refs;
}

SeqNo HaManager::ComputeEarliestNeeded(StreamNode& node,
                                       const std::string& input_name) const {
  AuroraEngine& engine = node.engine();
  auto port = engine.FindInput(input_name);
  if (!port.ok()) return kNoSeqNo;
  SeqNo min_seq = kNoSeqNo;
  auto consider = [&min_seq](SeqNo s) {
    if (s == kNoSeqNo) return;
    if (min_seq == kNoSeqNo || s < min_seq) min_seq = s;
  };
  // Walk the box graph downstream of the input: queued/held tuples on arcs
  // and per-box earliest dependencies (the flow-message traversal of §6.2).
  std::set<BoxId> visited;
  std::deque<Endpoint> frontier;
  frontier.push_back(Endpoint::InputPort(*port));
  while (!frontier.empty()) {
    Endpoint ep = frontier.front();
    frontier.pop_front();
    for (ArcId arc : engine.ArcsFrom(ep)) {
      consider(engine.ArcQueueMinSeq(arc));
      Endpoint to = engine.ArcTo(arc);
      if (to.kind != Endpoint::Kind::kBox || visited.count(to.id)) continue;
      visited.insert(to.id);
      auto op = engine.BoxOp(to.id);
      if (op.ok()) {
        std::vector<SeqNo> deps = (*op)->Dependencies();
        if (to.index < static_cast<int>(deps.size())) consider(deps[to.index]);
        for (int k = 0; k < (*op)->num_outputs(); ++k) {
          frontier.push_back(Endpoint::BoxPort(to.id, k));
        }
      }
    }
  }
  // The node's own unconfirmed outputs cascade the dependency (§6.2:
  // "directly or indirectly"): a tuple is needed until everything derived
  // from it is confirmed safe at the next level.
  consider(node.UnconfirmedOutputMinLineage());
  return min_seq;
}

void HaManager::RunCheckpointRound() {
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    NodeId src = static_cast<NodeId>(i);
    StreamNode& src_node = system_->node(src);
    if (!src_node.up()) continue;
    for (const auto& [output_name, binding] : src_node.bindings()) {
      if (binding.dst == nullptr || !binding.retain_log) continue;
      StreamNode& dst_node = *binding.dst;
      if (!dst_node.up()) continue;
      SeqNo needed = ComputeEarliestNeeded(dst_node, binding.remote_input);
      SeqNo last = dst_node.LastReceivedSeq(binding.remote_input);
      SeqNo upto = (needed == kNoSeqNo) ? last : needed - 1;
      if (upto == 0) continue;
      std::string stream = binding.stream;
      // Charge protocol messages on the overlay. Flow messages: one back-
      // channel report. Seq arrays: the upstream queries, the downstream
      // responds.
      int msgs = opts_.method == TruncationMethod::kFlowMessages ? 1 : 2;
      checkpoint_messages_ += static_cast<uint64_t>(msgs);
      Message report;
      report.kind = "ha:truncate";
      report.payload.resize(12);  // stream id + 8-byte seq, modeled
      NodeId dst = dst_node.id();
      auto apply = [this, src, stream, upto](const Message&) {
        truncated_tuples_ += system_->node(src).TruncateOutputLog(stream, upto);
      };
      if (opts_.method == TruncationMethod::kFlowMessages) {
        (void)system_->net()->Send(dst, src, std::move(report), apply);
      } else {
        Message query;
        query.kind = "ha:query_seq_array";
        query.payload.resize(8);
        (void)system_->net()->Send(
            src, dst, std::move(query),
            [this, src, dst, report = std::move(report), apply](
                const Message&) mutable {
              (void)system_->net()->Send(dst, src, std::move(report), apply);
            });
      }
    }
  }
}

void HaManager::HeartbeatRound() {
  // Each server heartbeats its *upstream* neighbours (§6.3): for every
  // binding src -> dst, dst reports liveness to src.
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    NodeId src = static_cast<NodeId>(i);
    if (!system_->node(src).up()) continue;  // dead watchers hear nothing
    for (const auto& [output_name, binding] : system_->node(src).bindings()) {
      if (binding.dst == nullptr) continue;
      StreamNode& dst_node = *binding.dst;
      if (!dst_node.up()) continue;  // a dead node sends nothing
      heartbeat_messages_++;
      Message hb;
      hb.kind = "ha:heartbeat";
      hb.payload.resize(8);
      NodeId dst = dst_node.id();
      (void)system_->net()->Send(
          dst, src, std::move(hb), [this, src, dst](const Message&) {
            if (system_->node(src).up()) {
              detector_.RecordHeartbeat(src, dst, system_->sim()->Now());
            }
          });
    }
  }
}

void HaManager::CheckFailures() {
  SimTime now = system_->sim()->Now();
  // Maintain the armed pair set: only live watchers may judge (a dead
  // watcher's own silence must not convict its live neighbours), and a
  // freshly seen binding gets a full timeout's grace on arming.
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    NodeId watcher = static_cast<NodeId>(i);
    if (!system_->node(watcher).up()) {
      detector_.ForgetWatcher(watcher);
      continue;
    }
    for (const auto& [output_name, binding] :
         system_->node(watcher).bindings()) {
      if (binding.dst == nullptr) continue;
      NodeId watched = binding.dst->id();
      if (known_failed_.count(watched)) continue;
      detector_.Arm(watcher, watched, now);
    }
  }
  for (const auto& s : detector_.CheckSilence(now)) {
    if (known_failed_.count(s.watched)) continue;
    known_failed_.insert(s.watched);
    failures_detected_++;
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) {
      tracer.Record({0, SpanKind::kFault, s.watcher,
                     "detect:node" + std::to_string(s.watched),
                     s.last_heard.micros(), now.micros()});
    }
    if (on_failure_) on_failure_(s.watched, s.watcher, now);
    if (opts_.auto_recover) {
      // The detecting upstream neighbour acts as the backup (Fig. 8).
      Status st = RecoverNode(s.watched, s.watcher);
      if (!st.ok()) {
        AURORA_LOG(Error) << "recovery of node " << s.watched
                          << " failed: " << st.ToString();
      }
    }
  }
}

void HaManager::CrashNode(NodeId node) { system_->node(node).SetUp(false); }

Status HaManager::RecoverNode(NodeId failed, NodeId backup) {
  if (deployed_ == nullptr || query_ == nullptr) {
    return Status::FailedPrecondition("Protect() was not called");
  }
  if (failed == backup) return Status::InvalidArgument("backup == failed");
  known_failed_.insert(failed);
  // Clean shutdown of the failed node's detector state: it neither watches
  // nor is watched any more, so no stale pair can raise a late suspicion.
  detector_.ForgetWatched(failed);
  detector_.ForgetWatcher(failed);
  StreamNode& b_node = system_->node(backup);
  StreamNode& f_node = system_->node(failed);
  AuroraEngine& be = b_node.engine();
  // The failed node's engine is inspected as *catalog information*: the
  // intra-participant catalog records the content of every running query
  // piece (§4.1), which we model by reading the (dead) engine's topology.
  AuroraEngine& fe = f_node.engine();
  SimTime now = system_->sim()->Now();

  // Boxes to re-instantiate, with a reverse map from the failed engine's
  // box ids to query box names.
  std::map<std::string, OperatorSpec> specs;
  std::map<BoxId, std::string> failed_box_name;
  for (const auto& [name, placed] : deployed_->boxes) {
    if (placed.node != failed) continue;
    for (const auto& box : query_->boxes()) {
      if (box.name == name) {
        specs[name] = box.spec;
        failed_box_name[placed.box] = name;
      }
    }
  }
  if (specs.empty()) {
    return Status::NotFound("failed node hosts no recoverable query boxes");
  }
  std::map<std::string, BoxId> new_ids;
  for (const auto& [name, spec] : specs) {
    if (!system_->net()->NodeSupports(backup, spec.kind)) {
      return Status::FailedPrecondition("backup cannot run '" + spec.kind + "'");
    }
    AURORA_ASSIGN_OR_RETURN(BoxId id, be.AddBox(spec));
    new_ids[name] = id;
  }

  // Internal arcs among the recovered boxes.
  for (const auto& arc : query_->arcs()) {
    if (arc.from_kind != GlobalQuery::ArcDef::FromKind::kBox ||
        arc.to_kind != GlobalQuery::ArcDef::ToKind::kBox)
      continue;
    if (!specs.count(arc.from) || !specs.count(arc.to)) continue;
    AURORA_RETURN_NOT_OK(
        be.Connect(Endpoint::BoxPort(new_ids[arc.from], arc.from_index),
                   Endpoint::BoxPort(new_ids[arc.to], arc.to_index))
            .status());
  }

  // Redirect every binding that pointed at the failed node, replaying its
  // output log into the recovered boxes.
  struct Replay {
    NodeId via_node;
    PortId via_port;            // output port to re-emit through (remote case)
    std::vector<ArcId> arcs;    // local arcs to enqueue on (local case)
    std::vector<Tuple> log;
  };
  std::vector<Replay> replays;
  std::set<std::pair<std::string, int>> wired_inputs;
  for (const BindingRef& ref : BindingsInto(failed)) {
    StreamNode& z_node = system_->node(ref.src);
    if (!z_node.up()) {
      // A dead upstream cannot replay its log; its traffic is protected by
      // *its* upstream, whose own recovery re-routes around it.
      continue;
    }
    AuroraEngine& ze = z_node.engine();
    const auto& binding = z_node.bindings().at(ref.output_name);
    std::string stream = binding.stream;
    std::string remote_input = binding.remote_input;
    PortId out_port = binding.output_port;
    double weight = binding.weight;
    std::vector<Tuple> log = z_node.OutputLogSnapshot(stream);

    // Which failed-engine boxes did this stream feed?
    std::vector<std::pair<std::string, int>> consumers;  // (box name, input)
    SchemaPtr in_schema;
    auto fport = fe.FindInput(remote_input);
    if (fport.ok()) {
      in_schema = fe.input_schema(*fport);
      for (ArcId arc : fe.ArcsFrom(Endpoint::InputPort(*fport))) {
        Endpoint to = fe.ArcTo(arc);
        if (to.kind != Endpoint::Kind::kBox) continue;
        auto name_it = failed_box_name.find(to.id);
        if (name_it == failed_box_name.end()) {
          AURORA_LOG(Warn) << "recovery skips non-query consumer box";
          continue;
        }
        consumers.emplace_back(name_it->second, to.index);
      }
    }
    AURORA_RETURN_NOT_OK(z_node.UnbindRemoteOutput(ref.output_name));

    Replay replay;
    replay.via_node = ref.src;
    replay.via_port = -1;
    replay.log = std::move(log);
    if (ref.src == backup) {
      // Local takeover: wire the original source endpoints straight into
      // the recovered boxes.
      for (ArcId feed : ze.ArcsInto(out_port)) {
        Endpoint src_ep = ze.ArcFrom(feed);
        for (const auto& [cname, cidx] : consumers) {
          if (!wired_inputs.insert({cname, cidx}).second) {
            AURORA_LOG(Warn) << "recovery: consumer " << cname
                             << " already wired; skipping extra feeder";
            continue;
          }
          AURORA_ASSIGN_OR_RETURN(
              ArcId new_arc,
              ze.Connect(src_ep, Endpoint::BoxPort(new_ids[cname], cidx)));
          replay.arcs.push_back(new_arc);
        }
      }
    } else {
      // Remote: rebind the same output port to the backup node.
      std::string iname = system_->FreshName("recover_in");
      AURORA_ASSIGN_OR_RETURN(PortId in_port, be.AddInput(iname, in_schema));
      for (const auto& [cname, cidx] : consumers) {
        if (!wired_inputs.insert({cname, cidx}).second) {
          AURORA_LOG(Warn) << "recovery: consumer " << cname
                           << " already wired; skipping extra feeder";
          continue;
        }
        AURORA_RETURN_NOT_OK(
            be.Connect(Endpoint::InputPort(in_port),
                       Endpoint::BoxPort(new_ids[cname], cidx))
                .status());
      }
      AURORA_RETURN_NOT_OK(z_node.BindRemoteOutput(
          ref.output_name, &b_node, iname,
          system_->FreshName("recover_stream"), weight));
      replay.via_port = out_port;
    }
    replays.push_back(std::move(replay));
  }

  // Recreate the failed node's outgoing bindings from the recovered boxes.
  for (const auto& [oname, fbind] : f_node.bindings()) {
    if (fbind.dst == nullptr) continue;
    for (ArcId feed : fe.ArcsInto(fbind.output_port)) {
      Endpoint from = fe.ArcFrom(feed);
      if (from.kind != Endpoint::Kind::kBox) continue;
      auto name_it = failed_box_name.find(from.id);
      if (name_it == failed_box_name.end()) continue;
      std::string out2 = system_->FreshName("recover_out");
      AURORA_ASSIGN_OR_RETURN(PortId port2, be.AddOutput(out2));
      AURORA_RETURN_NOT_OK(
          be.Connect(Endpoint::BoxPort(new_ids[name_it->second], from.index),
                     Endpoint::OutputPort(port2))
              .status());
      AURORA_RETURN_NOT_OK(b_node.BindRemoteOutput(
          out2, fbind.dst, fbind.remote_input,
          system_->FreshName("recover_stream"), fbind.weight));
    }
  }

  // Recreate application outputs that lived on the failed node.
  for (auto& [gname, where] : deployed_->outputs) {
    if (where.first != failed) continue;
    auto fport = fe.FindOutput(where.second);
    if (!fport.ok()) continue;
    AuroraEngine::OutputCallback cb = fe.GetOutputCallback(*fport);
    AURORA_ASSIGN_OR_RETURN(PortId port2, be.AddOutput(gname));
    for (ArcId feed : fe.ArcsInto(*fport)) {
      Endpoint from = fe.ArcFrom(feed);
      if (from.kind != Endpoint::Kind::kBox) continue;
      auto name_it = failed_box_name.find(from.id);
      if (name_it == failed_box_name.end()) continue;
      AURORA_RETURN_NOT_OK(
          be.Connect(Endpoint::BoxPort(new_ids[name_it->second], from.index),
                     Endpoint::OutputPort(port2))
              .status());
    }
    if (cb) be.SetOutputCallback(port2, cb);
    where = {backup, gname};
  }

  AURORA_RETURN_NOT_OK(be.InitializeBoxes(/*require_all=*/false));
  for (const auto& [name, id] : new_ids) {
    if (!be.IsBoxInitialized(id)) {
      return Status::Internal("recovered box '" + name +
                              "' failed to initialize");
    }
    deployed_->boxes[name] = DeployedQuery::PlacedBox{backup, id};
  }

  // Replay the retained logs: "the back-up server immediately starts
  // processing the tuples in its output log" (§6.3).
  for (const Replay& replay : replays) {
    StreamNode& via = system_->node(replay.via_node);
    for (const Tuple& t : replay.log) {
      if (replay.via_port >= 0) {
        AURORA_RETURN_NOT_OK(
            via.engine().EmitToOutputPort(replay.via_port, t, now));
      } else {
        for (ArcId arc : replay.arcs) {
          AURORA_RETURN_NOT_OK(via.engine().EnqueueOnArc(arc, t, now));
        }
      }
      replayed_tuples_++;
    }
    via.Flush();
    via.Kick();
  }
  b_node.Kick();
  recoveries_++;
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    tracer.Record({0, SpanKind::kFault, backup,
                   "recover:node" + std::to_string(failed), now.micros(),
                   system_->sim()->Now().micros()});
  }
  if (on_recovery_) on_recovery_(failed, backup, system_->sim()->Now());
  return Status::OK();
}

size_t HaManager::TotalRetainedTuples() const {
  size_t total = 0;
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    for (const auto& [name, binding] :
         system_->node(static_cast<NodeId>(i)).bindings()) {
      total += binding.output_log.size();
    }
  }
  return total;
}

}  // namespace aurora
