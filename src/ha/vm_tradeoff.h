#ifndef AURORA_HA_VM_TRADEOFF_H_
#define AURORA_HA_VM_TRADEOFF_H_

#include <vector>

namespace aurora {

/// One point on the §6.4 spectrum between upstream backup and process
/// pairs: K virtual machines layered over a chain of boxes on one server.
struct VmTradeoffPoint {
  int k = 1;
  /// Backup messages per input tuple: each tuple's entry into a VM queue is
  /// replicated to the physical backup ("a cost of one message per entry
  /// in the queue"), so K boundaries cost K messages.
  double runtime_messages_per_tuple = 0.0;
  /// Box activations redone on failure: a failure loses only the work of
  /// the VM segments past their replicated queues, ~ in-flight tuples times
  /// the boxes of one segment.
  double recovery_box_activations = 0.0;
  /// Same, expressed as time given a per-box cost.
  double recovery_time_ms = 0.0;
};

/// Sweeps K = 1..n_boxes for a chain of `n_boxes` boxes with
/// `tuples_in_flight` unprocessed tuples at failure time and
/// `box_cost_us` per activation. K = 1 degenerates to pure upstream backup
/// (fewest messages, longest recovery); K = n_boxes approaches the
/// process-pair model (one message per box activation, minimal recovery).
std::vector<VmTradeoffPoint> ComputeVmTradeoff(int n_boxes,
                                               double tuples_in_flight,
                                               double box_cost_us);

}  // namespace aurora

#endif  // AURORA_HA_VM_TRADEOFF_H_
