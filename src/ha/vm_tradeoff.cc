#include "ha/vm_tradeoff.h"

#include <cmath>

namespace aurora {

std::vector<VmTradeoffPoint> ComputeVmTradeoff(int n_boxes,
                                               double tuples_in_flight,
                                               double box_cost_us) {
  std::vector<VmTradeoffPoint> points;
  for (int k = 1; k <= n_boxes; ++k) {
    VmTradeoffPoint p;
    p.k = k;
    p.runtime_messages_per_tuple = static_cast<double>(k);
    double boxes_per_segment = static_cast<double>(n_boxes) / k;
    p.recovery_box_activations = tuples_in_flight * boxes_per_segment;
    p.recovery_time_ms = p.recovery_box_activations * box_cost_us / 1000.0;
    points.push_back(p);
  }
  return points;
}

}  // namespace aurora
