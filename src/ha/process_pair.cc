#include "ha/process_pair.h"

namespace aurora {

uint64_t ProcessPairModel::ProcessedSoFar() const {
  uint64_t total = 0;
  AuroraEngine& engine = system_->node(primary_).engine();
  for (BoxId id : engine.BoxIds()) {
    auto op = engine.BoxOp(id);
    if (op.ok()) total += (*op)->tuples_in();
  }
  return total;
}

void ProcessPairModel::Start(SimDuration poll) {
  system_->sim()->SchedulePeriodic(poll, [this]() {
    uint64_t now_processed = ProcessedSoFar();
    uint64_t delta = now_processed - last_seen_;
    last_seen_ = now_processed;
    if (delta == 0) return true;
    checkpoint_messages_ += delta;
    // Checkpoints ride the overlay like any other traffic; batch them into
    // one message per poll to keep event counts sane, sized as the sum of
    // the individual checkpoints.
    Message msg;
    msg.kind = "pp:checkpoint";
    msg.payload.resize(static_cast<size_t>(delta) * bytes_per_tuple_);
    (void)system_->net()->Send(primary_, backup_, std::move(msg), nullptr);
    return true;
  });
}

}  // namespace aurora
