#ifndef AURORA_HA_UPSTREAM_BACKUP_H_
#define AURORA_HA_UPSTREAM_BACKUP_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "distributed/deployment.h"
#include "fault/failure_detector.h"

namespace aurora {

/// Queue-truncation protocols of §6.2.
enum class TruncationMethod {
  /// Flow messages: the downstream server computes the earliest tuple it
  /// still depends on and reports it upstream on a back channel (one
  /// message per stream per round).
  kFlowMessages,
  /// Sequence-number arrays: the upstream server polls the downstream's
  /// dependency array (two messages per stream per round: query+response),
  /// and may truncate at its own convenience.
  kSeqArrays,
};

struct HaOptions {
  /// Number of simultaneous server failures to survive without message
  /// loss (§6.2 k-safety). Our cascaded truncation rule (a tuple is
  /// discarded only when every tuple derived from it is confirmed safe at
  /// the next level) holds logs at every hop, so any prefix of k failed
  /// servers is recoverable; k is used for validation/reporting.
  int k_safety = 1;
  SimDuration heartbeat_interval = SimDuration::Millis(50);
  /// Silence longer than this marks the downstream neighbour failed (§6.3).
  SimDuration failure_timeout = SimDuration::Millis(250);
  /// Consecutive silent detector rounds before declaring (see
  /// FailureDetectorOptions::suspicion_threshold). Raise above 1 to ride out
  /// heartbeat loss on chaos-perturbed links.
  int suspicion_threshold = 1;
  SimDuration checkpoint_interval = SimDuration::Millis(100);
  TruncationMethod method = TruncationMethod::kFlowMessages;
  /// Recover automatically on detection; otherwise callers invoke
  /// RecoverNode themselves.
  bool auto_recover = true;
};

/// \brief Upstream-backup high availability (paper §6, Fig. 8).
///
/// Each server retains the tuples it sent downstream in per-stream output
/// logs; logs are truncated when the downstream confirms (via flow-message
/// back-channels or polled sequence arrays) that it no longer depends on
/// them — neither in its queues, nor in box state, nor in its own not-yet-
/// confirmed outputs. On failure (detected by heartbeat silence, §6.3) the
/// upstream backup re-instantiates the failed server's query pieces locally
/// and reprocesses its output log, "emulating the processing of the failed
/// server".
class HaManager {
 public:
  /// Observes failure detections / completed recoveries (fault injection
  /// wires MTTD/MTTR instrumentation through these).
  using FailureObserver =
      std::function<void(NodeId failed, NodeId watcher, SimTime detected_at)>;
  using RecoveryObserver =
      std::function<void(NodeId failed, NodeId backup, SimTime recovered_at)>;

  HaManager(AuroraStarSystem* system, HaOptions opts)
      : system_(system),
        opts_(opts),
        detector_(FailureDetectorOptions{opts.failure_timeout,
                                         opts.suspicion_threshold}) {}
  /// Cancels the periodic timers and drops detector state, so a manager
  /// destroyed mid-simulation can never fire a spurious late detection.
  ~HaManager();

  /// Enables log retention on every current remote binding and starts the
  /// checkpoint and heartbeat timers. `deployed`/`query` describe the query
  /// so recovery can re-instantiate pieces.
  Status Protect(DeployedQuery* deployed, const GlobalQuery* query);

  /// One truncation round over all protected bindings (also runs on the
  /// checkpoint timer).
  void RunCheckpointRound();

  /// Earliest sequence number (in `input_name`'s stream space) the node
  /// still depends on: minimum over queued/held tuples downstream of the
  /// input, stateful box dependencies, and the node's unconfirmed outputs.
  /// kNoSeqNo when nothing is needed any more.
  SeqNo ComputeEarliestNeeded(StreamNode& node,
                              const std::string& input_name) const;

  /// Crashes a node (test hook). Detection still happens via heartbeat
  /// silence.
  void CrashNode(NodeId node);

  /// Re-instantiates the failed node's query pieces on `backup` and
  /// replays the relevant output logs (§6.3). Normally invoked by the
  /// failure detector with backup = the failed node's upstream neighbour.
  Status RecoverNode(NodeId failed, NodeId backup);

  void SetFailureObserver(FailureObserver observer) {
    on_failure_ = std::move(observer);
  }
  void SetRecoveryObserver(RecoveryObserver observer) {
    on_recovery_ = std::move(observer);
  }

  const HeartbeatFailureDetector& detector() const { return detector_; }

  // ---- Statistics --------------------------------------------------------

  uint64_t checkpoint_messages() const { return checkpoint_messages_; }
  uint64_t heartbeat_messages() const { return heartbeat_messages_; }
  uint64_t truncated_tuples() const { return truncated_tuples_; }
  uint64_t replayed_tuples() const { return replayed_tuples_; }
  int failures_detected() const { return failures_detected_; }
  int recoveries() const { return recoveries_; }
  /// Total tuples currently retained in output logs across the system.
  size_t TotalRetainedTuples() const;

 private:
  struct BindingRef {
    NodeId src;
    std::string output_name;  // key into src's bindings map
  };

  void StartTimers();
  void HeartbeatRound();
  void CheckFailures();
  /// All (src node, output) bindings currently pointing at `dst`.
  std::vector<BindingRef> BindingsInto(NodeId dst) const;

  AuroraStarSystem* system_;
  HaOptions opts_;
  DeployedQuery* deployed_ = nullptr;
  const GlobalQuery* query_ = nullptr;
  bool protected_ = false;
  /// Shared heartbeat detector (src/fault): each upstream watcher's pair is
  /// (re)armed when its binding is first seen, granting a full timeout's
  /// grace; live heartbeats refute suspicion.
  HeartbeatFailureDetector detector_;
  std::set<NodeId> known_failed_;
  PeriodicTimer checkpoint_timer_;
  PeriodicTimer heartbeat_timer_;
  FailureObserver on_failure_;
  RecoveryObserver on_recovery_;
  uint64_t checkpoint_messages_ = 0;
  uint64_t heartbeat_messages_ = 0;
  uint64_t truncated_tuples_ = 0;
  uint64_t replayed_tuples_ = 0;
  int failures_detected_ = 0;
  int recoveries_ = 0;
};

}  // namespace aurora

#endif  // AURORA_HA_UPSTREAM_BACKUP_H_
