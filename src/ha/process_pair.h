#ifndef AURORA_HA_PROCESS_PAIR_H_
#define AURORA_HA_PROCESS_PAIR_H_

#include "distributed/aurora_star.h"

namespace aurora {

/// \brief Process-pair checkpointing baseline (paper §6.4; Tandem [1],
/// Gray & Reuter [10]).
///
/// The comparator the paper argues against: "to achieve high availability
/// with a process-pair model would require a checkpoint message every time
/// a box processed a message". This model attaches to a primary node and
/// ships one checkpoint message per box-processed tuple to a dedicated
/// backup node, charging real bytes on the overlay. Its advantage is
/// recovery: only the tuples in process at failure time are redone.
class ProcessPairModel {
 public:
  ProcessPairModel(AuroraStarSystem* system, NodeId primary, NodeId backup,
                   size_t checkpoint_bytes_per_tuple = 64)
      : system_(system),
        primary_(primary),
        backup_(backup),
        bytes_per_tuple_(checkpoint_bytes_per_tuple) {}

  /// Starts mirroring: polls the primary's per-box processed counts every
  /// `poll` and sends one checkpoint message per newly processed tuple.
  void Start(SimDuration poll = SimDuration::Millis(1));

  uint64_t checkpoint_messages() const { return checkpoint_messages_; }
  uint64_t checkpoint_bytes() const {
    return checkpoint_messages_ * bytes_per_tuple_;
  }

  /// Work redone on failover: only tuples queued (in process) at the
  /// primary at failure time.
  size_t RecoveryWorkTuples() const {
    return system_->node(primary_).engine().TotalQueuedTuples();
  }

 private:
  uint64_t ProcessedSoFar() const;

  AuroraStarSystem* system_;
  NodeId primary_;
  NodeId backup_;
  size_t bytes_per_tuple_;
  uint64_t last_seen_ = 0;
  uint64_t checkpoint_messages_ = 0;
};

}  // namespace aurora

#endif  // AURORA_HA_PROCESS_PAIR_H_
