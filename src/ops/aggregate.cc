#include "ops/aggregate.h"

#include <algorithm>

namespace aurora {

namespace {

class CountAggregate : public AggregateFunction {
 public:
  const char* name() const override { return "cnt"; }
  void Reset() override { count_ = 0; }
  void Update(const Value&) override { ++count_; }
  Value Final() const override { return Value(static_cast<int64_t>(count_)); }
  uint64_t count() const override { return count_; }
  std::unique_ptr<AggregateFunction> Clone() const override {
    return std::make_unique<CountAggregate>();
  }
  ValueType result_type() const override { return ValueType::kInt64; }

 private:
  uint64_t count_ = 0;
};

class SumAggregate : public AggregateFunction {
 public:
  const char* name() const override { return "sum"; }
  void Reset() override {
    sum_ = 0.0;
    count_ = 0;
    all_ints_ = true;
  }
  void Update(const Value& v) override {
    if (v.type() != ValueType::kInt64) all_ints_ = false;
    sum_ += v.AsNumeric();
    ++count_;
  }
  Value Final() const override {
    // Integer inputs keep integer results so that split-merge round trips
    // (cnt at the leaves, sum at the merge) compare bit-exactly.
    if (all_ints_) return Value(static_cast<int64_t>(sum_));
    return Value(sum_);
  }
  uint64_t count() const override { return count_; }
  std::unique_ptr<AggregateFunction> Clone() const override {
    return std::make_unique<SumAggregate>();
  }
  ValueType result_type() const override { return ValueType::kDouble; }

 private:
  double sum_ = 0.0;
  uint64_t count_ = 0;
  bool all_ints_ = true;
};

class AvgAggregate : public AggregateFunction {
 public:
  const char* name() const override { return "avg"; }
  void Reset() override {
    sum_ = 0.0;
    count_ = 0;
  }
  void Update(const Value& v) override {
    sum_ += v.AsNumeric();
    ++count_;
  }
  Value Final() const override {
    return Value(count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_));
  }
  uint64_t count() const override { return count_; }
  std::unique_ptr<AggregateFunction> Clone() const override {
    return std::make_unique<AvgAggregate>();
  }
  ValueType result_type() const override { return ValueType::kDouble; }

 private:
  double sum_ = 0.0;
  uint64_t count_ = 0;
};

class MinMaxAggregate : public AggregateFunction {
 public:
  explicit MinMaxAggregate(bool is_min) : is_min_(is_min) {}
  const char* name() const override { return is_min_ ? "min" : "max"; }
  void Reset() override {
    best_ = Value::Null();
    count_ = 0;
  }
  void Update(const Value& v) override {
    if (count_ == 0) {
      best_ = v;
    } else if (is_min_ ? v.Compare(best_) < 0 : v.Compare(best_) > 0) {
      best_ = v;
    }
    ++count_;
  }
  Value Final() const override { return best_; }
  uint64_t count() const override { return count_; }
  std::unique_ptr<AggregateFunction> Clone() const override {
    return std::make_unique<MinMaxAggregate>(is_min_);
  }
  ValueType result_type() const override { return ValueType::kDouble; }

 private:
  bool is_min_;
  Value best_;
  uint64_t count_ = 0;
};

}  // namespace

Result<std::unique_ptr<AggregateFunction>> MakeAggregate(
    const std::string& name) {
  if (name == "cnt") return std::unique_ptr<AggregateFunction>(new CountAggregate());
  if (name == "sum") return std::unique_ptr<AggregateFunction>(new SumAggregate());
  if (name == "avg") return std::unique_ptr<AggregateFunction>(new AvgAggregate());
  if (name == "min") {
    return std::unique_ptr<AggregateFunction>(new MinMaxAggregate(true));
  }
  if (name == "max") {
    return std::unique_ptr<AggregateFunction>(new MinMaxAggregate(false));
  }
  return Status::InvalidArgument("unknown aggregate function '" + name + "'");
}

bool IsCombinableAggregate(const std::string& name) {
  return name == "cnt" || name == "sum" || name == "min" || name == "max";
}

ValueType AggResultType(const std::string& name, ValueType input_field_type) {
  if (name == "cnt") return ValueType::kInt64;
  if (name == "avg") return ValueType::kDouble;
  return input_field_type;
}

Result<std::string> CombineFunctionFor(const std::string& name) {
  if (name == "cnt" || name == "sum") return std::string("sum");
  if (name == "min") return std::string("min");
  if (name == "max") return std::string("max");
  return Status::FailedPrecondition(
      "aggregate '" + name +
      "' has no combination function; the box cannot be split transparently");
}

}  // namespace aurora
