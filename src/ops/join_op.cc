#include "ops/join_op.h"

namespace aurora {

JoinOp::JoinOp(OperatorSpec spec) : Operator(std::move(spec)) {
  left_key_ = spec_.GetString("left_key", "");
  right_key_ = spec_.GetString("right_key", "");
  window_ = SimDuration::Micros(spec_.GetInt("window_us", 0));
}

Status JoinOp::InitImpl() {
  if (left_key_.empty() || right_key_.empty()) {
    return Status::InvalidArgument("join requires left_key and right_key");
  }
  if (window_.micros() <= 0) {
    return Status::InvalidArgument("join requires window_us > 0");
  }
  AURORA_ASSIGN_OR_RETURN(left_key_index_, input_schema(0)->IndexOf(left_key_));
  AURORA_ASSIGN_OR_RETURN(right_key_index_, input_schema(1)->IndexOf(right_key_));
  std::string prefix = spec_.GetString("right_prefix", "r_");
  std::vector<Field> fields = input_schema(0)->fields();
  for (const auto& f : input_schema(1)->fields()) {
    std::string name = f.name;
    if (input_schema(0)->HasField(name)) name = prefix + name;
    fields.push_back(Field{std::move(name), f.type});
  }
  SetOutputSchema(0, Schema::Make(std::move(fields)));
  return Status::OK();
}

void JoinOp::ExpireOld(SimTime now) {
  auto expire = [&](std::deque<Tuple>* buf) {
    while (!buf->empty() && buf->front().timestamp() + window_ < now) {
      buf->pop_front();
    }
  };
  expire(&left_buffer_);
  expire(&right_buffer_);
}

void JoinOp::EmitJoined(const Tuple& left, const Tuple& right,
                        Emitter* emitter) {
  std::vector<Value> values = left.values();
  values.insert(values.end(), right.values().begin(), right.values().end());
  Tuple out(output_schema(0), std::move(values));
  out.set_timestamp(std::min(left.timestamp(), right.timestamp()));
  // Lineage is well-defined only when both sides share a sequence space
  // (same upstream server); otherwise leave it unset — the HA manager
  // treats such nodes conservatively (§6.2 "special care").
  if (left.seq() != kNoSeqNo && right.seq() != kNoSeqNo) {
    out.set_seq(std::min(left.seq(), right.seq()));
  }
  emitter->Emit(0, std::move(out));
}

Status JoinOp::ProcessImpl(int input, const Tuple& t, SimTime now,
                           Emitter* emitter) {
  ExpireOld(now);
  if (input == 0) {
    const Value& key = t.value(left_key_index_);
    for (const auto& r : right_buffer_) {
      if (r.value(right_key_index_) == key &&
          // The probe also honours the time window against buffered tuples.
          r.timestamp() + window_ >= t.timestamp() &&
          t.timestamp() + window_ >= r.timestamp()) {
        EmitJoined(t, r, emitter);
      }
    }
    left_buffer_.push_back(t);
  } else {
    const Value& key = t.value(right_key_index_);
    for (const auto& l : left_buffer_) {
      if (l.value(left_key_index_) == key &&
          l.timestamp() + window_ >= t.timestamp() &&
          t.timestamp() + window_ >= l.timestamp()) {
        EmitJoined(l, t, emitter);
      }
    }
    right_buffer_.push_back(t);
  }
  return Status::OK();
}

Status JoinOp::ProcessBatchImpl(int input, TupleBatch& batch,
                                BatchEmitter* emitter) {
  if (input < 0 || input > 1) {
    return Status::InvalidArgument("bad join input " + std::to_string(input));
  }
  const size_t probe_key = input == 0 ? left_key_index_ : right_key_index_;
  const size_t build_key = input == 0 ? right_key_index_ : left_key_index_;
  std::deque<Tuple>& own = input == 0 ? left_buffer_ : right_buffer_;
  std::deque<Tuple>& other = input == 0 ? right_buffer_ : left_buffer_;
  bool memo_valid = false;
  Value memo_key;
  SimTime memo_ts{};
  SimTime memo_now{};
  match_scratch_.clear();
  for (size_t i = 0; i < batch.size(); ++i) {
    const Tuple& t = batch.tuple(i);
    NoteBatchTupleIn(input, t);
    emitter->SetCurrent(t);
    SimTime now = batch.now(i);
    // Expire every tuple, exactly like the scalar loop. When `now` repeats,
    // this can only pop tuples appended to `own` since the memo scan — the
    // opposite buffer was already expired at this `now`, so the memoized
    // positions stay valid.
    ExpireOld(now);
    const Value& key = t.value(probe_key);
    bool reuse = memo_valid && now == memo_now && t.timestamp() == memo_ts &&
                 key == memo_key;
    if (!reuse) {
      match_scratch_.clear();
      for (size_t b = 0; b < other.size(); ++b) {
        const Tuple& o = other[b];
        if (o.value(build_key) == key &&
            o.timestamp() + window_ >= t.timestamp() &&
            t.timestamp() + window_ >= o.timestamp()) {
          match_scratch_.push_back(b);
        }
      }
      memo_valid = true;
      memo_key = key;
      memo_ts = t.timestamp();
      memo_now = now;
    }
    for (size_t b : match_scratch_) {
      if (input == 0) {
        EmitJoined(t, other[b], emitter);
      } else {
        EmitJoined(other[b], t, emitter);
      }
    }
    own.push_back(t);
  }
  return Status::OK();
}

SeqNo JoinOp::StatefulDependency(int input) const {
  const std::deque<Tuple>& buf = input == 0 ? left_buffer_ : right_buffer_;
  SeqNo min_seq = kNoSeqNo;
  for (const auto& t : buf) {
    if (t.seq() == kNoSeqNo) continue;
    if (min_seq == kNoSeqNo || t.seq() < min_seq) min_seq = t.seq();
  }
  return min_seq;
}

}  // namespace aurora
