#include "ops/predicate.h"

#include <algorithm>
#include <string_view>

#include "common/logging.h"

namespace aurora {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Predicate Predicate::True() { return Predicate(); }

Predicate Predicate::Compare(std::string field, CompareOp op, Value constant) {
  Predicate p;
  p.kind_ = Kind::kCompare;
  p.field_ = std::move(field);
  p.op_ = op;
  p.constant_ = std::move(constant);
  return p;
}

Predicate Predicate::And(Predicate a, Predicate b) {
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.children_.push_back(std::make_shared<const Predicate>(std::move(a)));
  p.children_.push_back(std::make_shared<const Predicate>(std::move(b)));
  return p;
}

Predicate Predicate::Or(Predicate a, Predicate b) {
  Predicate p;
  p.kind_ = Kind::kOr;
  p.children_.push_back(std::make_shared<const Predicate>(std::move(a)));
  p.children_.push_back(std::make_shared<const Predicate>(std::move(b)));
  return p;
}

Predicate Predicate::Not(Predicate a) {
  Predicate p;
  p.kind_ = Kind::kNot;
  p.children_.push_back(std::make_shared<const Predicate>(std::move(a)));
  return p;
}

Predicate Predicate::HashPartition(std::string field, uint32_t modulus,
                                   uint32_t remainder) {
  Predicate p;
  p.kind_ = Kind::kHash;
  p.field_ = std::move(field);
  p.modulus_ = modulus;
  p.remainder_ = remainder;
  return p;
}

Status Predicate::Bind(const SchemaPtr& input) const {
  switch (kind_) {
    case Kind::kTrue:
      return Status::OK();
    case Kind::kCompare:
    case Kind::kHash: {
      if (input == nullptr) return Status::InvalidArgument("null schema");
      AURORA_ASSIGN_OR_RETURN(size_t idx, input->IndexOf(field_));
      bound_index_ = idx;
      bound_schema_ = input;
      return Status::OK();
    }
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const auto& child : children_) {
        AURORA_RETURN_NOT_OK(child->Bind(input));
      }
      return Status::OK();
  }
  return Status::Internal("bad predicate kind");
}

const Value& Predicate::FieldValue(const Tuple& t) const {
  if (t.schema().get() != bound_schema_.get()) {
    // Missing fields abort, exactly like the Tuple::Get this replaces:
    // operator wiring validates field presence at network-construction time.
    Status bound = Bind(t.schema());
    AURORA_CHECK(bound.ok()) << bound.ToString();
  }
  return t.value(bound_index_);
}

bool Predicate::Eval(const Tuple& t) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare: {
      int c = FieldValue(t).Compare(constant_);
      switch (op_) {
        case CompareOp::kEq:
          return c == 0;
        case CompareOp::kNe:
          return c != 0;
        case CompareOp::kLt:
          return c < 0;
        case CompareOp::kLe:
          return c <= 0;
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGe:
          return c >= 0;
      }
      return false;
    }
    case Kind::kAnd:
      return children_[0]->Eval(t) && children_[1]->Eval(t);
    case Kind::kOr:
      return children_[0]->Eval(t) || children_[1]->Eval(t);
    case Kind::kNot:
      return !children_[0]->Eval(t);
    case Kind::kHash:
      return modulus_ != 0 && FieldValue(t).Hash() % modulus_ == remainder_;
  }
  return false;
}

namespace {

// Applies `op` to the Value::Compare-style three-way result of each column
// entry vs the constant. Going through the explicit cmp (rather than the
// raw C++ operator) keeps NaN ordering identical to Value::Compare, which
// treats an incomparable pair as "greater".
template <typename ColT, typename CmpT>
void FillCompareColumn(const ColT* col, CmpT c, size_t n, CompareOp op,
                       std::vector<uint8_t>* out) {
  auto fill = [&](auto holds) {
    for (size_t i = 0; i < n; ++i) {
      CmpT a = static_cast<CmpT>(col[i]);
      int cmp = a == c ? 0 : (a < c ? -1 : 1);
      (*out)[i] = holds(cmp) ? 1 : 0;
    }
  };
  switch (op) {
    case CompareOp::kEq:
      fill([](int x) { return x == 0; });
      break;
    case CompareOp::kNe:
      fill([](int x) { return x != 0; });
      break;
    case CompareOp::kLt:
      fill([](int x) { return x < 0; });
      break;
    case CompareOp::kLe:
      fill([](int x) { return x <= 0; });
      break;
    case CompareOp::kGt:
      fill([](int x) { return x > 0; });
      break;
    case CompareOp::kGe:
      fill([](int x) { return x >= 0; });
      break;
  }
}

// String-vs-string column compare. string_view::compare has the same sign
// semantics as the std::string::compare Value::Compare uses for two kString
// values, and the predicate tests the sign only, so this is bit-equivalent
// to per-tuple Eval on an all-string column.
void FillCompareStrColumn(const std::string_view* col, std::string_view c,
                          size_t n, CompareOp op, std::vector<uint8_t>* out) {
  auto fill = [&](auto holds) {
    for (size_t i = 0; i < n; ++i) {
      (*out)[i] = holds(col[i].compare(c)) ? 1 : 0;
    }
  };
  switch (op) {
    case CompareOp::kEq:
      fill([](int x) { return x == 0; });
      break;
    case CompareOp::kNe:
      fill([](int x) { return x != 0; });
      break;
    case CompareOp::kLt:
      fill([](int x) { return x < 0; });
      break;
    case CompareOp::kLe:
      fill([](int x) { return x <= 0; });
      break;
    case CompareOp::kGt:
      fill([](int x) { return x > 0; });
      break;
    case CompareOp::kGe:
      fill([](int x) { return x >= 0; });
      break;
  }
}

}  // namespace

bool Predicate::CompareBatchColumns(TupleBatch& batch,
                                    std::vector<uint8_t>* out) const {
  const ValueType ct = constant_.type();
  if (ct != ValueType::kInt64 && ct != ValueType::kDouble &&
      ct != ValueType::kString) {
    return false;
  }
  if (!batch.uniform_schema() || batch.schema() == nullptr) return false;
  if (batch.schema().get() != bound_schema_.get()) {
    // Same lazy rebind (and same abort on a missing field) as FieldValue.
    Status bound = Bind(batch.schema());
    AURORA_CHECK(bound.ok()) << bound.ToString();
  }
  const size_t n = batch.size();
  if (ct == ValueType::kString) {
    // Same-type compares only: a non-string value in the column makes
    // Value::Compare order by type rank, so mixed columns stay per-tuple.
    if (const std::string_view* col = batch.StrColumn(bound_index_)) {
      FillCompareStrColumn(col, std::string_view(constant_.AsString()), n,
                           op_, out);
      return true;
    }
    return false;
  }
  if (const int64_t* col = batch.I64Column(bound_index_)) {
    if (ct == ValueType::kInt64) {
      FillCompareColumn(col, constant_.AsInt(), n, op_, out);
    } else {
      FillCompareColumn(col, constant_.AsDouble(), n, op_, out);
    }
    return true;
  }
  if (const double* col = batch.F64Column(bound_index_)) {
    FillCompareColumn(col, constant_.AsNumeric(), n, op_, out);
    return true;
  }
  return false;
}

void Predicate::EvalBatch(TupleBatch& batch, std::vector<uint8_t>* out) const {
  const size_t n = batch.size();
  out->assign(n, 0);
  if (n == 0) return;
  switch (kind_) {
    case Kind::kTrue:
      std::fill(out->begin(), out->end(), 1);
      return;
    case Kind::kCompare:
      if (CompareBatchColumns(batch, out)) return;
      break;  // non-numeric column/constant: per-tuple fallback below
    case Kind::kAnd: {
      // Eval's && short-circuit is unobservable (children are pure modulo
      // the idempotent bind cache), so both sides evaluate batch-wise.
      std::vector<uint8_t> rhs;
      children_[0]->EvalBatch(batch, out);
      children_[1]->EvalBatch(batch, &rhs);
      for (size_t i = 0; i < n; ++i) (*out)[i] &= rhs[i];
      return;
    }
    case Kind::kOr: {
      std::vector<uint8_t> rhs;
      children_[0]->EvalBatch(batch, out);
      children_[1]->EvalBatch(batch, &rhs);
      for (size_t i = 0; i < n; ++i) (*out)[i] |= rhs[i];
      return;
    }
    case Kind::kNot:
      children_[0]->EvalBatch(batch, out);
      for (size_t i = 0; i < n; ++i) (*out)[i] ^= 1;
      return;
    case Kind::kHash:
      break;  // hashes the full Value; stays per-tuple
  }
  for (size_t i = 0; i < n; ++i) (*out)[i] = Eval(batch.tuple(i)) ? 1 : 0;
}

void Predicate::CollectFields(std::set<std::string>* fields) const {
  switch (kind_) {
    case Kind::kTrue:
      break;
    case Kind::kCompare:
    case Kind::kHash:
      fields->insert(field_);
      break;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const auto& child : children_) child->CollectFields(fields);
      break;
  }
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kCompare:
      return field_ + " " + CompareOpName(op_) + " " + constant_.ToString();
    case Kind::kAnd:
      return "(" + children_[0]->ToString() + " && " + children_[1]->ToString() +
             ")";
    case Kind::kOr:
      return "(" + children_[0]->ToString() + " || " + children_[1]->ToString() +
             ")";
    case Kind::kNot:
      return "!(" + children_[0]->ToString() + ")";
    case Kind::kHash:
      return "hash(" + field_ + ") % " + std::to_string(modulus_) +
             " == " + std::to_string(remainder_);
  }
  return "?";
}

void Predicate::Encode(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(kind_));
  switch (kind_) {
    case Kind::kTrue:
      break;
    case Kind::kCompare:
      enc->PutString(field_);
      enc->PutU8(static_cast<uint8_t>(op_));
      enc->PutValue(constant_);
      break;
    case Kind::kAnd:
    case Kind::kOr:
      children_[0]->Encode(enc);
      children_[1]->Encode(enc);
      break;
    case Kind::kNot:
      children_[0]->Encode(enc);
      break;
    case Kind::kHash:
      enc->PutString(field_);
      enc->PutU32(modulus_);
      enc->PutU32(remainder_);
      break;
  }
}

Result<Predicate> Predicate::Decode(Decoder* dec) {
  AURORA_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  switch (static_cast<Kind>(tag)) {
    case Kind::kTrue:
      return True();
    case Kind::kCompare: {
      AURORA_ASSIGN_OR_RETURN(std::string field, dec->GetString());
      AURORA_ASSIGN_OR_RETURN(uint8_t op, dec->GetU8());
      if (op > static_cast<uint8_t>(CompareOp::kGe)) {
        return Status::InvalidArgument("bad compare op tag");
      }
      AURORA_ASSIGN_OR_RETURN(Value constant, dec->GetValue());
      return Compare(std::move(field), static_cast<CompareOp>(op),
                     std::move(constant));
    }
    case Kind::kAnd: {
      AURORA_ASSIGN_OR_RETURN(Predicate a, Decode(dec));
      AURORA_ASSIGN_OR_RETURN(Predicate b, Decode(dec));
      return And(std::move(a), std::move(b));
    }
    case Kind::kOr: {
      AURORA_ASSIGN_OR_RETURN(Predicate a, Decode(dec));
      AURORA_ASSIGN_OR_RETURN(Predicate b, Decode(dec));
      return Or(std::move(a), std::move(b));
    }
    case Kind::kNot: {
      AURORA_ASSIGN_OR_RETURN(Predicate a, Decode(dec));
      return Not(std::move(a));
    }
    case Kind::kHash: {
      AURORA_ASSIGN_OR_RETURN(std::string field, dec->GetString());
      AURORA_ASSIGN_OR_RETURN(uint32_t modulus, dec->GetU32());
      AURORA_ASSIGN_OR_RETURN(uint32_t remainder, dec->GetU32());
      if (modulus == 0) {
        return Status::InvalidArgument("hash predicate modulus must be > 0");
      }
      return HashPartition(std::move(field), modulus, remainder);
    }
  }
  return Status::InvalidArgument("bad predicate tag " + std::to_string(tag));
}

}  // namespace aurora
