#include "ops/tumble_op.h"

#include <algorithm>

namespace aurora {

TumbleOp::TumbleOp(OperatorSpec spec) : Operator(std::move(spec)) {
  agg_name_ = spec_.GetString("agg", "cnt");
  agg_field_ = spec_.GetString("agg_field", "");
  every_n_ = spec_.GetString("emit", "group_change") == "every_n";
  n_ = static_cast<uint64_t>(spec_.GetInt("n", 0));
}

Status TumbleOp::InitImpl() {
  AURORA_ASSIGN_OR_RETURN(proto_agg_, MakeAggregate(agg_name_));
  if (agg_field_.empty()) {
    return Status::InvalidArgument("tumble requires an agg_field");
  }
  AURORA_ASSIGN_OR_RETURN(agg_index_, input_schema(0)->IndexOf(agg_field_));
  for (const auto& attr : spec_.attrs) {
    AURORA_ASSIGN_OR_RETURN(size_t idx, input_schema(0)->IndexOf(attr));
    group_indices_.push_back(idx);
  }
  if (every_n_ && n_ == 0) {
    return Status::InvalidArgument("tumble emit=every_n requires n > 0");
  }
  std::vector<Field> fields;
  for (size_t idx : group_indices_) fields.push_back(input_schema(0)->field(idx));
  ValueType result_type =
      AggResultType(agg_name_, input_schema(0)->field(agg_index_).type);
  fields.push_back(Field{spec_.GetString("result_field", "Result"), result_type});
  SetOutputSchema(0, Schema::Make(std::move(fields)));
  return Status::OK();
}

const std::vector<Value>& TumbleOp::KeyOf(const Tuple& t) {
  key_scratch_.clear();
  key_scratch_.reserve(group_indices_.size());
  for (size_t idx : group_indices_) key_scratch_.push_back(t.value(idx));
  return key_scratch_;
}

void TumbleOp::EmitWindow(const std::vector<Value>& key, const Window& w,
                          Emitter* emitter) {
  std::vector<Value> values = key;
  values.push_back(w.agg->Final());
  Tuple out(output_schema(0), std::move(values));
  out.set_timestamp(w.start_ts);
  // HA lineage: the window result depends on all window tuples; stamp the
  // earliest so downstream dependency tracking stays conservative.
  out.set_seq(w.min_seq);
  emitter->Emit(0, std::move(out));
}

Status TumbleOp::ProcessImpl(int, const Tuple& t, SimTime, Emitter* emitter) {
  const std::vector<Value>& key = KeyOf(t);
  if (every_n_) {
    auto it = open_.find(key);
    if (it == open_.end()) {
      Window w;
      w.agg = proto_agg_->Clone();
      w.agg->Reset();
      w.start_ts = t.timestamp();
      // Moving the scratch donates its buffer to the stored key; KeyOf
      // rebuilds it next call.
      it = open_.emplace(std::move(key_scratch_), std::move(w)).first;
    }
    Window& w = it->second;
    w.agg->Update(t.value(agg_index_));
    if (t.seq() != kNoSeqNo &&
        (w.min_seq == kNoSeqNo || t.seq() < w.min_seq)) {
      w.min_seq = t.seq();
    }
    if (w.agg->count() >= n_) {
      EmitWindow(it->first, w, emitter);
      open_.erase(it);
    }
    return Status::OK();
  }

  // Run-based policy (the paper's example): close the open window when the
  // groupby value changes.
  if (current_key_.has_value() && !(key == *current_key_)) {
    EmitWindow(*current_key_, current_, emitter);
    current_key_.reset();
  }
  if (!current_key_.has_value()) {
    current_key_ = key;
    current_.agg = proto_agg_->Clone();
    current_.agg->Reset();
    current_.min_seq = kNoSeqNo;
    current_.start_ts = t.timestamp();
  }
  current_.agg->Update(t.value(agg_index_));
  if (t.seq() != kNoSeqNo &&
      (current_.min_seq == kNoSeqNo || t.seq() < current_.min_seq)) {
    current_.min_seq = t.seq();
  }
  return Status::OK();
}

Status TumbleOp::ProcessBatchImpl(int input, TupleBatch& batch,
                                  BatchEmitter* emitter) {
  if (!every_n_) {
    // Run-based mode keys off the single open run; per-tuple path is
    // already one vector compare per tuple.
    for (size_t i = 0; i < batch.size(); ++i) {
      const Tuple& t = batch.tuple(i);
      NoteBatchTupleIn(input, t);
      emitter->SetCurrent(t);
      AURORA_RETURN_NOT_OK(ProcessImpl(input, t, batch.now(i), emitter));
    }
    return Status::OK();
  }
  // every_n: memoize the last probed window. Pointers into the map survive
  // rehash (only iterators are invalidated); the memo is dropped whenever
  // its window closes. Memo equality is element-wise Value::Compare — the
  // same equivalence ValueVectorEq gives the map.
  const std::vector<Value>* memo_key = nullptr;
  Window* memo_win = nullptr;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Tuple& t = batch.tuple(i);
    NoteBatchTupleIn(input, t);
    emitter->SetCurrent(t);
    const std::vector<Value>& key = KeyOf(t);
    const std::vector<Value>* wkey;
    Window* w;
    if (memo_win != nullptr && key == *memo_key) {
      wkey = memo_key;
      w = memo_win;
    } else {
      auto it = open_.find(key);
      if (it == open_.end()) {
        Window nw;
        nw.agg = proto_agg_->Clone();
        nw.agg->Reset();
        nw.start_ts = t.timestamp();
        it = open_.emplace(std::move(key_scratch_), std::move(nw)).first;
      }
      wkey = &it->first;
      w = &it->second;
    }
    w->agg->Update(t.value(agg_index_));
    if (t.seq() != kNoSeqNo && (w->min_seq == kNoSeqNo || t.seq() < w->min_seq)) {
      w->min_seq = t.seq();
    }
    if (w->agg->count() >= n_) {
      EmitWindow(*wkey, *w, emitter);
      // Copy the key out before erasing: wkey aliases the map node.
      std::vector<Value> dead = *wkey;
      open_.erase(dead);
      memo_key = nullptr;
      memo_win = nullptr;
    } else {
      memo_key = wkey;
      memo_win = w;
    }
  }
  return Status::OK();
}

void TumbleOp::Drain(Emitter* emitter) {
  if (every_n_) {
    // Drain order is observable; sort the keys so the hash map drains in
    // the same order the old ValueVectorLess-ordered map iterated.
    std::vector<const std::pair<const std::vector<Value>, Window>*> entries;
    entries.reserve(open_.size());
    for (const auto& entry : open_) entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) {
                return ValueVectorLess()(a->first, b->first);
              });
    for (const auto* entry : entries) {
      if (entry->second.agg->count() > 0) {
        EmitWindow(entry->first, entry->second, emitter);
      }
    }
    open_.clear();
    return;
  }
  if (current_key_.has_value() && current_.agg->count() > 0) {
    EmitWindow(*current_key_, current_, emitter);
  }
  current_key_.reset();
}

SeqNo TumbleOp::StatefulDependency(int) const {
  if (every_n_) {
    SeqNo min_seq = kNoSeqNo;
    for (const auto& [key, w] : open_) {
      if (w.min_seq == kNoSeqNo) continue;
      if (min_seq == kNoSeqNo || w.min_seq < min_seq) min_seq = w.min_seq;
    }
    return min_seq;
  }
  return current_key_.has_value() ? current_.min_seq : kNoSeqNo;
}

}  // namespace aurora
