#ifndef AURORA_OPS_PREDICATE_H_
#define AURORA_OPS_PREDICATE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "tuple/serde.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace aurora {

/// Comparison operators for predicate leaves.
enum class CompareOp : uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// \brief Declarative, serializable predicate over tuple attributes.
///
/// Predicates must be *data*, not closures, for two of the paper's
/// mechanisms to work: remote definition (§4.4) ships predicates to another
/// participant, and box splitting (§5.1) synthesizes routing predicates at
/// run time (content-based, hash-partition, or rate-based choices — §5.2).
class Predicate {
 public:
  /// Always-true predicate (vacuous filter).
  static Predicate True();
  /// field <op> constant.
  static Predicate Compare(std::string field, CompareOp op, Value constant);
  static Predicate And(Predicate a, Predicate b);
  static Predicate Or(Predicate a, Predicate b);
  static Predicate Not(Predicate a);
  /// hash(field) % modulus == remainder — the "half of the available
  /// streams" style partitioning predicate from §5.2.
  static Predicate HashPartition(std::string field, uint32_t modulus,
                                 uint32_t remainder);

  /// Resolves every attribute this predicate reads to an index in `input`,
  /// so Eval never does a per-tuple name lookup. Call once at box
  /// initialization; returns NotFound for a missing field. Eval also
  /// re-binds lazily when it sees a tuple whose schema differs from the
  /// bound one (ad-hoc subscriptions, routing predicates applied before a
  /// box is wired), so Bind is an eager error check plus a warm cache, not
  /// a correctness requirement.
  Status Bind(const SchemaPtr& input) const;

  bool Eval(const Tuple& t) const;

  /// Vectorized Eval over a whole batch: fills `out` (sized to
  /// batch.size()) with 0/1 per tuple, matching per-tuple Eval bit for bit.
  /// Numeric and string comparisons loop over the batch's columnar scratch
  /// when available (strings via TupleBatch::StrColumn's pooled views);
  /// everything else (hash partitions, bool/null constants, non-uniform or
  /// type-mixed columns) falls back to per-tuple Eval internally, so callers
  /// never need a scalar path of their own. Uses only stack scratch — safe
  /// on shared predicate trees under the threaded engine.
  void EvalBatch(TupleBatch& batch, std::vector<uint8_t>* out) const;

  /// Logical complement; used to route the "other" half after a box split.
  Predicate Negation() const { return Not(*this); }

  /// Adds every attribute name this predicate reads to `fields`. Used by
  /// the network optimizer to decide whether a filter commutes with an
  /// upstream box.
  void CollectFields(std::set<std::string>* fields) const;

  std::string ToString() const;

  void Encode(Encoder* enc) const;
  static Result<Predicate> Decode(Decoder* dec);

  bool is_true() const { return kind_ == Kind::kTrue; }

 private:
  enum class Kind : uint8_t { kTrue = 0, kCompare, kAnd, kOr, kNot, kHash };

  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  // kCompare / kHash:
  std::string field_;
  CompareOp op_ = CompareOp::kEq;
  Value constant_;
  uint32_t modulus_ = 0;
  uint32_t remainder_ = 0;
  // kAnd / kOr / kNot children:
  std::vector<std::shared_ptr<const Predicate>> children_;

  /// The tuple's field value this leaf reads, via the bound-once index
  /// cache (kCompare / kHash only).
  const Value& FieldValue(const Tuple& t) const;

  /// Columnar kCompare: true (and fills `out`) only when the batch exposes
  /// a numeric or string column for the bound field and the constant has a
  /// matching type class (numeric column vs numeric constant, string column
  /// vs string constant).
  bool CompareBatchColumns(TupleBatch& batch, std::vector<uint8_t>* out) const;

  /// Bound-once field cache (kCompare / kHash). Mutable because predicate
  /// trees are shared through shared_ptr<const Predicate>; the engine is
  /// single-threaded, so caching through const is safe. Holding the
  /// SchemaPtr (not a raw pointer) keeps the identity comparison in Eval
  /// immune to a freed schema's address being reused.
  mutable SchemaPtr bound_schema_;
  mutable size_t bound_index_ = 0;
};

}  // namespace aurora

#endif  // AURORA_OPS_PREDICATE_H_
