#include "ops/union_op.h"

namespace aurora {

UnionOp::UnionOp(OperatorSpec spec)
    : Operator(std::move(spec)),
      n_inputs_(static_cast<int>(spec_.GetInt("n", 2))) {}

Status UnionOp::InitImpl() {
  if (n_inputs_ < 1) {
    return Status::InvalidArgument("union requires n >= 1 inputs");
  }
  for (int i = 1; i < n_inputs_; ++i) {
    if (!input_schema(i)->Equals(*input_schema(0))) {
      return Status::InvalidArgument(
          "union input schemas differ: " + input_schema(0)->ToString() +
          " vs " + input_schema(i)->ToString());
    }
  }
  SetOutputSchema(0, input_schema(0));
  return Status::OK();
}

Status UnionOp::ProcessImpl(int, const Tuple& t, SimTime, Emitter* emitter) {
  emitter->Emit(0, t);
  return Status::OK();
}

}  // namespace aurora
