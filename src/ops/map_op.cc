#include "ops/map_op.h"

namespace aurora {

Status MapOp::InitImpl() {
  if (spec_.projections.empty()) {
    return Status::InvalidArgument("map requires at least one projection");
  }
  std::vector<Field> fields;
  for (const auto& [name, expr] : spec_.projections) {
    AURORA_ASSIGN_OR_RETURN(ValueType type, expr.ResultType(*input_schema(0)));
    // Resolve field names to indices once; ProcessImpl never looks up a name.
    AURORA_RETURN_NOT_OK(expr.Bind(input_schema(0)));
    fields.push_back(Field{name, type});
  }
  SetOutputSchema(0, Schema::Make(std::move(fields)));
  return Status::OK();
}

Status MapOp::ProcessImpl(int, const Tuple& t, SimTime, Emitter* emitter) {
  std::vector<Value> values;
  values.reserve(spec_.projections.size());
  for (const auto& [name, expr] : spec_.projections) {
    AURORA_ASSIGN_OR_RETURN(Value v, expr.Eval(t));
    values.push_back(std::move(v));
  }
  Tuple out(output_schema(0), std::move(values));
  out.set_timestamp(t.timestamp());
  emitter->Emit(0, std::move(out));
  return Status::OK();
}

}  // namespace aurora
