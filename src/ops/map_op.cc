#include "ops/map_op.h"

namespace aurora {

Status MapOp::InitImpl() {
  if (spec_.projections.empty()) {
    return Status::InvalidArgument("map requires at least one projection");
  }
  std::vector<Field> fields;
  for (const auto& [name, expr] : spec_.projections) {
    AURORA_ASSIGN_OR_RETURN(ValueType type, expr.ResultType(*input_schema(0)));
    // Resolve field names to indices once; ProcessImpl never looks up a name.
    AURORA_RETURN_NOT_OK(expr.Bind(input_schema(0)));
    fields.push_back(Field{name, type});
  }
  SetOutputSchema(0, Schema::Make(std::move(fields)));
  return Status::OK();
}

Status MapOp::ProcessImpl(int, const Tuple& t, SimTime, Emitter* emitter) {
  std::vector<Value> values;
  values.reserve(spec_.projections.size());
  for (const auto& [name, expr] : spec_.projections) {
    AURORA_ASSIGN_OR_RETURN(Value v, expr.Eval(t));
    values.push_back(std::move(v));
  }
  Tuple out(output_schema(0), std::move(values));
  out.set_timestamp(t.timestamp());
  emitter->Emit(0, std::move(out));
  return Status::OK();
}

Status MapOp::ProcessBatchImpl(int input, TupleBatch& batch,
                               BatchEmitter* emitter) {
  const size_t nproj = spec_.projections.size();
  col_scratch_.resize(nproj);
  fast_.assign(nproj, 0);
  ident_.assign(nproj, -1);
  const bool uniform = batch.uniform_schema() && batch.schema() != nullptr;
  for (size_t j = 0; j < nproj; ++j) {
    const Expr& expr = spec_.projections[j].second;
    std::string field;
    if (uniform && expr.IsFieldRef(&field)) {
      // Identity projection: copy the field straight out of each tuple
      // (works for every value type, including strings) instead of
      // dispatching Eval per tuple. A bound field ref cannot error, so
      // the scalar error semantics are unchanged.
      Result<size_t> idx = batch.schema()->IndexOf(field);
      if (idx.ok()) {
        ident_[j] = static_cast<int>(idx.ValueUnsafe());
        continue;
      }
    }
    fast_[j] = expr.EvalBatch(batch, &col_scratch_[j]) ? 1 : 0;
  }
  Status first = Status::OK();
  std::vector<Value> values;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Tuple& t = batch.tuple(i);
    NoteBatchTupleIn(input, t);
    emitter->SetCurrent(t);
    values.clear();
    values.reserve(nproj);
    Status st = Status::OK();
    for (size_t j = 0; j < nproj; ++j) {
      if (ident_[j] >= 0) {
        values.push_back(t.value(static_cast<size_t>(ident_[j])));
        continue;
      }
      if (fast_[j]) {
        values.push_back(Value(col_scratch_[j][i]));
        continue;
      }
      Result<Value> v = spec_.projections[j].second.Eval(t);
      if (!v.ok()) {
        st = v.status();
        break;
      }
      values.push_back(std::move(v).ValueUnsafe());
    }
    if (!st.ok()) {
      // Scalar semantics: the failing tuple emits nothing, the error
      // surfaces to the engine (which defers it and keeps going).
      if (first.ok()) first = std::move(st);
      continue;
    }
    Tuple out(output_schema(0), std::move(values));
    out.set_timestamp(t.timestamp());
    emitter->Emit(0, std::move(out));
  }
  return first;
}

}  // namespace aurora
