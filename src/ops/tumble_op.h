#ifndef AURORA_OPS_TUMBLE_OP_H_
#define AURORA_OPS_TUMBLE_OP_H_

#include <memory>
#include <optional>
#include <vector>

#include "ops/aggregate.h"
#include "ops/group_key.h"
#include "ops/operator.h"
#include "ops/wsort_op.h"

namespace aurora {

/// \brief Tumble: disjoint-window aggregation (paper §2.2, Fig. 2 example).
///
/// Default emission policy follows the paper's worked example: a window is a
/// maximal run of consecutive tuples sharing the groupby value, and closes
/// (emitting `(groupby attrs..., Result)`) when a tuple with a different
/// groupby value arrives. The open window is *not* emitted until then (or
/// until Drain, used only for stabilization).
///
/// The spec param "emit" selects the alternative policies the paper alludes
/// to ("two additional parameters that specify when tuples get emitted"):
///   - "group_change" (default): run-based, as above;
///   - "every_n": per-group hash windows that close after "n" tuples.
class TumbleOp : public Operator {
 public:
  explicit TumbleOp(OperatorSpec spec);

  bool HasState() const override { return true; }
  void Drain(Emitter* emitter) override;

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
  /// Drains the whole batch through the group state. every_n mode memoizes
  /// the GroupKeyMap probe across consecutive same-group tuples (the common
  /// shape of a batch); group_change mode is already one compare per tuple.
  Status ProcessBatchImpl(int input, TupleBatch& batch,
                          BatchEmitter* emitter) override;
  SeqNo StatefulDependency(int input) const override;

 private:
  struct Window {
    std::unique_ptr<AggregateFunction> agg;
    SeqNo min_seq = kNoSeqNo;
    SimTime start_ts{};
  };

  /// Fills key_scratch_ with the tuple's groupby values (indices bound at
  /// init) and returns it; no per-tuple allocation once the scratch has
  /// capacity. Callers that store the key move key_scratch_ out.
  const std::vector<Value>& KeyOf(const Tuple& t);
  void EmitWindow(const std::vector<Value>& key, const Window& w,
                  Emitter* emitter);

  std::string agg_name_;
  std::string agg_field_;
  size_t agg_index_ = 0;
  std::vector<size_t> group_indices_;
  bool every_n_ = false;
  uint64_t n_ = 0;

  // group_change mode: single open run.
  std::optional<std::vector<Value>> current_key_;
  Window current_;

  // every_n mode: one open window per group. Hash map: probe order is
  // irrelevant mid-stream, and Drain sorts the keys (ValueVectorLess)
  // before emitting so output order matches the old ordered map.
  GroupKeyMap<Window> open_;

  std::vector<Value> key_scratch_;
  std::unique_ptr<AggregateFunction> proto_agg_;
};

}  // namespace aurora

#endif  // AURORA_OPS_TUMBLE_OP_H_
