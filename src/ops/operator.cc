#include "ops/operator.h"

#include "common/logging.h"

namespace aurora {

class Operator::CountingEmitter : public Emitter {
 public:
  CountingEmitter(Emitter* inner, uint64_t* counter, SeqNo input_seq)
      : inner_(inner), counter_(counter), input_seq_(input_seq) {}
  void Emit(int output, Tuple t) override {
    ++*counter_;
    // Lineage propagation for the HA protocol (§6.2): an emitted tuple that
    // did not set its own provenance inherits the triggering input's
    // sequence number. Stateful operators (Tumble, windows) stamp the
    // earliest contributing tuple themselves before emitting.
    if (t.seq() == kNoSeqNo) t.set_seq(input_seq_);
    inner_->Emit(output, std::move(t));
  }

 private:
  Emitter* inner_;
  uint64_t* counter_;
  SeqNo input_seq_;
};

Status Operator::Init(std::vector<SchemaPtr> input_schemas) {
  if (initialized_) {
    return Status::FailedPrecondition("operator already initialized");
  }
  if (static_cast<int>(input_schemas.size()) != num_inputs()) {
    return Status::InvalidArgument(
        kind() + " expects " + std::to_string(num_inputs()) + " inputs, got " +
        std::to_string(input_schemas.size()));
  }
  for (const auto& s : input_schemas) {
    if (s == nullptr) return Status::InvalidArgument("null input schema");
  }
  input_schemas_ = std::move(input_schemas);
  output_schemas_.assign(num_outputs(), nullptr);
  last_seq_.assign(num_inputs(), kNoSeqNo);
  cost_micros_ = spec_.GetDouble("cost_us", DefaultCostMicros(kind()));
  AURORA_RETURN_NOT_OK(InitImpl());
  for (int i = 0; i < num_outputs(); ++i) {
    if (output_schemas_[i] == nullptr) {
      return Status::Internal(kind() + " did not set output schema " +
                              std::to_string(i));
    }
  }
  initialized_ = true;
  return Status::OK();
}

Status Operator::Process(int input, const Tuple& t, SimTime now,
                         Emitter* emitter) {
  AURORA_DCHECK(initialized_) << "Process before Init on " << kind();
  if (input < 0 || input >= num_inputs()) {
    return Status::InvalidArgument("bad input index " + std::to_string(input));
  }
  if (t.seq() != kNoSeqNo) last_seq_[input] = t.seq();
  ++tuples_in_;
  CountingEmitter counting(emitter, &tuples_out_, t.seq());
  return ProcessImpl(input, t, now, &counting);
}

Status Operator::ProcessBatch(int input, TupleBatch& batch, Emitter* emitter) {
  AURORA_DCHECK(initialized_) << "ProcessBatch before Init on " << kind();
  if (input < 0 || input >= num_inputs()) {
    return Status::InvalidArgument("bad input index " + std::to_string(input));
  }
  BatchEmitter be(emitter, &tuples_out_);
  be.EnableBuffering(batch.size());
  Status st = ProcessBatchImpl(input, batch, &be);
  be.Flush();
  return st;
}

Status Operator::ProcessBatchImpl(int input, TupleBatch& batch,
                                  BatchEmitter* emitter) {
  Status first = Status::OK();
  for (size_t i = 0; i < batch.size(); ++i) {
    const Tuple& t = batch.tuple(i);
    NoteBatchTupleIn(input, t);
    emitter->SetCurrent(t);
    Status st = ProcessImpl(input, t, batch.now(i), emitter);
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

void Operator::OnTick(SimTime, Emitter*) {}

void Operator::Drain(Emitter*) {}

SeqNo Operator::StatefulDependency(int) const { return kNoSeqNo; }

std::vector<SeqNo> Operator::Dependencies() const {
  std::vector<SeqNo> deps(static_cast<size_t>(num_inputs()), kNoSeqNo);
  for (int i = 0; i < num_inputs(); ++i) {
    if (HasState()) {
      SeqNo s = StatefulDependency(i);
      // A stateful box with no open state behaves like a stateless one.
      deps[i] = (s != kNoSeqNo) ? s : last_seq_[i];
    } else {
      deps[i] = last_seq_[i];
    }
  }
  return deps;
}

double DefaultCostMicros(const std::string& kind) {
  if (kind == "filter") return 1.0;
  if (kind == "map") return 2.0;
  if (kind == "union") return 0.5;
  if (kind == "wsort") return 5.0;
  if (kind == "tumble") return 3.0;
  if (kind == "xsection" || kind == "slide") return 4.0;
  if (kind == "join") return 8.0;
  if (kind == "resample") return 4.0;
  return 2.0;
}

}  // namespace aurora
