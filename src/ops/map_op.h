#ifndef AURORA_OPS_MAP_OP_H_
#define AURORA_OPS_MAP_OP_H_

#include "ops/operator.h"

namespace aurora {

/// \brief Map: per-tuple projection/transformation (paper §2.2).
///
/// Each output field is a declarative Expr over the input tuple, so Map
/// boxes remain shippable by remote definition.
class MapOp : public Operator {
 public:
  explicit MapOp(OperatorSpec spec) : Operator(std::move(spec)) {}

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
};

}  // namespace aurora

#endif  // AURORA_OPS_MAP_OP_H_
