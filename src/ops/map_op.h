#ifndef AURORA_OPS_MAP_OP_H_
#define AURORA_OPS_MAP_OP_H_

#include "ops/operator.h"

namespace aurora {

/// \brief Map: per-tuple projection/transformation (paper §2.2).
///
/// Each output field is a declarative Expr over the input tuple, so Map
/// boxes remain shippable by remote definition.
class MapOp : public Operator {
 public:
  explicit MapOp(OperatorSpec spec) : Operator(std::move(spec)) {}

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
  /// Vectorized: projections that Expr::EvalBatch can run columnar are
  /// computed once per batch; remaining projections evaluate per tuple in
  /// the assembly loop, so a single string column doesn't de-vectorize the
  /// integer ones.
  Status ProcessBatchImpl(int input, TupleBatch& batch,
                          BatchEmitter* emitter) override;

 private:
  /// Per-batch scratch: one int64 column per vectorizable projection plus
  /// a flag vector saying which projections took the columnar path, and a
  /// per-projection identity index (>= 0 when the projection is a bare
  /// field reference — copied straight out of the tuple, any value type
  /// including strings, no per-tuple Eval dispatch). Member to keep
  /// capacity warm across activations; a box instance never runs two
  /// activations concurrently.
  std::vector<std::vector<int64_t>> col_scratch_;
  std::vector<uint8_t> fast_;
  std::vector<int> ident_;
};

}  // namespace aurora

#endif  // AURORA_OPS_MAP_OP_H_
