#include "ops/filter_op.h"
#include "ops/join_op.h"
#include "ops/map_op.h"
#include "ops/operator.h"
#include "ops/resample_op.h"
#include "ops/tumble_op.h"
#include "ops/union_op.h"
#include "ops/window_agg_op.h"
#include "ops/wsort_op.h"

namespace aurora {

Result<OperatorPtr> CreateOperator(const OperatorSpec& spec) {
  const std::string& kind = spec.kind;
  if (kind == "filter") return OperatorPtr(new FilterOp(spec));
  if (kind == "map") return OperatorPtr(new MapOp(spec));
  if (kind == "union") return OperatorPtr(new UnionOp(spec));
  if (kind == "wsort") return OperatorPtr(new WSortOp(spec));
  if (kind == "tumble") return OperatorPtr(new TumbleOp(spec));
  if (kind == "xsection" || kind == "slide") {
    return OperatorPtr(new WindowAggOp(spec));
  }
  if (kind == "join") return OperatorPtr(new JoinOp(spec));
  if (kind == "resample") return OperatorPtr(new ResampleOp(spec));
  return Status::InvalidArgument("unknown operator kind '" + kind + "'");
}

}  // namespace aurora
