#ifndef AURORA_OPS_GROUP_KEY_H_
#define AURORA_OPS_GROUP_KEY_H_

#include <unordered_map>
#include <vector>

#include "tuple/value.h"

namespace aurora {

/// Hash for group-by key vectors, built on Value::Hash. Consistent with the
/// cross-type numeric semantics of Value::Compare: int64 2 and double 2.0
/// compare equal, and Value::Hash already hashes integral doubles
/// identically to the equal int64 — so equal keys always hash equally.
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& key) const {
    uint64_t h = 1469598103934665603ull;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

/// Collision-safe equality matching the equivalence classes the ordered
/// group-by maps used (ValueVectorLess, i.e. element-wise Value::Compare).
struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// Group-by state keyed by value vectors: O(1) probes instead of the
/// O(log groups) comparison-heavy std::map lookups. Iteration order is
/// arbitrary — anything order-sensitive (e.g. Drain emission, whose output
/// order is observable) must collect the keys and sort them with
/// ValueVectorLess first.
template <typename StateT>
using GroupKeyMap =
    std::unordered_map<std::vector<Value>, StateT, ValueVectorHash,
                       ValueVectorEq>;

}  // namespace aurora

#endif  // AURORA_OPS_GROUP_KEY_H_
