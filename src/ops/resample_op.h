#ifndef AURORA_OPS_RESAMPLE_OP_H_
#define AURORA_OPS_RESAMPLE_OP_H_

#include <optional>

#include "ops/operator.h"

namespace aurora {

/// \brief Resample: extrapolation operator (paper §2.2).
///
/// Converts an irregular stream into a regular one: emits one tuple per
/// `interval_us` boundary, with the value field linearly interpolated
/// between the two surrounding input tuples (by tuple timestamp). Output
/// schema: (ts: int64 micros, <value_field>: double).
class ResampleOp : public Operator {
 public:
  explicit ResampleOp(OperatorSpec spec);

  bool HasState() const override { return true; }

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
  SeqNo StatefulDependency(int input) const override;

 private:
  SimDuration interval_{};
  size_t value_index_ = 0;
  std::optional<Tuple> prev_;
  // Next boundary at which an interpolated tuple is owed.
  int64_t next_boundary_us_ = 0;
};

}  // namespace aurora

#endif  // AURORA_OPS_RESAMPLE_OP_H_
