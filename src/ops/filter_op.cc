#include "ops/filter_op.h"

namespace aurora {

FilterOp::FilterOp(OperatorSpec spec)
    : Operator(std::move(spec)), two_way_(spec_.GetBool("two_way", false)) {}

Status FilterOp::InitImpl() {
  if (!spec_.predicate.has_value()) {
    return Status::InvalidArgument("filter requires a predicate");
  }
  // Resolve field names to indices once; ProcessImpl never looks up a name.
  AURORA_RETURN_NOT_OK(spec_.predicate->Bind(input_schema(0)));
  SetOutputSchema(0, input_schema(0));
  if (two_way_) SetOutputSchema(1, input_schema(0));
  return Status::OK();
}

Status FilterOp::ProcessImpl(int, const Tuple& t, SimTime, Emitter* emitter) {
  if (spec_.predicate->Eval(t)) {
    emitter->Emit(0, t);
  } else if (two_way_) {
    emitter->Emit(1, t);
  }
  return Status::OK();
}

Status FilterOp::ProcessBatchImpl(int input, TupleBatch& batch,
                                  BatchEmitter* emitter) {
  spec_.predicate->EvalBatch(batch, &match_scratch_);
  for (size_t i = 0; i < batch.size(); ++i) {
    const Tuple& t = batch.tuple(i);
    NoteBatchTupleIn(input, t);
    emitter->SetCurrent(t);
    if (match_scratch_[i]) {
      emitter->Emit(0, t);
    } else if (two_way_) {
      emitter->Emit(1, t);
    }
  }
  return Status::OK();
}

}  // namespace aurora
