#ifndef AURORA_OPS_OP_SPEC_H_
#define AURORA_OPS_OP_SPEC_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "ops/expr.h"
#include "ops/predicate.h"
#include "tuple/serde.h"

namespace aurora {

/// \brief Declarative description of an operator instance.
///
/// Every operator in the system is constructible from its spec, and every
/// operator can report the spec it was built from. This is the foundation of
/// three paper mechanisms:
///  - *remote definition* (§4.4): a participant ships a spec, not a process;
///  - *box sliding* (§5.1): the slid box is re-instantiated from its spec on
///    the destination node;
///  - *box splitting* (§5.1): the splitter clones specs and synthesizes the
///    merge sub-network's specs.
struct OperatorSpec {
  /// Operator kind: "filter", "map", "union", "wsort", "tumble", "xsection",
  /// "slide", "join", "resample".
  std::string kind;
  /// Scalar parameters, keyed by name (e.g. "timeout_us", "agg", "n").
  std::map<std::string, Value> params;
  /// Attribute lists (sort attributes, groupby attributes), in order.
  std::vector<std::string> attrs;
  /// Filter/Join predicate, when the kind uses one.
  std::optional<Predicate> predicate;
  /// Map projections: output field name -> expression.
  std::vector<std::pair<std::string, Expr>> projections;

  /// Fetches a scalar param. Returns the fallback when absent.
  Value GetParam(const std::string& name, Value fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  std::string GetString(const std::string& name, std::string fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;
  bool HasParam(const std::string& name) const {
    return params.count(name) > 0;
  }

  OperatorSpec& SetParam(std::string name, Value v) {
    params[std::move(name)] = std::move(v);
    return *this;
  }

  std::string ToString() const;

  void Encode(Encoder* enc) const;
  static Result<OperatorSpec> Decode(Decoder* dec);

  bool operator==(const OperatorSpec& other) const {
    // Predicates/exprs compare via their string form; adequate for tests and
    // catalog dedup (specs are canonical data, not user input).
    return ToString() == other.ToString();
  }
};

/// Convenience constructors for the standard boxes.
OperatorSpec FilterSpec(Predicate p, bool two_way = false);
OperatorSpec MapSpec(std::vector<std::pair<std::string, Expr>> projections);
OperatorSpec UnionSpec(int n_inputs);
OperatorSpec WSortSpec(std::vector<std::string> sort_attrs, int64_t timeout_us,
                       int64_t max_buffer = 0);
OperatorSpec TumbleSpec(std::string agg, std::string agg_field,
                        std::vector<std::string> groupby_attrs,
                        std::string result_field = "Result");
OperatorSpec XSectionSpec(std::string agg, std::string agg_field,
                          int64_t window_size, int64_t advance,
                          std::vector<std::string> groupby_attrs = {},
                          std::string result_field = "Result");
OperatorSpec SlideSpec(std::string agg, std::string agg_field,
                       int64_t window_size,
                       std::vector<std::string> groupby_attrs = {},
                       std::string result_field = "Result");
OperatorSpec JoinSpec(std::string left_key, std::string right_key,
                      int64_t window_us, std::string right_prefix = "r_");
OperatorSpec ResampleSpec(std::string value_field, int64_t interval_us);

}  // namespace aurora

#endif  // AURORA_OPS_OP_SPEC_H_
