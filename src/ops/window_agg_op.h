#ifndef AURORA_OPS_WINDOW_AGG_OP_H_
#define AURORA_OPS_WINDOW_AGG_OP_H_

#include <deque>
#include <memory>
#include <vector>

#include "ops/aggregate.h"
#include "ops/group_key.h"
#include "ops/operator.h"
#include "ops/wsort_op.h"

namespace aurora {

/// \brief XSection / Slide: overlapping count-based window aggregates
/// (the "two additional aggregate operators" of paper §2.2).
///
/// Per groupby key, maintains the last `window` tuples and applies the
/// aggregate to each window of `window` consecutive tuples, advancing the
/// window start by `advance` tuples between emissions:
///   - XSection: arbitrary advance (advance == window gives count-tumbling
///     cross-sections);
///   - Slide: advance == 1, one output per input once the window fills.
class WindowAggOp : public Operator {
 public:
  explicit WindowAggOp(OperatorSpec spec);

  bool HasState() const override { return true; }

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
  /// Drains the whole batch through the group state, memoizing the
  /// GroupKeyMap probe across consecutive same-group tuples. Groups are
  /// never erased mid-stream, so the memo pointer survives the batch.
  Status ProcessBatchImpl(int input, TupleBatch& batch,
                          BatchEmitter* emitter) override;
  SeqNo StatefulDependency(int input) const override;

 private:
  struct GroupState {
    std::deque<Tuple> buffer;  // at most `window_` tuples
    uint64_t since_last_emit = 0;
    bool primed = false;  // first window emitted
  };

  /// Fills key_scratch_ with the tuple's groupby values (indices bound at
  /// init) and returns it; no per-tuple allocation once the scratch has
  /// capacity. Callers that store the key move key_scratch_ out.
  const std::vector<Value>& KeyOf(const Tuple& t);

  /// Buffers `t` into `g` and emits the window aggregate when full and
  /// aligned with the advance stride. `stored_key` is the map's own key
  /// vector for the group. Shared by the scalar and batched paths.
  void StepGroup(const std::vector<Value>& stored_key, GroupState& g,
                 const Tuple& t, Emitter* emitter);

  std::string agg_name_;
  size_t agg_index_ = 0;
  uint64_t window_ = 0;
  uint64_t advance_ = 1;
  std::vector<size_t> group_indices_;
  // Hash map: per-group state is only probed per tuple; the one iteration
  // (StatefulDependency's min over all buffered seqs) is order-independent.
  GroupKeyMap<GroupState> groups_;
  std::vector<Value> key_scratch_;
  std::unique_ptr<AggregateFunction> proto_agg_;
};

}  // namespace aurora

#endif  // AURORA_OPS_WINDOW_AGG_OP_H_
