#include "ops/resample_op.h"

namespace aurora {

ResampleOp::ResampleOp(OperatorSpec spec) : Operator(std::move(spec)) {
  interval_ = SimDuration::Micros(spec_.GetInt("interval_us", 0));
}

Status ResampleOp::InitImpl() {
  if (interval_.micros() <= 0) {
    return Status::InvalidArgument("resample requires interval_us > 0");
  }
  std::string field = spec_.GetString("value_field", "");
  if (field.empty()) {
    return Status::InvalidArgument("resample requires a value_field");
  }
  AURORA_ASSIGN_OR_RETURN(value_index_, input_schema(0)->IndexOf(field));
  SetOutputSchema(0, Schema::Make({Field{"ts", ValueType::kInt64},
                                   Field{field, ValueType::kDouble}}));
  return Status::OK();
}

Status ResampleOp::ProcessImpl(int, const Tuple& t, SimTime, Emitter* emitter) {
  if (!prev_.has_value()) {
    prev_ = t;
    // First boundary at or after the first observation.
    int64_t us = t.timestamp().micros();
    int64_t step = interval_.micros();
    next_boundary_us_ = ((us + step - 1) / step) * step;
    return Status::OK();
  }
  const Tuple& a = *prev_;
  double t0 = static_cast<double>(a.timestamp().micros());
  double t1 = static_cast<double>(t.timestamp().micros());
  double v0 = a.value(value_index_).AsNumeric();
  double v1 = t.value(value_index_).AsNumeric();
  while (next_boundary_us_ <= t.timestamp().micros()) {
    double frac = t1 == t0 ? 0.0 : (static_cast<double>(next_boundary_us_) - t0) /
                                       (t1 - t0);
    double v = v0 + frac * (v1 - v0);
    Tuple out(output_schema(0), {Value(next_boundary_us_), Value(v)});
    out.set_timestamp(SimTime::Micros(next_boundary_us_));
    out.set_seq(a.seq());  // depends on the earlier of its two anchors
    emitter->Emit(0, std::move(out));
    next_boundary_us_ += interval_.micros();
  }
  prev_ = t;
  return Status::OK();
}

SeqNo ResampleOp::StatefulDependency(int) const {
  return prev_.has_value() ? prev_->seq() : kNoSeqNo;
}

}  // namespace aurora
