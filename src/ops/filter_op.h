#ifndef AURORA_OPS_FILTER_OP_H_
#define AURORA_OPS_FILTER_OP_H_

#include "ops/operator.h"

namespace aurora {

/// \brief Filter(p): forwards tuples satisfying p to output 0 (paper §2.2).
///
/// With the "two_way" spec param set, tuples failing p go to output 1 —
/// the optional second stream the paper mentions, and the form the splitter
/// uses as a semantic router (§5.1).
class FilterOp : public Operator {
 public:
  explicit FilterOp(OperatorSpec spec);

  int num_outputs() const override { return two_way_ ? 2 : 1; }

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
  /// Vectorized: one Predicate::EvalBatch over the batch's columnar
  /// scratch, then a branch-per-tuple emit loop.
  Status ProcessBatchImpl(int input, TupleBatch& batch,
                          BatchEmitter* emitter) override;

 private:
  bool two_way_;
  /// Per-batch match bitmap. Member (not stack) to keep its capacity warm
  /// across activations; safe because a box instance never runs two
  /// activations concurrently, on either engine.
  std::vector<uint8_t> match_scratch_;
};

}  // namespace aurora

#endif  // AURORA_OPS_FILTER_OP_H_
