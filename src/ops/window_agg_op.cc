#include "ops/window_agg_op.h"

namespace aurora {

WindowAggOp::WindowAggOp(OperatorSpec spec) : Operator(std::move(spec)) {
  agg_name_ = spec_.GetString("agg", "cnt");
  window_ = static_cast<uint64_t>(spec_.GetInt("window", 0));
  advance_ = static_cast<uint64_t>(spec_.GetInt("advance", 1));
}

Status WindowAggOp::InitImpl() {
  AURORA_ASSIGN_OR_RETURN(proto_agg_, MakeAggregate(agg_name_));
  if (window_ == 0) {
    return Status::InvalidArgument(kind() + " requires window > 0");
  }
  if (advance_ == 0 || advance_ > window_) {
    return Status::InvalidArgument(kind() + " requires 0 < advance <= window");
  }
  std::string agg_field = spec_.GetString("agg_field", "");
  if (agg_field.empty()) {
    return Status::InvalidArgument(kind() + " requires an agg_field");
  }
  AURORA_ASSIGN_OR_RETURN(agg_index_, input_schema(0)->IndexOf(agg_field));
  for (const auto& attr : spec_.attrs) {
    AURORA_ASSIGN_OR_RETURN(size_t idx, input_schema(0)->IndexOf(attr));
    group_indices_.push_back(idx);
  }
  std::vector<Field> fields;
  for (size_t idx : group_indices_) fields.push_back(input_schema(0)->field(idx));
  ValueType result_type =
      AggResultType(agg_name_, input_schema(0)->field(agg_index_).type);
  fields.push_back(Field{spec_.GetString("result_field", "Result"), result_type});
  SetOutputSchema(0, Schema::Make(std::move(fields)));
  return Status::OK();
}

const std::vector<Value>& WindowAggOp::KeyOf(const Tuple& t) {
  key_scratch_.clear();
  key_scratch_.reserve(group_indices_.size());
  for (size_t idx : group_indices_) key_scratch_.push_back(t.value(idx));
  return key_scratch_;
}

void WindowAggOp::StepGroup(const std::vector<Value>& stored_key,
                            GroupState& g, const Tuple& t, Emitter* emitter) {
  g.buffer.push_back(t);
  if (g.buffer.size() > window_) g.buffer.pop_front();
  if (!g.primed) {
    if (g.buffer.size() < window_) return;
  } else {
    g.since_last_emit++;
    if (g.since_last_emit < advance_) return;
  }
  // Window full and aligned with the advance stride: aggregate and emit.
  auto agg = proto_agg_->Clone();
  agg->Reset();
  for (const auto& buffered : g.buffer) agg->Update(buffered.value(agg_index_));
  std::vector<Value> values = stored_key;
  values.push_back(agg->Final());
  Tuple out(output_schema(0), std::move(values));
  out.set_timestamp(g.buffer.front().timestamp());
  SeqNo min_seq = kNoSeqNo;
  for (const auto& buffered : g.buffer) {
    if (buffered.seq() == kNoSeqNo) continue;
    if (min_seq == kNoSeqNo || buffered.seq() < min_seq) min_seq = buffered.seq();
  }
  out.set_seq(min_seq);
  emitter->Emit(0, std::move(out));
  g.primed = true;
  g.since_last_emit = 0;
}

Status WindowAggOp::ProcessImpl(int, const Tuple& t, SimTime, Emitter* emitter) {
  const std::vector<Value>& key = KeyOf(t);
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    // Moving the scratch donates its buffer to the stored key; KeyOf
    // rebuilds it next call.
    it = groups_.emplace(std::move(key_scratch_), GroupState{}).first;
  }
  // it->first, not `key`: the scratch behind `key` may have been moved into
  // the map when this group was created.
  StepGroup(it->first, it->second, t, emitter);
  return Status::OK();
}

Status WindowAggOp::ProcessBatchImpl(int input, TupleBatch& batch,
                                     BatchEmitter* emitter) {
  // Memoize the last probed group across consecutive same-key tuples.
  // Pointers into the map survive rehash (only iterators are invalidated)
  // and nothing erases groups mid-stream.
  const std::vector<Value>* memo_key = nullptr;
  GroupState* memo_state = nullptr;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Tuple& t = batch.tuple(i);
    NoteBatchTupleIn(input, t);
    emitter->SetCurrent(t);
    const std::vector<Value>& key = KeyOf(t);
    if (memo_state == nullptr || !(key == *memo_key)) {
      auto it = groups_.find(key);
      if (it == groups_.end()) {
        it = groups_.emplace(std::move(key_scratch_), GroupState{}).first;
      }
      memo_key = &it->first;
      memo_state = &it->second;
    }
    StepGroup(*memo_key, *memo_state, t, emitter);
  }
  return Status::OK();
}

SeqNo WindowAggOp::StatefulDependency(int) const {
  SeqNo min_seq = kNoSeqNo;
  for (const auto& [key, g] : groups_) {
    for (const auto& t : g.buffer) {
      if (t.seq() == kNoSeqNo) continue;
      if (min_seq == kNoSeqNo || t.seq() < min_seq) min_seq = t.seq();
    }
  }
  return min_seq;
}

}  // namespace aurora
