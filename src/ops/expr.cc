#include "ops/expr.h"

namespace aurora {

Expr Expr::FieldRef(std::string field) {
  Expr e;
  e.kind_ = Kind::kField;
  e.field_ = std::move(field);
  return e;
}

Expr Expr::Constant(Value v) {
  Expr e;
  e.kind_ = Kind::kConst;
  e.constant_ = std::move(v);
  return e;
}

Expr Expr::Arith(ArithOp op, Expr lhs, Expr rhs) {
  Expr e;
  e.kind_ = Kind::kArith;
  e.op_ = op;
  e.children_.push_back(std::make_shared<const Expr>(std::move(lhs)));
  e.children_.push_back(std::make_shared<const Expr>(std::move(rhs)));
  return e;
}

Status Expr::Bind(const SchemaPtr& input) const {
  switch (kind_) {
    case Kind::kField: {
      if (input == nullptr) return Status::InvalidArgument("null schema");
      AURORA_ASSIGN_OR_RETURN(size_t idx, input->IndexOf(field_));
      bound_index_ = idx;
      bound_schema_ = input;
      return Status::OK();
    }
    case Kind::kConst:
      return Status::OK();
    case Kind::kArith:
      AURORA_RETURN_NOT_OK(children_[0]->Bind(input));
      return children_[1]->Bind(input);
  }
  return Status::Internal("bad expr kind");
}

Result<Value> Expr::Eval(const Tuple& t) const {
  switch (kind_) {
    case Kind::kField: {
      if (t.schema().get() != bound_schema_.get()) {
        AURORA_RETURN_NOT_OK(Bind(t.schema()));
      }
      return t.value(bound_index_);
    }
    case Kind::kConst:
      return constant_;
    case Kind::kArith: {
      AURORA_ASSIGN_OR_RETURN(Value l, children_[0]->Eval(t));
      AURORA_ASSIGN_OR_RETURN(Value r, children_[1]->Eval(t));
      bool ints = l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64;
      if (op_ == ArithOp::kDiv) {
        double rv = r.AsNumeric();
        if (rv == 0.0) return Status::InvalidArgument("division by zero");
        return Value(l.AsNumeric() / rv);
      }
      if (ints) {
        int64_t a = l.AsInt(), b = r.AsInt();
        switch (op_) {
          case ArithOp::kAdd:
            return Value(a + b);
          case ArithOp::kSub:
            return Value(a - b);
          case ArithOp::kMul:
            return Value(a * b);
          case ArithOp::kDiv:
            break;
        }
      }
      double a = l.AsNumeric(), b = r.AsNumeric();
      switch (op_) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        case ArithOp::kDiv:
          break;
      }
      return Status::Internal("unreachable arith op");
    }
  }
  return Status::Internal("bad expr kind");
}

bool Expr::EvalBatch(TupleBatch& batch, std::vector<int64_t>* out) const {
  const size_t n = batch.size();
  switch (kind_) {
    case Kind::kField: {
      if (!batch.uniform_schema() || batch.schema() == nullptr) return false;
      if (batch.schema().get() != bound_schema_.get()) {
        if (!Bind(batch.schema()).ok()) return false;
      }
      const int64_t* col = batch.I64Column(bound_index_);
      if (col == nullptr) return false;
      out->assign(col, col + n);
      return true;
    }
    case Kind::kConst:
      if (constant_.type() != ValueType::kInt64) return false;
      out->assign(n, constant_.AsInt());
      return true;
    case Kind::kArith: {
      if (op_ == ArithOp::kDiv) return false;  // always double, may error
      std::vector<int64_t> rhs;
      if (!children_[0]->EvalBatch(batch, out)) return false;
      if (!children_[1]->EvalBatch(batch, &rhs)) return false;
      int64_t* a = out->data();
      const int64_t* b = rhs.data();
      switch (op_) {
        case ArithOp::kAdd:
          for (size_t i = 0; i < n; ++i) a[i] += b[i];
          break;
        case ArithOp::kSub:
          for (size_t i = 0; i < n; ++i) a[i] -= b[i];
          break;
        case ArithOp::kMul:
          for (size_t i = 0; i < n; ++i) a[i] *= b[i];
          break;
        case ArithOp::kDiv:
          return false;
      }
      return true;
    }
  }
  return false;
}

Result<ValueType> Expr::ResultType(const Schema& input) const {
  switch (kind_) {
    case Kind::kField: {
      AURORA_ASSIGN_OR_RETURN(size_t idx, input.IndexOf(field_));
      return input.field(idx).type;
    }
    case Kind::kConst:
      return constant_.type();
    case Kind::kArith: {
      if (op_ == ArithOp::kDiv) return ValueType::kDouble;
      AURORA_ASSIGN_OR_RETURN(ValueType l, children_[0]->ResultType(input));
      AURORA_ASSIGN_OR_RETURN(ValueType r, children_[1]->ResultType(input));
      if (l == ValueType::kInt64 && r == ValueType::kInt64) {
        return ValueType::kInt64;
      }
      return ValueType::kDouble;
    }
  }
  return Status::Internal("bad expr kind");
}

bool Expr::IsFieldRef(std::string* name) const {
  if (kind_ != Kind::kField) return false;
  if (name != nullptr) *name = field_;
  return true;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kField:
      return field_;
    case Kind::kConst:
      return constant_.ToString();
    case Kind::kArith: {
      const char* op = op_ == ArithOp::kAdd   ? "+"
                       : op_ == ArithOp::kSub ? "-"
                       : op_ == ArithOp::kMul ? "*"
                                              : "/";
      return "(" + children_[0]->ToString() + " " + op + " " +
             children_[1]->ToString() + ")";
    }
  }
  return "?";
}

void Expr::Encode(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(kind_));
  switch (kind_) {
    case Kind::kField:
      enc->PutString(field_);
      break;
    case Kind::kConst:
      enc->PutValue(constant_);
      break;
    case Kind::kArith:
      enc->PutU8(static_cast<uint8_t>(op_));
      children_[0]->Encode(enc);
      children_[1]->Encode(enc);
      break;
  }
}

Result<Expr> Expr::Decode(Decoder* dec) {
  AURORA_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  switch (static_cast<Kind>(tag)) {
    case Kind::kField: {
      AURORA_ASSIGN_OR_RETURN(std::string field, dec->GetString());
      return FieldRef(std::move(field));
    }
    case Kind::kConst: {
      AURORA_ASSIGN_OR_RETURN(Value v, dec->GetValue());
      return Constant(std::move(v));
    }
    case Kind::kArith: {
      AURORA_ASSIGN_OR_RETURN(uint8_t op, dec->GetU8());
      if (op > static_cast<uint8_t>(ArithOp::kDiv)) {
        return Status::InvalidArgument("bad arith op tag");
      }
      AURORA_ASSIGN_OR_RETURN(Expr lhs, Decode(dec));
      AURORA_ASSIGN_OR_RETURN(Expr rhs, Decode(dec));
      return Arith(static_cast<ArithOp>(op), std::move(lhs), std::move(rhs));
    }
  }
  return Status::InvalidArgument("bad expr tag " + std::to_string(tag));
}

}  // namespace aurora
