#ifndef AURORA_OPS_AGGREGATE_H_
#define AURORA_OPS_AGGREGATE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "tuple/value.h"

namespace aurora {

/// \brief Incremental aggregate function used by Tumble / XSection / Slide.
///
/// The paper's Tumble-split merge network (§5.1, Fig. 6) requires that an
/// aggregate `agg` have a *combination function* `combine` with
///   agg({x_1..x_n}) = combine(agg({x_1..x_k}), agg({x_{k+1}..x_n})).
/// CombineFunctionFor returns that function's name (cnt→sum, max→max, ...);
/// aggregates without one (avg) cannot be transparently split, and the
/// splitter reports FailedPrecondition for them.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual const char* name() const = 0;
  /// Clears accumulated state for a new window.
  virtual void Reset() = 0;
  virtual void Update(const Value& v) = 0;
  /// Value for the current window; valid only if count() > 0 (except cnt).
  virtual Value Final() const = 0;
  /// Tuples accumulated in the current window.
  virtual uint64_t count() const = 0;
  /// Fresh instance of the same function (for per-group state).
  virtual std::unique_ptr<AggregateFunction> Clone() const = 0;
  /// Result attribute type.
  virtual ValueType result_type() const = 0;
};

/// Creates an aggregate by name: "cnt", "sum", "avg", "min", "max".
Result<std::unique_ptr<AggregateFunction>> MakeAggregate(const std::string& name);

/// True if the named aggregate has a combination function.
bool IsCombinableAggregate(const std::string& name);

/// Name of the combination function for `name` (per the paper: cnt→sum,
/// sum→sum, min→min, max→max); FailedPrecondition when none exists.
Result<std::string> CombineFunctionFor(const std::string& name);

/// Schema type of the aggregate result given the aggregated field's type:
/// cnt → int64; avg → double; sum/min/max → the input field's type.
ValueType AggResultType(const std::string& name, ValueType input_field_type);

}  // namespace aurora

#endif  // AURORA_OPS_AGGREGATE_H_
