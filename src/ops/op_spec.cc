#include "ops/op_spec.h"

namespace aurora {

Value OperatorSpec::GetParam(const std::string& name, Value fallback) const {
  auto it = params.find(name);
  return it == params.end() ? fallback : it->second;
}

int64_t OperatorSpec::GetInt(const std::string& name, int64_t fallback) const {
  auto it = params.find(name);
  if (it == params.end() || it->second.type() != ValueType::kInt64) {
    return fallback;
  }
  return it->second.AsInt();
}

double OperatorSpec::GetDouble(const std::string& name, double fallback) const {
  auto it = params.find(name);
  if (it == params.end() || it->second.is_null()) return fallback;
  return it->second.AsNumeric();
}

std::string OperatorSpec::GetString(const std::string& name,
                                    std::string fallback) const {
  auto it = params.find(name);
  if (it == params.end() || it->second.type() != ValueType::kString) {
    return fallback;
  }
  return it->second.AsString();
}

bool OperatorSpec::GetBool(const std::string& name, bool fallback) const {
  auto it = params.find(name);
  if (it == params.end() || it->second.type() != ValueType::kBool) {
    return fallback;
  }
  return it->second.AsBool();
}

std::string OperatorSpec::ToString() const {
  std::string out = kind + "{";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) out += ", ";
    first = false;
    out += k + "=" + v.ToString();
  }
  if (!attrs.empty()) {
    if (!first) out += ", ";
    first = false;
    out += "attrs=[";
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) out += ",";
      out += attrs[i];
    }
    out += "]";
  }
  if (predicate.has_value()) {
    if (!first) out += ", ";
    first = false;
    out += "p=(" + predicate->ToString() + ")";
  }
  for (const auto& [name, expr] : projections) {
    if (!first) out += ", ";
    first = false;
    out += name + ":=" + expr.ToString();
  }
  out += "}";
  return out;
}

void OperatorSpec::Encode(Encoder* enc) const {
  enc->PutString(kind);
  enc->PutU16(static_cast<uint16_t>(params.size()));
  for (const auto& [k, v] : params) {
    enc->PutString(k);
    enc->PutValue(v);
  }
  enc->PutU16(static_cast<uint16_t>(attrs.size()));
  for (const auto& a : attrs) enc->PutString(a);
  enc->PutU8(predicate.has_value() ? 1 : 0);
  if (predicate.has_value()) predicate->Encode(enc);
  enc->PutU16(static_cast<uint16_t>(projections.size()));
  for (const auto& [name, expr] : projections) {
    enc->PutString(name);
    expr.Encode(enc);
  }
}

Result<OperatorSpec> OperatorSpec::Decode(Decoder* dec) {
  OperatorSpec spec;
  AURORA_ASSIGN_OR_RETURN(spec.kind, dec->GetString());
  AURORA_ASSIGN_OR_RETURN(uint16_t n_params, dec->GetU16());
  for (uint16_t i = 0; i < n_params; ++i) {
    AURORA_ASSIGN_OR_RETURN(std::string k, dec->GetString());
    AURORA_ASSIGN_OR_RETURN(Value v, dec->GetValue());
    spec.params[std::move(k)] = std::move(v);
  }
  AURORA_ASSIGN_OR_RETURN(uint16_t n_attrs, dec->GetU16());
  for (uint16_t i = 0; i < n_attrs; ++i) {
    AURORA_ASSIGN_OR_RETURN(std::string a, dec->GetString());
    spec.attrs.push_back(std::move(a));
  }
  AURORA_ASSIGN_OR_RETURN(uint8_t has_pred, dec->GetU8());
  if (has_pred) {
    AURORA_ASSIGN_OR_RETURN(Predicate p, Predicate::Decode(dec));
    spec.predicate = std::move(p);
  }
  AURORA_ASSIGN_OR_RETURN(uint16_t n_proj, dec->GetU16());
  for (uint16_t i = 0; i < n_proj; ++i) {
    AURORA_ASSIGN_OR_RETURN(std::string name, dec->GetString());
    AURORA_ASSIGN_OR_RETURN(Expr expr, Expr::Decode(dec));
    spec.projections.emplace_back(std::move(name), std::move(expr));
  }
  return spec;
}

OperatorSpec FilterSpec(Predicate p, bool two_way) {
  OperatorSpec spec;
  spec.kind = "filter";
  spec.predicate = std::move(p);
  if (two_way) spec.SetParam("two_way", Value(true));
  return spec;
}

OperatorSpec MapSpec(std::vector<std::pair<std::string, Expr>> projections) {
  OperatorSpec spec;
  spec.kind = "map";
  spec.projections = std::move(projections);
  return spec;
}

OperatorSpec UnionSpec(int n_inputs) {
  OperatorSpec spec;
  spec.kind = "union";
  spec.SetParam("n", Value(static_cast<int64_t>(n_inputs)));
  return spec;
}

OperatorSpec WSortSpec(std::vector<std::string> sort_attrs, int64_t timeout_us,
                       int64_t max_buffer) {
  OperatorSpec spec;
  spec.kind = "wsort";
  spec.attrs = std::move(sort_attrs);
  spec.SetParam("timeout_us", Value(timeout_us));
  if (max_buffer > 0) spec.SetParam("max_buffer", Value(max_buffer));
  return spec;
}

OperatorSpec TumbleSpec(std::string agg, std::string agg_field,
                        std::vector<std::string> groupby_attrs,
                        std::string result_field) {
  OperatorSpec spec;
  spec.kind = "tumble";
  spec.SetParam("agg", Value(std::move(agg)));
  spec.SetParam("agg_field", Value(std::move(agg_field)));
  spec.SetParam("result_field", Value(std::move(result_field)));
  spec.attrs = std::move(groupby_attrs);
  return spec;
}

OperatorSpec XSectionSpec(std::string agg, std::string agg_field,
                          int64_t window_size, int64_t advance,
                          std::vector<std::string> groupby_attrs,
                          std::string result_field) {
  OperatorSpec spec;
  spec.kind = "xsection";
  spec.SetParam("agg", Value(std::move(agg)));
  spec.SetParam("agg_field", Value(std::move(agg_field)));
  spec.SetParam("window", Value(window_size));
  spec.SetParam("advance", Value(advance));
  spec.SetParam("result_field", Value(std::move(result_field)));
  spec.attrs = std::move(groupby_attrs);
  return spec;
}

OperatorSpec SlideSpec(std::string agg, std::string agg_field,
                       int64_t window_size,
                       std::vector<std::string> groupby_attrs,
                       std::string result_field) {
  OperatorSpec spec = XSectionSpec(std::move(agg), std::move(agg_field),
                                   window_size, /*advance=*/1,
                                   std::move(groupby_attrs),
                                   std::move(result_field));
  spec.kind = "slide";
  return spec;
}

OperatorSpec JoinSpec(std::string left_key, std::string right_key,
                      int64_t window_us, std::string right_prefix) {
  OperatorSpec spec;
  spec.kind = "join";
  spec.SetParam("left_key", Value(std::move(left_key)));
  spec.SetParam("right_key", Value(std::move(right_key)));
  spec.SetParam("window_us", Value(window_us));
  spec.SetParam("right_prefix", Value(std::move(right_prefix)));
  return spec;
}

OperatorSpec ResampleSpec(std::string value_field, int64_t interval_us) {
  OperatorSpec spec;
  spec.kind = "resample";
  spec.SetParam("value_field", Value(std::move(value_field)));
  spec.SetParam("interval_us", Value(interval_us));
  return spec;
}

}  // namespace aurora
