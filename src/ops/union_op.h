#ifndef AURORA_OPS_UNION_OP_H_
#define AURORA_OPS_UNION_OP_H_

#include "ops/operator.h"

namespace aurora {

/// \brief Union: merges n input streams with identical schemas into one
/// output stream, in arrival order (paper §2.2).
class UnionOp : public Operator {
 public:
  explicit UnionOp(OperatorSpec spec);

  int num_inputs() const override { return n_inputs_; }

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;

 private:
  int n_inputs_;
};

}  // namespace aurora

#endif  // AURORA_OPS_UNION_OP_H_
