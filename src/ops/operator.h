#ifndef AURORA_OPS_OPERATOR_H_
#define AURORA_OPS_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "ops/op_spec.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace aurora {

/// Sink for tuples produced by an operator. The engine provides an Emitter
/// that routes emissions to downstream arc queues or output applications.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(int output, Tuple t) = 0;
  /// Chunked sink: `n` tuples bound for one output port, in emission order.
  /// The default unrolls to per-tuple Emit calls, so every emitter is
  /// chunk-callable; engines override it to enqueue downstream arcs in bulk
  /// (one scheduler/ring update per chunk instead of per tuple). Tuples are
  /// consumed (moved-from) on return. Overrides must be
  /// observation-equivalent to the unrolled loop for everything the
  /// bit-exactness gates see: per-arc FIFO order, per-output delivery order,
  /// and per-tuple metadata.
  virtual void EmitChunk(int output, Tuple* tuples, size_t n) {
    for (size_t i = 0; i < n; ++i) Emit(output, std::move(tuples[i]));
  }
};

/// \brief Base class for all Aurora boxes (paper §2.2).
///
/// Lifecycle: construct from an OperatorSpec → Init(input schemas) →
/// Process per tuple (+ OnTick for time-driven boxes) → Drain when the
/// surrounding network is stabilized for a move (§5.1).
///
/// The base tracks the transport sequence number of the last tuple processed
/// on each input; combined with StatefulDependency this implements the HA
/// rule of §6.2: a stateless box depends on the tuple it processed most
/// recently, a stateful box on the earliest tuple contributing to its state.
class Operator {
 public:
  explicit Operator(OperatorSpec spec) : spec_(std::move(spec)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const OperatorSpec& spec() const { return spec_; }
  const std::string& kind() const { return spec_.kind; }

  virtual int num_inputs() const { return 1; }
  virtual int num_outputs() const { return 1; }

  /// Validates input schemas against the spec and computes output schemas.
  /// Must be called exactly once before Process.
  Status Init(std::vector<SchemaPtr> input_schemas);

  const SchemaPtr& input_schema(int i) const { return input_schemas_[i]; }
  const SchemaPtr& output_schema(int i) const { return output_schemas_[i]; }

  /// Processes one tuple from the given input arc.
  Status Process(int input, const Tuple& t, SimTime now, Emitter* emitter);

  /// Processes a whole train of tuples from one input arc. Must be
  /// emission-equivalent to calling Process on each tuple front to back:
  /// the default implementation does exactly that, and vectorized overrides
  /// are gated by the batch-vs-scalar equivalence suite. On a per-tuple
  /// error, processing continues with the remaining tuples and the first
  /// error is returned, matching the engine's deferred-error policy.
  Status ProcessBatch(int input, TupleBatch& batch, Emitter* emitter);

  /// Time-driven callback (WSort timeouts, aggregate timeouts). The engine
  /// invokes it at its tick granularity.
  virtual void OnTick(SimTime now, Emitter* emitter);

  /// Flushes all operator state downstream. Used when draining a
  /// sub-network during stabilization, and by batch-style tests.
  virtual void Drain(Emitter* emitter);

  /// True when the box holds window/join state between tuples.
  virtual bool HasState() const { return false; }

  /// For each input arc: the sequence number of the earliest tuple this box
  /// still depends on (HA §6.2). kNoSeqNo when nothing was processed yet.
  std::vector<SeqNo> Dependencies() const;

  /// Per-tuple CPU cost charged by the node simulation; defaults per kind,
  /// overridable via the "cost_us" spec param.
  double cost_micros_per_tuple() const { return cost_micros_; }
  void set_cost_micros_per_tuple(double c) { cost_micros_ = c; }

  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }
  /// Observed selectivity (out/in); 1.0 until data has flowed.
  double selectivity() const {
    return tuples_in_ == 0
               ? 1.0
               : static_cast<double>(tuples_out_) / static_cast<double>(tuples_in_);
  }

  /// Emitter wrapper used on the batched path. Per-emission it applies the
  /// same lineage rules the scalar path splits between CountingEmitter
  /// (seq inheritance) and the engine's routing emitter (trace-id
  /// propagation): a ProcessBatchImpl override must call SetCurrent(t)
  /// before emitting on behalf of tuple `t`, because the engine cannot know
  /// per-emission provenance mid-batch.
  ///
  /// With buffering enabled (ProcessBatch turns it on, sized to the input
  /// batch) emissions are staged after stamping and handed downstream as
  /// consecutive same-output runs via Emitter::EmitChunk, so arcs/rings pay
  /// per-chunk instead of per-tuple. Stamping happens at Emit time — before
  /// staging — so seq/trace assignment is byte-identical to the unbuffered
  /// path no matter where chunk boundaries fall; the flush replays emissions
  /// in their original order.
  class BatchEmitter : public Emitter {
   public:
    BatchEmitter(Emitter* inner, uint64_t* counter)
        : inner_(inner), counter_(counter) {}
    void SetCurrent(const Tuple& t) {
      cur_seq_ = t.seq();
      cur_trace_ = t.trace_id();
    }
    /// Stages up to `cap` emissions before flushing (0 = unbuffered).
    void EnableBuffering(size_t cap) { cap_ = cap; }
    void Emit(int output, Tuple t) override {
      ++*counter_;
      if (t.seq() == kNoSeqNo) t.set_seq(cur_seq_);
      if (cur_trace_ != 0 && t.trace_id() == 0) t.set_trace_id(cur_trace_);
      if (cap_ == 0) {
        inner_->Emit(output, std::move(t));
        return;
      }
      if (staged_tuples_.size() >= cap_) Flush();
      staged_outputs_.push_back(output);
      staged_tuples_.push_back(std::move(t));
    }
    /// Replays staged emissions in order, one EmitChunk per consecutive
    /// same-output run. ProcessBatch calls this before returning so the
    /// engine observes every emission of the batch once control returns.
    void Flush() {
      size_t i = 0;
      const size_t n = staged_tuples_.size();
      while (i < n) {
        size_t j = i + 1;
        while (j < n && staged_outputs_[j] == staged_outputs_[i]) ++j;
        inner_->EmitChunk(staged_outputs_[i], staged_tuples_.data() + i,
                          j - i);
        i = j;
      }
      staged_tuples_.clear();
      staged_outputs_.clear();
    }

   private:
    Emitter* inner_;
    uint64_t* counter_;
    SeqNo cur_seq_ = kNoSeqNo;
    uint64_t cur_trace_ = 0;
    size_t cap_ = 0;
    std::vector<int> staged_outputs_;
    std::vector<Tuple> staged_tuples_;
  };

 protected:
  virtual Status InitImpl() = 0;
  virtual Status ProcessImpl(int input, const Tuple& t, SimTime now,
                             Emitter* emitter) = 0;
  /// Batched hook; default loops ProcessImpl over the batch. Overrides must
  /// call NoteBatchTupleIn + emitter->SetCurrent for every tuple consumed,
  /// keep scalar emission order, and continue past per-tuple errors
  /// (returning the first).
  virtual Status ProcessBatchImpl(int input, TupleBatch& batch,
                                  BatchEmitter* emitter);
  /// Per-tuple base bookkeeping on the batched path (lineage tracking and
  /// selectivity input counting) — the batch equivalent of what Process
  /// does before delegating to ProcessImpl.
  void NoteBatchTupleIn(int input, const Tuple& t) {
    if (t.seq() != kNoSeqNo) last_seq_[input] = t.seq();
    ++tuples_in_;
  }
  /// Earliest tuple seq contributing to retained state for the given input;
  /// kNoSeqNo when the box holds no state for that input. Stateful
  /// subclasses override.
  virtual SeqNo StatefulDependency(int input) const;

  void SetOutputSchema(int i, SchemaPtr schema) {
    output_schemas_[i] = std::move(schema);
  }

  /// Counting wrapper so selectivity is measured at the base.
  class CountingEmitter;

  OperatorSpec spec_;
  std::vector<SchemaPtr> input_schemas_;
  std::vector<SchemaPtr> output_schemas_;

 private:
  double cost_micros_ = 1.0;
  bool initialized_ = false;
  std::vector<SeqNo> last_seq_;
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Instantiates an operator from its declarative spec. The single factory
/// used by query construction, remote definition, and box splitting.
Result<OperatorPtr> CreateOperator(const OperatorSpec& spec);

/// Default per-tuple cost (microseconds) for a box kind; used when the spec
/// does not carry an explicit "cost_us".
double DefaultCostMicros(const std::string& kind);

}  // namespace aurora

#endif  // AURORA_OPS_OPERATOR_H_
