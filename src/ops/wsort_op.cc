#include "ops/wsort_op.h"

#include <algorithm>

namespace aurora {

bool ValueVectorLess::operator()(const std::vector<Value>& a,
                                 const std::vector<Value>& b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

WSortOp::WSortOp(OperatorSpec spec)
    : Operator(std::move(spec)),
      timeout_(SimDuration::Micros(spec_.GetInt("timeout_us", 0))),
      max_buffer_(static_cast<size_t>(spec_.GetInt("max_buffer", 0))) {}

Status WSortOp::InitImpl() {
  if (spec_.attrs.empty()) {
    return Status::InvalidArgument("wsort requires at least one sort attribute");
  }
  for (const auto& attr : spec_.attrs) {
    AURORA_ASSIGN_OR_RETURN(size_t idx, input_schema(0)->IndexOf(attr));
    sort_indices_.push_back(idx);
  }
  SetOutputSchema(0, input_schema(0));
  return Status::OK();
}

const std::vector<Value>& WSortOp::KeyOf(const Tuple& t) {
  key_scratch_.clear();
  key_scratch_.reserve(sort_indices_.size());
  for (size_t idx : sort_indices_) key_scratch_.push_back(t.value(idx));
  return key_scratch_;
}

Status WSortOp::ProcessImpl(int, const Tuple& t, SimTime now,
                            Emitter* emitter) {
  const std::vector<Value>& key = KeyOf(t);
  if (watermark_.has_value() && ValueVectorLess()(key, *watermark_)) {
    // Arrived after a later-sorted tuple was emitted: lossy discard.
    ++dropped_;
    return Status::OK();
  }
  buffer_.emplace(std::move(key_scratch_), t);
  if (max_buffer_ > 0) {
    while (buffer_.size() > max_buffer_) EmitSmallest(emitter);
  }
  if (!emitted_any_) last_emit_ = now;
  return Status::OK();
}

Status WSortOp::ProcessBatchImpl(int input, TupleBatch& batch,
                                 BatchEmitter* emitter) {
  if (max_buffer_ > 0) {
    // Mid-batch emissions move the watermark tuple by tuple; keep the
    // scalar loop so drop decisions stay bit-identical.
    return Operator::ProcessBatchImpl(input, batch, emitter);
  }
  const size_t n = batch.size();
  batch_entries_.clear();
  for (size_t i = 0; i < n; ++i) {
    const Tuple& t = batch.tuple(i);
    NoteBatchTupleIn(input, t);
    emitter->SetCurrent(t);
    const std::vector<Value>& key = KeyOf(t);
    if (watermark_.has_value() && ValueVectorLess()(key, *watermark_)) {
      ++dropped_;
      continue;
    }
    batch_entries_.emplace_back(std::move(key_scratch_), i);
    if (!emitted_any_) last_emit_ = batch.now(i);
  }
  // Single sort per batch; stable sort keeps arrival order among equal
  // keys, and each upper_bound hint lands the insert after every equal key
  // already in the tree — exactly where the scalar per-tuple emplace puts
  // it.
  std::stable_sort(batch_entries_.begin(), batch_entries_.end(),
                   [](const auto& a, const auto& b) {
                     return ValueVectorLess()(a.first, b.first);
                   });
  for (auto& [key, idx] : batch_entries_) {
    buffer_.emplace_hint(buffer_.upper_bound(key), std::move(key),
                         batch.tuple(idx));
  }
  batch_entries_.clear();
  return Status::OK();
}

void WSortOp::OnTick(SimTime now, Emitter* emitter) {
  if (timeout_.micros() <= 0) return;  // "large enough timeout" mode
  while (!buffer_.empty() && now - last_emit_ >= timeout_) {
    EmitSmallest(emitter);
    last_emit_ += timeout_;
  }
  if (buffer_.empty()) last_emit_ = now;
}

void WSortOp::Drain(Emitter* emitter) {
  while (!buffer_.empty()) EmitSmallest(emitter);
}

void WSortOp::EmitSmallest(Emitter* emitter) {
  auto it = buffer_.begin();
  watermark_ = it->first;
  emitted_any_ = true;
  emitter->Emit(0, std::move(it->second));
  buffer_.erase(it);
}

SeqNo WSortOp::StatefulDependency(int) const {
  SeqNo min_seq = kNoSeqNo;
  for (const auto& [key, t] : buffer_) {
    if (t.seq() == kNoSeqNo) continue;
    if (min_seq == kNoSeqNo || t.seq() < min_seq) min_seq = t.seq();
  }
  return min_seq;
}

}  // namespace aurora
