#ifndef AURORA_OPS_EXPR_H_
#define AURORA_OPS_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "tuple/serde.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace aurora {

/// Arithmetic operators for expression nodes.
enum class ArithOp : uint8_t { kAdd = 0, kSub, kMul, kDiv };

/// \brief Declarative scalar expression over a tuple, used by the Map
/// operator.
///
/// Like Predicate, expressions are data rather than closures so that Map
/// boxes can be shipped across participants by remote definition (§4.4).
/// Supported forms: field reference, constant, binary arithmetic.
class Expr {
 public:
  static Expr FieldRef(std::string field);
  static Expr Constant(Value v);
  static Expr Arith(ArithOp op, Expr lhs, Expr rhs);

  /// Resolves every field reference in this expression tree to an index in
  /// `input`, so Eval never does a per-tuple name lookup. Call once at box
  /// initialization; returns NotFound for a missing field. Eval also
  /// re-binds lazily when it sees a tuple whose schema differs from the
  /// bound one (ad-hoc evaluation, schema-changing rewires), so Bind is an
  /// eager error check plus a warm cache, never a correctness requirement.
  Status Bind(const SchemaPtr& input) const;

  Result<Value> Eval(const Tuple& t) const;

  /// Vectorized Eval for expression trees that are int64 end to end over
  /// this batch: fields read int64 columns, constants are int64, and
  /// arithmetic is add/sub/mul (which cannot error, so no per-tuple status
  /// channel is needed). Returns true and fills `out` with one result per
  /// tuple; returns false (out unspecified) for anything else — doubles,
  /// division, strings, non-uniform batches — and the caller falls back to
  /// per-tuple Eval. Uses only stack scratch, like Predicate::EvalBatch.
  bool EvalBatch(TupleBatch& batch, std::vector<int64_t>* out) const;

  /// Result type given an input schema (int64 arithmetic stays integral;
  /// division always yields double).
  Result<ValueType> ResultType(const Schema& input) const;

  /// True when this expression is a bare field reference; fills `name`.
  /// Used by the network optimizer to recognize identity projections.
  bool IsFieldRef(std::string* name) const;

  std::string ToString() const;
  void Encode(Encoder* enc) const;
  static Result<Expr> Decode(Decoder* dec);

 private:
  enum class Kind : uint8_t { kField = 0, kConst, kArith };

  Expr() = default;

  Kind kind_ = Kind::kConst;
  std::string field_;
  Value constant_;
  ArithOp op_ = ArithOp::kAdd;
  std::vector<std::shared_ptr<const Expr>> children_;

  /// Bound-once field cache (kField only). Mutable because expression trees
  /// are shared through shared_ptr<const Expr>; the engine is
  /// single-threaded, so caching through const is safe. Holding the
  /// SchemaPtr (not a raw pointer) keeps the identity comparison in Eval
  /// immune to a freed schema's address being reused.
  mutable SchemaPtr bound_schema_;
  mutable size_t bound_index_ = 0;
};

}  // namespace aurora

#endif  // AURORA_OPS_EXPR_H_
