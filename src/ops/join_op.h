#ifndef AURORA_OPS_JOIN_OP_H_
#define AURORA_OPS_JOIN_OP_H_

#include <deque>

#include "ops/operator.h"

namespace aurora {

/// \brief Join: symmetric windowed equi-join over two streams (paper §2.2).
///
/// Matches a left tuple with every buffered right tuple (and vice versa)
/// whose join key is equal and whose timestamp is within `window_us`. The
/// output concatenates left and right attributes, with right attribute
/// names prefixed by `right_prefix` on collision. Selectivity can exceed 1,
/// the property the paper uses to motivate sliding a box *downstream*
/// (§5.1: "produces more data than the input, e.g. a join").
class JoinOp : public Operator {
 public:
  explicit JoinOp(OperatorSpec spec);

  int num_inputs() const override { return 2; }
  bool HasState() const override { return true; }

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
  SeqNo StatefulDependency(int input) const override;

 private:
  void ExpireOld(SimTime now);
  void EmitJoined(const Tuple& left, const Tuple& right, Emitter* emitter);

  std::string left_key_;
  std::string right_key_;
  size_t left_key_index_ = 0;
  size_t right_key_index_ = 0;
  SimDuration window_{};
  std::deque<Tuple> left_buffer_;
  std::deque<Tuple> right_buffer_;
};

}  // namespace aurora

#endif  // AURORA_OPS_JOIN_OP_H_
