#ifndef AURORA_OPS_JOIN_OP_H_
#define AURORA_OPS_JOIN_OP_H_

#include <deque>

#include "ops/operator.h"

namespace aurora {

/// \brief Join: symmetric windowed equi-join over two streams (paper §2.2).
///
/// Matches a left tuple with every buffered right tuple (and vice versa)
/// whose join key is equal and whose timestamp is within `window_us`. The
/// output concatenates left and right attributes, with right attribute
/// names prefixed by `right_prefix` on collision. Selectivity can exceed 1,
/// the property the paper uses to motivate sliding a box *downstream*
/// (§5.1: "produces more data than the input, e.g. a join").
class JoinOp : public Operator {
 public:
  explicit JoinOp(OperatorSpec spec);

  int num_inputs() const override { return 2; }
  bool HasState() const override { return true; }

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
  /// Probe-side batch: the whole batch probes the opposite buffer with the
  /// key index hoisted out of the loop, and consecutive probes with equal
  /// (key, timestamp, now) reuse the memoized match positions instead of
  /// rescanning the buffer (the opposite buffer cannot change between
  /// them — the batch only appends to its own side, and re-expiring at the
  /// same `now` pops nothing the memo scan saw). Emission order, buffer
  /// contents, and drop behaviour are bit-identical to the scalar loop.
  Status ProcessBatchImpl(int input, TupleBatch& batch,
                          BatchEmitter* emitter) override;
  SeqNo StatefulDependency(int input) const override;

 private:
  void ExpireOld(SimTime now);
  void EmitJoined(const Tuple& left, const Tuple& right, Emitter* emitter);

  std::string left_key_;
  std::string right_key_;
  size_t left_key_index_ = 0;
  size_t right_key_index_ = 0;
  SimDuration window_{};
  std::deque<Tuple> left_buffer_;
  std::deque<Tuple> right_buffer_;
  /// Memoized probe scratch for ProcessBatchImpl: positions in the
  /// opposite buffer matched by the previous probe tuple.
  std::vector<size_t> match_scratch_;
};

}  // namespace aurora

#endif  // AURORA_OPS_JOIN_OP_H_
