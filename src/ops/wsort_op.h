#ifndef AURORA_OPS_WSORT_OP_H_
#define AURORA_OPS_WSORT_OP_H_

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "ops/operator.h"

namespace aurora {

/// Lexicographic comparison of sort-key value vectors.
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

/// \brief WSort: time-bounded windowed sort (paper §2.2).
///
/// Buffers incoming tuples and emits them in ascending order of the sort
/// attributes, with at least one tuple emitted per timeout period. WSort is
/// *lossy*: a tuple that arrives after some tuple following it in sort order
/// has already been emitted is discarded (counted in dropped()).
///
/// timeout_us == 0 means "large enough timeout" (the assumption in the
/// paper's Tumble-split example): nothing is emitted until Drain or until
/// the optional max_buffer bound forces the smallest tuple out.
class WSortOp : public Operator {
 public:
  explicit WSortOp(OperatorSpec spec);

  bool HasState() const override { return true; }
  void OnTick(SimTime now, Emitter* emitter) override;
  void Drain(Emitter* emitter) override;

  uint64_t dropped() const { return dropped_; }
  size_t buffered() const { return buffer_.size(); }

 protected:
  Status InitImpl() override;
  Status ProcessImpl(int input, const Tuple& t, SimTime now,
                     Emitter* emitter) override;
  /// Batched insert: when max_buffer == 0 nothing is emitted mid-batch, so
  /// the watermark is constant across the batch — one pass does the lossy
  /// drop checks, then a single stable sort orders the admitted tuples and
  /// upper_bound-hinted inserts merge them into the tree, reproducing the
  /// scalar path's equal-key order exactly. max_buffer > 0 moves the
  /// watermark tuple by tuple, so it keeps the scalar loop.
  Status ProcessBatchImpl(int input, TupleBatch& batch,
                          BatchEmitter* emitter) override;
  SeqNo StatefulDependency(int input) const override;

 private:
  /// Fills key_scratch_ with the tuple's sort-key values (indices bound at
  /// init) and returns it; late (dropped) tuples then cost no allocation,
  /// and buffered ones move the scratch into the buffer entry.
  const std::vector<Value>& KeyOf(const Tuple& t);
  void EmitSmallest(Emitter* emitter);

  SimDuration timeout_{};
  size_t max_buffer_ = 0;
  std::vector<size_t> sort_indices_;
  std::vector<Value> key_scratch_;
  /// Per-batch scratch for ProcessBatchImpl: (key, batch index) pairs of
  /// the admitted tuples. Member to keep capacity warm.
  std::vector<std::pair<std::vector<Value>, size_t>> batch_entries_;
  // The ordered buffer IS the sort — this one stays a tree.
  std::multimap<std::vector<Value>, Tuple, ValueVectorLess> buffer_;
  std::optional<std::vector<Value>> watermark_;
  SimTime last_emit_{};
  bool emitted_any_ = false;
  uint64_t dropped_ = 0;
};

}  // namespace aurora

#endif  // AURORA_OPS_WSORT_OP_H_
