// aurora_inspect: offline bottleneck analysis over the observability
// artifacts the benches, simcheck, and the flight recorder write.
//
//   aurora_inspect <dump.json>             summary: stage attribution per
//                                          output, top bottleneck boxes, and
//                                          (for flight dumps) trace timelines
//   aurora_inspect --check <dump.json>     validate the dump: snapshot schema
//                                          plus stage/e2e conservation;
//                                          nonzero exit on failure (CI)
//   aurora_inspect --diff <a.json> <b.json> metric deltas between two dumps
//   aurora_inspect --top N / --traces N    table / timeline row limits
//
// A "dump" is either a bare MetricsRegistry::SnapshotJson() object
// (obs_*.json) or any document embedding one under "metrics" (flight dumps),
// in which case the "spans" array also yields per-trace timelines.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/attribution.h"
#include "obs/json.h"
#include "obs/snapshot_diff.h"
#include "obs/trace.h"

namespace aurora {
namespace {

struct InspectOptions {
  int top_boxes = 10;
  int max_traces = 5;
  bool check = false;
};

// ---------------------------------------------------------------------------
// Stage attribution table
// ---------------------------------------------------------------------------

/// One output's attribution series pulled out of the snapshot.
struct OutputAttribution {
  std::string output;
  MetricsSnapshot::HistogramStats e2e;
  MetricsSnapshot::HistogramStats stage[kNumStages];
  uint64_t dominant[kNumStages] = {};
};

std::vector<OutputAttribution> CollectAttribution(
    const MetricsSnapshot& snap) {
  const std::string prefix = "latency.attr.";
  const std::string e2e_suffix = ".e2e_us";
  std::vector<OutputAttribution> outs;
  for (const auto& [name, stats] : snap.histograms) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() <= prefix.size() + e2e_suffix.size()) continue;
    if (name.compare(name.size() - e2e_suffix.size(), e2e_suffix.size(),
                     e2e_suffix) != 0) {
      continue;
    }
    OutputAttribution oa;
    oa.output = name.substr(prefix.size(),
                            name.size() - prefix.size() - e2e_suffix.size());
    oa.e2e = stats;
    const std::string base = prefix + oa.output + ".";
    for (int i = 0; i < kNumStages; ++i) {
      const char* stage = StageName(static_cast<Stage>(i));
      auto it = snap.histograms.find(base + stage + "_us");
      if (it != snap.histograms.end()) oa.stage[i] = it->second;
      oa.dominant[i] = snap.CounterOr(base + "dominant." + stage);
    }
    outs.push_back(std::move(oa));
  }
  return outs;
}

void PrintAttribution(const std::vector<OutputAttribution>& outs) {
  if (outs.empty()) {
    std::printf(
        "No stage attribution recorded (latency.attr.* series absent; run "
        "with AURORA_TRACE=1).\n");
    return;
  }
  std::printf("Stage attribution per output (simulated us):\n");
  for (const OutputAttribution& oa : outs) {
    std::printf("  out:%s  deliveries=%llu  e2e mean=%.1fus p95=%.1fus\n",
                oa.output.c_str(),
                static_cast<unsigned long long>(oa.e2e.count), oa.e2e.mean,
                oa.e2e.p95);
    double total_sum = std::max(1e-12, oa.e2e.sum);
    int dom = 0;
    for (int i = 1; i < kNumStages; ++i) {
      if (oa.stage[i].sum > oa.stage[dom].sum) dom = i;
    }
    for (int i = 0; i < kNumStages; ++i) {
      double share = 100.0 * oa.stage[i].sum / total_sum;
      std::printf("    %-10s mean=%8.1fus  share=%5.1f%%  dominant_in=%llu%s\n",
                  StageName(static_cast<Stage>(i)), oa.stage[i].mean, share,
                  static_cast<unsigned long long>(oa.dominant[i]),
                  i == dom ? "  <- dominant" : "");
    }
  }
}

/// Conservation: per output, each stage histogram has exactly one sample per
/// delivery, and the stage sums add up to the e2e sum (exactly in the
/// engine; within float-print tolerance after a JSON round trip).
bool CheckAttribution(const std::vector<OutputAttribution>& outs) {
  bool ok = true;
  for (const OutputAttribution& oa : outs) {
    double stage_sum = 0.0;
    for (int i = 0; i < kNumStages; ++i) {
      stage_sum += oa.stage[i].sum;
      if (oa.stage[i].count != oa.e2e.count) {
        std::printf(
            "CHECK FAIL out:%s stage %s has %llu samples but e2e has %llu\n",
            oa.output.c_str(), StageName(static_cast<Stage>(i)),
            static_cast<unsigned long long>(oa.stage[i].count),
            static_cast<unsigned long long>(oa.e2e.count));
        ok = false;
      }
    }
    // %.6g snapshot serialization keeps ~6 significant digits per field.
    double tol = 1e-4 * std::max(1.0, oa.e2e.sum);
    if (std::abs(stage_sum - oa.e2e.sum) > tol) {
      std::printf(
          "CHECK FAIL out:%s stage sums %.6g != e2e sum %.6g (tol %.3g)\n",
          oa.output.c_str(), stage_sum, oa.e2e.sum, tol);
      ok = false;
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Bottleneck boxes
// ---------------------------------------------------------------------------

struct BoxProfile {
  std::string box;  // "n<node>.<id>:<kind>"
  uint64_t self_us = 0;
  uint64_t activations = 0;
  uint64_t tuples = 0;
};

std::vector<BoxProfile> CollectBoxes(const MetricsSnapshot& snap) {
  const std::string prefix = "engine.box.";
  const std::string suffix = ".self_us";
  std::vector<BoxProfile> boxes;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() + suffix.size()) {
      continue;
    }
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    BoxProfile bp;
    bp.box = name.substr(prefix.size(),
                         name.size() - prefix.size() - suffix.size());
    bp.self_us = value;
    const std::string base = prefix + bp.box + ".";
    bp.activations = snap.CounterOr(base + "activations");
    bp.tuples = snap.CounterOr(base + "tuples");
    boxes.push_back(std::move(bp));
  }
  std::sort(boxes.begin(), boxes.end(), [](const BoxProfile& a,
                                           const BoxProfile& b) {
    if (a.self_us != b.self_us) return a.self_us > b.self_us;
    return a.box < b.box;
  });
  return boxes;
}

void PrintBoxes(const std::vector<BoxProfile>& boxes, int top) {
  if (boxes.empty()) {
    std::printf("\nNo per-box profiles recorded (engine.box.* absent).\n");
    return;
  }
  std::printf("\nTop bottleneck boxes by self time:\n");
  std::printf("  %-28s %12s %12s %12s %10s\n", "box", "self_us", "activations",
              "tuples", "us/tuple");
  size_t n = std::min(boxes.size(), static_cast<size_t>(top));
  for (size_t i = 0; i < n; ++i) {
    const BoxProfile& b = boxes[i];
    double per_tuple = b.tuples == 0
                           ? 0.0
                           : static_cast<double>(b.self_us) /
                                 static_cast<double>(b.tuples);
    std::printf("  %-28s %12llu %12llu %12llu %10.2f\n", b.box.c_str(),
                static_cast<unsigned long long>(b.self_us),
                static_cast<unsigned long long>(b.activations),
                static_cast<unsigned long long>(b.tuples), per_tuple);
  }
  if (boxes.size() > n) {
    std::printf("  ... (%zu more)\n", boxes.size() - n);
  }
}

// ---------------------------------------------------------------------------
// Trace timelines (flight dumps)
// ---------------------------------------------------------------------------

struct SpanRow {
  uint64_t trace_id;
  std::string kind;
  int node;
  std::string site;
  int64_t start_us;
  int64_t end_us;
};

std::vector<SpanRow> CollectSpans(const JsonValue& doc) {
  std::vector<SpanRow> rows;
  const JsonValue* spans = doc.FindArray("spans");
  if (spans == nullptr) return rows;
  for (const JsonValue& s : spans->AsArray()) {
    if (!s.is_object()) continue;
    SpanRow row;
    row.trace_id = static_cast<uint64_t>(s.NumberOr("trace_id", 0));
    row.kind = s.StringOr("kind", "?");
    row.node = static_cast<int>(s.NumberOr("node", -1));
    row.site = s.StringOr("site", "");
    row.start_us = static_cast<int64_t>(s.NumberOr("start_us", 0));
    row.end_us = static_cast<int64_t>(s.NumberOr("end_us", 0));
    rows.push_back(std::move(row));
  }
  return rows;
}

void PrintTimelines(const std::vector<SpanRow>& rows, int max_traces) {
  if (rows.empty()) return;
  std::map<uint64_t, std::vector<const SpanRow*>> by_trace;
  size_t system_spans = 0;
  for (const SpanRow& r : rows) {
    if (r.trace_id == 0) {
      system_spans++;
    } else {
      by_trace[r.trace_id].push_back(&r);
    }
  }
  std::printf("\nTrace timelines (%zu spans, %zu traces, %zu system spans):\n",
              rows.size(), by_trace.size(), system_spans);
  int printed = 0;
  // Newest traces carry the evidence nearest the anomaly: walk ids
  // descending.
  for (auto it = by_trace.rbegin();
       it != by_trace.rend() && printed < max_traces; ++it, ++printed) {
    std::vector<const SpanRow*>& spans = it->second;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanRow* a, const SpanRow* b) {
                       return a->start_us < b->start_us;
                     });
    int64_t t0 = spans.front()->start_us;
    int64_t t_end = spans.back()->end_us;
    std::printf("  trace %llu (%lldus end to end):\n",
                static_cast<unsigned long long>(it->first),
                static_cast<long long>(t_end - t0));
    for (const SpanRow* s : spans) {
      std::printf("    +%-8lld %-13s n%-3d %s",
                  static_cast<long long>(s->start_us - t0), s->kind.c_str(),
                  s->node, s->site.c_str());
      if (s->end_us > s->start_us) {
        std::printf("  (%lldus)",
                    static_cast<long long>(s->end_us - s->start_us));
      }
      std::printf("\n");
    }
  }
  if (static_cast<int>(by_trace.size()) > printed) {
    std::printf("  ... (%zu more traces)\n", by_trace.size() - printed);
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

int Inspect(const std::string& path, const InspectOptions& opts) {
  Result<JsonValue> doc = JsonValue::ParseFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "aurora_inspect: %s\n",
                 doc.status().ToString().c_str());
    return 2;
  }
  Result<MetricsSnapshot> snap = MetricsSnapshot::FromJson(*doc);
  if (!snap.ok()) {
    std::fprintf(stderr, "aurora_inspect: %s: %s\n", path.c_str(),
                 snap.status().ToString().c_str());
    return 2;
  }

  std::printf("== %s ==\n", path.c_str());
  std::string event = doc->StringOr("event", "");
  if (!event.empty()) {
    std::printf("flight dump: event=%s detail=\"%s\" sim_time_us=%lld "
                "spans_dropped=%lld\n\n",
                event.c_str(), doc->StringOr("detail", "").c_str(),
                static_cast<long long>(doc->NumberOr("sim_time_us", -1)),
                static_cast<long long>(doc->NumberOr("spans_dropped", 0)));
  }

  std::vector<OutputAttribution> attribution = CollectAttribution(*snap);
  PrintAttribution(attribution);
  PrintBoxes(CollectBoxes(*snap), opts.top_boxes);
  PrintTimelines(CollectSpans(*doc), opts.max_traces);

  if (opts.check) {
    if (!CheckAttribution(attribution)) return 1;
    std::printf("\nCHECK OK: %zu outputs conserve stage attribution, "
                "%zu counters, %zu gauges, %zu histograms parsed.\n",
                attribution.size(), snap->counters.size(),
                snap->gauges.size(), snap->histograms.size());
  }
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  Result<MetricsSnapshot> a = MetricsSnapshot::FromJsonFile(path_a);
  if (!a.ok()) {
    std::fprintf(stderr, "aurora_inspect: %s: %s\n", path_a.c_str(),
                 a.status().ToString().c_str());
    return 2;
  }
  Result<MetricsSnapshot> b = MetricsSnapshot::FromJsonFile(path_b);
  if (!b.ok()) {
    std::fprintf(stderr, "aurora_inspect: %s: %s\n", path_b.c_str(),
                 b.status().ToString().c_str());
    return 2;
  }
  SnapshotDiff diff = SnapshotDiff::Between(*a, *b);
  std::printf("== diff %s -> %s ==\n", path_a.c_str(), path_b.c_str());
  if (diff.empty()) {
    std::printf("  identical metric values.\n");
  } else {
    std::printf("%s", diff.ToText().c_str());
    std::printf("  (%zu metrics changed)\n", diff.changed.size());
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: aurora_inspect [--check] [--top N] [--traces N] <dump.json>\n"
      "       aurora_inspect --diff <a.json> <b.json>\n");
  return 2;
}

int Main(int argc, char** argv) {
  InspectOptions opts;
  std::vector<std::string> paths;
  bool diff = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--diff") == 0) {
      diff = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      opts.top_boxes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--traces") == 0 && i + 1 < argc) {
      opts.max_traces = std::atoi(argv[++i]);
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (diff) {
    if (paths.size() != 2) return Usage();
    return Diff(paths[0], paths[1]);
  }
  if (paths.size() != 1) return Usage();
  return Inspect(paths[0], opts);
}

}  // namespace
}  // namespace aurora

int main(int argc, char** argv) { return aurora::Main(argc, argv); }
